//! Throughput-regression gate over committed `BENCH_*.json` baselines.
//!
//! ```text
//! bench_compare <baseline.json> <current.json> [threshold-pct]
//! ```
//!
//! Walks both documents in parallel and compares every numeric leaf
//! whose key names a throughput-like metric — keys ending in
//! `_per_second` or `mib_per_second`, plus `speedup` and `utilization`
//! rows of the worker-scaling matrix — where higher is better. A leaf
//! whose current value falls more than `threshold-pct` percent (default
//! 25) below the baseline fails the gate; the process exits 1 listing
//! every offender. Wall-clock and overhead fields are deliberately NOT
//! gated: they move with corpus size and host noise, while the
//! throughput ratios are what the CI runner can meaningfully hold flat.
//!
//! Keys present on only one side are reported (a renamed metric should
//! be a conscious baseline update) but do not fail the gate.

use serde_json::Value;
use std::process::ExitCode;

/// Is this leaf a higher-is-better throughput metric worth gating?
fn gated(key: &str) -> bool {
    key.ends_with("_per_second")
        || key == "mib_per_second"
        || key == "speedup"
        || key == "utilization"
}

/// Collects `(path, value)` for every gated numeric leaf.
fn collect(value: &Value, path: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Object(map) => {
            for (key, child) in map.iter() {
                let child_path =
                    if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                if let Value::Number(n) = child {
                    if gated(key) {
                        out.push((child_path, n.as_f64()));
                    }
                } else {
                    collect(child, &child_path, out);
                }
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                collect(child, &format!("{path}[{i}]"), out);
            }
        }
        _ => {}
    }
}

fn load(path: &str) -> Vec<(String, f64)> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("bench_compare: read {path}: {e}"));
    let value: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("bench_compare: parse {path}: {e:?}"));
    let mut leaves = Vec::new();
    collect(&value, "", &mut leaves);
    leaves
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path, rest @ ..] = args.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <current.json> [threshold-pct]");
        return ExitCode::from(2);
    };
    let threshold_pct: f64 = match rest {
        [] => 25.0,
        [t] => t.parse().expect("threshold-pct parses as a number"),
        _ => {
            eprintln!("usage: bench_compare <baseline.json> <current.json> [threshold-pct]");
            return ExitCode::from(2);
        }
    };

    let baseline = load(baseline_path);
    let current = load(current_path);

    let mut failures = 0usize;
    let mut compared = 0usize;
    for (path, base) in &baseline {
        let Some((_, cur)) = current.iter().find(|(p, _)| p == path) else {
            println!("MISSING  {path}: in baseline only (baseline {base:.2})");
            continue;
        };
        compared += 1;
        // Regression = how far current fell below baseline, in percent.
        let delta_pct = if *base > 0.0 { (base - cur) / base * 100.0 } else { 0.0 };
        let verdict = if delta_pct > threshold_pct {
            failures += 1;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{verdict:7}  {path}: baseline {base:.2} -> current {cur:.2} ({delta_pct:+.1}% drop)"
        );
    }
    for (path, cur) in &current {
        if !baseline.iter().any(|(p, _)| p == path) {
            println!("NEW      {path}: in current only ({cur:.2})");
        }
    }

    if compared == 0 {
        eprintln!("bench_compare: no gated metrics in common — wrong files?");
        return ExitCode::from(2);
    }
    if failures > 0 {
        eprintln!(
            "bench_compare: {failures} metric(s) regressed more than {threshold_pct}% vs {baseline_path}"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_compare: {compared} metric(s) within {threshold_pct}% of {baseline_path}");
    ExitCode::SUCCESS
}
