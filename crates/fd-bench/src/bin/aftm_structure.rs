//! AFTM structure statistics over the 217-app corpus: how fragment-heavy
//! modern app architectures are (the quantitative backdrop to the paper's
//! "91% use Fragments" motivation).

use fd_aftm::stats;

fn main() {
    let corpus = fd_appgen::corpus::corpus_217(1);
    let mut rows = Vec::new();
    for gen in &corpus {
        if gen.app.meta.packed {
            continue; // excluded, as in the paper
        }
        let info = fd_static::extract(&gen.app, &gen.known_inputs);
        rows.push(stats::stats(&info.aftm));
    }

    let n = rows.len() as f64;
    let avg = |f: &dyn Fn(&stats::AftmStats) -> f64| rows.iter().map(f).sum::<f64>() / n;

    println!("AFTM STRUCTURE over {} analyzable corpus apps\n", rows.len());
    println!("average activities per app:        {:.2}", avg(&|r| r.activities as f64));
    println!("average fragments per app:         {:.2}", avg(&|r| r.fragments as f64));
    println!("average fragment share of states:  {:.1}%", avg(&|r| r.fragment_ratio() * 100.0));
    println!("average E1 (A→A) edges:            {:.2}", avg(&|r| r.e1 as f64));
    println!("average E2 (A→F) edges:            {:.2}", avg(&|r| r.e2 as f64));
    println!("average E3 (F→F) edges:            {:.2}", avg(&|r| r.e3 as f64));
    println!("average BFS depth from entry:      {:.2}", avg(&|r| r.depth as f64));
    println!(
        "average statically unreachable:    {:.2} nodes/app (forced-start candidates)",
        avg(&|r| r.unreachable as f64)
    );
    println!(
        "max fragments in one activity:     {}",
        rows.iter().map(|r| r.max_fragments_per_activity).max().unwrap_or(0)
    );

    let fragment_states: f64 = rows.iter().map(|r| r.fragments as f64).sum();
    let all_states: f64 = rows.iter().map(|r| (r.activities + r.fragments) as f64).sum();
    println!(
        "\ncorpus-wide: {:.1}% of UI states are fragment-level — the share of the\n\
         state space an activity-unit tool cannot distinguish (Challenge 1).",
        fragment_states / all_states * 100.0
    );
}
