//! Corpus scale-out baseline: generate a sharded on-disk corpus, stream
//! it back through the lazy reader, and digest it as four shard slices —
//! the three stages of the `gen-corpus` → `CorpusReader` → shard-merge
//! pipeline — at 10k and 100k tiny apps. Written to `BENCH_corpus.json`
//! so a regression in the streaming hot path (shard encode, index-backed
//! fetch, digest fold) shows up as a diff.
//!
//! The peak-RSS proxy (`VmHWM` from `/proc/self/status`) is recorded per
//! size but deliberately not gated: its job is to document that the
//! reader streams in O(1 app) memory — the 100k corpus must not move it
//! materially past the 10k one.
//!
//! ```text
//! cargo run --release -p fd-bench --bin bench_corpus_stream [sizes...]
//! ```

use fd_apk::corpus::CorpusReader;
use fd_appgen::stream::{write_corpus, StreamConfig};
use fragdroid::{CorpusSource, ShardSlice};
use serde::Serialize;
use std::time::Instant;

/// Shards in the digest pass (the CI smoke's split).
const SHARDS: usize = 4;

/// What `BENCH_corpus.json` records for one corpus size.
#[derive(Serialize)]
struct SizeStats {
    /// Apps in this corpus.
    apps: usize,
    /// Apps generated and packed to disk per second.
    generate_apps_per_second: f64,
    /// Apps fetched and container-decoded back off disk per second.
    stream_apps_per_second: f64,
    /// Apps digest-folded across the four shard slices per second.
    shard_digest_apps_per_second: f64,
    /// Total bytes of the shard files on disk.
    corpus_bytes: u64,
    /// Mean container size, bytes.
    bytes_per_app: u64,
    /// `VmHWM` after this size finished, MiB (monotonic per process;
    /// bounded growth from 10k to 100k is the O(1)-memory evidence).
    peak_rss_mib: f64,
}

#[derive(Serialize)]
struct BenchCorpus {
    /// Per-app size profile used.
    profile: String,
    /// Shard slices in the digest pass.
    shards: usize,
    /// One record per corpus size, ascending.
    sizes: Vec<SizeStats>,
}

/// `VmHWM` (peak resident set) of this process, MiB.
fn peak_rss_mib() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse::<f64>().ok())
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

fn throughput(apps: usize, wall: std::time::Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        apps as f64 / secs
    } else {
        0.0
    }
}

fn bench_size(apps: usize, dir: &std::path::Path) -> SizeStats {
    // Stage 1: generate. One app resident at a time, shards of 1024.
    let config = StreamConfig::tiny(apps, 7);
    let started = Instant::now();
    let manifest = write_corpus(dir, &config).expect("bench corpus dir is writable");
    let generate_apps_per_second = throughput(apps, started.elapsed());
    assert_eq!(manifest.apps, apps);

    let corpus_bytes: u64 = manifest
        .shards
        .iter()
        .map(|s| std::fs::metadata(dir.join(&s.file)).map(|m| m.len()).unwrap_or(0))
        .sum();

    // Stage 2: stream the whole corpus back through the lazy reader,
    // decoding every container (the suite's per-app ingest work).
    let reader = CorpusReader::open(dir).expect("bench corpus reopens");
    let started = Instant::now();
    let mut decoded = 0usize;
    let mut packed = 0usize;
    for i in 0..reader.len() {
        let (container, _inputs) = reader.fetch(i).expect("indexed fetch");
        match fd_apk::decompile(&bytes::Bytes::from(container)) {
            Ok(_) => decoded += 1,
            // The profile plants a realistic share of packer-protected
            // apps; their typed rejection is part of the ingest work.
            Err(fd_apk::ApkError::Packed) => packed += 1,
            Err(other) => panic!("entry {i}: unexpected decode failure {other}"),
        }
    }
    let stream_apps_per_second = throughput(apps, started.elapsed());
    assert_eq!(decoded + packed, apps, "every entry decodes or is a typed rejection");

    // Stage 3: the shard-coordinator digest pass — each of the four
    // slices streams and digest-folds its own sub-range.
    let started = Instant::now();
    for index in 0..SHARDS {
        let slice = ShardSlice::new(&reader, SHARDS, index).expect("valid split");
        slice.digest().expect("shard slice digests");
    }
    let shard_digest_apps_per_second = throughput(apps, started.elapsed());

    SizeStats {
        apps,
        generate_apps_per_second,
        stream_apps_per_second,
        shard_digest_apps_per_second,
        corpus_bytes,
        bytes_per_app: if apps > 0 { corpus_bytes / apps as u64 } else { 0 },
        peak_rss_mib: peak_rss_mib(),
    }
}

fn main() {
    let args: Vec<usize> =
        std::env::args().skip(1).map(|a| a.parse().expect("sizes are app counts")).collect();
    let sizes = if args.is_empty() { vec![10_000, 100_000] } else { args };

    let scratch = std::env::temp_dir().join(format!("fd-bench-corpus-{}", std::process::id()));
    let mut records = Vec::new();
    for apps in sizes {
        let dir = scratch.join(format!("corpus-{apps}"));
        std::fs::create_dir_all(&dir).expect("create bench corpus dir");
        eprintln!("bench_corpus_stream: {apps} apps ...");
        records.push(bench_size(apps, &dir));
        let _ = std::fs::remove_dir_all(&dir);
    }

    let bench = BenchCorpus { profile: "tiny".to_string(), shards: SHARDS, sizes: records };
    let json = serde_json::to_string_pretty(&bench).expect("bench record serializes");
    std::fs::write("BENCH_corpus.json", &json).expect("write BENCH_corpus.json");
    println!("{json}");
    let _ = std::fs::remove_dir_all(&scratch);
    eprintln!("wrote BENCH_corpus.json");
}
