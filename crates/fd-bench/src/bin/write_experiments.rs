//! Writes `EXPERIMENTS-generated.md`: the measured evaluation, fully
//! regenerated from live runs (the hand-annotated paper-vs-measured
//! narrative lives in `EXPERIMENTS.md`; this file is the raw, always-fresh
//! counterpart).

use fd_report::study::corpus_study;
use fd_report::table1::{averages, render_table1_markdown, run_table1_full};
use fd_report::table2::{build_table2, render_per_app};
use std::fmt::Write as _;

fn main() {
    let mut out = String::from(
        "# EXPERIMENTS (generated)\n\nRegenerate with `cargo run -p fd-bench --release --bin write_experiments`.\nAll numbers are deterministic.\n\n",
    );

    // Corpus study.
    let corpus = fd_appgen::corpus::corpus_217(1);
    let study = corpus_study(&corpus);
    let _ = writeln!(
        out,
        "## Corpus study\n\n{} apps, {} fragment users (**{:.0}%**), {} packer-protected.\n",
        study.total,
        study.fragment_users,
        study.usage_pct(),
        study.packed
    );

    // Table I.
    let t1 = run_table1_full();
    let results = t1.rows;
    let rows: Vec<_> = results.iter().map(|(r, _)| r.clone()).collect();
    let (a, f, v) = averages(&rows);
    let _ = writeln!(out, "## Table I — coverage\n");
    out.push_str(&render_table1_markdown(&rows));
    let _ = writeln!(
        out,
        "\nAverages: activities **{a:.2}%** (paper 71.94%), fragments **{f:.2}%** (paper 66%), fragments-in-visited **{v:.2}%**. {} of {} containers quarantined at ingestion.\n",
        t1.rejected.len(),
        t1.rejected.len() + rows.len(),
    );

    // Table II.
    let reports: Vec<_> = results.into_iter().map(|(row, rep)| (row.package, rep)).collect();
    let t2 = build_table2(&reports);
    let _ = writeln!(
        out,
        "## Table II — sensitive operations\n\n{} distinct APIs, {} invocation relations, {:.1}% fragment-associated, {:.1}% fragment-only.\n\n```\n{}```\n",
        t2.distinct_apis(),
        t2.total_invocations,
        t2.fragment_share() * 100.0,
        t2.missed_by_activity_tools() * 100.0,
        render_per_app(&t2),
    );

    std::fs::write("EXPERIMENTS-generated.md", &out).expect("write EXPERIMENTS-generated.md");
    println!("wrote EXPERIMENTS-generated.md ({} bytes)", out.len());
}
