//! Tracing-overhead baseline: the analyzable corpus through the suite
//! runner in three modes — the untraced entry point, tracing compiled in
//! but disabled, and tracing enabled — plus a worker-scaling matrix
//! (1/2/4/8 workers) and a device-backend overhead section (in-process
//! vs the wire-protocol subprocess backend), with the comparison written
//! to `BENCH_suite.json` so regressions in the runner, the tracer, the
//! work-stealing scheduler, or the agent protocol show up as a diff.
//!
//! Each mode runs `PASSES` times and keeps the fastest pass: single-pass
//! wall times on a shared machine swing by tens of percent, and the
//! minimum is the least-noisy estimate of the code's actual cost.
//!
//! ```text
//! cargo run --release -p fd-bench --bin bench_suite
//! ```

use fragdroid::{
    run_container_suite_pooled, run_suite_traced, run_suite_with_workers, DevicePool,
    FragDroidConfig, SuiteRun,
};
use serde::Serialize;
use std::collections::BTreeMap;

/// Best-of-N passes per mode.
const PASSES: usize = 5;

/// Corpus slice and best-of-N passes for the backend-overhead section —
/// smaller than the tracing section because every subprocess request
/// pays an encode → transport → decode round trip.
const BACKEND_APPS: usize = 24;
const BACKEND_PASSES: usize = 3;

/// What `BENCH_suite.json` records for one tracing mode.
#[derive(Serialize)]
struct ModeStats {
    /// End-to-end suite wall time of the fastest pass, ms.
    wall_ms: u64,
    /// Summed per-worker busy time of that pass, ms.
    busy_ms: u64,
    /// UI events injected across the corpus.
    events: usize,
    /// Injection throughput over the suite wall time.
    events_per_second: f64,
    /// Per-app wall-time quantiles (nearest-rank), ms.
    app_wall_ms_p50: u64,
    app_wall_ms_p95: u64,
    app_wall_ms_max: u64,
}

/// One row of the worker-scaling matrix.
#[derive(Serialize)]
struct ScalingPoint {
    /// Worker threads for this row.
    workers: usize,
    /// End-to-end suite wall time of the fastest pass, ms.
    wall_ms: u64,
    /// Summed per-worker busy time of that pass, ms.
    busy_ms: u64,
    /// Injection throughput over the suite wall time.
    events_per_second: f64,
    /// `wall(1 worker) / wall(n workers)` — ideal is `n`.
    speedup: f64,
    /// `busy / (wall * workers)` — the fraction of worker-seconds spent
    /// on apps rather than idle at the queue; ideal is 1.0.
    utilization: f64,
}

/// One device backend's numbers over the backend-comparison slice.
#[derive(Serialize)]
struct BackendStats {
    /// End-to-end suite wall time of the fastest pass, ms.
    wall_ms: u64,
    /// UI events injected across the slice.
    events: usize,
    /// Injection throughput over the suite wall time.
    events_per_second: f64,
}

/// In-process vs subprocess device backend on the same corpus slice.
/// The subprocess rows use the in-memory agent transport — the full
/// encode → frame → decode wire path without process-spawn noise — so
/// the section isolates the protocol's cost, which is what the driver's
/// round-trip batching has to keep in check.
#[derive(Serialize)]
struct BackendOverhead {
    /// Apps in the comparison slice.
    apps: usize,
    /// Best-of-N passes kept per backend.
    passes: usize,
    /// The [`fragdroid::build_backend`] in-process default.
    in_process: BackendStats,
    /// The wire-protocol backend over the in-memory transport.
    subprocess: BackendStats,
    /// `subprocess.wall / in_process.wall - 1`, percent.
    subprocess_overhead_pct: f64,
    /// Agent requests timed for the round-trip quantiles.
    requests: usize,
    /// Median request round trip over the wire, µs (nearest-rank).
    request_p50_us: u64,
    /// 95th-percentile request round trip, µs.
    request_p95_us: u64,
}

#[derive(Serialize)]
struct BenchSuite {
    /// Apps run (the analyzable, non-packed corpus slice).
    apps: usize,
    /// Worker threads used.
    workers: usize,
    /// Best-of-N passes kept per mode.
    passes: usize,
    /// The plain `run_suite_with_workers` entry point.
    untraced: ModeStats,
    /// `run_suite_traced` with `TraceConfig::off()` — the mode every
    /// ordinary run uses, and the one the <2% acceptance budget governs.
    disabled: ModeStats,
    /// `run_suite_traced` with tracing on, recording everything.
    traced: ModeStats,
    /// `disabled.wall / untraced.wall - 1`, percent. The two share the
    /// same code path (the untraced entry delegates with a disabled
    /// tracer), so this measures pure noise plus the budgeted cost.
    disabled_overhead_pct: f64,
    /// `traced.wall / untraced.wall - 1`, percent: the price of actually
    /// recording ~100k records/s. Informational, not budgeted.
    traced_overhead_pct: f64,
    /// Wall time per top-level and nested phase from the traced run, ms.
    per_phase_ms: BTreeMap<String, f64>,
    /// Records in the drained trace (spans + events + counters).
    trace_records: usize,
    /// Records lost to ring overflow (0 unless the capacity is lowered).
    trace_dropped: u64,
    /// Untraced suite wall/throughput at 1, 2, 4 and 8 workers. On a
    /// single-core host the matrix is honest about it: speedup stays
    /// ~1.0 and oversubscribed rows just measure scheduling overhead.
    scaling: Vec<ScalingPoint>,
    /// In-process vs subprocess device backend on a corpus slice.
    backends: BackendOverhead,
}

fn mode_stats(run: &SuiteRun) -> ModeStats {
    let m = &run.metrics;
    let events: usize =
        run.outcomes.iter().filter_map(|o| o.report()).map(|r| r.events_injected).sum();
    let secs = m.wall_ms as f64 / 1000.0;
    ModeStats {
        wall_ms: m.wall_ms,
        busy_ms: m.busy_ms,
        events,
        events_per_second: if secs > 0.0 { events as f64 / secs } else { 0.0 },
        app_wall_ms_p50: m.app_wall_ms_p50,
        app_wall_ms_p95: m.app_wall_ms_p95,
        app_wall_ms_max: m.app_wall_ms_max,
    }
}

/// Keep `best` (by suite wall time) between rounds of interleaved passes.
fn keep_best<T>(best: &mut Option<(SuiteRun, T)>, candidate: (SuiteRun, T)) {
    match best {
        Some(b) if b.0.metrics.wall_ms <= candidate.0.metrics.wall_ms => {}
        _ => *best = Some(candidate),
    }
}

fn overhead_pct(mode: &ModeStats, baseline: &ModeStats) -> f64 {
    if baseline.wall_ms > 0 {
        (mode.wall_ms as f64 / baseline.wall_ms as f64 - 1.0) * 100.0
    } else {
        0.0
    }
}

/// Nearest-rank quantile over an ascending-sorted sample.
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn backend_stats(run: &SuiteRun) -> BackendStats {
    let events: usize =
        run.outcomes.iter().filter_map(|o| o.report()).map(|r| r.events_injected).sum();
    let secs = run.metrics.wall_ms as f64 / 1000.0;
    BackendStats {
        wall_ms: run.metrics.wall_ms,
        events,
        events_per_second: if secs > 0.0 { events as f64 / secs } else { 0.0 },
    }
}

/// A pool whose every lane speaks the wire protocol to an in-memory
/// agent — deterministic, and spawnable from a bench binary (a real
/// `device-agent` child needs the `fragdroid` executable).
fn in_memory_subprocess_pool(lanes: usize) -> DevicePool {
    DevicePool::with_factory(
        lanes,
        Box::new(|_, _| {
            Box::new(fd_droidsim::SubprocessDevice::in_memory(fd_droidsim::AgentOptions {
                die_after: None,
            }))
        }),
    )
}

fn bench_backends() -> BackendOverhead {
    let slice: Vec<fragdroid::suite::SuiteContainer> = fd_appgen::corpus::corpus_217(1)
        .into_iter()
        .filter(|g| !g.app.meta.packed)
        .take(BACKEND_APPS)
        .map(|g| (fd_apk::pack(&g.app), g.known_inputs))
        .collect();
    let config = FragDroidConfig::default();
    let off = fd_trace::TraceConfig::off();
    // Single lane: the comparison measures protocol cost, not scheduling.
    let workers = 1;

    let warmup = DevicePool::from_config(&config, workers);
    let _ = run_container_suite_pooled(&slice, &config, workers, &off, &warmup);

    let (mut best_in, mut best_sub) = (None, None);
    for _ in 0..BACKEND_PASSES {
        let in_pool = DevicePool::from_config(&config, workers);
        keep_best(
            &mut best_in,
            (run_container_suite_pooled(&slice, &config, workers, &off, &in_pool).0, ()),
        );
        let sub_pool = in_memory_subprocess_pool(workers);
        keep_best(
            &mut best_sub,
            (run_container_suite_pooled(&slice, &config, workers, &off, &sub_pool).0, ()),
        );
    }

    // Request round-trip quantiles: one app over a dedicated device, so
    // the sample is pure wire time, not interleaved pool bookkeeping.
    let gen = fd_appgen::templates::tabbed_categories();
    let mut device =
        fd_droidsim::SubprocessDevice::in_memory(fd_droidsim::AgentOptions { die_after: None });
    let tool = fragdroid::FragDroid::new(config.clone());
    let _ =
        tool.run_traced_on(&gen.app, &gen.known_inputs, &fd_trace::Tracer::disabled(), &mut device);
    let mut samples = device.round_trips_us().to_vec();
    samples.sort_unstable();

    let in_process = backend_stats(&best_in.expect("BACKEND_PASSES > 0").0);
    let subprocess = backend_stats(&best_sub.expect("BACKEND_PASSES > 0").0);
    let subprocess_overhead_pct = if in_process.wall_ms > 0 {
        (subprocess.wall_ms as f64 / in_process.wall_ms as f64 - 1.0) * 100.0
    } else {
        0.0
    };
    BackendOverhead {
        apps: slice.len(),
        passes: BACKEND_PASSES,
        requests: samples.len(),
        request_p50_us: quantile_us(&samples, 0.50),
        request_p95_us: quantile_us(&samples, 0.95),
        in_process,
        subprocess,
        subprocess_overhead_pct,
    }
}

fn main() {
    let apps = fd_bench::analyzable_corpus(1);
    let config = FragDroidConfig::default();
    let workers = fragdroid::suite::engine::default_workers(apps.len());

    // Warm-up pass so no measured mode pays first-touch costs.
    let _ = run_suite_with_workers(&apps, &config, workers);

    // Interleave the modes round-robin rather than running each mode's
    // passes back to back: machine-load drift then hits every mode
    // equally instead of biasing whichever block ran during a busy spell.
    let (mut best_untraced, mut best_disabled, mut best_traced) = (None, None, None);
    for _ in 0..PASSES {
        keep_best(&mut best_untraced, (run_suite_with_workers(&apps, &config, workers), ()));
        keep_best(
            &mut best_disabled,
            run_suite_traced(&apps, &config, workers, &fd_trace::TraceConfig::off()),
        );
        keep_best(
            &mut best_traced,
            run_suite_traced(&apps, &config, workers, &fd_trace::TraceConfig::on()),
        );
    }
    // Scaling matrix: the untraced runner at fixed worker counts,
    // interleaved round-robin for the same noise-spreading reason.
    let matrix_workers = [1usize, 2, 4, 8];
    let mut best_at: Vec<Option<(SuiteRun, ())>> = matrix_workers.iter().map(|_| None).collect();
    for _ in 0..PASSES {
        for (slot, &n) in best_at.iter_mut().zip(&matrix_workers) {
            keep_best(slot, (run_suite_with_workers(&apps, &config, n), ()));
        }
    }
    let base_wall_ms = best_at[0].as_ref().expect("PASSES > 0").0.metrics.wall_ms;
    let scaling = best_at
        .iter()
        .zip(&matrix_workers)
        .map(|(slot, &n)| {
            let run = &slot.as_ref().expect("PASSES > 0").0;
            let stats = mode_stats(run);
            ScalingPoint {
                workers: n,
                speedup: if stats.wall_ms > 0 {
                    base_wall_ms as f64 / stats.wall_ms as f64
                } else {
                    0.0
                },
                utilization: if stats.wall_ms > 0 {
                    stats.busy_ms as f64 / (stats.wall_ms * n as u64) as f64
                } else {
                    0.0
                },
                wall_ms: stats.wall_ms,
                busy_ms: stats.busy_ms,
                events_per_second: stats.events_per_second,
            }
        })
        .collect();

    let backends = bench_backends();

    let (untraced_run, ()) = best_untraced.expect("PASSES > 0");
    let (disabled_run, _) = best_disabled.expect("PASSES > 0");
    let (traced_run, trace) = best_traced.expect("PASSES > 0");
    let summary = fd_trace::TraceSummary::compute(&trace);

    let untraced = mode_stats(&untraced_run);
    let disabled = mode_stats(&disabled_run);
    let traced = mode_stats(&traced_run);
    let disabled_overhead_pct = overhead_pct(&disabled, &untraced);
    let traced_overhead_pct = overhead_pct(&traced, &untraced);

    let bench = BenchSuite {
        apps: apps.len(),
        workers,
        passes: PASSES,
        disabled_overhead_pct,
        traced_overhead_pct,
        per_phase_ms: summary
            .phase_totals_us
            .iter()
            .map(|(phase, us)| (phase.clone(), *us as f64 / 1000.0))
            .collect(),
        trace_records: summary.records,
        trace_dropped: summary.dropped,
        untraced,
        disabled,
        traced,
        scaling,
        backends,
    };

    let json = serde_json::to_string_pretty(&bench).expect("bench record serializes");
    std::fs::write("BENCH_suite.json", &json).expect("write BENCH_suite.json");
    println!("{json}");
    eprintln!("wrote BENCH_suite.json");
}
