//! Coverage-vs-event-budget curves: how fast each tool converges — the
//! efficiency argument behind the paper's "detection efficiency and
//! accuracy" framing (Monkey eventually stumbles into fragments; FragDroid
//! gets there in a fraction of the events, deterministically).

use fd_baselines::{ActivityExplorer, DepthFirstExplorer, Monkey, UiExplorer};
use fragdroid::{FragDroid, FragDroidConfig};

fn main() {
    let apps = fd_bench::comparison_apps();
    let budgets = [25usize, 50, 100, 200, 400, 800, 1_600];

    println!("COVERAGE vs EVENT BUDGET (summed over {} template apps)\n", apps.len());
    println!(
        "{:>8}  {:>22}  {:>22}  {:>22}  {:>22}",
        "budget", "FragDroid (A/F)", "Activity-MBT (A/F)", "Depth-First (A/F)", "Monkey (A/F)"
    );

    for budget in budgets {
        let mut cells = Vec::new();

        // FragDroid with a capped budget.
        let config = FragDroidConfig { event_budget: budget, ..FragDroidConfig::default() };
        let (mut a, mut f) = (0, 0);
        for gen in &apps {
            let r = FragDroid::new(config.clone()).run(&gen.app, &gen.known_inputs);
            a += r.visited_activities.len();
            f += r.visited_fragments.len();
        }
        cells.push(format!("{a}/{f}"));

        for tool in [
            Box::new(ActivityExplorer { event_budget: budget }) as Box<dyn UiExplorer>,
            Box::new(DepthFirstExplorer { event_budget: budget, max_depth: 24 }),
            Box::new(Monkey::new(7, budget)),
        ] {
            let (mut a, mut f) = (0, 0);
            for gen in &apps {
                let s = tool.explore(&gen.app, &gen.known_inputs);
                a += s.visited_activities.len();
                f += s.visited_fragments.len();
            }
            cells.push(format!("{a}/{f}"));
        }

        println!(
            "{:>8}  {:>22}  {:>22}  {:>22}  {:>22}",
            budget, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("\nA = activities visited, F = FragmentManager-confirmed fragments visited.");
}
