//! Farm-coordinator baseline: split a small corpus across in-process
//! serve endpoints through `fragdroid::dispatch` and record end-to-end
//! job throughput per farm size — once over a clean transport and once
//! through the seeded chaos proxy — plus the revocation→re-grant
//! latency quantiles measured against a farm with one dead endpoint.
//! Written to `BENCH_dispatch.json` so a regression in the lease /
//! reassignment / merge hot path shows up as a diff. Throughput keys
//! are gated by `bench_compare`; the reassignment latencies are
//! documented but ungated (they track the quarantine backoff knob, not
//! code speed).
//!
//! ```text
//! cargo run --release -p fd-bench --bin bench_dispatch [apps]
//! ```

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use fd_droidsim::proto::{decode_payload, encode_frame, Envelope, FrameBuffer};
use fragdroid::{
    serve_listener, AnyStream, ChaosConfig, DispatchOptions, FragDroidConfig, ListenAddr,
    ServeListener, ServeOptions, ServeRequest, ServeResponse,
};
use serde::Serialize;

/// Farm sizes measured (serve endpoints per run).
const FARMS: [usize; 3] = [1, 2, 4];
/// Best-of passes per clean cell, to shed scheduler noise. Chaos
/// cells run once: the seeded stall schedule dominates, not the host.
const CLEAN_PASSES: usize = 2;

/// One transport's throughput for one farm size.
#[derive(Serialize)]
struct FarmStats {
    /// Corpus apps completed per wall-clock second (best pass).
    jobs_per_second: f64,
}

/// One farm size's measurements.
#[derive(Serialize)]
struct FarmRow {
    /// Serve endpoints in the farm.
    workers: usize,
    /// Shards the corpus was split into (two per endpoint).
    shards: usize,
    /// Clean TCP loopback transport.
    clean: FarmStats,
    /// The same run through the seeded chaos proxy.
    chaos: FarmStats,
    /// Chaos wall-clock tax: clean jobs/s divided by chaos jobs/s.
    chaos_slowdown: f64,
}

/// What `BENCH_dispatch.json` records.
#[derive(Serialize)]
struct BenchDispatch {
    /// Corpus apps per run.
    apps: usize,
    /// One row per farm size.
    farms: Vec<FarmRow>,
    /// Median revocation→re-grant latency against a half-dead farm,
    /// milliseconds. Ungated: it tracks the quarantine backoff knob.
    reassignment_p50_ms: u64,
    /// 95th-percentile revocation→re-grant latency, milliseconds.
    reassignment_p95_ms: u64,
    /// Reassignments observed in the half-dead-farm probe.
    reassignments: usize,
}

fn corpus(apps: usize) -> Vec<fragdroid::suite::SuiteContainer> {
    fd_appgen::corpus::corpus_217(41)
        .into_iter()
        .take(apps)
        .map(|g| (fd_apk::pack(&g.app), g.known_inputs))
        .collect()
}

fn spawn_server(workers: usize) -> (ListenAddr, std::thread::JoinHandle<()>) {
    let listener = ServeListener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_string()))
        .expect("bind a loopback bench server");
    let addr = listener.local_addr().clone();
    let options = ServeOptions { workers, ..ServeOptions::default() };
    let handle = std::thread::spawn(move || {
        serve_listener(listener, &options, &fd_trace::TraceConfig::off())
            .expect("bench server runs to clean shutdown");
    });
    (addr, handle)
}

fn shutdown(addr: &ListenAddr, handle: std::thread::JoinHandle<()>) {
    let mut stream = AnyStream::connect(addr).expect("connect for shutdown");
    stream
        .write_all(&encode_frame(&Envelope { id: u64::MAX, body: ServeRequest::Shutdown }))
        .expect("send shutdown");
    stream.flush().expect("flush shutdown");
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(payload) = frames.next_frame().expect("well-formed reply") {
            let reply: Envelope<ServeResponse> = decode_payload(&payload).expect("decodable reply");
            assert!(matches!(reply.body, ServeResponse::Bye));
            break;
        }
        let n = stream.read(&mut chunk).expect("read shutdown reply");
        assert!(n > 0, "server hung up before Bye");
        frames.push(&chunk[..n]);
    }
    handle.join().expect("bench server thread exits");
}

/// Runs one farm pass and returns the wall clock plus the summary.
fn run_pass(
    suite: &dyn fragdroid::CorpusSource,
    workers: usize,
    chaos_seed: Option<u64>,
) -> (Duration, fragdroid::DispatchSummary) {
    let farm: Vec<_> = (0..workers).map(|_| spawn_server(2)).collect();
    let mut options = DispatchOptions::new(farm.iter().map(|(addr, _)| addr.clone()).collect());
    options.shards = workers * 2;
    options.chaos = chaos_seed.map(ChaosConfig::from_seed);
    options.job_deadline = Duration::from_secs(120);
    options.job_attempts = 64;
    let started = Instant::now();
    let run = fragdroid::dispatch(
        suite,
        &FragDroidConfig::default(),
        &options,
        &fd_trace::TraceConfig::off(),
    )
    .expect("bench dispatch completes");
    let wall = started.elapsed();
    for (addr, handle) in farm {
        shutdown(&addr, handle);
    }
    (wall, run.summary)
}

/// Best-of-`PASSES` throughput for one `(farm size, transport)` cell.
fn bench_cell(
    suite: &dyn fragdroid::CorpusSource,
    workers: usize,
    chaos_seed: Option<u64>,
) -> FarmStats {
    let passes = if chaos_seed.is_some() { 1 } else { CLEAN_PASSES };
    let mut best = 0f64;
    for pass in 0..passes {
        let (wall, _) = run_pass(suite, workers, chaos_seed.map(|s| s + pass as u64));
        let jobs_per_second = suite.len() as f64 / wall.as_secs_f64().max(1e-9);
        eprintln!("  {workers} workers pass {}/{passes}: {jobs_per_second:.1} jobs/s", pass + 1);
        best = best.max(jobs_per_second);
    }
    FarmStats { jobs_per_second: best }
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Measures revocation→re-grant latency: a two-endpoint farm where one
/// endpoint is a dead port, so its shards fail fast, quarantine it, and
/// reassign to the live endpoint.
fn bench_reassignment(suite: &dyn fragdroid::CorpusSource) -> (u64, u64, usize) {
    let (live, handle) = spawn_server(2);
    let mut options =
        DispatchOptions::new(vec![ListenAddr::Tcp("127.0.0.1:1".to_string()), live.clone()]);
    options.shards = 4;
    options.heartbeat_interval = Duration::from_millis(50);
    options.quarantine_backoff = Duration::from_millis(200);
    options.job_deadline = Duration::from_secs(5);
    options.job_attempts = 2;
    let run = fragdroid::dispatch(
        suite,
        &FragDroidConfig::default(),
        &options,
        &fd_trace::TraceConfig::off(),
    )
    .expect("half-dead farm still completes");
    shutdown(&live, handle);
    let mut lats = run.summary.reassignment_latencies_ms.clone();
    lats.sort_unstable();
    (quantile(&lats, 0.50), quantile(&lats, 0.95), run.summary.reassignments)
}

fn main() {
    let apps: usize = std::env::args().nth(1).map(|a| a.parse().expect("apps parses")).unwrap_or(8);
    let suite = corpus(apps);

    let mut farms = Vec::new();
    for workers in FARMS {
        eprintln!("bench_dispatch: {workers}-endpoint farm, clean transport ...");
        let clean = bench_cell(&suite, workers, None);
        eprintln!("bench_dispatch: {workers}-endpoint farm, chaos transport ...");
        let chaos = bench_cell(&suite, workers, Some(0xD15C));
        farms.push(FarmRow {
            workers,
            shards: workers * 2,
            chaos_slowdown: clean.jobs_per_second / chaos.jobs_per_second.max(1e-9),
            clean,
            chaos,
        });
    }

    eprintln!("bench_dispatch: reassignment probe (one dead endpoint) ...");
    let (reassignment_p50_ms, reassignment_p95_ms, reassignments) = bench_reassignment(&suite);

    let bench =
        BenchDispatch { apps, farms, reassignment_p50_ms, reassignment_p95_ms, reassignments };
    let json = serde_json::to_string_pretty(&bench).expect("bench record serializes");
    std::fs::write("BENCH_dispatch.json", &json).expect("write BENCH_dispatch.json");
    println!("{json}");
    eprintln!("wrote BENCH_dispatch.json");
}
