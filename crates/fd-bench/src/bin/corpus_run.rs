//! Full-corpus exploration: FragDroid over every analyzable app of the
//! 217-app corpus, in parallel — the scalability experiment the paper's
//! §IX aims at A3E ("an average runtime of 87 minutes … not proper for
//! large-scale test"). On the simulated substrate the whole corpus takes
//! seconds, so scale is bounded by analysis logic, not the harness.

use fragdroid::{FragDroid, FragDroidConfig};
use std::time::Instant;

/// Per-app result: `(acts visited, acts sum, frags visited, frags sum, events)`.
type AppResult = (usize, usize, usize, usize, usize);

fn main() {
    let corpus = fd_appgen::corpus::corpus_217(1);
    let analyzable: Vec<_> = corpus.into_iter().filter(|g| !g.app.meta.packed).collect();
    let n = analyzable.len();

    let start = Instant::now();
    let mut results: Vec<Option<AppResult>> = Vec::new();
    results.resize_with(n, || None);

    // Parallel fan-out, one worker per chunk.
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let chunk = n.div_ceil(workers);
    crossbeam_scope(&analyzable, &mut results, chunk);

    let elapsed = start.elapsed();
    let rows: Vec<_> = results.into_iter().map(|r| r.expect("filled")).collect();
    let sum = |f: &dyn Fn(&AppResult) -> usize| -> usize {
        rows.iter().map(f).sum()
    };

    println!("CORPUS EXPLORATION: FragDroid over {n} analyzable apps\n");
    println!("activities visited / found:  {} / {}", sum(&|r| r.0), sum(&|r| r.1));
    println!("fragments visited / found:   {} / {}", sum(&|r| r.2), sum(&|r| r.3));
    println!("events injected:             {}", sum(&|r| r.4));
    println!(
        "wall time:                   {:.2}s total, {:.1}ms per app",
        elapsed.as_secs_f64(),
        elapsed.as_secs_f64() * 1000.0 / n as f64
    );
    println!(
        "\ncoverage: {:.1}% activities, {:.1}% fragments across the corpus",
        sum(&|r| r.0) as f64 / sum(&|r| r.1).max(1) as f64 * 100.0,
        sum(&|r| r.2) as f64 / sum(&|r| r.3).max(1) as f64 * 100.0,
    );
}

/// Runs FragDroid on each app, filling `results[i]` with
/// `(acts visited, acts sum, frags visited, frags sum, events)`.
fn crossbeam_scope(
    apps: &[fd_appgen::GeneratedApp],
    results: &mut [Option<AppResult>],
    chunk: usize,
) {
    crossbeam::thread::scope(|scope| {
        for (apps_chunk, results_chunk) in apps.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (gen, slot) in apps_chunk.iter().zip(results_chunk.iter_mut()) {
                    let report = FragDroid::new(FragDroidConfig::default())
                        .run(&gen.app, &gen.known_inputs);
                    let a = report.activity_coverage();
                    let f = report.fragment_coverage();
                    *slot = Some((a.visited, a.sum, f.visited, f.sum, report.events_injected));
                }
            });
        }
    })
    .expect("corpus worker panicked");
}
