//! Full-corpus exploration: FragDroid over every analyzable app of the
//! 217-app corpus, through the shared work-stealing suite runner — the
//! scalability experiment the paper's §IX aims at A3E ("an average
//! runtime of 87 minutes … not proper for large-scale test"). On the
//! simulated substrate the whole corpus takes seconds, so scale is
//! bounded by analysis logic, not the harness.

use fragdroid::FragDroidConfig;

fn main() {
    let apps = fd_bench::analyzable_corpus(1);
    let summary = fd_bench::run_corpus(&apps, &FragDroidConfig::default());
    let metrics = summary.metrics.as_ref().expect("run produces metrics");
    let n = summary.apps;

    println!("CORPUS EXPLORATION: FragDroid over {n} analyzable apps\n");
    println!("activities visited / found:  {} / {}", summary.acts_visited, summary.acts_sum);
    println!("fragments visited / found:   {} / {}", summary.frags_visited, summary.frags_sum);
    println!("events injected:             {}", summary.events);
    if summary.panicked > 0 {
        println!("panicked apps (isolated):    {}", summary.panicked);
    }
    println!(
        "wall time:                   {:.2}s total, {:.1}ms per app \
         ({} workers, {:.0}% utilized)",
        metrics.wall_ms as f64 / 1000.0,
        metrics.wall_ms as f64 / n.max(1) as f64,
        metrics.workers,
        metrics.worker_utilization * 100.0,
    );
    println!(
        "\ncoverage: {:.1}% activities, {:.1}% fragments across the corpus",
        summary.acts_visited as f64 / summary.acts_sum.max(1) as f64 * 100.0,
        summary.frags_visited as f64 / summary.frags_sum.max(1) as f64 * 100.0,
    );
}
