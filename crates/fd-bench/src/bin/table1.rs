//! Regenerates Table I: coverage of Activities and Fragments detection,
//! with a paper-vs-measured comparison.

use fd_report::table1::{
    averages, render_rejections, render_table1, run_table1_full, PAPER_TABLE1,
};

fn main() {
    let run = run_table1_full();
    let results = run.rows;
    let rows: Vec<_> = results.iter().map(|(row, _)| row.clone()).collect();

    println!("TABLE I: Coverage of Activities and Fragments Detection (measured)\n");
    println!("{}", render_table1(&rows));
    if !run.rejected.is_empty() {
        println!("{}", render_rejections(&run.rejected));
    }

    println!("Paper vs measured:\n");
    println!(
        "{:<34} {:>14} {:>14} {:>14} {:>14}",
        "Package", "A paper", "A measured", "F paper", "F measured"
    );
    for row in &rows {
        let (_, (pa_v, pa_s), (pf_v, pf_s), _) =
            PAPER_TABLE1.iter().find(|(p, ..)| *p == row.package).expect("paper row");
        println!(
            "{:<34} {:>14} {:>14} {:>14} {:>14}",
            row.package,
            format!("{pa_v}/{pa_s}"),
            format!("{}/{}", row.activities.visited, row.activities.sum),
            format!("{pf_v}/{pf_s}"),
            format!("{}/{}", row.fragments.visited, row.fragments.sum),
        );
    }

    let (a, f, v) = averages(&rows);
    println!("\nMeasured averages: activities {a:.2}% (paper 71.94%), fragments {f:.2}% (paper 66%), fragments-in-visited {v:.2}% (paper: \"more than 50%\")");
}
