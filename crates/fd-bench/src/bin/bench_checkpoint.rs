//! Checkpointing-overhead baseline: the analyzable corpus through the
//! suite runner in three modes — no journal, a journal with the default
//! fsync batch, and a journal fsync'ing every record — plus the cost of
//! a zero-work resume (replaying a complete journal instead of running
//! anything). Written to `BENCH_checkpoint.json` so a regression in the
//! journal hot path (serialize + checksum + append) shows up as a diff.
//!
//! Each mode runs `PASSES` times and keeps the fastest pass, interleaved
//! round-robin so machine-load drift hits every mode equally.
//!
//! ```text
//! cargo run --release -p fd-bench --bin bench_checkpoint
//! ```

use fragdroid::{
    run_suite_checkpointed, run_suite_with_workers, CheckpointOptions, FragDroidConfig, SuiteRun,
};
use serde::Serialize;
use std::path::PathBuf;

/// Best-of-N passes per mode.
const PASSES: usize = 5;

/// What `BENCH_checkpoint.json` records for one mode.
#[derive(Serialize)]
struct ModeStats {
    /// End-to-end suite wall time of the fastest pass, ms.
    wall_ms: u64,
    /// Summed per-worker busy time of that pass, ms.
    busy_ms: u64,
    /// Corpus apps over the suite wall time — the throughput form of
    /// `wall_ms` that CI's `bench_compare` gate watches.
    apps_per_second: f64,
    /// Per-app wall-time quantiles (nearest-rank), ms.
    app_wall_ms_p50: u64,
    app_wall_ms_p95: u64,
    app_wall_ms_max: u64,
}

#[derive(Serialize)]
struct BenchCheckpoint {
    /// Apps run (the analyzable, non-packed corpus slice).
    apps: usize,
    /// Worker threads used.
    workers: usize,
    /// Best-of-N passes kept per mode.
    passes: usize,
    /// The plain suite: no journal at all.
    plain: ModeStats,
    /// Journaled with the default fsync batch
    /// ([`fragdroid::checkpoint::DEFAULT_FSYNC_BATCH`]).
    journaled: ModeStats,
    /// Journaled with `fsync_every = 1` — the worst-case durability mode.
    journaled_fsync_each: ModeStats,
    /// `journaled.wall / plain.wall - 1`, percent: the journal's cost on
    /// the suite's wall clock in the recommended configuration.
    journaled_overhead_pct: f64,
    /// `journaled_fsync_each.wall / plain.wall - 1`, percent.
    fsync_each_overhead_pct: f64,
    /// Wall time of a zero-work resume (every app restored from the
    /// journal, nothing run), ms — the price of replaying the journal.
    resume_wall_ms: u64,
    /// Journal size after a complete run, bytes.
    journal_bytes: u64,
    /// The timing-free outcome digest, identical across all modes (the
    /// journal must never change *what* the suite finds).
    outcome_digest: String,
}

fn mode_stats(run: &SuiteRun) -> ModeStats {
    let m = &run.metrics;
    let secs = m.wall_ms as f64 / 1000.0;
    ModeStats {
        wall_ms: m.wall_ms,
        busy_ms: m.busy_ms,
        apps_per_second: if secs > 0.0 { run.outcomes.len() as f64 / secs } else { 0.0 },
        app_wall_ms_p50: m.app_wall_ms_p50,
        app_wall_ms_p95: m.app_wall_ms_p95,
        app_wall_ms_max: m.app_wall_ms_max,
    }
}

fn keep_best(best: &mut Option<SuiteRun>, candidate: SuiteRun) {
    match best {
        Some(b) if b.metrics.wall_ms <= candidate.metrics.wall_ms => {}
        _ => *best = Some(candidate),
    }
}

fn overhead_pct(mode: &ModeStats, baseline: &ModeStats) -> f64 {
    if baseline.wall_ms > 0 {
        (mode.wall_ms as f64 / baseline.wall_ms as f64 - 1.0) * 100.0
    } else {
        0.0
    }
}

/// One journaled pass to a fresh path; returns the run.
fn journaled_pass(
    apps: &[fragdroid::suite::SuiteApp],
    config: &FragDroidConfig,
    workers: usize,
    path: &PathBuf,
    fsync_every: usize,
) -> SuiteRun {
    let _ = std::fs::remove_file(path);
    let opts = CheckpointOptions::new(path.clone()).with_fsync_every(fsync_every);
    let (suite, _) = run_suite_checkpointed(
        apps,
        config,
        workers,
        &fd_trace::TraceConfig::off(),
        Some(&opts),
        0,
    )
    .expect("bench journal path is writable");
    suite.run
}

fn main() {
    let apps = fd_bench::analyzable_corpus(1);
    let config = FragDroidConfig::default();
    let workers = fragdroid::suite::engine::default_workers(apps.len());
    let dir = std::env::temp_dir().join(format!("fd-bench-checkpoint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let journal = dir.join("bench.ckpt");

    // Warm-up pass so no measured mode pays first-touch costs.
    let _ = run_suite_with_workers(&apps, &config, workers);

    let (mut best_plain, mut best_journaled, mut best_each) = (None, None, None);
    for _ in 0..PASSES {
        keep_best(&mut best_plain, run_suite_with_workers(&apps, &config, workers));
        keep_best(
            &mut best_journaled,
            journaled_pass(
                &apps,
                &config,
                workers,
                &journal,
                fragdroid::checkpoint::DEFAULT_FSYNC_BATCH,
            ),
        );
        keep_best(&mut best_each, journaled_pass(&apps, &config, workers, &journal, 1));
    }
    let plain_run = best_plain.expect("PASSES > 0");
    let journaled_run = best_journaled.expect("PASSES > 0");
    let each_run = best_each.expect("PASSES > 0");

    // Leave a complete journal on disk (the fsync-each passes ran last),
    // then measure the zero-work resume against it.
    let journal_bytes = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
    let resume_started = std::time::Instant::now();
    let opts = CheckpointOptions::new(journal.clone()).with_resume(true);
    let (resumed, _) = run_suite_checkpointed(
        &apps,
        &config,
        workers,
        &fd_trace::TraceConfig::off(),
        Some(&opts),
        0,
    )
    .expect("complete journal resumes");
    let resume_wall_ms = resume_started.elapsed().as_millis() as u64;
    assert_eq!(resumed.fresh, 0, "a complete journal leaves no fresh work");

    let plain = mode_stats(&plain_run);
    let journaled = mode_stats(&journaled_run);
    let journaled_fsync_each = mode_stats(&each_run);
    let journaled_overhead_pct = overhead_pct(&journaled, &plain);
    let fsync_each_overhead_pct = overhead_pct(&journaled_fsync_each, &plain);

    // The journal must never change what the suite finds: all four runs
    // (plain, both journaled modes, the resume) share one digest.
    let digest = plain_run.outcome_digest();
    for (name, run) in
        [("journaled", &journaled_run), ("fsync-each", &each_run), ("resumed", &resumed.run)]
    {
        assert_eq!(run.outcome_digest(), digest, "{name} run diverged from plain");
    }

    let bench = BenchCheckpoint {
        apps: apps.len(),
        workers,
        passes: PASSES,
        plain,
        journaled,
        journaled_fsync_each,
        journaled_overhead_pct,
        fsync_each_overhead_pct,
        resume_wall_ms,
        journal_bytes,
        outcome_digest: format!("{digest:#018x}"),
    };

    let json = serde_json::to_string_pretty(&bench).expect("bench record serializes");
    std::fs::write("BENCH_checkpoint.json", &json).expect("write BENCH_checkpoint.json");
    println!("{json}");
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!("wrote BENCH_checkpoint.json");
}
