//! Serve-service baseline: drive an in-process socket server with
//! concurrent submit clients and record end-to-end job throughput plus
//! submit→report latency quantiles — once over a clean transport and
//! once through the seeded chaos proxy (torn frames, shredded writes,
//! stalls, duplicated requests). Written to `BENCH_serve.json` so a
//! regression in the session/admission/journal hot path shows up as a
//! diff, and so chaos overhead (retry + backoff tax) is documented
//! rather than guessed.
//!
//! ```text
//! cargo run --release -p fd-bench --bin bench_serve [jobs-per-client]
//! ```

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

use fd_droidsim::proto::{decode_payload, encode_frame, to_hex, Envelope, FrameBuffer};
use fragdroid::{
    serve_listener, AnyStream, ChaosConfig, JobOutcome, ListenAddr, ServeListener, ServeOptions,
    ServeRequest, ServeResponse, SubmitClient,
};
use serde::Serialize;

/// Concurrent submit clients (and server workers).
const CLIENTS: usize = 4;
/// Best-of passes per transport, to shed scheduler noise.
const PASSES: usize = 3;

/// One transport's measurements.
#[derive(Serialize)]
struct TransportStats {
    /// Jobs completed per wall-clock second (best pass).
    jobs_per_second: f64,
    /// Median submit→report latency, milliseconds.
    submit_to_report_p50_ms: f64,
    /// 95th-percentile submit→report latency, milliseconds.
    submit_to_report_p95_ms: f64,
}

/// What `BENCH_serve.json` records.
#[derive(Serialize)]
struct BenchServe {
    /// Concurrent submit clients (also the server worker count).
    clients: usize,
    /// Jobs per client per pass.
    jobs_per_client: usize,
    /// Clean TCP loopback transport.
    clean: TransportStats,
    /// The same jobs through the seeded chaos proxy.
    chaos: TransportStats,
    /// Chaos wall-clock tax: clean jobs/s divided by chaos jobs/s.
    chaos_slowdown: f64,
}

fn quickstart() -> (String, BTreeMap<String, String>) {
    let gen = fd_appgen::templates::quickstart();
    (to_hex(&fd_apk::pack(&gen.app)), gen.known_inputs)
}

fn spawn_server() -> (ListenAddr, std::thread::JoinHandle<()>) {
    let listener = ServeListener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_string()))
        .expect("bind a loopback bench server");
    let addr = listener.local_addr().clone();
    let options = ServeOptions { workers: CLIENTS, ..ServeOptions::default() };
    let handle = std::thread::spawn(move || {
        serve_listener(listener, &options, &fd_trace::TraceConfig::off())
            .expect("bench server runs to clean shutdown");
    });
    (addr, handle)
}

fn shutdown(addr: &ListenAddr, handle: std::thread::JoinHandle<()>) {
    let mut stream = AnyStream::connect(addr).expect("connect for shutdown");
    stream
        .write_all(&encode_frame(&Envelope { id: u64::MAX, body: ServeRequest::Shutdown }))
        .expect("send shutdown");
    stream.flush().expect("flush shutdown");
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(payload) = frames.next_frame().expect("well-formed reply") {
            let reply: Envelope<ServeResponse> = decode_payload(&payload).expect("decodable reply");
            assert!(matches!(reply.body, ServeResponse::Bye));
            break;
        }
        let n = stream.read(&mut chunk).expect("read shutdown reply");
        assert!(n > 0, "server hung up before Bye");
        frames.push(&chunk[..n]);
    }
    handle.join().expect("bench server thread exits");
}

/// Runs one pass: `CLIENTS` threads submit `jobs_per_client` jobs each
/// against a fresh server, returning (wall, per-job latencies).
fn run_pass(jobs_per_client: usize, chaos_seed: Option<u64>) -> (Duration, Vec<Duration>) {
    let (hex, inputs) = quickstart();
    let (addr, handle) = spawn_server();
    let started = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let addr = addr.clone();
                let (hex, inputs) = (&hex, &inputs);
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(jobs_per_client);
                    for j in 0..jobs_per_client {
                        let job = (client * jobs_per_client + j + 1) as u64;
                        let mut submit = SubmitClient::new(addr.clone())
                            .with_deadline(Duration::from_secs(120))
                            .with_max_attempts(64);
                        if let Some(seed) = chaos_seed {
                            // A distinct schedule per job, derived from
                            // the pass seed so the run is reproducible.
                            submit = submit.with_chaos(ChaosConfig::from_seed(seed ^ job));
                        }
                        let t0 = Instant::now();
                        let outcome =
                            submit.submit(job, hex, inputs).expect("bench submit settles");
                        lats.push(t0.elapsed());
                        assert!(
                            matches!(outcome, JobOutcome::Report { .. }),
                            "bench job must complete with a report"
                        );
                    }
                    lats
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let wall = started.elapsed();
    shutdown(&addr, handle);
    (wall, latencies)
}

fn quantile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1_000.0
}

/// Best-of-`PASSES` measurement for one transport.
fn bench_transport(jobs_per_client: usize, chaos_seed: Option<u64>) -> TransportStats {
    let total_jobs = CLIENTS * jobs_per_client;
    let mut best: Option<(f64, Vec<Duration>)> = None;
    for pass in 0..PASSES {
        let (wall, lats) = run_pass(jobs_per_client, chaos_seed.map(|s| s + pass as u64));
        let jobs_per_second = total_jobs as f64 / wall.as_secs_f64().max(1e-9);
        eprintln!(
            "  pass {}/{PASSES}: {jobs_per_second:.1} jobs/s over {total_jobs} jobs",
            pass + 1
        );
        if best.as_ref().map_or(true, |(b, _)| jobs_per_second > *b) {
            best = Some((jobs_per_second, lats));
        }
    }
    let (jobs_per_second, mut lats) = best.expect("at least one pass ran");
    lats.sort();
    TransportStats {
        jobs_per_second,
        submit_to_report_p50_ms: quantile_ms(&lats, 0.50),
        submit_to_report_p95_ms: quantile_ms(&lats, 0.95),
    }
}

fn main() {
    let jobs_per_client: usize =
        std::env::args().nth(1).map(|a| a.parse().expect("jobs-per-client parses")).unwrap_or(6);

    eprintln!("bench_serve: clean transport ({CLIENTS} clients x {jobs_per_client} jobs) ...");
    let clean = bench_transport(jobs_per_client, None);
    eprintln!("bench_serve: chaos transport ({CLIENTS} clients x {jobs_per_client} jobs) ...");
    let chaos = bench_transport(jobs_per_client, Some(0xFD5E));

    let bench = BenchServe {
        clients: CLIENTS,
        jobs_per_client,
        chaos_slowdown: clean.jobs_per_second / chaos.jobs_per_second.max(1e-9),
        clean,
        chaos,
    };
    let json = serde_json::to_string_pretty(&bench).expect("bench record serializes");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("wrote BENCH_serve.json");
}
