//! Regenerates Table II: the sensitive-operations detection matrix.

use fd_report::table1::run_table1;
use fd_report::table2::{build_table2, render_table2};

fn main() {
    let reports: Vec<(String, fragdroid::RunReport)> =
        run_table1().into_iter().map(|(row, report)| (row.package, report)).collect();
    let t = build_table2(&reports);
    println!("TABLE II: Sensitive Operations Detection (measured)\n");
    println!("Legend: ● invoked by Activity   ◗ invoked by Fragment   ⊙ invoked by both\n");
    println!("{}", render_table2(&t));
    println!(
        "Paper reference: 46 sensitive APIs, 269 invocations, 49% fragment-associated, ≥9.6% missed by activity-level tools."
    );
}
