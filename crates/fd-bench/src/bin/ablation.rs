//! Ablations of FragDroid's design choices on the 15 evaluation apps:
//! reflection switching, the forced-start phase, and the input-dependency
//! file are each disabled in turn.

use fragdroid::{FragDroid, FragDroidConfig};

fn main() {
    // The 15 evaluation apps engineer their blocked content to resist
    // every mechanism (to match Table I), so the ablation runs on a suite
    // where each mechanism is load-bearing, plus those 15 apps.
    let mut apps: Vec<fd_appgen::GeneratedApp> = fd_appgen::templates::ablation_suite();
    apps.extend(fd_appgen::paper_apps::all_paper_apps().into_iter().map(|(_, g)| g));
    let variants: Vec<(&str, FragDroidConfig)> = vec![
        ("full", FragDroidConfig::default()),
        ("full + harvesting", FragDroidConfig::default().with_input_harvesting()),
        ("no reflection", FragDroidConfig::default().without_reflection()),
        ("no forced start", FragDroidConfig::default().without_force_start()),
        ("no input deps", FragDroidConfig::default().without_input_deps()),
        (
            "clicking only",
            FragDroidConfig::default()
                .without_reflection()
                .without_force_start()
                .without_input_deps(),
        ),
    ];

    println!("ABLATION: FragDroid design choices (ablation suite + 15 evaluation apps)\n");
    println!(
        "{:<18} {:>12} {:>12} {:>14} {:>10}",
        "Variant", "Activities", "Fragments", "API relations", "Events"
    );
    for (name, config) in variants {
        let (mut acts, mut frags, mut apis, mut events) = (0usize, 0usize, 0usize, 0usize);
        for gen in &apps {
            let report = FragDroid::new(config.clone()).run(&gen.app, &gen.known_inputs);
            acts += report.visited_activities.len();
            frags += report.visited_fragments.len();
            apis += report.api_invocations.len();
            events += report.events_injected;
        }
        println!("{name:<18} {acts:>12} {frags:>12} {apis:>14} {events:>10}");
    }
    println!("\nEach disabled mechanism should cost coverage: reflection drives hidden-fragment visits,\nforced starts rescue gated activities without required extras, input deps open login/search\ngates — and the §VIII input-harvesting extension buys UI-leaked gates on top of 'full'.");
}
