//! Regenerates the §VII-A corpus study: 217 popular apps from 27
//! categories, fragment-usage rate, packer exclusions.

use fd_appgen::corpus::corpus_217;
use fd_report::study::{corpus_study, render_study};

fn main() {
    let corpus = corpus_217(1);
    let result = corpus_study(&corpus);
    println!("CORPUS STUDY: Fragment usage among 217 popular apps (measured)\n");
    println!("{}", render_study(&result));
    println!("Paper reference: \"nearly 91% of these apps use Fragments\".");
}
