//! FragDroid vs the §IX baselines, quantified: coverage and sensitive-API
//! detection on the motivating template apps plus the 15 evaluation apps.

use fd_baselines::{ActivityExplorer, DepthFirstExplorer, FragDroidExplorer, Monkey, UiExplorer};
use fd_report::comparison::{compare_tools, render_comparison};

fn main() {
    let mut apps = fd_bench::comparison_apps();
    apps.extend(fd_appgen::paper_apps::all_paper_apps().into_iter().map(|(_, gen)| gen));

    let fragdroid = FragDroidExplorer(fragdroid::FragDroidConfig::default());
    let mbt = ActivityExplorer::default();
    let dfs = DepthFirstExplorer::default();
    let monkey = Monkey::new(7, 4_000);
    let tools: Vec<&dyn UiExplorer> = vec![&fragdroid, &mbt, &dfs, &monkey];

    let rows = compare_tools(&apps, &tools);
    println!("TOOL COMPARISON over {} apps (3 templates + 15 evaluation apps)\n", apps.len());
    println!("{}", render_comparison(&rows));
    println!(
        "Expected shape: FragDroid leads fragment coverage and fragment-attributed API detection;\nactivity-level tools conflate fragment states (Challenge 1) and miss hidden drawers (Challenge 2)."
    );
}
