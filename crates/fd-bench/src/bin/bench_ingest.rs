//! Ingestion-frontier benchmark: decode throughput over the well-formed
//! corpus and reject throughput over seeded fuzz mutants, written to
//! `BENCH_ingest.json` so a checked-cursor or error-path regression
//! shows up as a diff.
//!
//! Each measurement runs `PASSES` times and keeps the fastest pass (the
//! least-noisy estimate of the code's actual cost, same convention as
//! `bench_suite`).
//!
//! ```text
//! cargo run --release -p fd-bench --bin bench_ingest
//! ```

use bytes::Bytes;
use serde::Serialize;
use std::time::Instant;

/// Best-of-N passes per measurement.
const PASSES: usize = 5;

/// Mutants in the timed fuzz campaign.
const MUTANTS: u64 = 5_000;

/// What `BENCH_ingest.json` records for the well-formed decode path.
#[derive(Serialize)]
struct DecodeStats {
    /// Containers decoded per pass.
    containers: usize,
    /// Total packed payload per pass, bytes.
    total_bytes: usize,
    /// Fastest pass, ms.
    wall_ms: f64,
    /// Decode throughput of that pass.
    containers_per_second: f64,
    /// Byte throughput of that pass.
    mib_per_second: f64,
}

/// What `BENCH_ingest.json` records for the mutant/reject path.
#[derive(Serialize)]
struct FuzzStats {
    /// Campaign seed.
    seed: u64,
    /// Mutants executed per pass.
    mutants: u64,
    /// Mutants the pipeline accepted (identical every pass — the
    /// campaign is deterministic).
    ok: u64,
    /// Mutants refused with a typed error.
    rejected: u64,
    /// Panics observed (must be 0).
    violations: usize,
    /// The campaign's outcome digest (same-seed runs must agree).
    outcome_digest: u64,
    /// Fastest pass, ms.
    wall_ms: f64,
    /// Mutant throughput of that pass.
    mutants_per_second: f64,
}

#[derive(Serialize)]
struct BenchIngest {
    /// Best-of-N passes kept per measurement.
    passes: usize,
    /// The borrowed decoder — `ContainerView::parse` + `decode` — over
    /// every packed corpus container. This is the decode hot path:
    /// envelope validation plus full section parsing (manifest, smali,
    /// layouts, meta), with section payloads borrowed from the container
    /// buffer.
    decode: DecodeStats,
    /// The owned wrapper — `fd_apk::decompile` — over the same corpus:
    /// borrowed decode plus class-pool/layout-map indexing and resource
    /// re-interning.
    decompile: DecodeStats,
    /// A seeded `fd-fuzz` campaign over every target.
    fuzz: FuzzStats,
}

fn main() {
    // Pack the full corpus once — packer-protected apps included, since
    // rejecting them cheaply is part of the frontier's job.
    let containers: Vec<Bytes> =
        fd_appgen::corpus::corpus_217(1).iter().map(|g| fd_apk::pack(&g.app)).collect();
    let total_bytes: usize = containers.iter().map(|b| b.len()).sum();

    let stats = |wall_ms: f64| {
        let secs = wall_ms / 1000.0;
        DecodeStats {
            containers: containers.len(),
            total_bytes,
            wall_ms,
            containers_per_second: containers.len() as f64 / secs,
            mib_per_second: total_bytes as f64 / (1024.0 * 1024.0) / secs,
        }
    };

    let mut decode_best = f64::MAX;
    for _ in 0..PASSES {
        let start = Instant::now();
        for bytes in &containers {
            // Packed apps yield `Err(ApkError::Packed)` — that rejection
            // is part of the measured path, not a benchmark failure.
            let _ = fd_apk::ContainerView::parse(bytes).and_then(|v| v.decode());
        }
        decode_best = decode_best.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    let decode = stats(decode_best);

    let mut decompile_best = f64::MAX;
    for _ in 0..PASSES {
        let start = Instant::now();
        for bytes in &containers {
            let _ = fd_apk::decompile(bytes);
        }
        decompile_best = decompile_best.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    let decompile = stats(decompile_best);

    let config =
        fd_fuzz::FuzzConfig { seed: 4, mutants: MUTANTS, ..fd_fuzz::FuzzConfig::default() };
    let mut fuzz_best = f64::MAX;
    let mut report: Option<fd_fuzz::CampaignReport> = None;
    for _ in 0..PASSES {
        let start = Instant::now();
        let pass = fd_fuzz::run_campaign(&config);
        fuzz_best = fuzz_best.min(start.elapsed().as_secs_f64() * 1000.0);
        if let Some(previous) = &report {
            assert_eq!(
                pass.outcome_digest, previous.outcome_digest,
                "same-seed campaigns must agree bit-for-bit"
            );
        }
        report = Some(pass);
    }
    let report = report.expect("PASSES > 0");
    assert!(report.is_clean(), "panic-free invariant violated: {:#?}", report.violations);
    let fuzz = FuzzStats {
        seed: report.seed,
        mutants: report.mutants,
        ok: report.ok,
        rejected: report.rejected,
        violations: report.violations.len(),
        outcome_digest: report.outcome_digest,
        wall_ms: fuzz_best,
        mutants_per_second: report.mutants as f64 / (fuzz_best / 1000.0),
    };

    let bench = BenchIngest { passes: PASSES, decode, decompile, fuzz };
    let json = serde_json::to_string_pretty(&bench).expect("bench record serializes");
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    println!("{json}");
    eprintln!("wrote BENCH_ingest.json");
}
