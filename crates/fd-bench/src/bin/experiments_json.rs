//! Exports all experiment results as one JSON document — the raw data
//! behind EXPERIMENTS.md, for downstream tooling or plotting.

use fd_report::table1::{averages, run_table1};
use fd_report::table2::build_table2;
use serde_json::json;

fn main() {
    // Table I + Table II from one set of runs.
    let results = run_table1();
    let rows: Vec<_> = results.iter().map(|(r, _)| r.clone()).collect();
    let (avg_a, avg_f, avg_v) = averages(&rows);
    let reports: Vec<_> = results.into_iter().map(|(row, rep)| (row.package, rep)).collect();
    let t2 = build_table2(&reports);

    // Corpus study.
    let corpus = fd_appgen::corpus::corpus_217(1);
    let study = fd_report::study::corpus_study(&corpus);

    let doc = json!({
        "paper": {
            "title": "FragDroid: Automated User Interface Interaction with Activity and Fragment Analysis in Android Applications",
            "venue": "DSN 2018",
        },
        "corpus_study": {
            "apps": study.total,
            "fragment_users": study.fragment_users,
            "usage_pct": study.usage_pct(),
            "packed": study.packed,
            "paper_usage_pct": 91.0,
        },
        "table1": {
            "rows": rows,
            "avg_activity_pct": avg_a,
            "avg_fragment_pct": avg_f,
            "avg_fragments_in_visited_pct": avg_v,
            "paper_avg_activity_pct": 71.94,
            "paper_avg_fragment_pct": 66.0,
        },
        "table2": {
            "distinct_apis": t2.distinct_apis(),
            "total_invocations": t2.total_invocations,
            "fragment_invocations": t2.fragment_invocations,
            "fragment_share": t2.fragment_share(),
            "fragment_only_invocations": t2.fragment_only_invocations,
            "missed_by_activity_tools": t2.missed_by_activity_tools(),
            "paper": { "apis": 46, "invocations": 269, "fragment_share": 0.49, "missed_min": 0.096 },
        },
    });
    println!("{}", serde_json::to_string_pretty(&doc).expect("document serializes"));
}
