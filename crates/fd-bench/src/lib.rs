//! Benchmark harness for the FragDroid reproduction.
//!
//! The experiment *binaries* regenerate the paper's tables and figures:
//!
//! | Target | Regenerates |
//! |---|---|
//! | `cargo run -p fd-bench --bin study_corpus` | §VII-A corpus study (91% fragment usage) |
//! | `cargo run -p fd-bench --bin table1` | Table I (coverage), with paper-vs-measured deltas |
//! | `cargo run -p fd-bench --bin table2` | Table II (sensitive operations matrix) |
//! | `cargo run -p fd-bench --bin comparison` | FragDroid vs baselines (§IX, quantified) |
//! | `cargo run -p fd-bench --bin ablation` | design-choice ablations (reflection / forced start / input deps) |
//!
//! The Criterion *benches* (`cargo bench -p fd-bench`) measure the
//! substrate: static-phase throughput vs app size, full exploration
//! wall-time per tool, and APK container pack/decompile throughput.

/// Standard set of template apps used by comparison-style experiments.
pub fn comparison_apps() -> Vec<fd_appgen::GeneratedApp> {
    vec![
        fd_appgen::templates::quickstart(),
        fd_appgen::templates::nav_drawer_wallpapers(),
        fd_appgen::templates::tabbed_categories(),
    ]
}
