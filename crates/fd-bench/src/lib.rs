//! Benchmark harness for the FragDroid reproduction.
//!
//! The experiment *binaries* regenerate the paper's tables and figures:
//!
//! | Target | Regenerates |
//! |---|---|
//! | `cargo run -p fd-bench --bin study_corpus` | §VII-A corpus study (91% fragment usage) |
//! | `cargo run -p fd-bench --bin table1` | Table I (coverage), with paper-vs-measured deltas |
//! | `cargo run -p fd-bench --bin table2` | Table II (sensitive operations matrix) |
//! | `cargo run -p fd-bench --bin comparison` | FragDroid vs baselines (§IX, quantified) |
//! | `cargo run -p fd-bench --bin ablation` | design-choice ablations (reflection / forced start / input deps) |
//! | `cargo run -p fd-bench --bin corpus_run` | §IX scalability: the whole corpus through the suite runner |
//!
//! The Criterion *benches* (`cargo bench -p fd-bench`) measure the
//! substrate: static-phase throughput vs app size, full exploration
//! wall-time per tool, and APK container pack/decompile throughput.

use fragdroid::suite::SuiteApp;
use fragdroid::{run_suite_outcomes, FragDroidConfig, SuiteMetrics};

/// Standard set of template apps used by comparison-style experiments.
pub fn comparison_apps() -> Vec<fd_appgen::GeneratedApp> {
    vec![
        fd_appgen::templates::quickstart(),
        fd_appgen::templates::nav_drawer_wallpapers(),
        fd_appgen::templates::tabbed_categories(),
    ]
}

/// Corpus-wide aggregates from one suite run (what `corpus_run` prints).
#[derive(Clone, Debug, Default)]
pub struct CorpusSummary {
    /// Apps that went through the runner.
    pub apps: usize,
    /// Apps whose run panicked (isolated, not counted in the coverage
    /// sums).
    pub panicked: usize,
    /// Apps stopped by the per-app deadline (their partial coverage *is*
    /// counted).
    pub deadline_exceeded: usize,
    /// Activities visited across the corpus.
    pub acts_visited: usize,
    /// Activities found by static extraction across the corpus.
    pub acts_sum: usize,
    /// Fragments visited across the corpus.
    pub frags_visited: usize,
    /// Fragments found across the corpus.
    pub frags_sum: usize,
    /// Total UI events injected.
    pub events: usize,
    /// The run's observability record.
    pub metrics: Option<SuiteMetrics>,
}

/// Runs FragDroid over every given app on the shared work-stealing suite
/// runner and aggregates corpus-wide coverage. An empty corpus returns a
/// zeroed summary (this used to panic in the chunked harness).
pub fn run_corpus(apps: &[SuiteApp], config: &FragDroidConfig) -> CorpusSummary {
    let run = run_suite_outcomes(apps, config);
    let mut summary = CorpusSummary { apps: apps.len(), ..CorpusSummary::default() };
    for outcome in &run.outcomes {
        match outcome.report() {
            Some(report) => {
                let a = report.activity_coverage();
                let f = report.fragment_coverage();
                summary.acts_visited += a.visited;
                summary.acts_sum += a.sum;
                summary.frags_visited += f.visited;
                summary.frags_sum += f.sum;
                summary.events += report.events_injected;
                if report.deadline_exceeded {
                    summary.deadline_exceeded += 1;
                }
            }
            None => summary.panicked += 1,
        }
    }
    summary.metrics = Some(run.metrics);
    summary
}

/// The analyzable (non-packed) slice of the 217-app corpus as suite
/// inputs.
pub fn analyzable_corpus(seed: u64) -> Vec<SuiteApp> {
    fd_appgen::corpus::corpus_217(seed)
        .into_iter()
        .filter(|g| !g.app.meta.packed)
        .map(|g| (g.app, g.known_inputs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: the old harness computed `n.div_ceil(workers)` without
    /// `.max(1)` and panicked on `slice::chunks(0)` for an empty corpus.
    #[test]
    fn empty_corpus_runs_cleanly() {
        let summary = run_corpus(&[], &FragDroidConfig::default());
        assert_eq!(summary.apps, 0);
        assert_eq!(summary.panicked, 0);
        assert_eq!(summary.events, 0);
        assert!(summary.metrics.expect("metrics always present").apps.is_empty());
    }

    #[test]
    fn template_corpus_aggregates_coverage() {
        let apps: Vec<SuiteApp> =
            comparison_apps().into_iter().map(|g| (g.app, g.known_inputs)).collect();
        let summary = run_corpus(&apps, &FragDroidConfig::default());
        assert_eq!(summary.apps, 3);
        assert_eq!(summary.panicked, 0);
        assert!(summary.acts_visited > 0 && summary.acts_visited <= summary.acts_sum);
        assert!(summary.events > 0);
    }
}
