#![allow(missing_docs)] // criterion macros generate undocumented items

//! Criterion benches: APK container pack/decompile throughput (the
//! Apktool stage of the pipeline) and smali print/parse round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fd_appgen::random::{generate, GenConfig};
use fd_smali::{parser, printer};

fn bench_container(c: &mut Criterion) {
    let mut group = c.benchmark_group("container");
    for size in [8usize, 32] {
        let config = GenConfig { activities: size, fragments: size, ..GenConfig::default() };
        let gen = generate("bench.app", &config, 42);
        let bytes = fd_apk::pack(&gen.app);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("pack", size), &gen, |b, gen| {
            b.iter(|| fd_apk::pack(&gen.app));
        });
        group.bench_with_input(BenchmarkId::new("decompile", size), &bytes, |b, bytes| {
            b.iter(|| fd_apk::decompile(bytes).expect("decompiles"));
        });
    }
    group.finish();
}

fn bench_smali_roundtrip(c: &mut Criterion) {
    let gen = generate(
        "bench.app",
        &GenConfig { activities: 32, fragments: 32, ..GenConfig::default() },
        42,
    );
    let text: String =
        gen.app.classes.iter().map(printer::print_class).collect::<Vec<_>>().join("\n");
    let mut group = c.benchmark_group("smali");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("print", |b| {
        b.iter(|| gen.app.classes.iter().map(printer::print_class).collect::<Vec<_>>());
    });
    group.bench_function("parse", |b| {
        b.iter(|| parser::parse_classes(&text).expect("parses"));
    });
    group.finish();
}

criterion_group!(benches, bench_container, bench_smali_roundtrip);
criterion_main!(benches);
