#![allow(missing_docs)] // criterion macros generate undocumented items

//! Criterion benches for the static phase: AFTM construction and full
//! static extraction as app size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_appgen::random::{generate, GenConfig};

fn bench_static_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_extract");
    for size in [4usize, 16, 64] {
        let config = GenConfig { activities: size, fragments: size, ..GenConfig::default() };
        let gen = generate("bench.app", &config, 42);
        group.bench_with_input(BenchmarkId::from_parameter(size), &gen, |b, gen| {
            b.iter(|| fd_static::extract(&gen.app, &gen.known_inputs));
        });
    }
    group.finish();
}

fn bench_aftm_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("aftm_init");
    for size in [4usize, 16, 64] {
        let config = GenConfig { activities: size, fragments: size, ..GenConfig::default() };
        let gen = generate("bench.app", &config, 42);
        let acts = fd_static::effective::effective_activities(&gen.app);
        let frags = fd_static::effective::effective_fragments(&gen.app, &acts);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| fd_static::aftm_init::build_aftm(&gen.app, &acts, &frags));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_static_extraction, bench_aftm_only);
criterion_main!(benches);
