#![allow(missing_docs)] // criterion macros generate undocumented items

//! Criterion benches: full exploration wall-time per tool on a mid-size
//! generated app, plus FragDroid scaling with app size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_appgen::random::{generate, GenConfig};
use fd_baselines::{ActivityExplorer, DepthFirstExplorer, FragDroidExplorer, Monkey, UiExplorer};

fn bench_tools(c: &mut Criterion) {
    let gen = generate("bench.app", &GenConfig::default(), 7);
    let fragdroid = FragDroidExplorer(fragdroid::FragDroidConfig::default());
    let mbt = ActivityExplorer::default();
    let dfs = DepthFirstExplorer::default();
    let monkey = Monkey::new(7, 1_000);
    let tools: Vec<&dyn UiExplorer> = vec![&fragdroid, &mbt, &dfs, &monkey];

    let mut group = c.benchmark_group("explore_tool");
    for tool in tools {
        group.bench_function(tool.name(), |b| {
            b.iter(|| tool.explore(&gen.app, &gen.known_inputs));
        });
    }
    group.finish();
}

fn bench_fragdroid_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fragdroid_scaling");
    group.sample_size(10);
    for size in [4usize, 8, 16] {
        let config = GenConfig { activities: size, fragments: size, ..GenConfig::default() };
        let gen = generate("bench.app", &config, 42);
        group.bench_with_input(BenchmarkId::from_parameter(size), &gen, |b, gen| {
            b.iter(|| {
                fragdroid::FragDroid::new(fragdroid::FragDroidConfig::default())
                    .run(&gen.app, &gen.known_inputs)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tools, bench_fragdroid_scaling);
criterion_main!(benches);
