#![allow(missing_docs)] // criterion macros generate undocumented items

//! Criterion benches for AFTM graph operations and the sensitive-API
//! monitor: the inner-loop data structures of the exploration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_aftm::{Aftm, Edge, NodeId};
use fd_droidsim::{ApiMonitor, Caller, SENSITIVE_APIS};

/// Builds a model with `n` activities in a breadth-3 tree, each hosting
/// two fragments with one F→F switch.
fn model(n: usize) -> Aftm {
    let mut m = Aftm::new();
    m.set_entry("b.A0");
    for i in 1..n {
        m.add_edge(Edge::e1(format!("b.A{}", (i - 1) / 3), format!("b.A{i}")));
    }
    for i in 0..n {
        m.add_edge(Edge::e2(format!("b.A{i}"), format!("b.F{i}a")));
        m.add_edge(Edge::e2(format!("b.A{i}"), format!("b.F{i}b")));
        m.add_edge(Edge::e3(format!("b.A{i}"), format!("b.F{i}a"), format!("b.F{i}b")));
    }
    m
}

fn bench_aftm_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("aftm_ops");
    for n in [16usize, 64, 256] {
        let m = model(n);
        group.bench_with_input(BenchmarkId::new("bfs", n), &m, |b, m| {
            b.iter(|| m.bfs_from_entry());
        });
        let deep = NodeId::Fragment(format!("b.F{}b", n - 1).into());
        group.bench_with_input(BenchmarkId::new("path_to_deepest", n), &m, |b, m| {
            b.iter(|| m.path_to(&deep));
        });
        group.bench_with_input(BenchmarkId::new("rebuild", n), &n, |b, &n| {
            b.iter(|| model(n));
        });
    }
    group.finish();
}

fn bench_monitor(c: &mut Criterion) {
    c.bench_function("monitor_record_10k", |b| {
        b.iter(|| {
            let mut m = ApiMonitor::new();
            for i in 0..10_000 {
                let (g, n) = SENSITIVE_APIS[i % SENSITIVE_APIS.len()];
                let caller = if i % 3 == 0 {
                    Caller::Activity(format!("b.A{}", i % 7).into())
                } else {
                    Caller::Fragment {
                        fragment: format!("b.F{}", i % 11).into(),
                        host: format!("b.A{}", i % 7).into(),
                    }
                };
                m.record(g, n, caller);
            }
            m
        });
    });
}

criterion_group!(benches, bench_aftm_ops, bench_monitor);
criterion_main!(benches);
