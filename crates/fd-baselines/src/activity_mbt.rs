//! The activity-level model-based tester — the paper's "traditional
//! approach".
//!
//! It is deliberately a competent tool: it extracts the same static
//! information, fills inputs from the same input-dependency file, and
//! sweeps every reachable screen's widgets. Its one blindness is the
//! paper's Challenge 1: the *activity* is its unit of UI state. A click
//! that only transforms a fragment leaves the tool in "the same state",
//! so the transformed interface is never swept, hidden drawer content is
//! never enumerated, and no reflection or forced starts exist.

use crate::stats::ExplorationStats;
use crate::UiExplorer;
use fd_apk::AndroidApp;
use fd_droidsim::{Device, EventOutcome, Op};
use fd_smali::ClassName;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Configuration for the activity-level explorer.
#[derive(Clone, Debug)]
pub struct ActivityExplorer {
    /// Event budget.
    pub event_budget: usize,
}

impl Default for ActivityExplorer {
    fn default() -> Self {
        ActivityExplorer { event_budget: 40_000 }
    }
}

struct Run<'a> {
    device: Device,
    inputs: &'a fd_static::InputDependency,
    stats: ExplorationStats,
    budget: usize,
    /// Activity → ops reaching it.
    paths: BTreeMap<ClassName, Vec<Op>>,
    queue: VecDeque<(ClassName, Vec<Op>)>,
    swept: BTreeSet<ClassName>,
}

impl<'a> Run<'a> {
    fn exec(&mut self, op: &Op) -> Option<EventOutcome> {
        if self.stats.events >= self.budget {
            return None;
        }
        self.stats.events += 1;
        let result = match op {
            Op::Launch => self.device.launch(),
            Op::Click(id) => self.device.click(id),
            Op::EnterText { id, text } => {
                self.device.enter_text(id, text).map(|()| EventOutcome::NoChange)
            }
            Op::DismissOverlay => self.device.dismiss_overlay(),
            Op::Back => self.device.back(),
            Op::SwipeOpenDrawer => self.device.swipe_open_drawer(),
            Op::ForceStart(_) | Op::ReflectSwitch(_) => {
                unreachable!("activity-level tool has no such operations")
            }
        };
        let outcome = result.ok()?;
        if matches!(outcome, EventOutcome::Crashed { .. }) {
            self.stats.crashes += 1;
        }
        self.stats.observe(&self.device);
        Some(outcome)
    }

    fn discover(&mut self, ops: &[Op]) {
        if let Some(screen) = self.device.current() {
            let activity = screen.activity.clone();
            if !self.paths.contains_key(&activity) {
                self.paths.insert(activity.clone(), ops.to_vec());
                self.queue.push_back((activity, ops.to_vec()));
            }
        }
    }

    fn fill_inputs(&mut self) -> Vec<Op> {
        let fields: Vec<String> = self
            .device
            .visible_widgets()
            .into_iter()
            .filter(|w| w.kind == fd_apk::WidgetKind::EditText)
            .filter_map(|w| w.id)
            .collect();
        let mut ops = Vec::new();
        for id in fields {
            let op = Op::EnterText { id: id.clone(), text: self.inputs.value_for(&id).to_string() };
            if self.exec(&op).is_some() {
                ops.push(op);
            }
        }
        ops
    }

    fn ensure_at(&mut self, activity: &ClassName, ops: &[Op]) -> bool {
        if self.device.current().map(|s| &s.activity == activity).unwrap_or(false) {
            return true;
        }
        for op in ops {
            if self.exec(op).is_none() {
                return false;
            }
        }
        self.device.current().map(|s| &s.activity == activity).unwrap_or(false)
    }

    fn sweep(&mut self, activity: ClassName, ops: Vec<Op>) {
        if !self.swept.insert(activity.clone()) {
            return;
        }
        let fills = self.fill_inputs();
        // The widget list is captured ONCE, at activity entry — fragment
        // transformations later in the sweep do not refresh it. This is
        // the activity-as-state blindness.
        let widgets: Vec<String> = self
            .device
            .visible_widgets()
            .into_iter()
            .filter(|w| w.clickable)
            .filter_map(|w| w.id)
            .collect();
        for widget in widgets {
            if self.stats.events >= self.budget {
                return;
            }
            if !self.ensure_at(&activity, &ops) {
                return;
            }
            for op in fills.clone() {
                self.exec(&op);
            }
            match self.exec(&Op::Click(widget.clone())) {
                None => return,
                Some(EventOutcome::OverlayShown) => {
                    self.exec(&Op::DismissOverlay);
                }
                Some(EventOutcome::UiChanged { from, to }) => {
                    if from.activity != to.activity {
                        let mut path = ops.clone();
                        path.extend(fills.iter().cloned());
                        path.push(Op::Click(widget));
                        self.discover(&path);
                    }
                    // Same activity → "same state": nothing new to do.
                }
                Some(_) => {}
            }
        }
    }
}

impl UiExplorer for ActivityExplorer {
    fn name(&self) -> &'static str {
        "Activity-MBT"
    }

    fn explore(
        &self,
        app: &AndroidApp,
        provided_inputs: &BTreeMap<String, String>,
    ) -> ExplorationStats {
        let info = fd_static::extract(app, provided_inputs);
        let mut run = Run {
            device: Device::new(app.clone()),
            inputs: &info.input_dep,
            stats: ExplorationStats::default(),
            budget: self.event_budget,
            paths: BTreeMap::new(),
            queue: VecDeque::new(),
            swept: BTreeSet::new(),
        };
        let entry_ops = vec![Op::Launch];
        if run.exec(&Op::Launch).is_some() {
            run.discover(&entry_ops);
        }
        while let Some((activity, ops)) = run.queue.pop_front() {
            if run.stats.events >= run.budget {
                break;
            }
            if !run.ensure_at(&activity, &ops) {
                continue;
            }
            run.sweep(activity, ops);
        }
        run.stats.finish(&run.device);
        run.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_appgen::templates;

    #[test]
    fn misses_drawer_fragments_fragdroid_finds() {
        let gen = templates::nav_drawer_wallpapers();
        let stats = ActivityExplorer::default().explore(&gen.app, &gen.known_inputs);
        // It sees the initial fragment attach (app code runs) but never
        // reaches the drawer-only FavoritesFragment: opening the drawer
        // does not change the activity, so the revealed menu is never in
        // its widget list.
        assert!(!stats.visited_fragments.contains("fig2.wallpapers.FavoritesFragment"));
    }

    #[test]
    fn still_walks_activity_chains() {
        let gen = templates::quickstart();
        let stats = ActivityExplorer::default().explore(&gen.app, &gen.known_inputs);
        assert!(stats.visited_activities.contains("com.example.quickstart.Settings"));
        // Gate with known input works (it uses the same input file).
        assert!(stats.visited_activities.contains("com.example.quickstart.Account"));
    }
}
