//! The Monkey: Google's random input exerciser ("the original approach of
//! UI testing is to inject random test cases into a running app").

use crate::stats::ExplorationStats;
use crate::UiExplorer;
use fd_apk::AndroidApp;
use fd_droidsim::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The event mix: cumulative probability thresholds over one uniform
/// roll, mirroring Monkey's `--pct-*` flags.
#[derive(Clone, Copy, Debug)]
pub struct MonkeyMix {
    /// Probability of a back press.
    pub p_back: f64,
    /// Probability of an edge swipe (drawer gesture).
    pub p_swipe: f64,
    /// Probability of random text entry.
    pub p_text: f64,
    // The remainder is random clicks.
}

impl Default for MonkeyMix {
    fn default() -> Self {
        MonkeyMix { p_back: 0.05, p_swipe: 0.05, p_text: 0.10 }
    }
}

/// A seeded random event injector.
#[derive(Clone, Debug)]
pub struct Monkey {
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// Number of events to inject.
    pub events: usize,
    /// The event mix.
    pub mix: MonkeyMix,
}

impl Monkey {
    /// A monkey with the given seed, event budget and the default mix.
    pub fn new(seed: u64, events: usize) -> Self {
        Monkey { seed, events, mix: MonkeyMix::default() }
    }

    /// Overrides the event mix (builder style).
    pub fn with_mix(mut self, mix: MonkeyMix) -> Self {
        self.mix = mix;
        self
    }
}

impl UiExplorer for Monkey {
    fn name(&self) -> &'static str {
        "Monkey"
    }

    fn explore(
        &self,
        app: &AndroidApp,
        _provided_inputs: &BTreeMap<String, String>,
    ) -> ExplorationStats {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut device = Device::new(app.clone());
        let mut stats = ExplorationStats::default();

        for _ in 0..self.events {
            if device.is_crashed() || device.current().is_none() {
                if device.launch().is_err() {
                    break;
                }
                stats.events += 1;
                stats.observe(&device);
                continue;
            }
            stats.events += 1;
            let roll: f64 = rng.gen();
            let outcome = if roll < self.mix.p_back {
                device.back()
            } else if roll < self.mix.p_back + self.mix.p_swipe {
                device.swipe_open_drawer()
            } else if roll < self.mix.p_back + self.mix.p_swipe + self.mix.p_text {
                // Random text into a random input widget.
                let inputs: Vec<String> = device
                    .visible_widgets()
                    .into_iter()
                    .filter(|w| w.kind == fd_apk::WidgetKind::EditText)
                    .filter_map(|w| w.id)
                    .collect();
                if inputs.is_empty() {
                    continue;
                }
                let id = &inputs[rng.gen_range(0..inputs.len())];
                let junk: String = (0..6).map(|_| rng.gen_range(b'a'..=b'z') as char).collect();
                device.enter_text(id, &junk).map(|()| fd_droidsim::EventOutcome::NoChange)
            } else {
                // Random click — including on the overlay-blocked screen,
                // where the only sensible move is dismissing it.
                if device.current().map(|s| s.overlay.is_some()).unwrap_or(false) {
                    device.dismiss_overlay()
                } else {
                    let clickables: Vec<String> = device
                        .visible_widgets()
                        .into_iter()
                        .filter(|w| w.clickable)
                        .filter_map(|w| w.id)
                        .collect();
                    if clickables.is_empty() {
                        device.back()
                    } else {
                        device.click(&clickables[rng.gen_range(0..clickables.len())])
                    }
                }
            };
            if matches!(outcome, Ok(fd_droidsim::EventOutcome::Crashed { .. })) {
                stats.crashes += 1;
            }
            stats.observe(&device);
        }
        stats.finish(&device);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_appgen::templates;

    #[test]
    fn monkey_is_deterministic_per_seed() {
        let gen = templates::quickstart();
        let m = Monkey::new(7, 300);
        let a = m.explore(&gen.app, &gen.known_inputs);
        let b = m.explore(&gen.app, &gen.known_inputs);
        assert_eq!(a, b);
    }

    #[test]
    fn monkey_explores_something_but_not_gated_content() {
        let gen = templates::quickstart();
        let stats = Monkey::new(7, 800).explore(&gen.app, &gen.known_inputs);
        assert!(!stats.visited_activities.is_empty());
        // The PIN gate needs "pin-1234"; random six-letter strings never
        // produce it, so Account stays unvisited.
        assert!(!stats.visited_activities.contains("com.example.quickstart.Account"));
    }

    #[test]
    fn different_seeds_can_differ() {
        let gen = templates::quickstart();
        let a = Monkey::new(1, 200).explore(&gen.app, &gen.known_inputs);
        let b = Monkey::new(2, 200).explore(&gen.app, &gen.known_inputs);
        // Not guaranteed in general, but with 200 random events on this
        // app the traces diverge immediately.
        assert!(a.events == b.events);
    }
}

#[cfg(test)]
mod reliability_tests {
    use super::*;
    use crate::UiExplorer;
    use fd_appgen::templates;

    /// The paper's §I point about random testing: Monkey "can occasionally
    /// reach these Fragments, [but] they are not programmable and cannot
    /// be controlled accurately". With a tight budget the hidden drawer
    /// fragment is a coin flip across seeds; FragDroid finds it every time.
    #[test]
    fn monkey_is_unreliable_on_hidden_fragments_where_fragdroid_is_not() {
        let gen = templates::nav_drawer_wallpapers();
        let target = "fig2.wallpapers.FavoritesFragment";

        let budget = 12;
        let mut found = 0;
        let seeds = 20;
        for seed in 0..seeds {
            let stats = Monkey::new(seed, budget).explore(&gen.app, &gen.known_inputs);
            if stats.visited_fragments.contains(target) {
                found += 1;
            }
        }
        assert!(
            found < seeds,
            "with {budget} events, at least one seed should miss the drawer fragment"
        );

        // FragDroid's systematic sweep needs more events than the lucky
        // Monkey seeds, but succeeds on EVERY run with a modest budget.
        let fd = fragdroid::FragDroid::new(fragdroid::FragDroidConfig {
            event_budget: 120,
            ..fragdroid::FragDroidConfig::default()
        })
        .run(&gen.app, &gen.known_inputs);
        assert!(
            fd.visited_fragments.contains(target),
            "FragDroid must find the drawer fragment deterministically"
        );
    }
}

#[cfg(test)]
mod mix_tests {
    use super::*;
    use crate::UiExplorer;
    use fd_appgen::templates;

    #[test]
    fn event_mix_changes_what_the_monkey_can_reach() {
        let gen = templates::nav_drawer_wallpapers();
        // A swipe-only monkey opens the drawer forever but never clicks a
        // menu item, so the drawer-only fragment stays unvisited…
        let swipe_only = Monkey::new(3, 40)
            .with_mix(MonkeyMix { p_back: 0.0, p_swipe: 1.0, p_text: 0.0 })
            .explore(&gen.app, &gen.known_inputs);
        assert!(!swipe_only.visited_fragments.contains("fig2.wallpapers.FavoritesFragment"));
        // …while the default mix (mostly clicks) reaches it with the same
        // seed and budget.
        let default_mix = Monkey::new(3, 40).explore(&gen.app, &gen.known_inputs);
        assert!(default_mix.visited_fragments.contains("fig2.wallpapers.FavoritesFragment"));
    }
}
