//! Baseline explorers the paper compares against (§I, §IX):
//!
//! * [`Monkey`] — Google's random input exerciser: uniformly random
//!   clicks, swipes, text and back presses;
//! * [`ActivityExplorer`] — a TrimDroid-style model-based tester that
//!   "treats the Activity as the basic unit of UI interactions": it sweeps
//!   each *activity* once and cannot tell fragment-level states apart;
//! * [`DepthFirstExplorer`] — an A3E-style systematic depth-first
//!   exploration that navigates with the back button instead of restarts.
//!
//! All of them run on the same simulated device as FragDroid and report
//! the same [`ExplorationStats`], so coverage and sensitive-API detection
//! are directly comparable.
//!
//! # Example
//!
//! ```
//! use fd_baselines::{Monkey, UiExplorer};
//!
//! let gen = fd_appgen::templates::quickstart();
//! let stats = Monkey::new(7, 200).explore(&gen.app, &gen.known_inputs);
//! assert!(!stats.visited_activities.is_empty());
//! assert_eq!(stats.events, 200);
//! ```

pub mod activity_mbt;
pub mod depth_first;
pub mod monkey;
pub mod stats;
pub mod targeted;

pub use activity_mbt::ActivityExplorer;
pub use depth_first::DepthFirstExplorer;
pub use monkey::Monkey;
pub use stats::ExplorationStats;
pub use targeted::TargetedExplorer;

use fd_apk::AndroidApp;
use std::collections::BTreeMap;

/// A UI exploration tool that can be compared against FragDroid.
pub trait UiExplorer {
    /// Short display name for reports.
    fn name(&self) -> &'static str;

    /// Explores `app` and reports what was reached and observed.
    fn explore(
        &self,
        app: &AndroidApp,
        provided_inputs: &BTreeMap<String, String>,
    ) -> ExplorationStats;
}

/// FragDroid itself, adapted to the comparison interface.
pub struct FragDroidExplorer(pub fragdroid::FragDroidConfig);

impl UiExplorer for FragDroidExplorer {
    fn name(&self) -> &'static str {
        "FragDroid"
    }

    fn explore(
        &self,
        app: &AndroidApp,
        provided_inputs: &BTreeMap<String, String>,
    ) -> ExplorationStats {
        let report = fragdroid::FragDroid::new(self.0.clone()).run(app, provided_inputs);
        ExplorationStats {
            visited_activities: report.visited_activities.clone(),
            visited_fragments: report.visited_fragments.clone(),
            api_invocations: report.api_invocations.clone(),
            events: report.events_injected,
            crashes: report.crashes,
        }
    }
}
