//! Shared result type for all explorers.

use fd_droidsim::{ApiInvocation, Device};
use fd_smali::ClassName;
use std::collections::BTreeSet;

/// What an exploration run reached and observed. Fragment visits are
/// FragmentManager-confirmed, exactly as FragDroid counts them, so the
/// comparison is apples-to-apples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExplorationStats {
    /// Activities whose UI was reached.
    pub visited_activities: BTreeSet<ClassName>,
    /// Fragments confirmed through the FragmentManager.
    pub visited_fragments: BTreeSet<ClassName>,
    /// Sensitive-API invocations recorded during the run.
    pub api_invocations: Vec<ApiInvocation>,
    /// Events injected.
    pub events: usize,
    /// Force-closes observed.
    pub crashes: usize,
}

impl ExplorationStats {
    /// Folds the device's current screen into the visited sets. Call after
    /// every injected event.
    pub fn observe(&mut self, device: &Device) {
        if let Some(screen) = device.current() {
            self.visited_activities.insert(screen.activity.clone());
            for (_, fragment) in screen.manager_fragments() {
                self.visited_fragments.insert(fragment.clone());
            }
        }
    }

    /// Copies the monitor log out of the device at the end of a run.
    pub fn finish(&mut self, device: &Device) {
        self.api_invocations = device.invocations().cloned().collect();
    }

    /// `(total, fragment_associated)` sensitive-API relation counts.
    pub fn api_counts(&self) -> (usize, usize) {
        let frag = self.api_invocations.iter().filter(|i| i.caller.is_fragment()).count();
        (self.api_invocations.len(), frag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_appgen::templates;

    #[test]
    fn observe_collects_activity_and_manager_fragments() {
        let gen = templates::quickstart();
        let mut device = Device::new(gen.app);
        device.launch().unwrap();
        let mut stats = ExplorationStats::default();
        stats.observe(&device);
        stats.finish(&device);
        assert_eq!(stats.visited_activities.len(), 1);
        assert_eq!(stats.visited_fragments.len(), 1, "initial HomeFragment");
        assert!(!stats.api_invocations.is_empty(), "onCreate APIs recorded");
    }
}
