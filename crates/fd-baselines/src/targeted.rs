//! A SmartDroid-style targeted explorer.
//!
//! SmartDroid (§IX) "creates an Activity switch path that leads to the
//! sensitive API calls" statically, then dynamically "traverses the view
//! tree … while waiting for each UI element to arise", *blocking* any
//! activity start that leaves the switch path. This baseline does the
//! same on the simulated device: static extraction finds the activities
//! whose code (or whose dependent fragments' code) contains sensitive
//! call sites, the AFTM provides the switch paths, and exploration only
//! follows transitions that stay on some path — going back immediately
//! when a click strays off it.

use crate::stats::ExplorationStats;
use crate::UiExplorer;
use fd_aftm::NodeId;
use fd_apk::AndroidApp;
use fd_droidsim::{Device, EventOutcome};
use fd_smali::{visit, ClassName, Stmt};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Configuration for the targeted explorer.
#[derive(Clone, Debug)]
pub struct TargetedExplorer {
    /// Event budget.
    pub event_budget: usize,
}

impl Default for TargetedExplorer {
    fn default() -> Self {
        TargetedExplorer { event_budget: 40_000 }
    }
}

impl TargetedExplorer {
    /// The activities that host sensitive call sites: their own classes
    /// (plus inner classes) or any dependent fragment's class contains an
    /// `invoke-api` of a catalog function.
    pub fn target_activities(
        app: &AndroidApp,
        info: &fd_static::StaticInfo,
    ) -> BTreeSet<ClassName> {
        let has_site = |class: &str| {
            app.classes.with_inner_classes(class).iter().any(|c| {
                visit::any_stmt(c, |s| {
                    matches!(s, Stmt::InvokeApi { group, name }
                        if fd_droidsim::monitor::is_sensitive(group, name))
                })
            })
        };
        info.activities
            .iter()
            .filter(|a| {
                has_site(a.as_str())
                    || info
                        .af_dependency
                        .get(*a)
                        .map(|frags| frags.iter().any(|f| has_site(f.as_str())))
                        .unwrap_or(false)
            })
            .cloned()
            .collect()
    }

    /// The activities on any AFTM switch path from the entry to a target.
    fn on_path_activities(
        info: &fd_static::StaticInfo,
        targets: &BTreeSet<ClassName>,
    ) -> BTreeSet<ClassName> {
        let mut on_path = BTreeSet::new();
        for target in targets {
            let node = NodeId::Activity(target.clone());
            if let Some(path) = info.aftm.path_to(&node) {
                if let Some(entry) = info.aftm.entry() {
                    on_path.insert(entry.clone());
                }
                for edge in path {
                    for n in [&edge.from, &edge.to] {
                        if let NodeId::Activity(a) = n {
                            on_path.insert(a.clone());
                        }
                    }
                }
            }
        }
        on_path
    }
}

impl UiExplorer for TargetedExplorer {
    fn name(&self) -> &'static str {
        "Targeted (SmartDroid-style)"
    }

    fn explore(
        &self,
        app: &AndroidApp,
        provided_inputs: &BTreeMap<String, String>,
    ) -> ExplorationStats {
        let info = fd_static::extract(app, provided_inputs);
        let targets = Self::target_activities(app, &info);
        let on_path = Self::on_path_activities(&info, &targets);

        let mut device = Device::new(app.clone());
        let mut stats = ExplorationStats::default();
        let mut swept: BTreeSet<ClassName> = BTreeSet::new();
        let mut queue: VecDeque<ClassName> = VecDeque::new();

        stats.events += 1;
        if device.launch().is_err() {
            return stats;
        }
        stats.observe(&device);
        if let Some(screen) = device.current() {
            queue.push_back(screen.activity.clone());
        }

        // The sweep clicks the current activity's widgets; off-path
        // transitions are "blocked" by immediately backing out.
        while let Some(activity) = queue.pop_front() {
            if stats.events >= self.event_budget {
                break;
            }
            if !swept.insert(activity.clone()) {
                continue;
            }
            // (Re)launch and navigate is overkill for this baseline: the
            // app restarts and the sweep only runs on the entry-reachable
            // frontier, like SmartDroid's per-path traversal.
            if device.current().map(|s| s.activity != activity).unwrap_or(true) {
                stats.events += 1;
                if device.launch().is_err() {
                    break;
                }
                stats.observe(&device);
                if device.current().map(|s| s.activity != activity).unwrap_or(true) {
                    continue; // not directly reachable from entry: skip
                }
            }
            let widgets: Vec<String> = device
                .visible_widgets()
                .into_iter()
                .filter(|w| w.clickable)
                .filter_map(|w| w.id)
                .collect();
            for widget in widgets {
                if stats.events >= self.event_budget {
                    break;
                }
                stats.events += 1;
                let outcome = device.click(&widget);
                stats.observe(&device);
                match outcome {
                    Ok(EventOutcome::UiChanged { from, to }) if from.activity != to.activity => {
                        if on_path.contains(to.activity.as_str()) {
                            queue.push_back(to.activity.clone());
                        }
                        // Either way, return to keep sweeping this screen
                        // (the "block the call" behaviour for off-path
                        // starts; on-path ones are revisited from the
                        // queue).
                        stats.events += 1;
                        let _ = device.back();
                        stats.observe(&device);
                    }
                    Ok(EventOutcome::OverlayShown) => {
                        stats.events += 1;
                        let _ = device.dismiss_overlay();
                        stats.observe(&device);
                    }
                    Ok(EventOutcome::Crashed { .. }) => {
                        stats.crashes += 1;
                        stats.events += 1;
                        if device.launch().is_err() {
                            break;
                        }
                        stats.observe(&device);
                    }
                    _ => {}
                }
            }
        }
        stats.finish(&device);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_appgen::{templates, ActivitySpec, AppBuilder, FragmentSpec};

    #[test]
    fn finds_target_activities_including_fragment_sites() {
        let gen = templates::quickstart();
        let info = fd_static::extract(&gen.app, &gen.known_inputs);
        let targets = TargetedExplorer::target_activities(&gen.app, &info);
        // Main calls phone/getDeviceId itself AND hosts fragments with
        // sensitive sites.
        assert!(targets.contains("com.example.quickstart.Main"));
        // Settings has no sensitive site.
        assert!(!targets.contains("com.example.quickstart.Settings"));
    }

    #[test]
    fn stays_on_switch_paths() {
        // Main → Hot (sensitive) and Main → Cold (clean): the targeted
        // explorer must reach Hot; Cold is off-path and only brushed.
        let gen = AppBuilder::new("t.smart")
            .activity(ActivitySpec::new("Main").launcher().button_to("Hot").button_to("Cold"))
            .activity(
                ActivitySpec::new("Hot")
                    .api("location", "getAllProviders")
                    .initial_fragment("Leaky"),
            )
            .activity(ActivitySpec::new("Cold"))
            .fragment(FragmentSpec::new("Leaky").api("phone", "getDeviceId"))
            .build();
        let stats = TargetedExplorer::default().explore(&gen.app, &gen.known_inputs);
        assert!(stats.visited_activities.contains("t.smart.Hot"));
        // The sensitive APIs behind the target fired.
        assert!(stats.api_invocations.iter().any(|i| i.group == "location"));
        assert!(stats.api_invocations.iter().any(|i| i.group == "phone"));
    }
}
