//! An A3E-style depth-first explorer.
//!
//! It "attempts to mimic user interactions to drive execution in a more
//! systematic, albeit slower, way": from the current screen it clicks the
//! first unexplored widget, recurses into whatever appears, and uses the
//! back button to return. Like A3E it is activity-level: exploration
//! state is tracked per activity, so fragment-level states are conflated.

use crate::stats::ExplorationStats;
use crate::UiExplorer;
use fd_apk::AndroidApp;
use fd_droidsim::{Device, EventOutcome};
use fd_smali::ClassName;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration for the depth-first explorer.
#[derive(Clone, Debug)]
pub struct DepthFirstExplorer {
    /// Event budget.
    pub event_budget: usize,
    /// Maximum recursion depth.
    pub max_depth: usize,
}

impl Default for DepthFirstExplorer {
    fn default() -> Self {
        DepthFirstExplorer { event_budget: 40_000, max_depth: 24 }
    }
}

struct Run {
    device: Device,
    stats: ExplorationStats,
    budget: usize,
    max_depth: usize,
    /// Widgets already clicked, per activity (activity-level state).
    clicked: BTreeMap<ClassName, BTreeSet<String>>,
}

impl Run {
    fn dfs(&mut self, depth: usize) {
        if depth >= self.max_depth {
            return;
        }
        loop {
            if self.stats.events >= self.budget {
                return;
            }
            let Some(screen) = self.device.current() else { return };
            let activity = screen.activity.clone();
            if screen.overlay.is_some() {
                self.stats.events += 1;
                let _ = self.device.dismiss_overlay();
                self.stats.observe(&self.device);
                continue;
            }
            let next = screen
                .visible_widgets()
                .into_iter()
                .filter(|w| w.clickable)
                .filter_map(|w| w.id)
                .find(|id| {
                    !self.clicked.get(&activity).map(|set| set.contains(id)).unwrap_or(false)
                });
            let Some(widget) = next else { return };
            self.clicked.entry(activity.clone()).or_default().insert(widget.clone());

            self.stats.events += 1;
            let outcome = self.device.click(&widget);
            self.stats.observe(&self.device);
            match outcome {
                Ok(EventOutcome::UiChanged { from, to }) => {
                    if from.activity != to.activity {
                        // Descend into the new activity, then come back.
                        self.dfs(depth + 1);
                        if self.stats.events >= self.budget {
                            return;
                        }
                        self.stats.events += 1;
                        let _ = self.device.back();
                        self.stats.observe(&self.device);
                    }
                    // Fragment-level change: same activity, keep clicking.
                }
                Ok(EventOutcome::Crashed { .. }) => {
                    self.stats.crashes += 1;
                    self.stats.events += 1;
                    if self.device.launch().is_err() {
                        return;
                    }
                    self.stats.observe(&self.device);
                    if depth > 0 {
                        return; // lost our position in the stack
                    }
                }
                Ok(EventOutcome::OverlayShown) => {
                    self.stats.events += 1;
                    let _ = self.device.dismiss_overlay();
                    self.stats.observe(&self.device);
                }
                Ok(EventOutcome::Finished) => {
                    if self.device.current().is_none() {
                        self.stats.events += 1;
                        if self.device.launch().is_err() {
                            return;
                        }
                        self.stats.observe(&self.device);
                    }
                    if depth > 0 {
                        return;
                    }
                }
                Ok(EventOutcome::NoChange) | Err(_) => {}
            }
        }
    }
}

impl UiExplorer for DepthFirstExplorer {
    fn name(&self) -> &'static str {
        "Depth-First"
    }

    fn explore(
        &self,
        app: &AndroidApp,
        _provided_inputs: &BTreeMap<String, String>,
    ) -> ExplorationStats {
        let mut run = Run {
            device: Device::new(app.clone()),
            stats: ExplorationStats::default(),
            budget: self.event_budget,
            max_depth: self.max_depth,
            clicked: BTreeMap::new(),
        };
        run.stats.events += 1;
        if run.device.launch().is_ok() {
            run.stats.observe(&run.device);
            run.dfs(0);
        }
        run.stats.finish(&run.device);
        run.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_appgen::templates;

    #[test]
    fn dfs_walks_activity_chain() {
        let gen = templates::quickstart();
        let stats = DepthFirstExplorer::default().explore(&gen.app, &gen.known_inputs);
        assert!(stats.visited_activities.contains("com.example.quickstart.Settings"));
        // No input generation at all: the PIN gate is never passed.
        assert!(!stats.visited_activities.contains("com.example.quickstart.Account"));
    }

    #[test]
    fn dfs_clicks_tabs_but_conflates_fragment_states() {
        let gen = templates::tabbed_categories();
        let stats = DepthFirstExplorer::default().explore(&gen.app, &gen.known_inputs);
        // Tabs are visible widgets, so both tab fragments get attached...
        assert!(!stats.visited_fragments.is_empty());
        // ...but exploration stays activity-keyed.
        assert!(stats.visited_activities.contains("fig1.manga.Reader"));
    }
}
