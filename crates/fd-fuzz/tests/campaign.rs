//! The PR's acceptance gates: a 10,000-mutant campaign with zero
//! panics, and bit-for-bit same-seed reproducibility.

use fd_fuzz::{run_campaign, CampaignReport, FuzzConfig, Target};

#[test]
fn ten_thousand_mutants_zero_panics() {
    let report = run_campaign(&FuzzConfig { seed: 1, mutants: 10_000, ..FuzzConfig::default() });
    assert!(report.is_clean(), "panic-free invariant violated: {:#?}", report.violations);
    assert_eq!(report.executed, 10_000);
    assert_eq!(report.ok + report.rejected, 10_000);
    assert!(report.rejected > 0, "the mutators do break inputs");
    for target in Target::ALL {
        let stats = report.per_target.get(target.name()).expect("every target ran");
        let floor = 10_000 / Target::ALL.len() as u64;
        assert!(stats.executed >= floor, "{} ran {} mutants", target.name(), stats.executed);
        assert_eq!(stats.violations, 0);
    }
}

#[test]
fn same_seed_campaigns_are_bit_for_bit_identical() {
    let config = FuzzConfig { seed: 4, mutants: 1_000, ..FuzzConfig::default() };
    let first = run_campaign(&config);
    let second = run_campaign(&config);
    assert_eq!(first.to_json().unwrap(), second.to_json().unwrap());
    assert_eq!(first.outcome_digest, second.outcome_digest);
    // The JSON form survives a parse round-trip unchanged.
    let parsed = CampaignReport::from_json(&first.to_json().unwrap()).unwrap();
    assert_eq!(parsed, first);
    // A different seed explores a different sequence.
    let other = run_campaign(&FuzzConfig { seed: 5, ..config });
    assert_ne!(first.outcome_digest, other.outcome_digest);
}

#[test]
fn clean_campaign_writes_no_reproducers() {
    let dir = std::env::temp_dir().join(format!("fd-fuzz-clean-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let report = run_campaign(&FuzzConfig {
        seed: 11,
        mutants: 300,
        out_dir: Some(dir.clone()),
        ..FuzzConfig::default()
    });
    assert!(report.is_clean());
    let entries = std::fs::read_dir(&dir).map(|it| it.count()).unwrap_or(0);
    assert_eq!(entries, 0, "no violations, no reproducer files");
    let _ = std::fs::remove_dir_all(&dir);
}
