//! The campaign driver: run mutants, demand Ok-or-typed-Err, minimize
//! and persist anything that panics.
//!
//! A campaign is fully determined by its [`FuzzConfig`]: the seed drives
//! one `StdRng`, targets rotate round-robin over the case index, and the
//! per-case outcomes fold into [`CampaignReport::outcome_digest`] — two
//! same-seed campaigns must produce bit-for-bit identical reports
//! (asserted in this crate's tests and gated in CI).

use crate::mutate;
use bytes::Bytes;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Which frontier a mutant attacks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Target {
    /// Byte-level mutants of packed FAPK containers → [`fd_apk::decompile`]
    /// (and [`fd_static::extract`] when the mutant still decodes).
    Container,
    /// Token/line-level mutants of smali text → `fd_smali::parser`.
    Smali,
    /// Schema-aware mutants of the manifest/layouts/meta JSON, spliced
    /// into an otherwise-valid container → the decoder's semantic layer.
    Json,
    /// Byte-level mutants of encoded device-agent request streams →
    /// [`fd_droidsim::proto::decode_request_stream`] (the length-prefixed
    /// framing plus the request JSON the subprocess backend speaks).
    Protocol,
    /// Byte-level mutants of FDCS corpus shard files →
    /// [`fd_apk::corpus::parse_shard`] (the index/offset-table decoder
    /// the lazy corpus reader trusts).
    Corpus,
    /// Byte-level mutants of `fragdroid serve` frame streams, both
    /// directions (request sessions and reply streams) → the serve
    /// frame decoder, with the whole-buffer ≡ byte-at-a-time
    /// differential invariant.
    Serve,
    /// Byte-level mutants of dispatch coordinator journals →
    /// [`fragdroid::parse_dispatch_journal`] (the lease/completion log
    /// `fragdroid dispatch --resume` trusts), with the whole-buffer ≡
    /// byte-at-a-time line-scan differential invariant.
    Dispatch,
}

impl Target {
    /// Every target, in campaign rotation order.
    pub const ALL: [Target; 7] = [
        Target::Container,
        Target::Smali,
        Target::Json,
        Target::Protocol,
        Target::Corpus,
        Target::Serve,
        Target::Dispatch,
    ];

    /// Stable lowercase name (CLI `--target` values, report keys).
    pub fn name(&self) -> &'static str {
        match self {
            Target::Container => "container",
            Target::Smali => "smali",
            Target::Json => "json",
            Target::Protocol => "protocol",
            Target::Corpus => "corpus",
            Target::Serve => "serve",
            Target::Dispatch => "dispatch",
        }
    }

    /// Parses a CLI `--target` value.
    pub fn parse(s: &str) -> Option<Target> {
        Target::ALL.into_iter().find(|t| t.name() == s)
    }
}

/// A fuzz campaign's parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Seed of the single `StdRng` every mutation draws from.
    pub seed: u64,
    /// How many mutants to run.
    pub mutants: u64,
    /// Frontiers to rotate over (round-robin by case index).
    pub targets: Vec<Target>,
    /// Where to write minimized reproducers; `None` keeps them in-memory
    /// only (the report still carries the minimized bytes' length).
    pub out_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { seed: 1, mutants: 1_000, targets: Target::ALL.to_vec(), out_dir: None }
    }
}

/// One panic-free-invariant violation, with its minimized reproducer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ViolationReport {
    /// The target the mutant attacked.
    pub target: String,
    /// Campaign-local case index.
    pub case: u64,
    /// The panic payload, stringified.
    pub message: String,
    /// Size of the original failing input.
    pub input_bytes: usize,
    /// Size after minimization.
    pub minimized_bytes: usize,
    /// Path the minimized reproducer was written to, when an `--out`
    /// directory was configured.
    pub reproducer: Option<String>,
}

/// Per-target outcome counts.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TargetStats {
    /// Mutants executed against this target.
    pub executed: u64,
    /// Mutants the pipeline accepted (`Ok`).
    pub ok: u64,
    /// Mutants the pipeline refused with a typed error.
    pub rejected: u64,
    /// Mutants that panicked (violations).
    pub violations: u64,
}

/// What a finished campaign reports.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The campaign seed.
    pub seed: u64,
    /// Mutants requested.
    pub mutants: u64,
    /// Mutants executed (always equals `mutants`).
    pub executed: u64,
    /// Mutants the pipeline accepted.
    pub ok: u64,
    /// Mutants refused with a typed error — the expected common case.
    pub rejected: u64,
    /// Per-target breakdown, keyed by [`Target::name`].
    pub per_target: BTreeMap<String, TargetStats>,
    /// Every panic, minimized. Empty means the invariant held.
    pub violations: Vec<ViolationReport>,
    /// FNV-1a fold of every case's `(target, outcome kind, error text)` —
    /// two same-seed campaigns must agree on this bit-for-bit.
    pub outcome_digest: u64,
}

impl CampaignReport {
    /// Whether the panic-free invariant held over the whole campaign.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a report back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// How one mutant execution ended.
enum CaseOutcome {
    /// The pipeline accepted the input.
    Ok,
    /// The pipeline refused with a typed error (message kept for the
    /// digest).
    Rejected(String),
    /// The pipeline panicked — an invariant violation.
    Panicked(String),
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The seed inputs every mutant derives from: packed containers, their
/// smali text, and the parsed JSON of their non-classes sections.
struct SeedCorpus {
    containers: Vec<Vec<u8>>,
    smali: Vec<String>,
    /// `(container index, section index, parsed payload)`.
    json: Vec<(usize, usize, Value)>,
    /// Encoded device-agent request streams (install → explore →
    /// shutdown), one per container.
    protocol: Vec<Vec<u8>>,
    /// Encoded FDCS corpus shard files: one single-entry shard per
    /// container plus one multi-entry shard (exercises the index's
    /// strict-contiguity rules).
    shards: Vec<Vec<u8>>,
    /// Encoded serve-protocol frame streams: one request session per
    /// container plus one stream of every reply shape (the serve target
    /// fuzzes both directions of the job-service wire).
    serve: Vec<Vec<u8>>,
    /// Encoded dispatch coordinator journals, covering single- and
    /// multi-shard farms with and without revocation histories.
    dispatch: Vec<Vec<u8>>,
}

/// Encodes a representative agent session over `container` as one wire
/// byte stream — the protocol target's seed.
fn seed_request_stream(container: &[u8]) -> Vec<u8> {
    use fd_droidsim::proto::{encode_frame, to_hex, AgentRequest, Envelope};
    let requests = vec![
        AgentRequest::Install {
            container_hex: to_hex(container),
            config: fd_droidsim::DeviceConfig::default(),
        },
        AgentRequest::Launch,
        AgentRequest::Observe,
        AgentRequest::Click { id: "tab_home".to_string() },
        AgentRequest::EnterText { id: "field_user".to_string(), text: "secret".to_string() },
        AgentRequest::FaultRecordsSince { from: 0 },
        AgentRequest::Ping,
        AgentRequest::Shutdown,
    ];
    let mut stream = Vec::new();
    for (id, body) in requests.into_iter().enumerate() {
        stream.extend_from_slice(&encode_frame(&Envelope { id: id as u64, body }));
    }
    stream
}

/// Encodes a representative serve session (submit → poll → status →
/// shutdown) over `container` as one frame stream — the serve target's
/// request-direction seed.
fn seed_serve_request_stream(container: &[u8], inputs: &BTreeMap<String, String>) -> Vec<u8> {
    use fd_droidsim::proto::{encode_frame, to_hex, Envelope};
    use fragdroid::ServeRequest;
    let requests = vec![
        ServeRequest::Submit { job: 1, container_hex: to_hex(container), inputs: inputs.clone() },
        ServeRequest::Poll { job: 1 },
        ServeRequest::Status,
        ServeRequest::Shutdown,
    ];
    let mut stream = Vec::new();
    for (id, body) in requests.into_iter().enumerate() {
        stream.extend_from_slice(&encode_frame(&Envelope { id: id as u64, body }));
    }
    stream
}

/// Encodes one of every serve reply shape as one frame stream — the
/// serve target's response-direction seed.
fn seed_serve_response_stream() -> Vec<u8> {
    use fd_droidsim::proto::{encode_frame, Envelope};
    use fragdroid::ServeResponse;
    let responses = vec![
        ServeResponse::Accepted { job: 1 },
        ServeResponse::Pending { job: 1 },
        ServeResponse::Report { job: 1, json: "{\"ok\":true}".to_string() },
        ServeResponse::Rejected { job: 2, reason: "bad container hex".to_string() },
        ServeResponse::UnknownJob { job: 3 },
        ServeResponse::Busy { job: 4, retry_after_ms: 25 },
        ServeResponse::Draining { job: 5, retry_after_ms: 200 },
        ServeResponse::Conflict { job: 6, reason: "digest mismatch".to_string() },
        ServeResponse::Overloaded { retry_after_ms: 100 },
        ServeResponse::Status { queued: 1, running: 1, completed: 2, rejected: 0, workers: 2 },
        ServeResponse::Bye,
    ];
    let mut stream = Vec::new();
    for (id, body) in responses.into_iter().enumerate() {
        stream.extend_from_slice(&encode_frame(&Envelope { id: id as u64, body }));
    }
    stream
}

impl SeedCorpus {
    fn build() -> SeedCorpus {
        let gens = [
            fd_appgen::templates::quickstart(),
            fd_appgen::templates::tabbed_categories(),
            fd_appgen::templates::nav_drawer_wallpapers(),
        ];
        let mut corpus = SeedCorpus {
            containers: Vec::new(),
            smali: Vec::new(),
            json: Vec::new(),
            protocol: Vec::new(),
            shards: Vec::new(),
            serve: Vec::new(),
            dispatch: Vec::new(),
        };
        let mut shard_entries = Vec::new();
        for gen in gens {
            let bytes = fd_apk::pack(&gen.app).to_vec();
            let container_index = corpus.containers.len();
            corpus.protocol.push(seed_request_stream(&bytes));
            corpus.serve.push(seed_serve_request_stream(&bytes, &gen.known_inputs));
            corpus
                .shards
                .push(fd_apk::corpus::encode_shard(&[(bytes.clone(), gen.known_inputs.clone())]));
            shard_entries.push((bytes.clone(), gen.known_inputs.clone()));
            for (section_index, (_, range)) in mutate::section_ranges(&bytes).iter().enumerate() {
                if section_index == 1 {
                    // The classes section is smali text, not JSON; it is
                    // the smali target's seed instead.
                    if let Ok(text) = std::str::from_utf8(&bytes[range.clone()]) {
                        corpus.smali.push(text.to_string());
                    }
                    continue;
                }
                if let Ok(value) =
                    Value::parse_json(&String::from_utf8_lossy(&bytes[range.clone()]))
                {
                    corpus.json.push((container_index, section_index, value));
                }
            }
            corpus.containers.push(bytes);
        }
        corpus.shards.push(fd_apk::corpus::encode_shard(&shard_entries));
        corpus.serve.push(seed_serve_response_stream());
        // One shard per endpoint, a single-shard farm, and a wide farm
        // with revocation/quarantine histories every third shard.
        for (seed, shards) in [(1, 4), (2, 1), (3, 8)] {
            corpus.dispatch.push(fragdroid::demo_dispatch_journal(seed, shards));
        }
        assert!(
            !corpus.containers.is_empty()
                && !corpus.smali.is_empty()
                && !corpus.json.is_empty()
                && !corpus.protocol.is_empty()
                && !corpus.shards.is_empty()
                && !corpus.serve.is_empty()
                && !corpus.dispatch.is_empty(),
            "seed corpus covers every target"
        );
        corpus
    }
}

/// Feeds `input` one byte at a time through the incremental
/// [`fd_droidsim::proto::FrameBuffer`], decoding every completed frame —
/// the differential twin of the whole-buffer decode in [`execute`].
/// Returns the frame count, or the first typed error.
fn decode_incrementally(input: &[u8]) -> Result<usize, String> {
    use fd_droidsim::proto::{decode_payload, AgentRequest, FrameBuffer};
    let mut frames = FrameBuffer::new();
    let mut decoded = 0usize;
    for &byte in input {
        frames.push(&[byte]);
        loop {
            match frames.next_frame() {
                Ok(Some(payload)) => {
                    decode_payload::<AgentRequest>(&payload).map_err(|e| e.to_string())?;
                    decoded += 1;
                }
                Ok(None) => break,
                Err(e) => return Err(e.to_string()),
            }
        }
    }
    Ok(decoded)
}

/// Decodes one serve-protocol payload, accepting either wire direction:
/// a [`fragdroid::ServeRequest`] or a [`fragdroid::ServeResponse`].
/// A payload that is neither is the typed rejection.
fn classify_serve_payload(payload: &[u8]) -> Result<(), String> {
    use fd_droidsim::proto::decode_payload;
    match decode_payload::<fragdroid::ServeRequest>(payload) {
        Ok(_) => Ok(()),
        Err(request_error) => decode_payload::<fragdroid::ServeResponse>(payload)
            .map(|_| ())
            .map_err(|response_error| {
                format!(
                    "neither a serve request ({request_error}) \
                     nor a serve response ({response_error})"
                )
            }),
    }
}

/// Whole-buffer decode of a serve frame stream: every completed frame
/// must be a request or a response. Returns the frame count, or the
/// first typed error.
fn decode_serve_stream(input: &[u8]) -> Result<usize, String> {
    use fd_droidsim::proto::FrameBuffer;
    let mut frames = FrameBuffer::new();
    frames.push(input);
    let mut decoded = 0usize;
    loop {
        match frames.next_frame() {
            Ok(Some(payload)) => {
                classify_serve_payload(&payload)?;
                decoded += 1;
            }
            Ok(None) => return Ok(decoded),
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// Feeds `input` one byte at a time through the serve frame decoder —
/// the differential twin of [`decode_serve_stream`].
fn decode_serve_incrementally(input: &[u8]) -> Result<usize, String> {
    use fd_droidsim::proto::FrameBuffer;
    let mut frames = FrameBuffer::new();
    let mut decoded = 0usize;
    for &byte in input {
        frames.push(&[byte]);
        loop {
            match frames.next_frame() {
                Ok(Some(payload)) => {
                    classify_serve_payload(&payload)?;
                    decoded += 1;
                }
                Ok(None) => break,
                Err(e) => return Err(e.to_string()),
            }
        }
    }
    Ok(decoded)
}

/// Whole-buffer scan of a dispatch coordinator journal: every
/// newline-terminated line must decode as a checksummed record; an
/// unterminated tail is a torn write, tolerated by counting its bytes.
/// Returns `(decoded lines, torn bytes)` or the first typed error.
fn scan_dispatch_lines(input: &[u8]) -> Result<(usize, usize), String> {
    let mut decoded = 0usize;
    let mut offset = 0usize;
    while offset < input.len() {
        let Some(newline) = input[offset..].iter().position(|&b| b == b'\n') else {
            return Ok((decoded, input.len() - offset));
        };
        fragdroid::decode_dispatch_line(&input[offset..offset + newline])?;
        decoded += 1;
        offset += newline + 1;
    }
    Ok((decoded, 0))
}

/// Feeds the journal one byte at a time, decoding each line as its
/// newline arrives — the differential twin of [`scan_dispatch_lines`].
fn scan_dispatch_lines_incrementally(input: &[u8]) -> Result<(usize, usize), String> {
    let mut decoded = 0usize;
    let mut line: Vec<u8> = Vec::new();
    for &byte in input {
        if byte == b'\n' {
            fragdroid::decode_dispatch_line(&line)?;
            decoded += 1;
            line.clear();
        } else {
            line.push(byte);
        }
    }
    Ok((decoded, line.len()))
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs one input through its target's pipeline under `catch_unwind` and
/// classifies the result. This is the invariant under test: the only
/// acceptable outcomes are `Ok` and `Rejected`.
fn execute(target: Target, input: &[u8]) -> CaseOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| match target {
        Target::Container | Target::Json => {
            match fd_apk::decompile(&Bytes::copy_from_slice(input)) {
                Ok(app) => {
                    // A mutant that still decodes must also survive
                    // static extraction (the next pipeline stage).
                    let _ = fd_static::extract(&app, &Default::default());
                    Ok(())
                }
                Err(e) => Err(e.to_string()),
            }
        }
        Target::Smali => {
            let text = String::from_utf8_lossy(input);
            match fd_smali::parser::parse_classes(&text) {
                Ok(_) => Ok(()),
                Err(e) => Err(e.to_string()),
            }
        }
        Target::Protocol => {
            let whole = fd_droidsim::proto::decode_request_stream(input)
                .map(|envelopes| envelopes.len())
                .map_err(|e| e.to_string());
            // Differential invariant: the incremental decoder fed one
            // byte at a time must agree with the whole-buffer decode.
            let incremental = decode_incrementally(input);
            assert_eq!(
                whole, incremental,
                "incremental frame decoding diverged from whole-buffer decoding"
            );
            whole.map(|_| ())
        }
        Target::Serve => {
            let whole = decode_serve_stream(input);
            // Differential invariant: the serve frame decoder fed one
            // byte at a time must agree with the whole-buffer decode.
            let incremental = decode_serve_incrementally(input);
            assert_eq!(
                whole, incremental,
                "incremental serve-frame decoding diverged from whole-buffer decoding"
            );
            whole.map(|_| ())
        }
        Target::Dispatch => {
            let whole = scan_dispatch_lines(input);
            // Differential invariant: the line scanner fed one byte at
            // a time must agree with the whole-buffer scan.
            let incremental = scan_dispatch_lines_incrementally(input);
            assert_eq!(
                whole, incremental,
                "incremental dispatch-journal scanning diverged from whole-buffer scanning"
            );
            // The semantic layer on top of the line codec: the full
            // parse must accept or reject with a typed JournalError.
            match fragdroid::parse_dispatch_journal(input) {
                Ok(_) => Ok(()),
                Err(e) => Err(e.to_string()),
            }
        }
        Target::Corpus => match fd_apk::corpus::parse_shard(input) {
            Ok(view) => {
                // A mutant whose index still validates must also let
                // every entry be read lazily — the container slice and
                // the inputs JSON — without panicking.
                let mut result = Ok(());
                for entry in 0..view.len() {
                    let _ = view.container(entry);
                    if let Err(e) = view.inputs(entry) {
                        result = Err(e.to_string());
                        break;
                    }
                }
                result
            }
            Err(e) => Err(e.to_string()),
        },
    }));
    match result {
        Ok(Ok(())) => CaseOutcome::Ok,
        Ok(Err(message)) => CaseOutcome::Rejected(message),
        Err(payload) => CaseOutcome::Panicked(panic_message(payload)),
    }
}

/// Generates the next mutant for `target` from the corpus. All
/// randomness comes from `rng`, so the case sequence is seed-determined.
fn generate(corpus: &SeedCorpus, target: Target, rng: &mut StdRng) -> Vec<u8> {
    match target {
        Target::Container => {
            let base = &corpus.containers[rng.gen_range(0..corpus.containers.len())];
            mutate::mutate_bytes(base, rng)
        }
        Target::Smali => {
            let base = &corpus.smali[rng.gen_range(0..corpus.smali.len())];
            mutate::mutate_smali(base, rng).into_bytes()
        }
        Target::Json => {
            let (container_index, section_index, value) =
                &corpus.json[rng.gen_range(0..corpus.json.len())];
            let mutant = mutate::mutate_json(value, rng);
            let payload = mutant.render_json(false);
            mutate::splice_section(
                &corpus.containers[*container_index],
                *section_index,
                payload.as_bytes(),
            )
            .expect("seed containers always have four sections")
        }
        Target::Protocol => {
            let base = &corpus.protocol[rng.gen_range(0..corpus.protocol.len())];
            mutate::mutate_bytes(base, rng)
        }
        Target::Corpus => {
            let base = &corpus.shards[rng.gen_range(0..corpus.shards.len())];
            mutate::mutate_bytes(base, rng)
        }
        Target::Serve => {
            let base = &corpus.serve[rng.gen_range(0..corpus.serve.len())];
            mutate::mutate_bytes(base, rng)
        }
        Target::Dispatch => {
            let base = &corpus.dispatch[rng.gen_range(0..corpus.dispatch.len())];
            mutate::mutate_bytes(base, rng)
        }
    }
}

/// Greedy chunk-removal minimization (ddmin-lite): repeatedly drop the
/// largest chunk that keeps `still_fails` true, halving the chunk size
/// until single bytes. `budget` caps predicate invocations so a slow
/// reproducer cannot stall the campaign.
fn minimize_bytes(
    input: Vec<u8>,
    mut budget: usize,
    still_fails: impl Fn(&[u8]) -> bool,
) -> Vec<u8> {
    let mut current = input;
    let mut chunk = (current.len() / 2).max(1);
    while chunk >= 1 && budget > 0 && !current.is_empty() {
        let mut offset = 0;
        while offset + chunk <= current.len() && budget > 0 {
            let mut candidate = current.clone();
            candidate.drain(offset..offset + chunk);
            budget -= 1;
            if still_fails(&candidate) {
                current = candidate;
            } else {
                offset += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    current
}

/// Silences the process panic hook for the campaign's duration (panics
/// are *expected data* here, not reportable events) and restores the
/// previous hook on drop.
// `PanicInfo` is the pre-1.82 spelling of `PanicHookInfo`; the alias
// keeps the crate building on the workspace's 1.75 MSRV.
#[allow(deprecated)]
type PanicHook = Box<dyn Fn(&std::panic::PanicInfo<'_>) + Sync + Send + 'static>;

struct QuietPanics {
    previous: Option<PanicHook>,
}

impl QuietPanics {
    fn engage() -> QuietPanics {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics { previous: Some(previous) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            std::panic::set_hook(previous);
        }
    }
}

/// Runs a campaign with tracing disabled.
pub fn run_campaign(config: &FuzzConfig) -> CampaignReport {
    run_campaign_traced(config, &fd_trace::Tracer::disabled())
}

/// Runs a campaign, emitting a [`fd_trace::Phase::Fuzz`] span and one
/// [`fd_trace::TraceEvent::FuzzViolation`] per violation on `tracer`.
pub fn run_campaign_traced(config: &FuzzConfig, tracer: &fd_trace::Tracer) -> CampaignReport {
    let _span = tracer.span(fd_trace::Phase::Fuzz, "fuzz-campaign");
    let corpus = SeedCorpus::build();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut report =
        CampaignReport { seed: config.seed, mutants: config.mutants, ..CampaignReport::default() };
    let mut digest = FNV_OFFSET;
    let targets =
        if config.targets.is_empty() { Target::ALL.to_vec() } else { config.targets.clone() };
    let _quiet = QuietPanics::engage();

    if let Some(dir) = &config.out_dir {
        let _ = std::fs::create_dir_all(dir);
    }

    for case in 0..config.mutants {
        let target = targets[(case % targets.len() as u64) as usize];
        let input = generate(&corpus, target, &mut rng);
        let outcome = execute(target, &input);

        digest = fnv(digest, target.name().as_bytes());
        let stats = report.per_target.entry(target.name().to_string()).or_default();
        stats.executed += 1;
        report.executed += 1;
        match outcome {
            CaseOutcome::Ok => {
                digest = fnv(digest, b"ok");
                stats.ok += 1;
                report.ok += 1;
            }
            CaseOutcome::Rejected(message) => {
                digest = fnv(digest, b"rejected");
                digest = fnv(digest, message.as_bytes());
                stats.rejected += 1;
                report.rejected += 1;
            }
            CaseOutcome::Panicked(message) => {
                digest = fnv(digest, b"panicked");
                digest = fnv(digest, message.as_bytes());
                stats.violations += 1;
                tracer.event(|| fd_trace::TraceEvent::FuzzViolation {
                    target: target.name().to_string(),
                    case,
                });
                let input_bytes = input.len();
                let minimized = minimize_bytes(input, 2_000, |candidate| {
                    matches!(execute(target, candidate), CaseOutcome::Panicked(_))
                });
                let reproducer = config.out_dir.as_ref().map(|dir| {
                    let path = dir.join(format!("repro-{}-case{case}.bin", target.name()));
                    let _ = std::fs::write(&path, &minimized);
                    path.display().to_string()
                });
                report.violations.push(ViolationReport {
                    target: target.name().to_string(),
                    case,
                    message,
                    input_bytes,
                    minimized_bytes: minimized.len(),
                    reproducer,
                });
            }
        }
    }
    report.outcome_digest = digest;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_corpus_feeds_every_target() {
        let corpus = SeedCorpus::build();
        assert_eq!(corpus.containers.len(), 3);
        assert_eq!(corpus.smali.len(), 3);
        // Three non-classes sections per container.
        assert_eq!(corpus.json.len(), 9);
        // One agent session stream per container.
        assert_eq!(corpus.protocol.len(), 3);
        // One single-entry shard per container plus the combined shard.
        assert_eq!(corpus.shards.len(), 4);
        // One serve request session per container plus the
        // all-reply-shapes response stream.
        assert_eq!(corpus.serve.len(), 4);
        // Three coordinator-journal shapes: per-endpoint, single-shard,
        // and a wide farm with revocations.
        assert_eq!(corpus.dispatch.len(), 3);
    }

    #[test]
    fn minimize_shrinks_to_the_essential_byte() {
        let input = vec![0u8, 1, 2, 0x7f, 4, 5, 6, 7, 8, 9];
        let minimized = minimize_bytes(input, 2_000, |b| b.contains(&0x7f));
        assert_eq!(minimized, vec![0x7f]);
    }

    #[test]
    fn minimize_respects_its_budget() {
        let input: Vec<u8> = (0..=255).collect();
        let calls = std::cell::Cell::new(0usize);
        let _ = minimize_bytes(input, 10, |b| {
            calls.set(calls.get() + 1);
            b.contains(&0x7f)
        });
        assert!(calls.get() <= 10);
    }

    #[test]
    fn target_names_roundtrip() {
        for target in Target::ALL {
            assert_eq!(Target::parse(target.name()), Some(target));
        }
        assert_eq!(Target::parse("bogus"), None);
    }

    #[test]
    fn campaign_report_roundtrips_through_json() {
        let report = run_campaign(&FuzzConfig { mutants: 30, ..FuzzConfig::default() });
        assert_eq!(report.executed, 30);
        let json = report.to_json().unwrap();
        assert_eq!(CampaignReport::from_json(&json).unwrap(), report);
    }

    #[test]
    fn execute_accepts_the_unmutated_seeds() {
        let corpus = SeedCorpus::build();
        for container in &corpus.containers {
            assert!(matches!(execute(Target::Container, container), CaseOutcome::Ok));
        }
        for smali in &corpus.smali {
            assert!(matches!(execute(Target::Smali, smali.as_bytes()), CaseOutcome::Ok));
        }
        for stream in &corpus.protocol {
            assert!(matches!(execute(Target::Protocol, stream), CaseOutcome::Ok));
        }
        for shard in &corpus.shards {
            assert!(matches!(execute(Target::Corpus, shard), CaseOutcome::Ok));
        }
        for stream in &corpus.serve {
            assert!(matches!(execute(Target::Serve, stream), CaseOutcome::Ok));
        }
        for journal in &corpus.dispatch {
            assert!(matches!(execute(Target::Dispatch, journal), CaseOutcome::Ok));
        }
    }

    #[test]
    fn truncated_and_overrun_shards_are_rejected_not_panics() {
        let corpus = SeedCorpus::build();
        let shard = &corpus.shards[3];
        // Truncation anywhere — header, payload, or index — is typed.
        for len in [0, 4, 17, shard.len() / 2, shard.len() - 1] {
            assert!(
                matches!(execute(Target::Corpus, &shard[..len]), CaseOutcome::Rejected(_)),
                "truncation to {len} bytes must be a typed rejection"
            );
        }
        // An index offset pointing past EOF is typed, not a panic.
        let mut overrun = shard.clone();
        let index_offset = shard.len() - 16;
        overrun[index_offset..index_offset + 8].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(matches!(execute(Target::Corpus, &overrun), CaseOutcome::Rejected(_)));
    }

    #[test]
    fn protocol_seed_decodes_to_the_full_session() {
        let corpus = SeedCorpus::build();
        for stream in &corpus.protocol {
            let envelopes =
                fd_droidsim::proto::decode_request_stream(stream).expect("seed decodes");
            assert_eq!(envelopes.len(), 8, "install → … → shutdown");
            assert_eq!(decode_incrementally(stream), Ok(8));
        }
    }

    #[test]
    fn serve_seeds_decode_in_both_directions() {
        let corpus = SeedCorpus::build();
        // Request sessions: submit → poll → status → shutdown.
        for stream in &corpus.serve[..3] {
            assert_eq!(decode_serve_stream(stream), Ok(4));
            assert_eq!(decode_serve_incrementally(stream), Ok(4));
        }
        // The response stream carries one of every reply shape.
        let responses = corpus.serve.last().expect("response seed present");
        assert_eq!(decode_serve_stream(responses), Ok(11));
        assert_eq!(decode_serve_incrementally(responses), Ok(11));
    }

    #[test]
    fn truncated_and_corrupted_serve_streams_are_rejected_not_panics() {
        let corpus = SeedCorpus::build();
        let stream = corpus.serve.last().expect("response seed present");
        // A truncated stream decodes its complete prefix cleanly.
        assert!(matches!(execute(Target::Serve, &stream[..stream.len() / 2]), CaseOutcome::Ok));
        // A corrupted length header is a typed rejection.
        let mut corrupt = stream.clone();
        corrupt[0] = b'x';
        assert!(matches!(execute(Target::Serve, &corrupt), CaseOutcome::Rejected(_)));
        // A well-formed frame whose payload is neither direction (a
        // device-agent request) is typed too.
        use fd_droidsim::proto::{encode_frame, Envelope};
        let alien = encode_frame(&Envelope { id: 1, body: fd_droidsim::proto::AgentRequest::Ping });
        assert!(matches!(execute(Target::Serve, &alien), CaseOutcome::Rejected(_)));
    }

    #[test]
    fn truncated_and_corrupted_dispatch_journals_are_typed_not_panics() {
        let corpus = SeedCorpus::build();
        let journal = corpus.dispatch.last().expect("dispatch seed present");
        // Truncation at every offset either recovers (the cut lands in
        // the torn tail) or rejects typed — never panics, and the
        // whole-buffer scan always agrees with the byte-at-a-time scan.
        for len in 0..journal.len() {
            match execute(Target::Dispatch, &journal[..len]) {
                CaseOutcome::Ok | CaseOutcome::Rejected(_) => {}
                CaseOutcome::Panicked(message) => {
                    panic!("truncation to {len} bytes panicked: {message}")
                }
            }
        }
        // Corrupting any single byte is typed too.
        for offset in [0, 1, journal.len() / 2, journal.len() - 2] {
            let mut corrupt = journal.clone();
            corrupt[offset] ^= 0x41;
            match execute(Target::Dispatch, &corrupt) {
                CaseOutcome::Ok | CaseOutcome::Rejected(_) => {}
                CaseOutcome::Panicked(message) => {
                    panic!("corruption at {offset} panicked: {message}")
                }
            }
        }
        // A duplicated completion claim is a typed rejection, not Ok.
        let text = String::from_utf8(journal.clone()).expect("journal is line text");
        let done = text
            .lines()
            .find(|l| l.contains("ShardDone"))
            .expect("demo journal records completions");
        let duplicated = format!("{text}{done}\n");
        assert!(matches!(
            execute(Target::Dispatch, duplicated.as_bytes()),
            CaseOutcome::Rejected(_)
        ));
    }

    #[test]
    fn truncated_and_corrupted_protocol_streams_are_rejected_not_panics() {
        let corpus = SeedCorpus::build();
        let stream = &corpus.protocol[0];
        // A truncated stream decodes its complete prefix cleanly.
        assert!(matches!(execute(Target::Protocol, &stream[..stream.len() / 2]), CaseOutcome::Ok));
        // A corrupted length header is a typed rejection.
        let mut corrupt = stream.clone();
        corrupt[0] = b'x';
        assert!(matches!(execute(Target::Protocol, &corrupt), CaseOutcome::Rejected(_)));
    }
}
