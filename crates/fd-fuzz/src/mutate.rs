//! Seeded, deterministic, structure-aware mutators.
//!
//! Every function here draws all randomness from the caller's `StdRng`,
//! so a campaign seed fully determines every mutant. The mutators are
//! *structure-aware*: the byte-level mutator knows where a FAPK
//! container keeps its length fields, the smali mutator works on lines
//! and tokens of the textual syntax, and the JSON mutator edits the
//! parsed value tree (dropping keys, retyping values, nesting deeply)
//! rather than flipping characters in serialized text.

use rand::{rngs::StdRng, Rng};
use serde_json::{Number, Value};

/// First payload byte of a FAPK container: magic (4) + version (2) +
/// flags (2).
const HEADER_LEN: usize = 8;

/// Byte layout of a container's four length-prefixed sections, as
/// `(length_field_offset, payload_range)` pairs in order. Best-effort:
/// stops at the first section whose declared length overruns the buffer,
/// so it also works on already-corrupt inputs.
pub fn section_ranges(bytes: &[u8]) -> Vec<(usize, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let mut pos = HEADER_LEN;
    for _ in 0..4 {
        if pos + 4 > bytes.len() {
            break;
        }
        let declared =
            u32::from_be_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                as usize;
        let start = pos + 4;
        let Some(end) = start.checked_add(declared) else { break };
        if end > bytes.len() {
            break;
        }
        out.push((pos, start..end));
        pos = end;
    }
    out
}

/// Replaces section `index`'s payload with `payload`, rewriting its
/// length field. Returns `None` when the container's section table
/// cannot be walked that far.
pub fn splice_section(bytes: &[u8], index: usize, payload: &[u8]) -> Option<Vec<u8>> {
    let ranges = section_ranges(bytes);
    let (field, range) = ranges.get(index)?.clone();
    let mut out = Vec::with_capacity(bytes.len() - range.len() + payload.len() + 4);
    out.extend_from_slice(&bytes[..field]);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&bytes[range.end..]);
    Some(out)
}

/// Overwrites one of the container's length fields with a hostile value
/// (0, `u32::MAX`, a near-miss off-by-a-few, or a random count). Falls
/// back to a byte nudge when the input has no walkable section table.
pub fn corrupt_length_field(bytes: &mut [u8], rng: &mut StdRng) {
    let fields: Vec<usize> = section_ranges(bytes).into_iter().map(|(field, _)| field).collect();
    if fields.is_empty() {
        if !bytes.is_empty() {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = bytes[i].wrapping_add(1);
        }
        return;
    }
    let field = fields[rng.gen_range(0..fields.len())];
    let old =
        u32::from_be_bytes([bytes[field], bytes[field + 1], bytes[field + 2], bytes[field + 3]]);
    let new = match rng.gen_range(0u32..4) {
        0 => 0,
        1 => u32::MAX,
        2 => old.wrapping_add(rng.gen_range(1u32..64)),
        _ => rng.gen_range(0u32..2_000_000),
    };
    bytes[field..field + 4].copy_from_slice(&new.to_be_bytes());
}

/// One byte-level mutant of `base`: 1–3 of truncate, bit-flip, splice,
/// insert, delete, and length-field corruption.
pub fn mutate_bytes(base: &[u8], rng: &mut StdRng) -> Vec<u8> {
    let mut out = base.to_vec();
    for _ in 0..rng.gen_range(1usize..=3) {
        match rng.gen_range(0u32..6) {
            0 => {
                // Truncate anywhere, including to empty.
                let at = rng.gen_range(0..=out.len());
                out.truncate(at);
            }
            1 => {
                // Flip a few bits.
                if !out.is_empty() {
                    for _ in 0..rng.gen_range(1usize..=4) {
                        let i = rng.gen_range(0..out.len());
                        out[i] ^= 1 << rng.gen_range(0u32..8);
                    }
                }
            }
            2 => {
                // Splice: stamp one chunk of the input over another.
                if out.len() >= 2 {
                    let len = rng.gen_range(1..=out.len().min(32));
                    let src = rng.gen_range(0..=out.len() - len);
                    let dst = rng.gen_range(0..=out.len() - len);
                    let chunk = out[src..src + len].to_vec();
                    out[dst..dst + len].copy_from_slice(&chunk);
                }
            }
            3 => {
                // Insert random bytes.
                let at = rng.gen_range(0..=out.len());
                let ins: Vec<u8> =
                    (0..rng.gen_range(1usize..=8)).map(|_| rng.gen_range(0u8..=255)).collect();
                out.splice(at..at, ins);
            }
            4 => {
                // Delete a chunk.
                if !out.is_empty() {
                    let len = rng.gen_range(1..=out.len().min(16));
                    let at = rng.gen_range(0..=out.len() - len);
                    out.drain(at..at + len);
                }
            }
            _ => corrupt_length_field(&mut out, rng),
        }
    }
    out
}

/// Words the token-level smali mutator substitutes in: keywords moved to
/// wrong positions, structure tokens, and outright garbage.
const SMALI_TOKENS: &[&str] = &[
    ".class",
    ".super",
    ".method",
    ".end",
    ".end method",
    ".field",
    "if",
    "else",
    "end-if",
    "invoke",
    "finish",
    "@layout/",
    "L;",
    "\"",
    "\u{7f}\u{1}",
    "0xFFFFFFFF",
];

/// One text-level mutant of `base`: 1–3 of line deletion/duplication/
/// swap, mid-line truncation, token substitution, and a run of unclosed
/// `if` headers (the depth-limit stressor).
pub fn mutate_smali(base: &str, rng: &mut StdRng) -> String {
    let mut lines: Vec<String> = base.lines().map(str::to_string).collect();
    for _ in 0..rng.gen_range(1usize..=3) {
        match rng.gen_range(0u32..6) {
            0 => {
                if !lines.is_empty() {
                    let i = rng.gen_range(0..lines.len());
                    lines.remove(i);
                }
            }
            1 => {
                if !lines.is_empty() {
                    let i = rng.gen_range(0..lines.len());
                    let line = lines[i].clone();
                    let at = rng.gen_range(0..=lines.len());
                    lines.insert(at, line);
                }
            }
            2 => {
                if lines.len() >= 2 {
                    let a = rng.gen_range(0..lines.len());
                    let b = rng.gen_range(0..lines.len());
                    lines.swap(a, b);
                }
            }
            3 => {
                // Truncate one line mid-token.
                if !lines.is_empty() {
                    let i = rng.gen_range(0..lines.len());
                    let line = &mut lines[i];
                    if !line.is_empty() {
                        let mut cut = rng.gen_range(0..line.len());
                        while cut > 0 && !line.is_char_boundary(cut) {
                            cut -= 1;
                        }
                        line.truncate(cut);
                    }
                }
            }
            4 => {
                // Replace one whitespace-separated word with a token.
                if !lines.is_empty() {
                    let i = rng.gen_range(0..lines.len());
                    let words: Vec<&str> = lines[i].split_whitespace().collect();
                    if !words.is_empty() {
                        let w = rng.gen_range(0..words.len());
                        let token = SMALI_TOKENS[rng.gen_range(0..SMALI_TOKENS.len())];
                        let mut rebuilt: Vec<&str> = words;
                        rebuilt[w] = token;
                        lines[i] = rebuilt.join(" ");
                    }
                }
            }
            _ => {
                // A run of unclosed `if` headers: must die with a typed
                // depth error, not a stack overflow.
                let k = rng.gen_range(1usize..=96);
                let at = rng.gen_range(0..=lines.len());
                let nest: Vec<String> =
                    (0..k).map(|_| "        if has-extra \"k\"".to_string()).collect();
                lines.splice(at..at, nest);
            }
        }
    }
    lines.join("\n")
}

/// A random scalar of a random JSON type — the wrong-typed replacement
/// the schema-aware mutator stamps over values.
fn random_scalar(rng: &mut StdRng) -> Value {
    match rng.gen_range(0u32..5) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Number(Number::PosInt(rng.gen_range(0u64..u64::MAX))),
        3 => Value::Number(Number::NegInt(-rng.gen_range(1i64..1_000_000))),
        _ => Value::String(SMALI_TOKENS[rng.gen_range(0..SMALI_TOKENS.len())].to_string()),
    }
}

/// `depth` arrays wrapped around `null` — the JSON recursion stressor.
fn deep_array(depth: usize) -> Value {
    let mut v = Value::Null;
    for _ in 0..depth {
        v = Value::Array(vec![v]);
    }
    v
}

/// One schema-aware mutant of a JSON value tree: 1–3 of key removal, key
/// rename, wrong-typed value, deep-nesting insertion, element dup/drop,
/// or a scalar retype — applied at a random depth.
pub fn mutate_json(base: &Value, rng: &mut StdRng) -> Value {
    let mut out = base.clone();
    for _ in 0..rng.gen_range(1usize..=3) {
        mutate_value(&mut out, rng, 0);
    }
    out
}

fn mutate_value(v: &mut Value, rng: &mut StdRng, depth: usize) {
    if depth > 32 {
        *v = random_scalar(rng);
        return;
    }
    match v {
        Value::Object(map) if !map.is_empty() => {
            let keys: Vec<String> = map.keys().cloned().collect();
            let key = keys[rng.gen_range(0..keys.len())].clone();
            match rng.gen_range(0u32..5) {
                0 => {
                    map.remove(&key);
                }
                1 => {
                    if let Some(val) = map.remove(&key) {
                        map.insert(format!("{key}_mut"), val);
                    }
                }
                2 => {
                    map.insert(key, random_scalar(rng));
                }
                3 => {
                    let depth = rng.gen_range(1usize..=200);
                    map.insert(format!("deep_{}", rng.gen_range(0u32..1000)), deep_array(depth));
                }
                _ => {
                    if let Some(val) = map.get_mut(&key) {
                        mutate_value(val, rng, depth + 1);
                    }
                }
            }
        }
        Value::Array(items) if !items.is_empty() => {
            let i = rng.gen_range(0..items.len());
            match rng.gen_range(0u32..4) {
                0 => {
                    items.remove(i);
                }
                1 => {
                    let dup = items[i].clone();
                    items.push(dup);
                }
                2 => items[i] = random_scalar(rng),
                _ => mutate_value(&mut items[i], rng, depth + 1),
            }
        }
        other => *other = random_scalar(rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_container() -> Vec<u8> {
        fd_apk::pack(&fd_appgen::templates::quickstart().app).to_vec()
    }

    #[test]
    fn section_ranges_walk_all_four_sections() {
        let bytes = sample_container();
        let ranges = section_ranges(&bytes);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].0, HEADER_LEN);
        // The last section ends exactly at the buffer's end.
        assert_eq!(ranges[3].1.end, bytes.len());
    }

    #[test]
    fn splice_identity_keeps_the_container_decodable() {
        let bytes = sample_container();
        for index in 0..4 {
            let (_, range) = section_ranges(&bytes)[index].clone();
            let payload = bytes[range].to_vec();
            let spliced = splice_section(&bytes, index, &payload).unwrap();
            assert_eq!(spliced, bytes, "identity splice is a no-op");
        }
    }

    #[test]
    fn splice_bad_json_yields_a_typed_corrupt_error() {
        let bytes = sample_container();
        let spliced = splice_section(&bytes, 0, b"{not json").unwrap();
        match fd_apk::decompile(&bytes::Bytes::from(spliced)) {
            Err(fd_apk::ApkError::Corrupt { section: "manifest", .. }) => {}
            other => panic!("expected manifest corruption, got {other:?}"),
        }
    }

    #[test]
    fn mutators_are_deterministic_per_seed() {
        let bytes = sample_container();
        let smali = "\
.class public La/B;
.super Ljava/lang/Object;
.end class";
        let json = Value::parse_json("{\"a\": [1, 2], \"b\": {\"c\": \"d\"}}").unwrap();
        for seed in [0u64, 1, 99] {
            let (mut r1, mut r2) = (StdRng::seed_from_u64(seed), StdRng::seed_from_u64(seed));
            assert_eq!(mutate_bytes(&bytes, &mut r1), mutate_bytes(&bytes, &mut r2));
            assert_eq!(mutate_smali(smali, &mut r1), mutate_smali(smali, &mut r2));
            assert_eq!(mutate_json(&json, &mut r1), mutate_json(&json, &mut r2));
        }
    }

    #[test]
    fn mutants_differ_from_their_base_often() {
        let bytes = sample_container();
        let mut rng = StdRng::seed_from_u64(7);
        let changed = (0..64).filter(|_| mutate_bytes(&bytes, &mut rng) != bytes).count();
        assert!(changed > 48, "byte mutator changes most inputs ({changed}/64)");
    }

    #[test]
    fn corrupt_length_field_handles_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut empty: Vec<u8> = Vec::new();
        corrupt_length_field(&mut empty, &mut rng);
        assert!(empty.is_empty());
        let mut short = vec![1u8, 2, 3];
        corrupt_length_field(&mut short, &mut rng);
        assert_eq!(short.len(), 3, "no-table fallback only nudges a byte");
    }

    #[test]
    fn deep_array_nests_to_the_requested_depth() {
        let mut v = &deep_array(5);
        let mut depth = 0;
        while let Value::Array(items) = v {
            v = &items[0];
            depth += 1;
        }
        assert_eq!(depth, 5);
        assert!(v.is_null());
    }
}
