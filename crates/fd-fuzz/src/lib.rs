//! Structure-aware fuzzing of the ingestion frontier.
//!
//! The decode/parse pipeline (`fd-apk` containers, `fd-smali` text, the
//! JSON sections, the device-agent wire protocol, the FDCS corpus-shard
//! index the lazy corpus reader trusts, the serve frame streams, and
//! the dispatch coordinator journal `--resume` replays) promises *Ok or
//! a typed Err — never a panic*. This crate is the harness that holds it to that
//! promise:
//!
//! - [`mutate`] — seeded, deterministic mutators. Byte-level mutations
//!   (truncate / flip / splice / length-field corruption) for FAPK
//!   containers and encoded agent request streams, token- and line-level
//!   mutations for smali text, and schema-aware mutations over the
//!   manifest/layout/meta JSON values (dropped keys, wrong-typed values,
//!   deep nesting) spliced back into an otherwise-valid container.
//! - [`harness`] — the campaign driver. Every mutant runs under
//!   `catch_unwind`; a panic is a *violation* that gets minimized to a
//!   small reproducer file. Campaigns with the same seed are bit-for-bit
//!   reproducible ([`CampaignReport::outcome_digest`] folds every case's
//!   outcome, so two reports can be compared with one integer).
//!
//! `fragdroid fuzz --seed N --mutants M --out DIR` is the CLI face of
//! [`run_campaign`]; CI runs a smoke campaign on every push.

pub mod harness;
pub mod mutate;

pub use harness::{
    run_campaign, run_campaign_traced, CampaignReport, FuzzConfig, Target, TargetStats,
    ViolationReport,
};
pub use mutate::{
    corrupt_length_field, mutate_bytes, mutate_json, mutate_smali, section_ranges, splice_section,
};
