//! Static-extraction integration tests: shared layouts, fragment reuse,
//! intermediate classes, and the paper-app suite's static shape.

use fd_appgen::{paper_apps, ActivitySpec, AppBuilder, FragmentSpec};
use fd_smali::{well_known, ClassDef, ClassName, MethodDef, ResRef, Stmt};

#[test]
fn fragment_reused_across_activities_is_a_dependency_of_both() {
    let gen = AppBuilder::new("sx.reuse")
        .activity(
            ActivitySpec::new("Main").launcher().initial_fragment("Shared").button_to("Other"),
        )
        .activity(ActivitySpec::new("Other").initial_fragment("Shared"))
        .fragment(FragmentSpec::new("Shared"))
        .build();
    let info = fd_static::extract(&gen.app, &gen.known_inputs);
    let shared = ClassName::new("sx.reuse.Shared");
    assert!(info.af_dependency[&ClassName::new("sx.reuse.Main")].contains(&shared));
    assert!(info.af_dependency[&ClassName::new("sx.reuse.Other")].contains(&shared));
    // The AFTM has E2 edges from both hosts.
    let hosts = info.aftm.hosts_of_fragment("sx.reuse.Shared");
    assert_eq!(hosts.len(), 2);
}

#[test]
fn intermediate_abstract_base_activities_are_not_effective() {
    // A BaseActivity that is subclassed but never declared in the
    // manifest: the paper's "Activities involved in intermediate classes"
    // must not appear in the effective list.
    let gen = AppBuilder::new("sx.base").activity(ActivitySpec::new("Main").launcher()).build();
    let mut app = gen.app;
    app.classes.insert(ClassDef::new("sx.base.BaseActivity", well_known::ACTIVITY).abstract_());
    // Re-parent Main under the base.
    let mut main = app.classes.get("sx.base.Main").unwrap().clone();
    main.super_class = "sx.base.BaseActivity".into();
    app.classes.insert(main);

    let info = fd_static::extract(&app, &Default::default());
    assert!(info.activities.contains("sx.base.Main"));
    assert!(
        !info.activities.contains("sx.base.BaseActivity"),
        "intermediate class leaked into the effective set"
    );
    // The subclass is still recognized as an activity through the chain.
    assert!(app.classes.is_activity_class("sx.base.Main"));
}

#[test]
fn widgets_in_a_layout_shared_by_two_activities_resolve_to_the_referencing_one() {
    // Both activities inflate "shared", but only Main wires the button.
    let mut app = fd_apk::AndroidApp::new(
        fd_apk::Manifest::new("sx.shared")
            .with_activity(fd_apk::ActivityDecl::new("sx.shared.Main").launcher())
            .with_activity(fd_apk::ActivityDecl::new("sx.shared.Twin")),
    );
    app.layouts.insert(
        "shared".into(),
        fd_apk::Layout::new(
            "shared",
            fd_apk::Widget::new(fd_apk::WidgetKind::Group)
                .with_child(fd_apk::Widget::new(fd_apk::WidgetKind::Button).with_id("go")),
        ),
    );
    app.classes.insert(
        ClassDef::new("sx.shared.Main", well_known::ACTIVITY)
            .with_method(
                MethodDef::new("onCreate")
                    .push(Stmt::SetContentView(ResRef::layout("shared")))
                    .push(Stmt::SetOnClick { widget: ResRef::id("go"), handler: "onGo".into() }),
            )
            .with_method(
                MethodDef::new("onGo")
                    .push(Stmt::NewIntent(fd_smali::IntentTarget::Class("sx.shared.Twin".into())))
                    .push(Stmt::StartActivity { via_host: false }),
            ),
    );
    app.classes.insert(ClassDef::new("sx.shared.Twin", well_known::ACTIVITY).with_method(
        MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("shared"))),
    ));
    app.finalize_resources();

    let info = fd_static::extract(&app, &Default::default());
    match info.resource_dep.owner_of("go") {
        Some(fd_static::UiOwner::Activity(a)) => assert_eq!(a.as_str(), "sx.shared.Main"),
        other => panic!("expected Main to own 'go', got {other:?}"),
    }
    // Both activities register as users of the layout.
    assert_eq!(info.resource_dep.layout_users["shared"].len(), 2);
}

#[test]
fn paper_apps_static_counts_match_their_specs() {
    for (spec, gen) in paper_apps::all_paper_apps() {
        let info = fd_static::extract(&gen.app, &gen.known_inputs);
        let (a, f) = info.counts();
        assert_eq!(a, spec.activities, "{}: activity sum", spec.package);
        assert_eq!(f, spec.fragments, "{}: fragment sum", spec.package);
        // The AFTM's entry is the launcher and is reachable.
        assert!(info.aftm.entry().is_some(), "{}", spec.package);
        // Input widgets exist iff the app has gates.
        let has_gates = gen
            .app
            .layouts
            .values()
            .any(|l| l.root.iter().any(|w| w.kind == fd_apk::WidgetKind::EditText));
        assert_eq!(!info.input_dep.input_widgets.is_empty(), has_gates, "{}", spec.package);
    }
}

#[test]
fn static_info_serializes_and_restores() {
    let gen = fd_appgen::templates::quickstart();
    let info = fd_static::extract(&gen.app, &gen.known_inputs);
    let json = serde_json::to_string(&info).unwrap();
    let back: fd_static::StaticInfo = serde_json::from_str(&json).unwrap();
    assert_eq!(back.activities, info.activities);
    assert_eq!(back.fragments, info.fragments);
    assert_eq!(back.aftm, info.aftm);
    assert_eq!(back.input_dep, info.input_dep);
}
