//! Algorithm 1: initial AFTM construction.
//!
//! The algorithm scans every effective activity's decompiled statements for
//! the paper's intent patterns (`new Intent(A0, A1)` / `setClass`,
//! `new Intent(action)` / `setAction` resolved through the manifest) and
//! fragment-instantiation patterns (`new F1()`, `F1.newInstance()`,
//! `instanceof F1`, plus the transaction calls that consume them); then
//! every effective fragment for `F → Fᵢ` edges between co-hosted
//! fragments.

use fd_aftm::{Aftm, RawTransition};
use fd_apk::AndroidApp;
use fd_smali::{visit, ClassDef, ClassName, IntentTarget, Stmt};
use std::collections::BTreeSet;

/// Builds the initial AFTM from the decompiled app.
pub fn build_aftm(
    app: &AndroidApp,
    activities: &BTreeSet<ClassName>,
    fragments: &BTreeSet<ClassName>,
) -> Aftm {
    let mut aftm = Aftm::new();
    if let Some(entry) = app.manifest.launcher_activity() {
        aftm.set_entry(entry.name.clone());
    }

    // GetEdgeAtoA / GetEdgeAtoF — per effective activity (incl. inner
    // classes, which is where javac puts listener bodies).
    for activity in activities {
        for class in app.classes.with_inner_classes(activity.as_str()) {
            scan_activity_class(app, activities, fragments, activity, class, &mut aftm);
        }
    }

    // GetEdgeFtoF — per effective fragment.
    for fragment in fragments {
        let hosts = hosts_of(app, activities, fragment);
        for class in app.classes.with_inner_classes(fragment.as_str()) {
            scan_fragment_class(app, activities, fragments, fragment, &hosts, class, &mut aftm);
        }
    }
    aftm
}

/// The activities whose code (incl. inner classes) states `fragment` —
/// "if F1 ∈ A0" in Algorithm 1.
fn hosts_of(
    app: &AndroidApp,
    activities: &BTreeSet<ClassName>,
    fragment: &ClassName,
) -> BTreeSet<ClassName> {
    activities
        .iter()
        .filter(|a| {
            app.classes
                .with_inner_classes(a.as_str())
                .iter()
                .any(|c| visit::referenced_classes(c).contains(fragment))
        })
        .cloned()
        .collect()
}

fn fragment_targets(stmt: &Stmt) -> Option<&ClassName> {
    match stmt {
        Stmt::NewInstance(c)
        | Stmt::NewInstanceStatic(c)
        | Stmt::InstanceOf(c)
        | Stmt::TxnAdd { fragment: c, .. }
        | Stmt::TxnReplace { fragment: c, .. }
        | Stmt::AttachDirect { fragment: c, .. } => Some(c),
        _ => None,
    }
}

fn scan_activity_class(
    app: &AndroidApp,
    activities: &BTreeSet<ClassName>,
    fragments: &BTreeSet<ClassName>,
    activity: &ClassName,
    class: &ClassDef,
    aftm: &mut Aftm,
) {
    visit::walk_class(class, &mut |stmt| {
        match stmt {
            // new Intent(Class A0, Class A1) / setClass(..)
            Stmt::NewIntent(IntentTarget::Class(target)) | Stmt::SetClass(target) => {
                if activities.contains(target) && target != activity {
                    aftm.apply(RawTransition::ActivityToActivity {
                        from: activity.clone(),
                        to: target.clone(),
                    });
                }
            }
            // new Intent(String action) / setAction(..) → manifest lookup
            Stmt::NewIntent(IntentTarget::Action(action)) | Stmt::SetAction(action) => {
                if let Some(decl) = app.manifest.resolve_action(action) {
                    if activities.contains(&decl.name) && &decl.name != activity {
                        aftm.apply(RawTransition::ActivityToActivity {
                            from: activity.clone(),
                            to: decl.name.clone(),
                        });
                    }
                }
            }
            other => {
                if let Some(f1) = fragment_targets(other) {
                    if fragments.contains(f1) {
                        aftm.apply(RawTransition::ActivityToOwnFragment {
                            activity: activity.clone(),
                            fragment: f1.clone(),
                        });
                    }
                }
            }
        }
    });
}

fn scan_fragment_class(
    app: &AndroidApp,
    activities: &BTreeSet<ClassName>,
    fragments: &BTreeSet<ClassName>,
    fragment: &ClassName,
    hosts: &BTreeSet<ClassName>,
    class: &ClassDef,
    aftm: &mut Aftm,
) {
    visit::walk_class(class, &mut |stmt| {
        match stmt {
            // A fragment starting an activity: re-rooted at its host.
            Stmt::NewIntent(IntentTarget::Class(target)) | Stmt::SetClass(target) => {
                if activities.contains(target) {
                    for host in hosts {
                        if host != target {
                            aftm.apply(RawTransition::FragmentToActivity {
                                host: host.clone(),
                                fragment: fragment.clone(),
                                to: target.clone(),
                            });
                        }
                    }
                }
            }
            Stmt::NewIntent(IntentTarget::Action(action)) | Stmt::SetAction(action) => {
                if let Some(decl) = app.manifest.resolve_action(action) {
                    if activities.contains(&decl.name) {
                        for host in hosts {
                            if host != &decl.name {
                                aftm.apply(RawTransition::FragmentToActivity {
                                    host: host.clone(),
                                    fragment: fragment.clone(),
                                    to: decl.name.clone(),
                                });
                            }
                        }
                    }
                }
            }
            other => {
                if let Some(f1) = fragment_targets(other) {
                    if fragments.contains(f1) && f1 != fragment {
                        // F0 → F1 only if both belong to one activity.
                        let f1_hosts = hosts_of(app, activities, f1);
                        for host in hosts.intersection(&f1_hosts) {
                            aftm.apply(RawTransition::FragmentToFragment {
                                host: host.clone(),
                                from: fragment.clone(),
                                to: f1.clone(),
                            });
                        }
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effective;
    use fd_aftm::{EdgeKind, NodeId};
    use fd_appgen::{templates, ActivitySpec, AppBuilder, FragmentSpec};

    fn model_of(gen: &fd_appgen::GeneratedApp) -> (Aftm, BTreeSet<ClassName>, BTreeSet<ClassName>) {
        let acts = effective::effective_activities(&gen.app);
        let frags = effective::effective_fragments(&gen.app, &acts);
        let aftm = build_aftm(&gen.app, &acts, &frags);
        (aftm, acts, frags)
    }

    #[test]
    fn quickstart_aftm_has_expected_edges() {
        let gen = templates::quickstart();
        let (aftm, ..) = model_of(&gen);
        let p = "com.example.quickstart";

        // A → A: Main → Settings (button), Settings → Account (gate),
        // and Home fragment's link re-rooted at its host: Main → Settings.
        assert!(aftm.edges().any(|e| e.kind == EdgeKind::E1
            && e.from == NodeId::Activity(format!("{p}.Main").into())
            && e.to == NodeId::Activity(format!("{p}.Settings").into())));
        assert!(aftm.edges().any(|e| e.kind == EdgeKind::E1
            && e.from == NodeId::Activity(format!("{p}.Settings").into())
            && e.to == NodeId::Activity(format!("{p}.Account").into())));

        // A → F: Main hosts Home and Stats.
        for frag in ["HomeFragment", "StatsFragment"] {
            assert!(
                aftm.edges().any(|e| e.kind == EdgeKind::E2
                    && e.to == NodeId::Fragment(format!("{p}.{frag}").into())),
                "missing E2 to {frag}"
            );
        }

        // F → F: Home switches to Stats inside Main.
        assert!(aftm.edges().any(|e| e.kind == EdgeKind::E3
            && e.from == NodeId::Fragment(format!("{p}.HomeFragment").into())
            && e.to == NodeId::Fragment(format!("{p}.StatsFragment").into())));
    }

    #[test]
    fn entry_is_launcher() {
        let gen = templates::quickstart();
        let (aftm, ..) = model_of(&gen);
        assert_eq!(aftm.entry().unwrap().as_str(), "com.example.quickstart.Main");
    }

    #[test]
    fn implicit_intent_edge_resolved_through_manifest() {
        let gen = AppBuilder::new("t.act")
            .activity(ActivitySpec::new("Main").launcher().action_link("t.act.OPEN", "Target"))
            .activity(ActivitySpec::new("Target"))
            .build();
        let (aftm, ..) = model_of(&gen);
        assert!(aftm
            .edges()
            .any(|e| e.kind == EdgeKind::E1 && e.to == NodeId::Activity("t.act.Target".into())));
    }

    #[test]
    fn fragment_to_fragment_requires_shared_host() {
        // F0 hosted by Main, F1 hosted only by Other: no E3 edge despite
        // the reference from F0 to F1.
        let gen = AppBuilder::new("t.nohost")
            .activity(
                ActivitySpec::new("Main").launcher().initial_fragment("F0").button_to("Other"),
            )
            .activity(ActivitySpec::new("Other").initial_fragment("F1"))
            .fragment(FragmentSpec::new("F0").switch_to("F1"))
            .fragment(FragmentSpec::new("F1"))
            .build();
        let (aftm, ..) = model_of(&gen);
        let e3: Vec<_> = aftm.edges().filter(|e| e.kind == EdgeKind::E3).collect();
        assert!(e3.is_empty(), "unexpected E3 edges: {e3:?}");
        // F0's reference still surfaces as an E2 (A → F) through Main's
        // dependency? No — F1 is stated only in F0/Other; the A→F edge for
        // F1 comes from Other.
        assert!(aftm.edges().any(|e| e.kind == EdgeKind::E2
            && e.from == NodeId::Activity("t.nohost.Other".into())
            && e.to == NodeId::Fragment("t.nohost.F1".into())));
    }

    #[test]
    fn gated_edges_inside_if_blocks_are_found() {
        // The gate's startActivity sits inside an If arm; Algorithm 1 must
        // still see the transition (flattened statement walk).
        let gen = templates::quickstart();
        let (aftm, ..) = model_of(&gen);
        assert!(aftm
            .edges()
            .any(|e| { e.to == NodeId::Activity("com.example.quickstart.Account".into()) }));
    }

    #[test]
    fn self_loops_are_not_created() {
        let gen = templates::quickstart();
        let (aftm, ..) = model_of(&gen);
        assert!(aftm.edges().all(|e| e.from != e.to));
    }
}
