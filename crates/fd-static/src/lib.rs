//! FragDroid's *Static Information Extraction* phase (paper §IV–§V).
//!
//! Given a decompiled app this crate produces everything the dynamic phase
//! needs:
//!
//! * [`effective`] — the effective (non-isolated, interaction-capable)
//!   activities and fragments (§IV-B2);
//! * [`aftm_init`] — Algorithm 1: the initial Activity & Fragment
//!   Transition Model from intent-construction and fragment-instantiation
//!   statement patterns;
//! * [`dependency`] — Algorithm 2: which fragments each activity depends
//!   on, through used-class and inheritance-chain analysis;
//! * [`resource_dep`] — Algorithm 3: which activity or fragment owns each
//!   widget resource-ID (how the UI-driving module identifies the current
//!   fragment-level state);
//! * [`input_dep`] — the input-dependency file: the resource-IDs of all
//!   input widgets, optionally pre-filled with correct values;
//! * [`StaticInfo`] / [`extract`] — the bundle handed to the evolutionary
//!   test-case generation phase, including the MAIN-action manifest
//!   rewrite that enables forced starts.

//! # Example
//!
//! ```
//! let gen = fd_appgen::templates::quickstart();
//! let info = fd_static::extract(&gen.app, &gen.known_inputs);
//! assert_eq!(info.counts(), (3, 2)); // 3 activities, 2 fragments
//! assert!(info.aftm.entry().is_some());
//! ```

pub mod aftm_init;
pub mod dependency;
pub mod effective;
pub mod input_dep;
pub mod resource_dep;

use fd_aftm::Aftm;
use fd_apk::AndroidApp;
use fd_smali::ClassName;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

pub use input_dep::InputDependency;
pub use resource_dep::{ResourceDependency, UiOwner};

/// Everything the static phase extracts from one app.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StaticInfo {
    /// The initial AFTM.
    pub aftm: Aftm,
    /// Effective activities (manifest-declared, non-isolated).
    pub activities: BTreeSet<ClassName>,
    /// Effective fragments.
    pub fragments: BTreeSet<ClassName>,
    /// Activity → fragments it depends on (Algorithm 2).
    pub af_dependency: BTreeMap<ClassName, BTreeSet<ClassName>>,
    /// Widget resource-ID → owning activity/fragment (Algorithm 3).
    pub resource_dep: ResourceDependency,
    /// The input-dependency data (§V-C).
    pub input_dep: InputDependency,
}

impl StaticInfo {
    /// Number of (activities, fragments) the static phase found — the
    /// "Sum" columns of Table I.
    pub fn counts(&self) -> (usize, usize) {
        (self.activities.len(), self.fragments.len())
    }
}

/// Runs the whole static phase on a decompiled app.
///
/// `provided_inputs` plays the role of the analyst-filled input file: any
/// input widget listed there gets its correct value.
///
/// As a side effect of the paper's pipeline, the caller usually also wants
/// the manifest rewrite; apply it with
/// [`fd_apk::Manifest::add_main_action_everywhere`] on the app that gets
/// installed.
pub fn extract(app: &AndroidApp, provided_inputs: &BTreeMap<String, String>) -> StaticInfo {
    extract_traced(app, provided_inputs, &fd_trace::Tracer::disabled())
}

/// [`extract`] with tracing: one [`fd_trace::Phase::Static`] span wraps
/// the whole phase, with a [`fd_trace::Phase::StaticPass`] sub-span per
/// analysis pass. With a disabled tracer this *is* `extract` — same code
/// path, zero records.
pub fn extract_traced(
    app: &AndroidApp,
    provided_inputs: &BTreeMap<String, String>,
    tracer: &fd_trace::Tracer,
) -> StaticInfo {
    use fd_trace::Phase;
    let _extract = tracer.span(Phase::Static, "static-extract");
    let (activities, fragments) = {
        let _span = tracer.span(Phase::StaticPass, "effective-elements");
        let activities = effective::effective_activities(app);
        let fragments = effective::effective_fragments(app, &activities);
        (activities, fragments)
    };
    let aftm = {
        let _span = tracer.span(Phase::StaticPass, "aftm-init");
        aftm_init::build_aftm(app, &activities, &fragments)
    };
    // Isolated-activity removal: drop activities with no edges at all.
    let activities = {
        let _span = tracer.span(Phase::StaticPass, "drop-isolated");
        effective::drop_isolated(&aftm, activities, app)
    };
    let af_dependency = {
        let _span = tracer.span(Phase::StaticPass, "af-dependency");
        dependency::af_dependency(app, &activities, &fragments)
    };
    let resource_dep = {
        let _span = tracer.span(Phase::StaticPass, "resource-dependency");
        resource_dep::resource_dependency(app, &activities, &fragments)
    };
    let input_dep = {
        let _span = tracer.span(Phase::StaticPass, "input-dependency");
        input_dep::collect(app, provided_inputs)
    };
    StaticInfo { aftm, activities, fragments, af_dependency, resource_dep, input_dep }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_appgen::templates;

    #[test]
    fn extract_quickstart_bundle_is_coherent() {
        let gen = templates::quickstart();
        let info = extract(&gen.app, &gen.known_inputs);
        let (a, f) = info.counts();
        assert_eq!(a, 3, "Main, Settings, Account");
        assert_eq!(f, 2, "Home, Stats");
        // The AFTM has the entry set to the launcher.
        assert_eq!(info.aftm.entry().unwrap().as_str(), "com.example.quickstart.Main");
        // Every effective fragment is some activity's dependency.
        let all_deps: BTreeSet<_> = info.af_dependency.values().flatten().cloned().collect();
        for frag in &info.fragments {
            assert!(all_deps.contains(frag), "{frag} not in any dependency");
        }
    }
}
