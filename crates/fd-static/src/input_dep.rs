//! The input dependency (§V-C).
//!
//! FragDroid "introduces a new input interface which is a file containing
//! resource-IDs of all input widgets … analysts can manually fill the
//! input fields with correct values in advance, then FragDroid will use
//! these values with a preference during tests."

use fd_apk::AndroidApp;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The input-dependency file: every input widget's resource-ID, with the
/// analyst-provided values where known.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputDependency {
    /// Resource-IDs of all input widgets found in the app's layouts.
    pub input_widgets: BTreeSet<String>,
    /// Correct values for the subset the analyst filled in.
    pub values: BTreeMap<String, String>,
    /// Candidate inputs harvested from the app's own UI strings — the
    /// §VIII extension: many apps leak usable values (defaults, examples,
    /// onboarding hints) in their layouts.
    #[serde(default)]
    pub harvested: BTreeSet<String>,
}

impl InputDependency {
    /// The value to type into a widget: the provided value, or the
    /// fallback string FragDroid uses for unknown fields.
    pub fn value_for(&self, widget_id: &str) -> &str {
        self.values.get(widget_id).map(String::as_str).unwrap_or("abc")
    }

    /// Whether the analyst provided a value for this widget.
    pub fn is_known(&self, widget_id: &str) -> bool {
        self.values.contains_key(widget_id)
    }

    /// Serializes to the JSON file format.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses the JSON file format.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Scans the app's layouts for input widgets and merges the provided
/// values (keeping only values for widgets that actually exist). Every
/// non-empty display string of the UI is harvested as a candidate input.
pub fn collect(app: &AndroidApp, provided: &BTreeMap<String, String>) -> InputDependency {
    let mut input_widgets = BTreeSet::new();
    let mut harvested = BTreeSet::new();
    for layout in app.layouts.values() {
        for widget in layout.root.iter() {
            if widget.kind.is_input() {
                if let Some(id) = &widget.id {
                    input_widgets.insert(id.clone());
                }
            }
            if !widget.text.is_empty() {
                harvested.insert(widget.text.clone());
            }
        }
    }
    let values = provided
        .iter()
        .filter(|(k, _)| input_widgets.contains(*k))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    InputDependency { input_widgets, values, harvested }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_appgen::templates;

    #[test]
    fn collect_finds_edit_texts_and_filters_values() {
        let gen = templates::quickstart();
        let mut provided = gen.known_inputs.clone();
        provided.insert("nonexistent_widget".into(), "x".into());
        let dep = collect(&gen.app, &provided);
        assert!(dep.input_widgets.contains("input_settings_0"));
        assert!(dep.is_known("input_settings_0"));
        assert!(!dep.values.contains_key("nonexistent_widget"));
    }

    #[test]
    fn unknown_fields_get_the_fallback() {
        let dep = InputDependency::default();
        assert_eq!(dep.value_for("whatever"), "abc");
    }

    #[test]
    fn json_roundtrip() {
        let gen = templates::quickstart();
        let dep = collect(&gen.app, &gen.known_inputs);
        let back = InputDependency::from_json(&dep.to_json().unwrap()).unwrap();
        assert_eq!(back, dep);
    }
}
