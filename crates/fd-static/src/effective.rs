//! Effective activities and fragments (§IV-B2).
//!
//! "Invalid Activities include the Activities involved in intermediate
//! classes as well as isolated Activities." The manifest provides the
//! activity list (which already excludes intermediate classes); isolated
//! activities are removed after the transition edges are known.
//!
//! Fragments are found in two passes: first every class whose inheritance
//! chain reaches a framework Fragment class, then the list is filtered to
//! those actually *stated* (referenced) from an effective activity or
//! another effective fragment.

use fd_aftm::{Aftm, NodeId};
use fd_apk::AndroidApp;
use fd_smali::{visit, ClassName};
use std::collections::BTreeSet;

/// All manifest-declared activities whose class exists in the pool.
pub fn effective_activities(app: &AndroidApp) -> BTreeSet<ClassName> {
    app.manifest
        .activities
        .iter()
        .filter(|d| app.classes.contains(d.name.as_str()))
        .map(|d| d.name.clone())
        .collect()
}

/// Two-pass fragment discovery followed by the reference filter.
pub fn effective_fragments(
    app: &AndroidApp,
    activities: &BTreeSet<ClassName>,
) -> BTreeSet<ClassName> {
    // Pass 1+2: all (transitive) subclasses of the framework fragments.
    let candidates: BTreeSet<ClassName> = app
        .classes
        .subclasses_of_any([fd_smali::well_known::FRAGMENT, fd_smali::well_known::SUPPORT_FRAGMENT])
        .into_iter()
        .map(|c| c.name.clone())
        .collect();

    // Filter: a fragment is effective if a statement of it appears in an
    // effective activity (or its inner classes), or — transitively — in an
    // already-effective fragment.
    let mut effective: BTreeSet<ClassName> = BTreeSet::new();
    let mut frontier: Vec<ClassName> = Vec::new();
    for activity in activities {
        for class in app.classes.with_inner_classes(activity.as_str()) {
            for referenced in visit::referenced_classes(class) {
                if candidates.contains(&referenced) && effective.insert(referenced.clone()) {
                    frontier.push(referenced);
                }
            }
        }
    }
    while let Some(fragment) = frontier.pop() {
        for class in app.classes.with_inner_classes(fragment.as_str()) {
            for referenced in visit::referenced_classes(class) {
                if candidates.contains(&referenced) && effective.insert(referenced.clone()) {
                    frontier.push(referenced);
                }
            }
        }
    }
    effective
}

/// Removes isolated activities: nodes linked by no edge at all. The
/// launcher is always kept (it is the entry even if the app has a single
/// screen).
pub fn drop_isolated(
    aftm: &Aftm,
    activities: BTreeSet<ClassName>,
    app: &AndroidApp,
) -> BTreeSet<ClassName> {
    let launcher = app.manifest.launcher_activity().map(|d| d.name.clone());
    activities
        .into_iter()
        .filter(|a| {
            if launcher.as_ref() == Some(a) {
                return true;
            }
            let node = NodeId::Activity(a.clone());
            let has_out = aftm.edges_from(&node).next().is_some();
            let has_in = aftm.edges().any(|e| e.to == node);
            has_out || has_in
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_apk::{ActivityDecl, Manifest};
    use fd_smali::{well_known, ClassDef, MethodDef, Stmt};

    fn app() -> AndroidApp {
        let mut app = AndroidApp::new(
            Manifest::new("t")
                .with_activity(ActivityDecl::new("t.Main").launcher())
                .with_activity(ActivityDecl::new("t.Lonely"))
                .with_activity(ActivityDecl::new("t.Ghost")), // no class
        );
        app.classes.insert(
            ClassDef::new("t.Main", well_known::ACTIVITY)
                .with_method(MethodDef::new("onCreate").push(Stmt::NewInstance("t.FragA".into()))),
        );
        app.classes.insert(ClassDef::new("t.Lonely", well_known::ACTIVITY));
        // FragA references FragB; FragC is never referenced.
        app.classes.insert(ClassDef::new("t.FragA", well_known::SUPPORT_FRAGMENT).with_method(
            MethodDef::new("onCreateView").push(Stmt::NewInstanceStatic("t.FragB".into())),
        ));
        app.classes.insert(ClassDef::new("t.FragB", "t.FragA"));
        app.classes.insert(ClassDef::new("t.FragC", well_known::FRAGMENT));
        // A helper that is NOT a fragment.
        app.classes.insert(ClassDef::new("t.Helper", well_known::OBJECT));
        app
    }

    #[test]
    fn activities_require_declared_class() {
        let a = effective_activities(&app());
        assert!(a.contains("t.Main"));
        assert!(a.contains("t.Lonely"));
        assert!(!a.contains("t.Ghost"), "no class → not effective");
    }

    #[test]
    fn fragments_found_transitively_but_only_if_stated() {
        let application = app();
        let acts = effective_activities(&application);
        let frags = effective_fragments(&application, &acts);
        assert!(frags.contains("t.FragA"), "referenced from Main");
        assert!(frags.contains("t.FragB"), "referenced from FragA");
        assert!(!frags.contains("t.FragC"), "never stated anywhere");
        assert!(!frags.contains("t.Helper"), "not a fragment subclass");
    }

    #[test]
    fn isolated_activities_are_dropped_but_launcher_kept() {
        let application = app();
        let acts = effective_activities(&application);
        let mut aftm = Aftm::new();
        aftm.set_entry("t.Main");
        let kept = drop_isolated(&aftm, acts, &application);
        assert!(kept.contains("t.Main"), "launcher survives even without edges");
        assert!(!kept.contains("t.Lonely"), "isolated activity removed");
    }
}
