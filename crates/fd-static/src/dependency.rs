//! Algorithm 2: Activity & Fragment dependency.
//!
//! For every activity, collect the classes used by the activity and its
//! inner classes; any used class whose inheritance chain reaches
//! `android.app.Fragment` or `android.support.v4.app.Fragment` is a
//! dependency of that activity.

use fd_apk::AndroidApp;
use fd_smali::{visit, ClassName};
use std::collections::{BTreeMap, BTreeSet};

/// Computes the activity → fragments dependency relation.
pub fn af_dependency(
    app: &AndroidApp,
    activities: &BTreeSet<ClassName>,
    fragments: &BTreeSet<ClassName>,
) -> BTreeMap<ClassName, BTreeSet<ClassName>> {
    let mut relation: BTreeMap<ClassName, BTreeSet<ClassName>> = BTreeMap::new();
    for activity in activities {
        let mut deps = BTreeSet::new();
        // getInnerClass(a): the activity plus its inner classes.
        for class in app.classes.with_inner_classes(activity.as_str()) {
            // getUsedClass(aClass) + getSuperChain(Class) membership test.
            for used in visit::referenced_classes(class) {
                if app.classes.is_fragment_class(used.as_str()) && fragments.contains(&used) {
                    deps.insert(used);
                }
            }
        }
        relation.insert(activity.clone(), deps);
    }
    relation
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_apk::{ActivityDecl, Manifest};
    use fd_smali::{well_known, ClassDef, MethodDef, Stmt};

    #[test]
    fn inner_class_references_count_and_non_fragments_do_not() {
        let mut app = AndroidApp::new(
            Manifest::new("t").with_activity(ActivityDecl::new("t.Main").launcher()),
        );
        app.classes.insert(ClassDef::new("t.Main", well_known::ACTIVITY));
        // The listener inner class references the fragment.
        app.classes.insert(
            ClassDef::new("t.Main$1", well_known::OBJECT).with_method(
                MethodDef::new("onClick")
                    .push(Stmt::NewInstance("t.TabFragment".into()))
                    .push(Stmt::NewInstance("t.Helper".into())),
            ),
        );
        app.classes.insert(ClassDef::new("t.TabFragment", well_known::SUPPORT_FRAGMENT));
        app.classes.insert(ClassDef::new("t.Helper", well_known::OBJECT));

        let activities: BTreeSet<ClassName> = [ClassName::new("t.Main")].into_iter().collect();
        let fragments: BTreeSet<ClassName> =
            [ClassName::new("t.TabFragment")].into_iter().collect();
        let rel = af_dependency(&app, &activities, &fragments);
        let deps = &rel[&ClassName::new("t.Main")];
        assert!(deps.contains("t.TabFragment"));
        assert!(!deps.contains("t.Helper"));
    }

    #[test]
    fn derived_fragment_classes_are_dependencies() {
        // BaseFrag ← NewsFrag: referencing the *derived* class makes it a
        // dependency because its chain reaches the framework Fragment.
        let mut app = AndroidApp::new(
            Manifest::new("t").with_activity(ActivityDecl::new("t.Main").launcher()),
        );
        app.classes.insert(ClassDef::new("t.Main", well_known::ACTIVITY).with_method(
            MethodDef::new("onCreate").push(Stmt::NewInstanceStatic("t.NewsFrag".into())),
        ));
        app.classes.insert(ClassDef::new("t.BaseFrag", well_known::FRAGMENT));
        app.classes.insert(ClassDef::new("t.NewsFrag", "t.BaseFrag"));

        let activities: BTreeSet<ClassName> = [ClassName::new("t.Main")].into_iter().collect();
        let fragments: BTreeSet<ClassName> = [ClassName::new("t.NewsFrag")].into_iter().collect();
        let rel = af_dependency(&app, &activities, &fragments);
        assert!(rel[&ClassName::new("t.Main")].contains("t.NewsFrag"));
    }

    #[test]
    fn activities_without_fragments_have_empty_dependency() {
        let mut app = AndroidApp::new(
            Manifest::new("t").with_activity(ActivityDecl::new("t.Plain").launcher()),
        );
        app.classes.insert(ClassDef::new("t.Plain", well_known::ACTIVITY));
        let activities: BTreeSet<ClassName> = [ClassName::new("t.Plain")].into_iter().collect();
        let rel = af_dependency(&app, &activities, &BTreeSet::new());
        assert!(rel[&ClassName::new("t.Plain")].is_empty());
    }
}
