//! Algorithm 3: resource dependency.
//!
//! For every widget declared in a layout, decide which activity or
//! fragment owns it: the class must (a) reference the widget's resource-ID
//! in code and (b) inflate the layout the widget appears in. Activities
//! are checked first, then fragments; widgets not referenced from any code
//! file are non-interaction widgets and are ruled out.

use fd_apk::AndroidApp;
use fd_smali::{visit, ClassName, ResKind, ResRef, Stmt};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The owner of a widget.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UiOwner {
    /// Owned by an activity's code.
    Activity(ClassName),
    /// Owned by a fragment's code.
    Fragment(ClassName),
}

impl UiOwner {
    /// The owning class, either way.
    pub fn class(&self) -> &ClassName {
        match self {
            UiOwner::Activity(c) | UiOwner::Fragment(c) => c,
        }
    }
}

/// The widget → owner map plus the layout → inflating-classes map — the
/// JSON meta-data file of §III ("a JSON file that records all view
/// components and the locations they appear").
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceDependency {
    /// Widget resource-ID name → owner.
    pub owners: BTreeMap<String, UiOwner>,
    /// Layout name → classes that inflate it.
    pub layout_users: BTreeMap<String, BTreeSet<ClassName>>,
}

impl ResourceDependency {
    /// The owner of a widget, if known.
    pub fn owner_of(&self, widget_id: &str) -> Option<&UiOwner> {
        self.owners.get(widget_id)
    }

    /// Identifies the fragment-level UI state from a set of visible widget
    /// IDs: the distinct owners seen. This is how the UI-driving module
    /// distinguishes "which Activity or Fragment the current UI belongs
    /// to through source-IDs".
    pub fn identify<'a>(
        &self,
        visible_ids: impl IntoIterator<Item = &'a str>,
    ) -> BTreeSet<&UiOwner> {
        visible_ids.into_iter().filter_map(|id| self.owners.get(id)).collect()
    }
}

/// The resource-IDs a class's code references (`getAID` / `getFID`), and
/// the layouts it inflates.
fn class_refs(app: &AndroidApp, class: &str) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut ids = BTreeSet::new();
    let mut layouts = BTreeSet::new();
    for c in app.classes.with_inner_classes(class) {
        visit::walk_class(c, &mut |stmt| {
            if let Stmt::SetContentView(r) | Stmt::InflateLayout(r) = stmt {
                layouts.insert(r.name.clone());
            }
            for r in stmt.res_refs() {
                if r.kind == ResKind::Id {
                    ids.insert(r.name.clone());
                }
            }
        });
    }
    (ids, layouts)
}

/// Computes the resource dependency for the whole app.
pub fn resource_dependency(
    app: &AndroidApp,
    activities: &BTreeSet<ClassName>,
    fragments: &BTreeSet<ClassName>,
) -> ResourceDependency {
    let mut dep = ResourceDependency::default();

    let act_refs: Vec<(&ClassName, BTreeSet<String>, BTreeSet<String>)> = activities
        .iter()
        .map(|a| {
            let (ids, layouts) = class_refs(app, a.as_str());
            (a, ids, layouts)
        })
        .collect();
    let frag_refs: Vec<(&ClassName, BTreeSet<String>, BTreeSet<String>)> = fragments
        .iter()
        .map(|f| {
            let (ids, layouts) = class_refs(app, f.as_str());
            (f, ids, layouts)
        })
        .collect();

    for (class, _, layouts) in act_refs.iter().chain(&frag_refs) {
        for layout in layouts {
            dep.layout_users.entry(layout.clone()).or_default().insert((*class).clone());
        }
    }

    for layout in app.layouts.values() {
        for widget in layout.root.iter() {
            let Some(id) = &widget.id else { continue };
            // Activities first.
            let found = act_refs
                .iter()
                .find(|(_, ids, layouts)| ids.contains(id) && layouts.contains(&layout.name))
                .map(|(a, ..)| UiOwner::Activity((*a).clone()))
                .or_else(|| {
                    frag_refs
                        .iter()
                        .find(|(_, ids, layouts)| {
                            ids.contains(id) && layouts.contains(&layout.name)
                        })
                        .map(|(f, ..)| UiOwner::Fragment((*f).clone()))
                });
            if let Some(owner) = found {
                dep.owners.insert(id.clone(), owner);
            }
            // else: a non-interaction widget not declared in code — ruled out.
        }
    }
    dep
}

/// Interns every owner's resource-ID through the numeric table, returning
/// `(numeric id, owner)` pairs — the form the paper's JSON file stores.
pub fn numeric_view(app: &AndroidApp, dep: &ResourceDependency) -> Vec<(u32, String, UiOwner)> {
    dep.owners
        .iter()
        .filter_map(|(id, owner)| {
            app.resources.id_of(&ResRef::id(id)).map(|num| (num, id.clone(), owner.clone()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effective;
    use fd_appgen::templates;

    fn dep_of(gen: &fd_appgen::GeneratedApp) -> ResourceDependency {
        let acts = effective::effective_activities(&gen.app);
        let frags = effective::effective_fragments(&gen.app, &acts);
        resource_dependency(&gen.app, &acts, &frags)
    }

    #[test]
    fn widgets_are_attributed_to_their_defining_class() {
        let gen = templates::quickstart();
        let dep = dep_of(&gen);
        let p = "com.example.quickstart";
        // The drawer hamburger is wired in Main's onCreate.
        assert_eq!(
            dep.owner_of("hamburger_main"),
            Some(&UiOwner::Activity(format!("{p}.Main").into()))
        );
        // The fragment's own button belongs to the fragment.
        assert_eq!(
            dep.owner_of("fbtn_homefragment_settings"),
            Some(&UiOwner::Fragment(format!("{p}.HomeFragment").into()))
        );
    }

    #[test]
    fn non_interaction_widgets_are_ruled_out() {
        let gen = templates::quickstart();
        let dep = dep_of(&gen);
        // Filler TextViews have no ID at all; the root Group has an ID but
        // is never referenced from code.
        assert!(dep.owner_of("root_main").is_none());
    }

    #[test]
    fn identify_reports_fragment_level_state() {
        let gen = templates::quickstart();
        let dep = dep_of(&gen);
        let owners = dep.identify(["hamburger_main", "fbtn_homefragment_settings"]);
        assert_eq!(owners.len(), 2);
        assert!(owners.iter().any(|o| matches!(o, UiOwner::Activity(_))));
        assert!(owners.iter().any(|o| matches!(o, UiOwner::Fragment(_))));
    }

    #[test]
    fn numeric_view_round_trips_through_resource_table() {
        let gen = templates::quickstart();
        let dep = dep_of(&gen);
        let rows = numeric_view(&gen.app, &dep);
        assert_eq!(rows.len(), dep.owners.len());
        for (num, name, _) in rows {
            assert_eq!(gen.app.resources.res_of(num).map(|r| r.name.as_str()), Some(name.as_str()));
        }
    }

    #[test]
    fn layout_users_maps_layouts_to_inflaters() {
        let gen = templates::quickstart();
        let dep = dep_of(&gen);
        let users = &dep.layout_users["lay_main"];
        assert!(users.iter().any(|c| c.as_str().ends_with(".Main")));
    }
}
