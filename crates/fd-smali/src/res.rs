//! Symbolic resource references (`@id/login_button`, `@layout/main`).
//!
//! Android identifies resources by a unique numeric resource-ID; the
//! decompiled code and layout files reference them symbolically. The
//! paper's Algorithm 3 (resource dependency) matches the IDs that appear
//! in both layouts and code. In this reproduction the symbolic form plays
//! the role of the numeric ID; `fd-apk`'s resource table assigns the
//! numeric values when an app is packed.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The namespace a resource reference lives in, mirroring the `R.<kind>`
/// classes of a real app.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResKind {
    /// A widget identifier (`R.id.*`).
    Id,
    /// A layout file (`R.layout.*`).
    Layout,
    /// A menu resource (`R.menu.*`).
    Menu,
    /// A string resource (`R.string.*`).
    String,
}

impl ResKind {
    /// The lowercase namespace token used in the textual syntax.
    pub fn token(self) -> &'static str {
        match self {
            ResKind::Id => "id",
            ResKind::Layout => "layout",
            ResKind::Menu => "menu",
            ResKind::String => "string",
        }
    }

    /// Parses the namespace token.
    pub fn from_token(tok: &str) -> Option<Self> {
        Some(match tok {
            "id" => ResKind::Id,
            "layout" => ResKind::Layout,
            "menu" => ResKind::Menu,
            "string" => ResKind::String,
            _ => return None,
        })
    }
}

/// A symbolic resource reference, printed as `@kind/name`.
///
/// # Example
///
/// ```
/// use fd_smali::{ResKind, ResRef};
///
/// let r = ResRef::id("login_button");
/// assert_eq!(r.kind, ResKind::Id);
/// assert_eq!(r.to_string(), "@id/login_button");
/// assert_eq!(ResRef::parse("@id/login_button"), Some(r));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResRef {
    /// The resource namespace.
    pub kind: ResKind,
    /// The symbolic entry name.
    pub name: String,
}

impl ResRef {
    /// Creates a reference in the given namespace.
    pub fn new(kind: ResKind, name: impl Into<String>) -> Self {
        ResRef { kind, name: name.into() }
    }

    /// Shorthand for an `@id/...` reference.
    pub fn id(name: impl Into<String>) -> Self {
        ResRef::new(ResKind::Id, name)
    }

    /// Shorthand for an `@layout/...` reference.
    pub fn layout(name: impl Into<String>) -> Self {
        ResRef::new(ResKind::Layout, name)
    }

    /// Shorthand for an `@menu/...` reference.
    pub fn menu(name: impl Into<String>) -> Self {
        ResRef::new(ResKind::Menu, name)
    }

    /// Parses the `@kind/name` form.
    pub fn parse(s: &str) -> Option<Self> {
        let rest = s.strip_prefix('@')?;
        let (kind, name) = rest.split_once('/')?;
        if name.is_empty() {
            return None;
        }
        Some(ResRef::new(ResKind::from_token(kind)?, name))
    }
}

impl fmt::Display for ResRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}/{}", self.kind.token(), self.name)
    }
}

impl fmt::Debug for ResRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ResRef({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        for r in [
            ResRef::id("a"),
            ResRef::layout("main"),
            ResRef::menu("drawer"),
            ResRef::new(ResKind::String, "title"),
        ] {
            assert_eq!(ResRef::parse(&r.to_string()), Some(r));
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(ResRef::parse("id/a"), None);
        assert_eq!(ResRef::parse("@id"), None);
        assert_eq!(ResRef::parse("@id/"), None);
        assert_eq!(ResRef::parse("@nope/a"), None);
    }
}
