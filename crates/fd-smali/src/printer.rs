//! Pretty-printer for the textual smali-like syntax.
//!
//! The emitted text is the "decompiled output" of the reproduction's
//! Apktool stage; [`crate::parser`] parses it back. Printing followed by
//! parsing is the identity on well-formed [`ClassDef`]s (property-tested).

use crate::class::{ClassDef, MethodDef};
use crate::lexer::escape;
use crate::stmt::{Cond, IntentTarget, Stmt};
use std::fmt::Write;

/// Renders a full class definition.
pub fn print_class(class: &ClassDef) -> String {
    let mut out = String::new();
    print_class_into(&mut out, class);
    out
}

/// [`print_class`] appending into an existing buffer — callers printing
/// a whole class pool reuse one allocation instead of one per class.
pub fn print_class_into(out: &mut String, class: &ClassDef) {
    let abs = if class.is_abstract { " abstract" } else { "" };
    let _ = writeln!(out, ".class {}{} {}", class.visibility.token(), abs, class.name.descriptor());
    let _ = writeln!(out, ".super {}", class.super_class.descriptor());
    for iface in &class.interfaces {
        let _ = writeln!(out, ".implements {}", iface.descriptor());
    }
    for field in &class.fields {
        let _ = writeln!(out, ".field {} {}", field.name, field.ty);
    }
    for method in &class.methods {
        print_method(out, method);
    }
    out.push_str(".end class\n");
}

fn print_method(out: &mut String, method: &MethodDef) {
    let _ = writeln!(
        out,
        ".method {} {}({})",
        method.visibility.token(),
        method.name,
        method.params.join(",")
    );
    print_stmts(out, &method.body, 1);
    out.push_str(".end method\n");
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_stmts(out: &mut String, stmts: &[Stmt], depth: usize) {
    for stmt in stmts {
        print_stmt(out, stmt, depth);
    }
}

fn print_cond(cond: &Cond) -> String {
    match cond {
        Cond::InputEquals { field, expected } => {
            format!("input-equals {field} {}", escape(expected))
        }
        Cond::InputNonEmpty { field } => format!("input-non-empty {field}"),
        Cond::HasExtra { key } => format!("has-extra {}", escape(key)),
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    indent(out, depth);
    match stmt {
        Stmt::SetContentView(r) => {
            let _ = writeln!(out, "set-content-view {r}");
        }
        Stmt::InflateLayout(r) => {
            let _ = writeln!(out, "inflate {r}");
        }
        Stmt::FindViewById(r) => {
            let _ = writeln!(out, "find-view {r}");
        }
        Stmt::SetOnClick { widget, handler } => {
            let _ = writeln!(out, "set-on-click {widget} {handler}");
        }
        Stmt::NewIntent(IntentTarget::Class(c)) => {
            let _ = writeln!(out, "new-intent-class {}", c.descriptor());
        }
        Stmt::NewIntent(IntentTarget::Action(a)) => {
            let _ = writeln!(out, "new-intent-action {}", escape(a));
        }
        Stmt::SetClass(c) => {
            let _ = writeln!(out, "set-class {}", c.descriptor());
        }
        Stmt::SetAction(a) => {
            let _ = writeln!(out, "set-action {}", escape(a));
        }
        Stmt::PutExtra { key, value } => {
            let _ = writeln!(out, "put-extra {} {}", escape(key), escape(value));
        }
        Stmt::StartActivity { via_host: false } => {
            let _ = writeln!(out, "start-activity");
        }
        Stmt::StartActivity { via_host: true } => {
            let _ = writeln!(out, "start-activity-via-host");
        }
        Stmt::RequireExtra { key } => {
            let _ = writeln!(out, "require-extra {}", escape(key));
        }
        Stmt::RequirePermission { permission } => {
            let _ = writeln!(out, "require-permission {}", escape(permission));
        }
        Stmt::NewInstance(c) => {
            let _ = writeln!(out, "new-instance {}", c.descriptor());
        }
        Stmt::NewInstanceStatic(c) => {
            let _ = writeln!(out, "new-instance-static {}", c.descriptor());
        }
        Stmt::InstanceOf(c) => {
            let _ = writeln!(out, "instance-of {}", c.descriptor());
        }
        Stmt::GetFragmentManager { support: false } => {
            let _ = writeln!(out, "get-fragment-manager");
        }
        Stmt::GetFragmentManager { support: true } => {
            let _ = writeln!(out, "get-support-fragment-manager");
        }
        Stmt::BeginTransaction => {
            let _ = writeln!(out, "begin-transaction");
        }
        Stmt::TxnAdd { container, fragment } => {
            let _ = writeln!(out, "txn-add {container} {}", fragment.descriptor());
        }
        Stmt::TxnReplace { container, fragment } => {
            let _ = writeln!(out, "txn-replace {container} {}", fragment.descriptor());
        }
        Stmt::TxnCommit => {
            let _ = writeln!(out, "txn-commit");
        }
        Stmt::AttachDirect { container, fragment } => {
            let _ = writeln!(out, "attach-direct {container} {}", fragment.descriptor());
        }
        Stmt::ToggleDrawer { drawer } => {
            let _ = writeln!(out, "toggle-drawer {drawer}");
        }
        Stmt::ShowDialog { id } => {
            let _ = writeln!(out, "show-dialog {}", escape(id));
        }
        Stmt::ShowPopupMenu { id } => {
            let _ = writeln!(out, "show-popup-menu {}", escape(id));
        }
        Stmt::InvokeApi { group, name } => {
            let _ = writeln!(out, "invoke-api {group}/{name}");
        }
        Stmt::InvokeMethod { class, method } => {
            let _ = writeln!(out, "invoke {} {}", class.descriptor(), method);
        }
        Stmt::Finish => {
            let _ = writeln!(out, "finish");
        }
        Stmt::Crash { reason } => {
            let _ = writeln!(out, "crash {}", escape(reason));
        }
        Stmt::If { cond, then, els } => {
            let _ = writeln!(out, "if {}", print_cond(cond));
            print_stmts(out, then, depth + 1);
            if !els.is_empty() {
                indent(out, depth);
                out.push_str("else\n");
                print_stmts(out, els, depth + 1);
            }
            indent(out, depth);
            out.push_str("end-if\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::ClassName;
    use crate::res::ResRef;

    #[test]
    fn prints_figure3_shape() {
        // The paper's Fig. 3: obtain a FragmentTransaction and add a fragment.
        let class = ClassDef::new("com.example.Main", crate::well_known::ACTIVITY).with_method(
            MethodDef::new("onCreate")
                .push(Stmt::GetFragmentManager { support: false })
                .push(Stmt::BeginTransaction)
                .push(Stmt::TxnAdd {
                    container: ResRef::id("fragment_container"),
                    fragment: ClassName::new("com.example.ExampleFragment"),
                })
                .push(Stmt::TxnCommit),
        );
        let text = print_class(&class);
        assert!(text.contains(".class public Lcom/example/Main;"));
        assert!(text.contains("get-fragment-manager"));
        assert!(text.contains("txn-add @id/fragment_container Lcom/example/ExampleFragment;"));
        assert!(text.ends_with(".end class\n"));
    }

    #[test]
    fn prints_nested_if_blocks() {
        let class = ClassDef::new("a.B", "java.lang.Object").with_method(MethodDef::new("m").push(
            Stmt::If {
                cond: Cond::HasExtra { key: "k".into() },
                then: vec![Stmt::Finish],
                els: vec![Stmt::Crash { reason: "missing".into() }],
            },
        ));
        let text = print_class(&class);
        let expected = "    if has-extra \"k\"\n        finish\n    else\n        crash \"missing\"\n    end-if\n";
        assert!(text.contains(expected), "got:\n{text}");
    }
}
