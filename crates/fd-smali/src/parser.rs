//! Parser for the textual smali-like syntax emitted by [`crate::printer`].

use crate::class::{ClassDef, FieldDef, MethodDef, Visibility};
use crate::error::ParseError;
use crate::lexer::{tokenize_into, Token};
use crate::name::{ClassName, MethodName};
use crate::res::{ResKind, ResRef};
use crate::stmt::{Cond, IntentTarget, Stmt};

/// Parses one `.class … .end class` definition.
pub fn parse_class(text: &str) -> Result<ClassDef, ParseError> {
    let mut classes = parse_classes(text)?;
    match classes.len() {
        1 => Ok(classes.remove(0)),
        0 => Err(ParseError::new(1, "no class definition found")),
        n => Err(ParseError::new(1, format!("expected one class, found {n}"))),
    }
}

/// Parses a file that may contain several class definitions.
pub fn parse_classes(text: &str) -> Result<Vec<ClassDef>, ParseError> {
    let mut lines = Lines::new(text);
    let mut interner = Interner::default();
    let mut classes = Vec::new();
    while let Some((line_no, tokens)) = lines.next_nonempty()? {
        let head = expect_word_at(&tokens, 0, line_no)?;
        if head != ".class" {
            return Err(ParseError::new(line_no, format!("expected '.class', found '{head}'")));
        }
        classes.push(parse_class_body(&mut lines, &mut interner, &tokens, line_no)?);
        lines.recycle(tokens);
    }
    Ok(classes)
}

/// String interner for class and method names: one file mentions the same
/// descriptor over and over (every `new-intent-class`, `txn-add`, `invoke`
/// repeats its target), so the first mention allocates the `Arc<str>` and
/// every later one is a refcount bump. Keys borrow from the input text,
/// which outlives the parse.
#[derive(Default)]
struct Interner<'a> {
    classes: std::collections::HashMap<&'a str, ClassName, FnvBuild>,
    methods: std::collections::HashMap<&'a str, MethodName, FnvBuild>,
}

/// FNV-1a as the interner's hasher: the keys are short descriptor
/// strings hashed once per mention, where SipHash's per-call setup cost
/// outweighs its distribution advantages.
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvBuild = std::hash::BuildHasherDefault<Fnv>;

impl<'a> Interner<'a> {
    /// The [`ClassName`] for a smali descriptor, cached per spelling.
    fn class(&mut self, descriptor: &'a str, line_no: usize) -> Result<ClassName, ParseError> {
        if let Some(name) = self.classes.get(descriptor) {
            return Ok(name.clone());
        }
        let name = ClassName::from_descriptor(descriptor).ok_or_else(|| {
            ParseError::new(line_no, format!("malformed class descriptor '{descriptor}'"))
        })?;
        self.classes.insert(descriptor, name.clone());
        Ok(name)
    }

    /// The [`MethodName`] for a raw name, cached per spelling.
    fn method(&mut self, name: &'a str) -> MethodName {
        self.methods.entry(name).or_insert_with(|| MethodName::new(name)).clone()
    }
}

/// Cursor over the non-empty, tokenized lines of the input.
struct Lines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
    /// Retired token buffers, reused by [`Lines::next_nonempty`] so the
    /// parse loop allocates O(nesting) vectors instead of one per line.
    spare: Vec<Vec<Token<'a>>>,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Lines { iter: text.lines().enumerate(), spare: Vec::new() }
    }

    /// Next line with at least one token (skipping blanks and comments),
    /// as `(1-based line number, tokens)`. Callers hand finished buffers
    /// back via [`Lines::recycle`].
    fn next_nonempty(&mut self) -> Result<Option<(usize, Vec<Token<'a>>)>, ParseError> {
        let mut tokens = self.spare.pop().unwrap_or_default();
        for (idx, raw) in self.iter.by_ref() {
            let line_no = idx + 1;
            tokens.clear();
            tokenize_into(raw, line_no, &mut tokens)?;
            if !tokens.is_empty() {
                return Ok(Some((line_no, tokens)));
            }
        }
        self.spare.push(tokens);
        Ok(None)
    }

    /// Returns a token buffer to the pool once its line is consumed.
    fn recycle(&mut self, tokens: Vec<Token<'a>>) {
        self.spare.push(tokens);
    }
}

fn expect_word_at<'a>(
    tokens: &[Token<'a>],
    idx: usize,
    line_no: usize,
) -> Result<&'a str, ParseError> {
    tokens
        .get(idx)
        .and_then(Token::as_word)
        .ok_or_else(|| ParseError::new(line_no, format!("expected word at position {idx}")))
}

fn expect_class_at<'a>(
    tokens: &[Token<'a>],
    idx: usize,
    line_no: usize,
    interner: &mut Interner<'a>,
) -> Result<ClassName, ParseError> {
    let word = expect_word_at(tokens, idx, line_no)?;
    interner.class(word, line_no)
}

/// Moves the [`ResRef`] out of position `idx` (the token buffer is about
/// to be recycled, so taking the value saves a clone per reference).
fn expect_res_at(
    tokens: &mut [Token<'_>],
    idx: usize,
    line_no: usize,
) -> Result<ResRef, ParseError> {
    match tokens.get_mut(idx) {
        Some(Token::Res(r)) => {
            Ok(std::mem::replace(r, ResRef { kind: ResKind::Id, name: String::new() }))
        }
        _ => Err(ParseError::new(line_no, format!("expected resource ref at position {idx}"))),
    }
}

/// Moves the string literal out of position `idx`; only borrows allocate.
fn expect_str_at(
    tokens: &mut [Token<'_>],
    idx: usize,
    line_no: usize,
) -> Result<String, ParseError> {
    match tokens.get_mut(idx) {
        Some(Token::Str(s)) => {
            Ok(std::mem::replace(s, std::borrow::Cow::Borrowed("")).into_owned())
        }
        _ => Err(ParseError::new(line_no, format!("expected string literal at position {idx}"))),
    }
}

fn expect_len(tokens: &[Token<'_>], len: usize, line_no: usize) -> Result<(), ParseError> {
    if tokens.len() == len {
        Ok(())
    } else {
        Err(ParseError::new(line_no, format!("expected {len} tokens, found {}", tokens.len())))
    }
}

fn parse_class_body<'a>(
    lines: &mut Lines<'a>,
    interner: &mut Interner<'a>,
    header: &[Token<'a>],
    header_line: usize,
) -> Result<ClassDef, ParseError> {
    // .class <visibility> [abstract] <descriptor>
    let visibility = Visibility::from_token(expect_word_at(header, 1, header_line)?)
        .ok_or_else(|| ParseError::new(header_line, "expected visibility after '.class'"))?;
    let (is_abstract, name_idx) = match header.get(2).and_then(Token::as_word) {
        Some("abstract") => (true, 3),
        _ => (false, 2),
    };
    let name = expect_class_at(header, name_idx, header_line, interner)?;
    expect_len(header, name_idx + 1, header_line)?;

    // .super is mandatory and must come first.
    let (line_no, tokens) = lines
        .next_nonempty()?
        .ok_or_else(|| ParseError::new(header_line, "missing '.super' line"))?;
    if expect_word_at(&tokens, 0, line_no)? != ".super" {
        return Err(ParseError::new(line_no, "expected '.super'"));
    }
    let super_class = expect_class_at(&tokens, 1, line_no, interner)?;
    expect_len(&tokens, 2, line_no)?;
    lines.recycle(tokens);

    let mut class = ClassDef {
        name,
        super_class,
        interfaces: Vec::new(),
        visibility,
        is_abstract,
        fields: Vec::new(),
        methods: Vec::new(),
    };

    loop {
        let (line_no, tokens) = lines
            .next_nonempty()?
            .ok_or_else(|| ParseError::new(header_line, "missing '.end class'"))?;
        match expect_word_at(&tokens, 0, line_no)? {
            ".end" => {
                if tokens.get(1).and_then(Token::as_word) == Some("class") {
                    return Ok(class);
                }
                return Err(ParseError::new(line_no, "expected '.end class'"));
            }
            ".implements" => {
                class.interfaces.push(expect_class_at(&tokens, 1, line_no, interner)?);
                expect_len(&tokens, 2, line_no)?;
                lines.recycle(tokens);
            }
            ".field" => {
                let name = expect_word_at(&tokens, 1, line_no)?.to_string();
                let ty = expect_word_at(&tokens, 2, line_no)?.to_string();
                expect_len(&tokens, 3, line_no)?;
                class.fields.push(FieldDef { name, ty });
                lines.recycle(tokens);
            }
            ".method" => {
                class.methods.push(parse_method(lines, interner, &tokens, line_no)?);
                lines.recycle(tokens);
            }
            other => {
                return Err(ParseError::new(
                    line_no,
                    format!("unexpected directive '{other}' in class body"),
                ))
            }
        }
    }
}

fn parse_method<'a>(
    lines: &mut Lines<'a>,
    interner: &mut Interner<'a>,
    header: &[Token<'a>],
    header_line: usize,
) -> Result<MethodDef, ParseError> {
    // .method <visibility> <name>(<params,comma-separated>)
    let visibility = Visibility::from_token(expect_word_at(header, 1, header_line)?)
        .ok_or_else(|| ParseError::new(header_line, "expected visibility after '.method'"))?;
    let sig = expect_word_at(header, 2, header_line)?;
    expect_len(header, 3, header_line)?;
    let (name, rest) = sig
        .split_once('(')
        .ok_or_else(|| ParseError::new(header_line, "missing '(' in method signature"))?;
    let params_raw = rest
        .strip_suffix(')')
        .ok_or_else(|| ParseError::new(header_line, "missing ')' in method signature"))?;
    let params: Vec<String> = if params_raw.is_empty() {
        Vec::new()
    } else {
        params_raw.split(',').map(str::to_string).collect()
    };

    let (body, terminator) = parse_stmts(lines, interner, header_line, 0)?;
    match terminator {
        Terminator::EndMethod => {}
        other => {
            return Err(ParseError::new(
                header_line,
                format!("method body ended with {other:?}, expected '.end method'"),
            ))
        }
    }
    Ok(MethodDef { name: interner.method(name), params, visibility, body })
}

/// What ended a statement block.
#[derive(Debug, PartialEq, Eq)]
enum Terminator {
    EndMethod,
    Else,
    EndIf,
}

/// Maximum `if` nesting depth. Parsing recurses per nested `if`, so an
/// adversarial input of thousands of `if` lines would otherwise overflow
/// the stack — an abort no `catch_unwind` can contain. Real handler code
/// never comes close to this.
pub const MAX_IF_DEPTH: usize = 64;

fn parse_stmts<'a>(
    lines: &mut Lines<'a>,
    interner: &mut Interner<'a>,
    start_line: usize,
    depth: usize,
) -> Result<(Vec<Stmt>, Terminator), ParseError> {
    let mut stmts = Vec::new();
    loop {
        let (line_no, mut tokens) = lines
            .next_nonempty()?
            .ok_or_else(|| ParseError::new(start_line, "unterminated statement block"))?;
        let head = expect_word_at(&tokens, 0, line_no)?;
        match head {
            ".end" => {
                if tokens.get(1).and_then(Token::as_word) == Some("method") {
                    return Ok((stmts, Terminator::EndMethod));
                }
                // `.end class` etc. are not valid inside a method; report.
                return Err(ParseError::new(line_no, "unexpected '.end' inside method body"));
            }
            "else" => return Ok((stmts, Terminator::Else)),
            "end-if" => return Ok((stmts, Terminator::EndIf)),
            "if" => {
                if depth >= MAX_IF_DEPTH {
                    return Err(ParseError::new(
                        line_no,
                        format!("'if' nesting exceeds the maximum depth of {MAX_IF_DEPTH}"),
                    ));
                }
                let cond = parse_cond(&mut tokens[1..], line_no)?;
                lines.recycle(tokens);
                let (then, term) = parse_stmts(lines, interner, line_no, depth + 1)?;
                let (els, term) = match term {
                    Terminator::Else => parse_stmts(lines, interner, line_no, depth + 1)?,
                    other => (Vec::new(), other),
                };
                if term != Terminator::EndIf {
                    return Err(ParseError::new(line_no, "missing 'end-if'"));
                }
                stmts.push(Stmt::If { cond, then, els });
            }
            _ => {
                stmts.push(parse_simple_stmt(head, &mut tokens, line_no, interner)?);
                lines.recycle(tokens);
            }
        }
    }
}

fn parse_cond(tokens: &mut [Token<'_>], line_no: usize) -> Result<Cond, ParseError> {
    let head = expect_word_at(tokens, 0, line_no)?;
    match head {
        "input-equals" => {
            expect_len(tokens, 3, line_no)?;
            Ok(Cond::InputEquals {
                field: expect_res_at(tokens, 1, line_no)?,
                expected: expect_str_at(tokens, 2, line_no)?,
            })
        }
        "input-non-empty" => {
            expect_len(tokens, 2, line_no)?;
            Ok(Cond::InputNonEmpty { field: expect_res_at(tokens, 1, line_no)? })
        }
        "has-extra" => {
            expect_len(tokens, 2, line_no)?;
            Ok(Cond::HasExtra { key: expect_str_at(tokens, 1, line_no)? })
        }
        other => Err(ParseError::new(line_no, format!("unknown condition '{other}'"))),
    }
}

fn parse_simple_stmt<'a>(
    head: &str,
    tokens: &mut [Token<'a>],
    line_no: usize,
    interner: &mut Interner<'a>,
) -> Result<Stmt, ParseError> {
    let stmt = match head {
        "set-content-view" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::SetContentView(expect_res_at(tokens, 1, line_no)?)
        }
        "inflate" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::InflateLayout(expect_res_at(tokens, 1, line_no)?)
        }
        "find-view" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::FindViewById(expect_res_at(tokens, 1, line_no)?)
        }
        "set-on-click" => {
            expect_len(tokens, 3, line_no)?;
            Stmt::SetOnClick {
                widget: expect_res_at(tokens, 1, line_no)?,
                handler: interner.method(expect_word_at(tokens, 2, line_no)?),
            }
        }
        "new-intent-class" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::NewIntent(IntentTarget::Class(expect_class_at(tokens, 1, line_no, interner)?))
        }
        "new-intent-action" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::NewIntent(IntentTarget::Action(expect_str_at(tokens, 1, line_no)?))
        }
        "set-class" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::SetClass(expect_class_at(tokens, 1, line_no, interner)?)
        }
        "set-action" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::SetAction(expect_str_at(tokens, 1, line_no)?)
        }
        "put-extra" => {
            expect_len(tokens, 3, line_no)?;
            Stmt::PutExtra {
                key: expect_str_at(tokens, 1, line_no)?,
                value: expect_str_at(tokens, 2, line_no)?,
            }
        }
        "start-activity" => {
            expect_len(tokens, 1, line_no)?;
            Stmt::StartActivity { via_host: false }
        }
        "start-activity-via-host" => {
            expect_len(tokens, 1, line_no)?;
            Stmt::StartActivity { via_host: true }
        }
        "require-extra" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::RequireExtra { key: expect_str_at(tokens, 1, line_no)? }
        }
        "require-permission" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::RequirePermission { permission: expect_str_at(tokens, 1, line_no)? }
        }
        "new-instance" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::NewInstance(expect_class_at(tokens, 1, line_no, interner)?)
        }
        "new-instance-static" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::NewInstanceStatic(expect_class_at(tokens, 1, line_no, interner)?)
        }
        "instance-of" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::InstanceOf(expect_class_at(tokens, 1, line_no, interner)?)
        }
        "get-fragment-manager" => {
            expect_len(tokens, 1, line_no)?;
            Stmt::GetFragmentManager { support: false }
        }
        "get-support-fragment-manager" => {
            expect_len(tokens, 1, line_no)?;
            Stmt::GetFragmentManager { support: true }
        }
        "begin-transaction" => {
            expect_len(tokens, 1, line_no)?;
            Stmt::BeginTransaction
        }
        "txn-add" => {
            expect_len(tokens, 3, line_no)?;
            Stmt::TxnAdd {
                container: expect_res_at(tokens, 1, line_no)?,
                fragment: expect_class_at(tokens, 2, line_no, interner)?,
            }
        }
        "txn-replace" => {
            expect_len(tokens, 3, line_no)?;
            Stmt::TxnReplace {
                container: expect_res_at(tokens, 1, line_no)?,
                fragment: expect_class_at(tokens, 2, line_no, interner)?,
            }
        }
        "txn-commit" => {
            expect_len(tokens, 1, line_no)?;
            Stmt::TxnCommit
        }
        "attach-direct" => {
            expect_len(tokens, 3, line_no)?;
            Stmt::AttachDirect {
                container: expect_res_at(tokens, 1, line_no)?,
                fragment: expect_class_at(tokens, 2, line_no, interner)?,
            }
        }
        "toggle-drawer" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::ToggleDrawer { drawer: expect_res_at(tokens, 1, line_no)? }
        }
        "show-dialog" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::ShowDialog { id: expect_str_at(tokens, 1, line_no)? }
        }
        "show-popup-menu" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::ShowPopupMenu { id: expect_str_at(tokens, 1, line_no)? }
        }
        "invoke-api" => {
            expect_len(tokens, 2, line_no)?;
            let spec = expect_word_at(tokens, 1, line_no)?;
            let (group, name) = spec
                .split_once('/')
                .ok_or_else(|| ParseError::new(line_no, "invoke-api expects '<group>/<name>'"))?;
            Stmt::InvokeApi { group: group.to_string(), name: name.to_string() }
        }
        "invoke" => {
            expect_len(tokens, 3, line_no)?;
            Stmt::InvokeMethod {
                class: expect_class_at(tokens, 1, line_no, interner)?,
                method: interner.method(expect_word_at(tokens, 2, line_no)?),
            }
        }
        "finish" => {
            expect_len(tokens, 1, line_no)?;
            Stmt::Finish
        }
        "crash" => {
            expect_len(tokens, 2, line_no)?;
            Stmt::Crash { reason: expect_str_at(tokens, 1, line_no)? }
        }
        other => return Err(ParseError::new(line_no, format!("unknown statement '{other}'"))),
    };
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_class;
    use crate::res::ResRef;

    fn sample() -> ClassDef {
        ClassDef::new("com.example.Main", crate::well_known::ACTIVITY)
            .with_interface("android.view.View$OnClickListener")
            .with_field(FieldDef::new("count", "int"))
            .with_method(
                MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("main"))).push(
                    Stmt::SetOnClick { widget: ResRef::id("go"), handler: MethodName::new("onGo") },
                ),
            )
            .with_method(
                MethodDef::new("onGo")
                    .push(Stmt::NewIntent(IntentTarget::Class(ClassName::new(
                        "com.example.Second",
                    ))))
                    .push(Stmt::PutExtra { key: "id".into(), value: "42".into() })
                    .push(Stmt::StartActivity { via_host: false }),
            )
    }

    #[test]
    fn print_parse_roundtrip() {
        let class = sample();
        let text = print_class(&class);
        assert_eq!(parse_class(&text).unwrap(), class);
    }

    #[test]
    fn parses_if_else_nesting() {
        let class = ClassDef::new("a.B", "java.lang.Object").with_method(MethodDef::new("m").push(
            Stmt::If {
                cond: Cond::InputEquals { field: ResRef::id("pw"), expected: "s3cret".into() },
                then: vec![Stmt::If {
                    cond: Cond::HasExtra { key: "k".into() },
                    then: vec![Stmt::Finish],
                    els: vec![],
                }],
                els: vec![Stmt::ShowDialog { id: "wrong password".into() }],
            },
        ));
        let text = print_class(&class);
        assert_eq!(parse_class(&text).unwrap(), class);
    }

    #[test]
    fn parses_multiple_classes() {
        let a = ClassDef::new("a.A", "java.lang.Object");
        let b = ClassDef::new("a.B", "a.A");
        let text = format!("{}\n{}", print_class(&a), print_class(&b));
        let classes = parse_classes(&text).unwrap();
        assert_eq!(classes, vec![a, b]);
    }

    #[test]
    fn parses_abstract_and_visibility() {
        let c = ClassDef::new("a.C", "java.lang.Object").abstract_();
        let text = print_class(&c);
        assert!(text.starts_with(".class public abstract La/C;"));
        assert_eq!(parse_class(&text).unwrap(), c);
    }

    #[test]
    fn parses_ctor_with_params() {
        let c = ClassDef::new("a.F", "android.app.Fragment").with_method(
            MethodDef::new(MethodName::ctor()).with_param("java.lang.String").with_param("int"),
        );
        let text = print_class(&c);
        let parsed = parse_class(&text).unwrap();
        assert!(!parsed.has_default_ctor());
        assert_eq!(parsed, c);
    }

    #[test]
    fn error_on_unknown_statement() {
        let text = ".class public La/B;\n.super Ljava/lang/Object;\n.method public m()\nwat\n.end method\n.end class\n";
        let err = parse_class(text).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("unknown statement"));
    }

    #[test]
    fn error_on_missing_end_if() {
        let text = ".class public La/B;\n.super Ljava/lang/Object;\n.method public m()\nif has-extra \"k\"\nfinish\n.end method\n.end class\n";
        assert!(parse_class(text).is_err());
    }

    #[test]
    fn if_nesting_below_limit_parses_and_above_limit_errors() {
        let nested = |depth: usize| {
            let mut body = String::new();
            for _ in 0..depth {
                body.push_str("if has-extra \"k\"\n");
            }
            body.push_str("finish\n");
            for _ in 0..depth {
                body.push_str("end-if\n");
            }
            format!(
                ".class public La/B;\n.super Ljava/lang/Object;\n.method public m()\n{body}.end method\n.end class\n"
            )
        };
        assert!(parse_class(&nested(MAX_IF_DEPTH)).is_ok());
        let err = parse_class(&nested(MAX_IF_DEPTH + 1)).unwrap_err();
        assert!(err.message.contains("nesting"), "got: {}", err.message);
        // Thousands of unclosed `if`s must error, not overflow the stack.
        let mut deep =
            String::from(".class public La/B;\n.super Ljava/lang/Object;\n.method public m()\n");
        for _ in 0..50_000 {
            deep.push_str("if has-extra \"k\"\n");
        }
        assert!(parse_class(&deep).is_err());
    }

    #[test]
    fn error_on_missing_super() {
        let text = ".class public La/B;\n.end class\n";
        assert!(parse_class(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header comment\n\n.class public La/B;\n.super Ljava/lang/Object;\n# body\n.end class\n";
        let c = parse_class(text).unwrap();
        assert_eq!(c.name.as_str(), "a.B");
    }
}
