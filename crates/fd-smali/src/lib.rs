//! A smali-like class intermediate representation (IR) for the FragDroid
//! reproduction.
//!
//! Real FragDroid decompiles an APK with Apktool and jd-core, then
//! pattern-matches on the decompiled statements (`new Intent(A0, A1)`,
//! `setClass(..)`, `F1.newInstance()`, `getFragmentManager()`, …) to build
//! its Activity & Fragment Transition Model. This crate provides the
//! equivalent decompiled form: class definitions whose method bodies are
//! sequences of exactly those statement shapes, together with
//!
//! * a full textual syntax (printer in [`printer`], parser in [`parser`])
//!   so that "decompiling" a packed APK produces genuine text that is then
//!   re-parsed, as in the paper's pipeline;
//! * class-hierarchy queries ([`ClassPool`]: super chains, subclass tests,
//!   used classes, inner classes) needed by the paper's Algorithm 2;
//! * a statement [`visit`] walker used by every static-analysis pass.
//!
//! Unlike real smali the IR is directly *executable*: the device simulator
//! in `fd-droidsim` interprets method bodies, so the artifact the static
//! phase analyses is the same artifact the dynamic phase runs — exactly the
//! property the paper relies on.
//!
//! # Example
//!
//! ```
//! use fd_smali::{ClassDef, ClassName, MethodDef, Stmt, ResRef, well_known};
//!
//! let main = ClassDef::new("com.example.MainActivity", well_known::ACTIVITY)
//!     .with_method(
//!         MethodDef::new("onCreate")
//!             .push(Stmt::SetContentView(ResRef::layout("main")))
//!             .push(Stmt::GetFragmentManager { support: false })
//!             .push(Stmt::BeginTransaction)
//!             .push(Stmt::TxnAdd {
//!                 container: ResRef::id("container"),
//!                 fragment: ClassName::new("com.example.HomeFragment"),
//!             })
//!             .push(Stmt::TxnCommit),
//!     );
//!
//! let text = fd_smali::printer::print_class(&main);
//! let back = fd_smali::parser::parse_class(&text).unwrap();
//! assert_eq!(main, back);
//! ```

pub mod class;
pub mod error;
pub mod lexer;
pub mod lint;
pub mod name;
pub mod parser;
pub mod pool;
pub mod printer;
pub mod res;
pub mod stmt;
pub mod visit;

pub use class::{ClassDef, FieldDef, MethodDef, Visibility};
pub use error::ParseError;
pub use name::{ClassName, MethodName};
pub use pool::ClassPool;
pub use res::{ResKind, ResRef};
pub use stmt::{Cond, IntentTarget, Stmt};

/// Fully-qualified names of Android framework classes the analyses treat
/// specially, mirroring the string constants in the paper's Algorithm 2.
pub mod well_known {
    /// `android.app.Activity` — base class of all activities.
    pub const ACTIVITY: &str = "android.app.Activity";
    /// `android.support.v4.app.FragmentActivity` — support-library activity.
    pub const SUPPORT_ACTIVITY: &str = "android.support.v4.app.FragmentActivity";
    /// `android.app.Fragment` — platform fragment base class.
    pub const FRAGMENT: &str = "android.app.Fragment";
    /// `android.support.v4.app.Fragment` — support-library fragment.
    pub const SUPPORT_FRAGMENT: &str = "android.support.v4.app.Fragment";
    /// `java.lang.Object` — the root of every inheritance chain.
    pub const OBJECT: &str = "java.lang.Object";

    /// Returns `true` if `name` denotes a framework class (one the target
    /// app does not define itself). The heuristic matches the paper's
    /// practice of stopping hierarchy walks at `android.*` / `java.*`.
    pub fn is_framework(name: &str) -> bool {
        name.starts_with("android.") || name.starts_with("java.") || name.starts_with("javax.")
    }
}
