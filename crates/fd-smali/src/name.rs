//! Class and method names, with conversions between the dotted Java form
//! (`com.example.MainActivity`) and the smali descriptor form
//! (`Lcom/example/MainActivity;`).

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A fully-qualified class name in dotted Java form.
///
/// Inner classes use the `$` separator, as in real dex files
/// (`com.example.MainActivity$1`).
///
/// # Example
///
/// ```
/// use fd_smali::ClassName;
///
/// let name = ClassName::new("com.example.MainActivity$1");
/// assert_eq!(name.simple_name(), "MainActivity$1");
/// assert_eq!(name.package(), "com.example");
/// assert_eq!(name.outer_class().unwrap().as_str(), "com.example.MainActivity");
/// assert_eq!(name.descriptor(), "Lcom/example/MainActivity$1;");
/// ```
///
/// Backed by `Arc<str>`: cloning a name (which the parser, the static
/// phase and the explorer all do constantly) is a refcount bump, not an
/// allocation, and the smali parser's interner makes repeated mentions of
/// the same class share one buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ClassName(Arc<str>);

impl ClassName {
    /// Creates a class name from its dotted Java form.
    pub fn new(dotted: impl Into<String>) -> Self {
        ClassName(Arc::from(dotted.into()))
    }

    /// Parses a smali descriptor such as `Lcom/example/Foo;`.
    ///
    /// Returns `None` if the string is not a well-formed `L…;` descriptor.
    pub fn from_descriptor(desc: &str) -> Option<Self> {
        let inner = desc.strip_prefix('L')?.strip_suffix(';')?;
        if inner.is_empty() || inner.contains('.') {
            return None;
        }
        Some(ClassName(Arc::from(inner.replace('/', "."))))
    }

    /// The dotted Java form, e.g. `com.example.Foo`.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The smali descriptor form, e.g. `Lcom/example/Foo;`.
    pub fn descriptor(&self) -> String {
        format!("L{};", self.0.replace('.', "/"))
    }

    /// The unqualified name after the last `.`.
    pub fn simple_name(&self) -> &str {
        self.0.rsplit('.').next().unwrap_or(&self.0)
    }

    /// The package prefix, or `""` for the default package.
    pub fn package(&self) -> &str {
        match self.0.rfind('.') {
            Some(idx) => &self.0[..idx],
            None => "",
        }
    }

    /// For an inner class (`Foo$Bar`, `Foo$1`), the enclosing class name.
    pub fn outer_class(&self) -> Option<ClassName> {
        let dollar = self.0.rfind('$')?;
        Some(ClassName(Arc::from(&self.0[..dollar])))
    }

    /// Whether this names an inner class (contains `$` in its simple name).
    pub fn is_inner(&self) -> bool {
        self.simple_name().contains('$')
    }

    /// The synthetic name of the `n`-th anonymous inner class, as javac
    /// would emit it (`Foo$1`, `Foo$2`, …).
    pub fn anonymous_inner(&self, n: usize) -> ClassName {
        ClassName(Arc::from(format!("{}${}", self.0, n)))
    }
}

impl fmt::Debug for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassName({})", self.0)
    }
}

impl fmt::Display for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ClassName {
    fn from(s: &str) -> Self {
        ClassName::new(s)
    }
}

impl From<String> for ClassName {
    fn from(s: String) -> Self {
        ClassName::new(s)
    }
}

impl Borrow<str> for ClassName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// A method name within a class, e.g. `onCreate` or `<init>`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MethodName(Arc<str>);

impl MethodName {
    /// Creates a method name.
    pub fn new(name: impl Into<String>) -> Self {
        MethodName(Arc::from(name.into()))
    }

    /// The raw name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The constructor name, `<init>`.
    pub fn ctor() -> Self {
        MethodName(Arc::from("<init>"))
    }

    /// Whether this is the constructor.
    pub fn is_ctor(&self) -> bool {
        self.0.as_ref() == "<init>"
    }
}

impl fmt::Debug for MethodName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MethodName({})", self.0)
    }
}

impl fmt::Display for MethodName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for MethodName {
    fn from(s: &str) -> Self {
        MethodName::new(s)
    }
}

impl From<String> for MethodName {
    fn from(s: String) -> Self {
        MethodName::new(s)
    }
}

impl Borrow<str> for MethodName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_roundtrip() {
        let n = ClassName::new("com.example.MainActivity");
        assert_eq!(n.descriptor(), "Lcom/example/MainActivity;");
        assert_eq!(ClassName::from_descriptor(&n.descriptor()), Some(n));
    }

    #[test]
    fn from_descriptor_rejects_malformed() {
        assert_eq!(ClassName::from_descriptor("com.example.Foo"), None);
        assert_eq!(ClassName::from_descriptor("Lcom/example/Foo"), None);
        assert_eq!(ClassName::from_descriptor("L;"), None);
        assert_eq!(ClassName::from_descriptor("Lcom.example.Foo;"), None);
    }

    #[test]
    fn simple_name_and_package() {
        let n = ClassName::new("com.example.Foo");
        assert_eq!(n.simple_name(), "Foo");
        assert_eq!(n.package(), "com.example");
        let d = ClassName::new("Default");
        assert_eq!(d.simple_name(), "Default");
        assert_eq!(d.package(), "");
    }

    #[test]
    fn inner_class_relationships() {
        let outer = ClassName::new("com.example.Main");
        let inner = outer.anonymous_inner(1);
        assert_eq!(inner.as_str(), "com.example.Main$1");
        assert!(inner.is_inner());
        assert!(!outer.is_inner());
        assert_eq!(inner.outer_class(), Some(outer));
    }

    #[test]
    fn nested_inner_class_outer_is_nearest() {
        let n = ClassName::new("a.B$C$1");
        assert_eq!(n.outer_class().unwrap().as_str(), "a.B$C");
    }

    #[test]
    fn method_name_ctor() {
        assert!(MethodName::ctor().is_ctor());
        assert!(!MethodName::new("onCreate").is_ctor());
    }
}
