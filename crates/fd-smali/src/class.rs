//! Class, method, and field definitions.

use crate::name::{ClassName, MethodName};
use crate::stmt::Stmt;
use serde::{Deserialize, Serialize};

/// Java-level visibility of a class or member.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Visibility {
    /// `public`
    #[default]
    Public,
    /// `protected`
    Protected,
    /// package-private (no modifier)
    Package,
    /// `private`
    Private,
}

impl Visibility {
    /// The smali access token (`public`, `protected`, `package`, `private`).
    pub fn token(self) -> &'static str {
        match self {
            Visibility::Public => "public",
            Visibility::Protected => "protected",
            Visibility::Package => "package",
            Visibility::Private => "private",
        }
    }

    /// Parses the access token.
    pub fn from_token(tok: &str) -> Option<Self> {
        Some(match tok {
            "public" => Visibility::Public,
            "protected" => Visibility::Protected,
            "package" => Visibility::Package,
            "private" => Visibility::Private,
            _ => return None,
        })
    }
}

/// A field definition. Fields carry no behaviour in this IR; they exist so
/// that generated classes look structurally realistic and so the printer/
/// parser handle the full grammar.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Field type in dotted form (`java.lang.String`, `int`, …).
    pub ty: String,
}

impl FieldDef {
    /// Creates a field.
    pub fn new(name: impl Into<String>, ty: impl Into<String>) -> Self {
        FieldDef { name: name.into(), ty: ty.into() }
    }
}

/// A method definition: a name, string-typed parameters, and a body of
/// [`Stmt`]s executed sequentially.
///
/// A constructor (`<init>`) with a non-empty parameter list marks a class
/// that cannot be instantiated reflectively without arguments — the
/// *com.inditex.zara* failure mode ("missing parameters transmitted in the
/// reflection mechanism").
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MethodDef {
    /// Method name.
    pub name: MethodName,
    /// Parameter types in dotted form.
    pub params: Vec<String>,
    /// Member visibility.
    pub visibility: Visibility,
    /// The executable body.
    pub body: Vec<Stmt>,
}

impl MethodDef {
    /// Creates an empty public zero-argument method.
    pub fn new(name: impl Into<MethodName>) -> Self {
        MethodDef {
            name: name.into(),
            params: Vec::new(),
            visibility: Visibility::Public,
            body: Vec::new(),
        }
    }

    /// Adds a parameter type.
    pub fn with_param(mut self, ty: impl Into<String>) -> Self {
        self.params.push(ty.into());
        self
    }

    /// Sets the visibility.
    pub fn with_visibility(mut self, v: Visibility) -> Self {
        self.visibility = v;
        self
    }

    /// Appends a statement to the body (builder style).
    pub fn push(mut self, stmt: Stmt) -> Self {
        self.body.push(stmt);
        self
    }

    /// Appends many statements to the body (builder style).
    pub fn extend(mut self, stmts: impl IntoIterator<Item = Stmt>) -> Self {
        self.body.extend(stmts);
        self
    }
}

/// A class definition: name, superclass, interfaces, fields and methods.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassDef {
    /// Fully-qualified class name.
    pub name: ClassName,
    /// Fully-qualified superclass name.
    pub super_class: ClassName,
    /// Implemented interfaces.
    pub interfaces: Vec<ClassName>,
    /// Class visibility.
    pub visibility: Visibility,
    /// Whether the class is abstract (abstract classes are never
    /// instantiated by the simulator and are skipped by reflection).
    pub is_abstract: bool,
    /// Declared fields.
    pub fields: Vec<FieldDef>,
    /// Declared methods.
    pub methods: Vec<MethodDef>,
}

impl ClassDef {
    /// Creates a public, non-abstract class with the given superclass.
    pub fn new(name: impl Into<ClassName>, super_class: impl Into<ClassName>) -> Self {
        ClassDef {
            name: name.into(),
            super_class: super_class.into(),
            interfaces: Vec::new(),
            visibility: Visibility::Public,
            is_abstract: false,
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Adds an implemented interface (builder style).
    pub fn with_interface(mut self, iface: impl Into<ClassName>) -> Self {
        self.interfaces.push(iface.into());
        self
    }

    /// Marks the class abstract (builder style).
    pub fn abstract_(mut self) -> Self {
        self.is_abstract = true;
        self
    }

    /// Adds a field (builder style).
    pub fn with_field(mut self, field: FieldDef) -> Self {
        self.fields.push(field);
        self
    }

    /// Adds a method (builder style).
    pub fn with_method(mut self, method: MethodDef) -> Self {
        self.methods.push(method);
        self
    }

    /// Looks up a method by name.
    pub fn method(&self, name: &str) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.name.as_str() == name)
    }

    /// Whether reflective zero-argument instantiation would succeed: either
    /// no constructor is declared (implicit default ctor) or a declared
    /// constructor takes no parameters.
    pub fn has_default_ctor(&self) -> bool {
        let ctors: Vec<_> = self.methods.iter().filter(|m| m.name.is_ctor()).collect();
        ctors.is_empty() || ctors.iter().any(|m| m.params.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ctor_detection() {
        let plain = ClassDef::new("a.F", "android.app.Fragment");
        assert!(plain.has_default_ctor());

        let with_args = ClassDef::new("a.F", "android.app.Fragment")
            .with_method(MethodDef::new(MethodName::ctor()).with_param("java.lang.String"));
        assert!(!with_args.has_default_ctor());

        let both = with_args.with_method(MethodDef::new(MethodName::ctor()));
        assert!(both.has_default_ctor());
    }

    #[test]
    fn method_lookup() {
        let c = ClassDef::new("a.B", "java.lang.Object")
            .with_method(MethodDef::new("onCreate"))
            .with_method(MethodDef::new("onClick"));
        assert!(c.method("onCreate").is_some());
        assert!(c.method("missing").is_none());
    }

    #[test]
    fn builder_accumulates() {
        let c = ClassDef::new("a.B", "java.lang.Object")
            .with_interface("a.I")
            .with_field(FieldDef::new("x", "int"))
            .abstract_();
        assert!(c.is_abstract);
        assert_eq!(c.interfaces.len(), 1);
        assert_eq!(c.fields.len(), 1);
    }
}
