//! Line tokenizer for the textual smali-like syntax.
//!
//! The grammar is line-oriented: every directive or statement occupies one
//! line, and a line is a sequence of tokens:
//!
//! * **words** — directives (`.class`), keywords (`txn-add`), descriptors
//!   (`Lcom/foo/Bar;`), method names;
//! * **strings** — double-quoted with `\\`, `\"`, `\n`, `\t`, `\r` and
//!   `\u{XXXX}` escapes;
//! * **resource refs** — `@id/name`, `@layout/main`, ….
//!
//! Comments start with `#` and run to end of line.
//!
//! Tokens borrow from the input line wherever they can: words are slices,
//! and string literals only allocate when they actually contain an escape
//! ([`std::borrow::Cow`]). This keeps the decode hot path free of
//! per-token allocations (`tests` pin the borrowed/owned split).

use crate::error::ParseError;
use crate::res::ResRef;
use std::borrow::Cow;
use std::fmt::Write as _;

/// One token of a line, borrowing from the line where possible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token<'a> {
    /// A bare word (directive, keyword, descriptor, name).
    Word(&'a str),
    /// A quoted string literal, unescaped. Borrowed when the literal
    /// contains no escape sequences, owned otherwise.
    Str(Cow<'a, str>),
    /// A resource reference.
    Res(ResRef),
}

impl<'a> Token<'a> {
    /// The word contents, if this is a [`Token::Word`].
    pub fn as_word(&self) -> Option<&'a str> {
        match self {
            Token::Word(w) => Some(w),
            _ => None,
        }
    }
}

/// Escapes a string for emission as a quoted literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if c.is_control() => {
                let _ = write!(out, "\\u{{{:x}}}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Advances past one char starting at byte `pos`, returning `(char, next
/// byte offset)`. `pos` must sit on a char boundary (the scanners below
/// only stop on ASCII or boundaries).
fn char_at(line: &str, pos: usize) -> (char, usize) {
    let c = line[pos..].chars().next().expect("caller checked pos < len");
    (c, pos + c.len_utf8())
}

/// Tokenizes one line. `line_no` is used for error reporting (1-based).
/// A `#` outside a string starts a comment.
pub fn tokenize(line: &str, line_no: usize) -> Result<Vec<Token<'_>>, ParseError> {
    let mut tokens = Vec::new();
    tokenize_into(line, line_no, &mut tokens)?;
    Ok(tokens)
}

/// [`tokenize`] into a caller-supplied buffer, so a line-oriented parser
/// can reuse one allocation across the whole file. Appends to `tokens`
/// without clearing it.
pub fn tokenize_into<'a>(
    line: &'a str,
    line_no: usize,
    tokens: &mut Vec<Token<'a>>,
) -> Result<(), ParseError> {
    let bytes = line.as_bytes();
    let mut pos = 0;

    while pos < bytes.len() {
        // Skip whitespace (ASCII fast path, Unicode fallback).
        let b = bytes[pos];
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        if b >= 0x80 {
            let (c, next) = char_at(line, pos);
            if c.is_whitespace() {
                pos = next;
                continue;
            }
        }

        if b == b'#' {
            break; // comment to end of line
        }

        if b == b'"' {
            let (s, next) = scan_string(line, pos, line_no)?;
            tokens.push(Token::Str(s));
            pos = next;
            continue;
        }

        // Bare word or resource ref: a slice up to the next whitespace.
        let start = pos;
        while pos < bytes.len() {
            let b = bytes[pos];
            if b.is_ascii() {
                if b.is_ascii_whitespace() {
                    break;
                }
                pos += 1;
            } else {
                let (c, next) = char_at(line, pos);
                if c.is_whitespace() {
                    break;
                }
                pos = next;
            }
        }
        let word = &line[start..pos];
        if let Some(stripped) = word.strip_prefix('@') {
            let res = ResRef::parse(word).ok_or_else(|| {
                ParseError::new(line_no, format!("malformed resource ref '@{stripped}'"))
            })?;
            tokens.push(Token::Res(res));
        } else {
            tokens.push(Token::Word(word));
        }
    }
    Ok(())
}

/// Scans a string literal whose opening quote sits at byte `open`.
/// Returns the contents and the byte offset just past the closing quote.
/// Escape-free literals (the overwhelmingly common case) borrow.
fn scan_string(
    line: &str,
    open: usize,
    line_no: usize,
) -> Result<(Cow<'_, str>, usize), ParseError> {
    let bytes = line.as_bytes();
    let mut pos = open + 1;
    while pos < bytes.len() {
        match bytes[pos] {
            b'"' => return Ok((Cow::Borrowed(&line[open + 1..pos]), pos + 1)),
            b'\\' => return scan_string_escaped(line, open + 1, pos, line_no),
            _ => pos += 1,
        }
    }
    Err(ParseError::new(line_no, "unterminated string literal"))
}

/// Slow path: the literal starting at `start` has its first `\` at
/// `backslash`. Copies the clean prefix and unescapes the rest.
fn scan_string_escaped(
    line: &str,
    start: usize,
    backslash: usize,
    line_no: usize,
) -> Result<(Cow<'_, str>, usize), ParseError> {
    let mut s = String::with_capacity(line.len() - start);
    s.push_str(&line[start..backslash]);
    let mut chars = line[backslash..].char_indices();
    loop {
        match chars.next() {
            None => return Err(ParseError::new(line_no, "unterminated string literal")),
            Some((at, '"')) => return Ok((Cow::Owned(s), backslash + at + 1)),
            Some((_, '\\')) => match chars.next().map(|(_, c)| c) {
                Some('\\') => s.push('\\'),
                Some('"') => s.push('"'),
                Some('n') => s.push('\n'),
                Some('t') => s.push('\t'),
                Some('r') => s.push('\r'),
                Some('u') => {
                    if chars.next().map(|(_, c)| c) != Some('{') {
                        return Err(ParseError::new(line_no, "expected '{' after \\u"));
                    }
                    let mut hex = String::new();
                    loop {
                        match chars.next().map(|(_, c)| c) {
                            Some('}') => break,
                            Some(c) if c.is_ascii_hexdigit() => hex.push(c),
                            _ => return Err(ParseError::new(line_no, "malformed \\u{..} escape")),
                        }
                    }
                    let cp = u32::from_str_radix(&hex, 16)
                        .map_err(|_| ParseError::new(line_no, "malformed \\u{..} escape"))?;
                    let c = char::from_u32(cp)
                        .ok_or_else(|| ParseError::new(line_no, "invalid code point in \\u{..}"))?;
                    s.push(c);
                }
                Some(other) => {
                    return Err(ParseError::new(line_no, format!("unknown escape '\\{other}'")))
                }
                None => return Err(ParseError::new(line_no, "unterminated string literal")),
            },
            Some((_, c)) => s.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::res::ResKind;

    #[test]
    fn tokenizes_words_strings_and_refs() {
        let toks = tokenize(r#"txn-add @id/container Lcom/a/F; "hello world""#, 1).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("txn-add"),
                Token::Res(ResRef::new(ResKind::Id, "container")),
                Token::Word("Lcom/a/F;"),
                Token::Str("hello world".into()),
            ]
        );
    }

    #[test]
    fn comment_terminates_line() {
        let toks = tokenize("finish # pops the activity", 1).unwrap();
        assert_eq!(toks, vec![Token::Word("finish")]);
    }

    #[test]
    fn string_escapes_roundtrip() {
        for original in ["", "plain", "a\"b", "back\\slash", "tab\there", "nl\nline", "\u{1}"] {
            let escaped = escape(original);
            let toks = tokenize(&escaped, 1).unwrap();
            assert_eq!(toks, vec![Token::Str(original.into())], "escaped form {escaped}");
        }
    }

    #[test]
    fn escape_free_strings_borrow_and_escaped_ones_allocate() {
        let line = r#"show-dialog "plain contents""#;
        match &tokenize(line, 1).unwrap()[1] {
            Token::Str(Cow::Borrowed(s)) => assert_eq!(*s, "plain contents"),
            other => panic!("expected borrowed literal, got {other:?}"),
        }
        match &tokenize(r#"show-dialog "a\nb""#, 1).unwrap()[1] {
            Token::Str(Cow::Owned(s)) => assert_eq!(s, "a\nb"),
            other => panic!("expected owned literal, got {other:?}"),
        }
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let toks = tokenize(r#"show-dialog "has # inside""#, 1).unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], Token::Str("has # inside".into()));
    }

    #[test]
    fn unicode_whitespace_separates_tokens() {
        let toks = tokenize("finish\u{a0}finish", 1).unwrap();
        assert_eq!(toks, vec![Token::Word("finish"), Token::Word("finish")]);
    }

    #[test]
    fn errors_carry_line_number() {
        let err = tokenize("\"unterminated", 42).unwrap_err();
        assert_eq!(err.line, 42);
        let err = tokenize("\"escaped but unterminated\\n", 7).unwrap_err();
        assert_eq!(err.line, 7);
    }

    #[test]
    fn malformed_resource_ref_is_error() {
        assert!(tokenize("@bogus/x", 1).is_err());
        assert!(tokenize("@id", 1).is_err());
    }

    #[test]
    fn unknown_escape_is_error() {
        assert!(tokenize(r#""\q""#, 1).is_err());
    }
}
