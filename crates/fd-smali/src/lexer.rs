//! Line tokenizer for the textual smali-like syntax.
//!
//! The grammar is line-oriented: every directive or statement occupies one
//! line, and a line is a sequence of tokens:
//!
//! * **words** — directives (`.class`), keywords (`txn-add`), descriptors
//!   (`Lcom/foo/Bar;`), method names;
//! * **strings** — double-quoted with `\\`, `\"`, `\n`, `\t`, `\r` and
//!   `\u{XXXX}` escapes;
//! * **resource refs** — `@id/name`, `@layout/main`, ….
//!
//! Comments start with `#` and run to end of line.

use crate::error::ParseError;
use crate::res::ResRef;
use std::fmt::Write as _;

/// One token of a line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// A bare word (directive, keyword, descriptor, name).
    Word(String),
    /// A quoted string literal, unescaped.
    Str(String),
    /// A resource reference.
    Res(ResRef),
}

impl Token {
    /// The word contents, if this is a [`Token::Word`].
    pub fn as_word(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w),
            _ => None,
        }
    }
}

/// Escapes a string for emission as a quoted literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if c.is_control() => {
                let _ = write!(out, "\\u{{{:x}}}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Tokenizes one line. `line_no` is used for error reporting (1-based).
/// A `#` outside a string starts a comment.
pub fn tokenize(line: &str, line_no: usize) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();

    loop {
        // Skip whitespace.
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let Some(&first) = chars.peek() else { break };

        if first == '#' {
            break; // comment to end of line
        }

        if first == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    None => return Err(ParseError::new(line_no, "unterminated string literal")),
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some('\\') => s.push('\\'),
                        Some('"') => s.push('"'),
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        Some('r') => s.push('\r'),
                        Some('u') => {
                            if chars.next() != Some('{') {
                                return Err(ParseError::new(line_no, "expected '{' after \\u"));
                            }
                            let mut hex = String::new();
                            loop {
                                match chars.next() {
                                    Some('}') => break,
                                    Some(c) if c.is_ascii_hexdigit() => hex.push(c),
                                    _ => {
                                        return Err(ParseError::new(
                                            line_no,
                                            "malformed \\u{..} escape",
                                        ))
                                    }
                                }
                            }
                            let cp = u32::from_str_radix(&hex, 16).map_err(|_| {
                                ParseError::new(line_no, "malformed \\u{..} escape")
                            })?;
                            let c = char::from_u32(cp).ok_or_else(|| {
                                ParseError::new(line_no, "invalid code point in \\u{..}")
                            })?;
                            s.push(c);
                        }
                        Some(other) => {
                            return Err(ParseError::new(
                                line_no,
                                format!("unknown escape '\\{other}'"),
                            ))
                        }
                        None => {
                            return Err(ParseError::new(line_no, "unterminated string literal"))
                        }
                    },
                    Some(c) => s.push(c),
                }
            }
            tokens.push(Token::Str(s));
            continue;
        }

        // Bare word or resource ref: read until whitespace.
        let mut word = String::new();
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() {
                break;
            }
            word.push(c);
            chars.next();
        }
        if let Some(stripped) = word.strip_prefix('@') {
            let res = ResRef::parse(&word).ok_or_else(|| {
                ParseError::new(line_no, format!("malformed resource ref '@{stripped}'"))
            })?;
            tokens.push(Token::Res(res));
        } else {
            tokens.push(Token::Word(word));
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::res::ResKind;

    #[test]
    fn tokenizes_words_strings_and_refs() {
        let toks = tokenize(r#"txn-add @id/container Lcom/a/F; "hello world""#, 1).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("txn-add".into()),
                Token::Res(ResRef::new(ResKind::Id, "container")),
                Token::Word("Lcom/a/F;".into()),
                Token::Str("hello world".into()),
            ]
        );
    }

    #[test]
    fn comment_terminates_line() {
        let toks = tokenize("finish # pops the activity", 1).unwrap();
        assert_eq!(toks, vec![Token::Word("finish".into())]);
    }

    #[test]
    fn string_escapes_roundtrip() {
        for original in ["", "plain", "a\"b", "back\\slash", "tab\there", "nl\nline", "\u{1}"] {
            let escaped = escape(original);
            let toks = tokenize(&escaped, 1).unwrap();
            assert_eq!(toks, vec![Token::Str(original.into())], "escaped form {escaped}");
        }
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let toks = tokenize(r#"show-dialog "has # inside""#, 1).unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], Token::Str("has # inside".into()));
    }

    #[test]
    fn errors_carry_line_number() {
        let err = tokenize("\"unterminated", 42).unwrap_err();
        assert_eq!(err.line, 42);
    }

    #[test]
    fn malformed_resource_ref_is_error() {
        assert!(tokenize("@bogus/x", 1).is_err());
        assert!(tokenize("@id", 1).is_err());
    }

    #[test]
    fn unknown_escape_is_error() {
        assert!(tokenize(r#""\q""#, 1).is_err());
    }
}
