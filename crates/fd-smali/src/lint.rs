//! Structural lints over method bodies.
//!
//! The interpreter crashes apps that misuse the transaction or intent
//! protocols at *runtime*; these lints find the same misuses *statically*,
//! so app generators and hand-written fixtures can be validated before a
//! device ever runs them.

use crate::class::{ClassDef, MethodDef};
use crate::stmt::Stmt;
use std::fmt;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lint {
    /// The method the problem is in.
    pub method: String,
    /// What is wrong.
    pub kind: LintKind,
}

/// The kinds of structural problems detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LintKind {
    /// `txn-add`/`txn-replace` without a preceding `begin-transaction`.
    TxnOpOutsideTransaction,
    /// `txn-commit` without a preceding `begin-transaction`.
    CommitWithoutBegin,
    /// `begin-transaction` whose ops are never committed on some path.
    UncommittedTransaction,
    /// `start-activity` with no intent built on some path.
    StartWithoutIntent,
    /// An intent is built but never started before the next one replaces
    /// it (harmless, but usually a generator bug).
    IntentNeverStarted,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintKind::TxnOpOutsideTransaction => {
                write!(f, "transaction op outside beginTransaction")
            }
            LintKind::CommitWithoutBegin => write!(f, "commit without beginTransaction"),
            LintKind::UncommittedTransaction => write!(f, "transaction never committed"),
            LintKind::StartWithoutIntent => write!(f, "startActivity with no intent built"),
            LintKind::IntentNeverStarted => write!(f, "intent built but never started"),
        }
    }
}

/// Abstract state tracked through a straight-line statement walk.
#[derive(Clone, Copy, PartialEq, Eq)]
struct State {
    in_txn: bool,
    has_intent: bool,
}

fn check_stmts(method: &str, stmts: &[Stmt], mut state: State, out: &mut Vec<Lint>) -> State {
    for stmt in stmts {
        match stmt {
            Stmt::BeginTransaction => {
                state.in_txn = true;
            }
            Stmt::TxnAdd { .. } | Stmt::TxnReplace { .. } if !state.in_txn => {
                out.push(Lint {
                    method: method.to_string(),
                    kind: LintKind::TxnOpOutsideTransaction,
                });
            }
            Stmt::TxnAdd { .. } | Stmt::TxnReplace { .. } => {}
            Stmt::TxnCommit => {
                if !state.in_txn {
                    out.push(Lint {
                        method: method.to_string(),
                        kind: LintKind::CommitWithoutBegin,
                    });
                }
                state.in_txn = false;
            }
            Stmt::NewIntent(_) => {
                if state.has_intent {
                    out.push(Lint {
                        method: method.to_string(),
                        kind: LintKind::IntentNeverStarted,
                    });
                }
                state.has_intent = true;
            }
            Stmt::SetClass(_) | Stmt::SetAction(_) | Stmt::PutExtra { .. } => {
                // Legal on a fresh intent register too (creates one).
                state.has_intent = true;
            }
            Stmt::StartActivity { .. } => {
                if !state.has_intent {
                    out.push(Lint {
                        method: method.to_string(),
                        kind: LintKind::StartWithoutIntent,
                    });
                }
                state.has_intent = false;
            }
            Stmt::If { then, els, .. } => {
                // Check both arms from the current state; continue with a
                // conservative merge (a problem on either path is real).
                let after_then = check_stmts(method, then, state, out);
                let after_els = check_stmts(method, els, state, out);
                state = State {
                    in_txn: after_then.in_txn || after_els.in_txn,
                    has_intent: after_then.has_intent || after_els.has_intent,
                };
            }
            _ => {}
        }
    }
    state
}

/// Lints one method.
pub fn lint_method(method: &MethodDef) -> Vec<Lint> {
    let mut out = Vec::new();
    let end = check_stmts(
        method.name.as_str(),
        &method.body,
        State { in_txn: false, has_intent: false },
        &mut out,
    );
    if end.in_txn {
        out.push(Lint {
            method: method.name.as_str().to_string(),
            kind: LintKind::UncommittedTransaction,
        });
    }
    if end.has_intent {
        out.push(Lint {
            method: method.name.as_str().to_string(),
            kind: LintKind::IntentNeverStarted,
        });
    }
    out
}

/// Lints every method of a class.
pub fn lint_class(class: &ClassDef) -> Vec<Lint> {
    class.methods.iter().flat_map(lint_method).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::ClassName;
    use crate::res::ResRef;
    use crate::stmt::{Cond, IntentTarget};

    fn frag() -> ClassName {
        ClassName::new("a.F")
    }

    #[test]
    fn clean_transaction_passes() {
        let m = MethodDef::new("ok")
            .push(Stmt::GetFragmentManager { support: true })
            .push(Stmt::BeginTransaction)
            .push(Stmt::TxnReplace { container: ResRef::id("c"), fragment: frag() })
            .push(Stmt::TxnCommit);
        assert!(lint_method(&m).is_empty());
    }

    #[test]
    fn op_outside_transaction_flagged() {
        let m = MethodDef::new("bad")
            .push(Stmt::TxnAdd { container: ResRef::id("c"), fragment: frag() });
        let lints = lint_method(&m);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].kind, LintKind::TxnOpOutsideTransaction);
    }

    #[test]
    fn commit_without_begin_flagged() {
        let m = MethodDef::new("bad").push(Stmt::TxnCommit);
        assert_eq!(lint_method(&m)[0].kind, LintKind::CommitWithoutBegin);
    }

    #[test]
    fn uncommitted_transaction_flagged() {
        let m = MethodDef::new("bad")
            .push(Stmt::BeginTransaction)
            .push(Stmt::TxnAdd { container: ResRef::id("c"), fragment: frag() });
        assert!(lint_method(&m).iter().any(|l| l.kind == LintKind::UncommittedTransaction));
    }

    #[test]
    fn start_without_intent_flagged_and_clean_start_passes() {
        let bad = MethodDef::new("bad").push(Stmt::StartActivity { via_host: false });
        assert_eq!(lint_method(&bad)[0].kind, LintKind::StartWithoutIntent);

        let ok = MethodDef::new("ok")
            .push(Stmt::NewIntent(IntentTarget::Class("a.B".into())))
            .push(Stmt::StartActivity { via_host: false });
        assert!(lint_method(&ok).is_empty());
    }

    #[test]
    fn intent_clobbered_or_dangling_flagged() {
        let clobber = MethodDef::new("bad")
            .push(Stmt::NewIntent(IntentTarget::Class("a.B".into())))
            .push(Stmt::NewIntent(IntentTarget::Class("a.C".into())))
            .push(Stmt::StartActivity { via_host: false });
        assert!(lint_method(&clobber).iter().any(|l| l.kind == LintKind::IntentNeverStarted));

        let dangling =
            MethodDef::new("bad").push(Stmt::NewIntent(IntentTarget::Class("a.B".into())));
        assert!(lint_method(&dangling).iter().any(|l| l.kind == LintKind::IntentNeverStarted));
    }

    #[test]
    fn branches_checked_on_both_paths() {
        // then-arm starts cleanly; else-arm commits without begin.
        let m = MethodDef::new("mixed").push(Stmt::If {
            cond: Cond::HasExtra { key: "k".into() },
            then: vec![
                Stmt::NewIntent(IntentTarget::Class("a.B".into())),
                Stmt::StartActivity { via_host: false },
            ],
            els: vec![Stmt::TxnCommit],
        });
        let lints = lint_method(&m);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].kind, LintKind::CommitWithoutBegin);
    }

    #[test]
    fn lint_class_aggregates_methods() {
        let class = ClassDef::new("a.C", "java.lang.Object")
            .with_method(MethodDef::new("ok"))
            .with_method(MethodDef::new("bad").push(Stmt::TxnCommit));
        assert_eq!(lint_class(&class).len(), 1);
    }
}
