//! Parse errors for the textual smali-like syntax.

use std::fmt;

/// An error encountered while parsing smali-like text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at the given 1-based line.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError { line, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_message() {
        let e = ParseError::new(7, "unexpected token");
        assert_eq!(e.to_string(), "parse error at line 7: unexpected token");
    }
}
