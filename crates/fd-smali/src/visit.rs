//! Statement walkers used by the static-analysis passes.

use crate::class::{ClassDef, MethodDef};
use crate::name::ClassName;
use crate::res::ResRef;
use crate::stmt::Stmt;
use std::collections::BTreeSet;

/// Calls `f` on every statement of `body`, descending into both arms of
/// `If` blocks, in source order.
pub fn walk_stmts<'a>(body: &'a [Stmt], f: &mut dyn FnMut(&'a Stmt)) {
    for stmt in body {
        f(stmt);
        if let Stmt::If { then, els, .. } = stmt {
            walk_stmts(then, f);
            walk_stmts(els, f);
        }
    }
}

/// Calls `f` on every statement of every method of `class`.
pub fn walk_class<'a>(class: &'a ClassDef, f: &mut dyn FnMut(&'a Stmt)) {
    for method in &class.methods {
        walk_stmts(&method.body, f);
    }
}

/// All statements of a method, flattened in source order (including the
/// bodies of `If` arms).
pub fn flatten(method: &MethodDef) -> Vec<&Stmt> {
    let mut out = Vec::new();
    walk_stmts(&method.body, &mut |s| out.push(s));
    out
}

/// Every class name referenced anywhere in `class` — the paper's
/// *getUsedClass* primitive from Algorithm 2.
pub fn referenced_classes(class: &ClassDef) -> BTreeSet<ClassName> {
    let mut out = BTreeSet::new();
    walk_class(class, &mut |s| {
        for c in s.class_refs() {
            out.insert(c.clone());
        }
    });
    out
}

/// Every resource reference mentioned in `class`'s code — one side of the
/// repeated-ID match in Algorithm 3 (the other side is the layout files).
pub fn referenced_resources(class: &ClassDef) -> BTreeSet<ResRef> {
    let mut out = BTreeSet::new();
    walk_class(class, &mut |s| {
        if let Some(r) = s.res_ref() {
            out.insert(r.clone());
        }
    });
    out
}

/// Returns `true` if any statement of `class` satisfies the predicate.
pub fn any_stmt(class: &ClassDef, pred: impl Fn(&Stmt) -> bool) -> bool {
    let mut found = false;
    walk_class(class, &mut |s| {
        if !found && pred(s) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::MethodDef;
    use crate::stmt::Cond;

    fn nested_class() -> ClassDef {
        ClassDef::new("a.Main", "android.app.Activity").with_method(
            MethodDef::new("onCreate").push(Stmt::SetContentView(ResRef::layout("main"))).push(
                Stmt::If {
                    cond: Cond::InputNonEmpty { field: ResRef::id("edit") },
                    then: vec![Stmt::NewInstance(ClassName::new("a.F1"))],
                    els: vec![Stmt::If {
                        cond: Cond::HasExtra { key: "k".into() },
                        then: vec![Stmt::NewInstance(ClassName::new("a.F2"))],
                        els: vec![],
                    }],
                },
            ),
        )
    }

    #[test]
    fn walk_descends_into_both_arms() {
        let class = nested_class();
        let mut count = 0;
        walk_class(&class, &mut |_| count += 1);
        // set-content-view, outer if, new F1, inner if, new F2
        assert_eq!(count, 5);
    }

    #[test]
    fn referenced_classes_sees_nested_instances() {
        let refs = referenced_classes(&nested_class());
        assert!(refs.contains("a.F1"));
        assert!(refs.contains("a.F2"));
        assert_eq!(refs.len(), 2);
    }

    #[test]
    fn referenced_resources_includes_cond_fields() {
        let refs = referenced_resources(&nested_class());
        assert!(refs.contains(&ResRef::layout("main")));
        assert!(refs.contains(&ResRef::id("edit")));
    }

    #[test]
    fn any_stmt_short_circuit_semantics() {
        let class = nested_class();
        assert!(any_stmt(&class, |s| matches!(s, Stmt::NewInstance(c) if c.as_str() == "a.F2")));
        assert!(!any_stmt(&class, |s| matches!(s, Stmt::Finish)));
    }
}
