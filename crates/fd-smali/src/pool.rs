//! A pool of decompiled classes with the hierarchy queries the paper's
//! Algorithm 2 needs: super chains (*getSuperChain*), used classes
//! (*getUsedClass*), inner classes (*getInnerClass*), and subclass tests.

use crate::class::ClassDef;
use crate::name::ClassName;
use crate::visit;
use crate::well_known;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// All classes of one decompiled app, keyed by fully-qualified name.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassPool {
    classes: BTreeMap<ClassName, ClassDef>,
}

impl ClassPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a class, replacing any previous definition with the same
    /// name, and returns the pool (builder style).
    pub fn with(mut self, class: ClassDef) -> Self {
        self.insert(class);
        self
    }

    /// Inserts a class, replacing any previous definition with the same name.
    pub fn insert(&mut self, class: ClassDef) {
        self.classes.insert(class.name.clone(), class);
    }

    /// Looks up a class by name.
    pub fn get(&self, name: &str) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    /// Whether the pool defines `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.classes.contains_key(name)
    }

    /// Number of classes in the pool.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over all classes in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.values()
    }

    /// Iterates over all class names in order.
    pub fn names(&self) -> impl Iterator<Item = &ClassName> {
        self.classes.keys()
    }

    /// The inheritance chain of `name`, starting at `name` itself and
    /// walking `super_class` links until a framework class or an unknown
    /// class terminates the walk (the terminator is included). Cycles are
    /// broken by stopping at the first repeated name.
    ///
    /// This is the paper's *getSuperChain*.
    pub fn super_chain(&self, name: &str) -> Vec<ClassName> {
        let mut chain: Vec<ClassName> = Vec::new();
        let mut current = ClassName::new(name);
        loop {
            if chain.contains(&current) {
                break; // inheritance cycle in malformed input
            }
            chain.push(current.clone());
            match self.classes.get(current.as_str()) {
                Some(def) => current = def.super_class.clone(),
                None => break, // framework or unknown class terminates
            }
        }
        chain
    }

    /// Whether `name`'s inheritance chain contains `ancestor`.
    pub fn is_subclass_of(&self, name: &str, ancestor: &str) -> bool {
        self.super_chain(name).iter().any(|c| c.as_str() == ancestor)
    }

    /// Whether `name` is a fragment: its chain reaches
    /// `android.app.Fragment` or `android.support.v4.app.Fragment`.
    pub fn is_fragment_class(&self, name: &str) -> bool {
        self.is_subclass_of(name, well_known::FRAGMENT)
            || self.is_subclass_of(name, well_known::SUPPORT_FRAGMENT)
    }

    /// Whether `name` is an activity: its chain reaches
    /// `android.app.Activity` (directly or via the support-library
    /// `FragmentActivity`, which itself extends `Activity`).
    pub fn is_activity_class(&self, name: &str) -> bool {
        self.is_subclass_of(name, well_known::ACTIVITY)
            || self.is_subclass_of(name, well_known::SUPPORT_ACTIVITY)
    }

    /// `class` plus all of its inner classes (`Foo$1`, `Foo$Inner`, …) that
    /// exist in the pool — the paper's *getInnerClass*.
    pub fn with_inner_classes(&self, class: &str) -> Vec<&ClassDef> {
        let prefix = format!("{class}$");
        self.classes
            .iter()
            .filter(|(name, _)| name.as_str() == class || name.as_str().starts_with(&prefix))
            .map(|(_, def)| def)
            .collect()
    }

    /// Every class referenced from `class`'s code — the paper's
    /// *getUsedClass*.
    pub fn used_classes(&self, class: &str) -> BTreeSet<ClassName> {
        match self.classes.get(class) {
            Some(def) => visit::referenced_classes(def),
            None => BTreeSet::new(),
        }
    }

    /// All classes in the pool whose inheritance chain reaches any name in
    /// `bases`, in name order. Used for the paper's two-pass fragment
    /// discovery ("scan all smali files again to find out all derived
    /// classes").
    pub fn subclasses_of_any<'a>(
        &self,
        bases: impl IntoIterator<Item = &'a str>,
    ) -> Vec<&ClassDef> {
        let bases: Vec<&str> = bases.into_iter().collect();
        self.classes
            .values()
            .filter(|c| {
                let chain = self.super_chain(c.name.as_str());
                chain.iter().any(|link| bases.contains(&link.as_str()))
            })
            .collect()
    }
}

impl FromIterator<ClassDef> for ClassPool {
    fn from_iter<T: IntoIterator<Item = ClassDef>>(iter: T) -> Self {
        let mut pool = ClassPool::new();
        for class in iter {
            pool.insert(class);
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::MethodDef;
    use crate::stmt::Stmt;

    fn pool() -> ClassPool {
        ClassPool::new()
            .with(ClassDef::new("a.BaseFrag", well_known::SUPPORT_FRAGMENT))
            .with(ClassDef::new("a.NewsFrag", "a.BaseFrag"))
            .with(ClassDef::new("a.Main", well_known::ACTIVITY).with_method(
                MethodDef::new("onCreate").push(Stmt::NewInstance(ClassName::new("a.NewsFrag"))),
            ))
            .with(ClassDef::new("a.Main$1", well_known::OBJECT))
    }

    #[test]
    fn super_chain_walks_to_framework() {
        let p = pool();
        let chain = p.super_chain("a.NewsFrag");
        let names: Vec<&str> = chain.iter().map(|c| c.as_str()).collect();
        assert_eq!(names, vec!["a.NewsFrag", "a.BaseFrag", well_known::SUPPORT_FRAGMENT]);
    }

    #[test]
    fn super_chain_of_unknown_class_is_singleton() {
        let chain = pool().super_chain("not.There");
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn super_chain_breaks_cycles() {
        let p =
            ClassPool::new().with(ClassDef::new("a.A", "a.B")).with(ClassDef::new("a.B", "a.A"));
        let chain = p.super_chain("a.A");
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn fragment_and_activity_classification() {
        let p = pool();
        assert!(p.is_fragment_class("a.NewsFrag"));
        assert!(p.is_fragment_class("a.BaseFrag"));
        assert!(!p.is_fragment_class("a.Main"));
        assert!(p.is_activity_class("a.Main"));
        assert!(!p.is_activity_class("a.NewsFrag"));
    }

    #[test]
    fn inner_classes_found_by_prefix() {
        let p = pool();
        let all = p.with_inner_classes("a.Main");
        let names: Vec<&str> = all.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a.Main", "a.Main$1"]);
    }

    #[test]
    fn inner_class_prefix_does_not_match_similar_names() {
        let p = pool().with(ClassDef::new("a.Main2", well_known::OBJECT));
        let all = p.with_inner_classes("a.Main");
        assert!(all.iter().all(|c| c.name.as_str() != "a.Main2"));
    }

    #[test]
    fn used_classes_from_code() {
        let p = pool();
        let used = p.used_classes("a.Main");
        assert!(used.contains("a.NewsFrag"));
    }

    #[test]
    fn subclasses_of_any_finds_transitive() {
        let p = pool();
        let frags = p.subclasses_of_any([well_known::SUPPORT_FRAGMENT]);
        let names: Vec<&str> = frags.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a.BaseFrag", "a.NewsFrag"]);
    }
}
