//! Executable statements — the decompiled shapes FragDroid's Algorithm 1
//! pattern-matches on, plus the UI behaviours the device simulator
//! interprets.
//!
//! Each variant corresponds to a Java idiom named in the paper:
//!
//! | Variant | Java form (paper) |
//! |---|---|
//! | [`Stmt::NewIntent`] with [`IntentTarget::Class`] | `new Intent(Context, A1.class)` |
//! | [`Stmt::NewIntent`] with [`IntentTarget::Action`] | `new Intent(String action)` |
//! | [`Stmt::SetClass`] / [`Stmt::SetAction`] | `intent.setClass(..)` / `intent.setAction(..)` |
//! | [`Stmt::StartActivity`] | `startActivity(intent)` / `getActivity().startActivity(intent)` |
//! | [`Stmt::NewInstance`] / [`Stmt::NewInstanceStatic`] / [`Stmt::InstanceOf`] | `new F1()` / `F1.newInstance()` / `instanceof F1` |
//! | [`Stmt::GetFragmentManager`] | `getFragmentManager()` / `getSupportFragmentManager()` |
//! | [`Stmt::TxnAdd`] / [`Stmt::TxnReplace`] / [`Stmt::TxnCommit`] | `FragmentTransaction.add/replace/commit` |
//! | [`Stmt::AttachDirect`] | fragment inflated without a `FragmentManager` (the *dubsmash* failure case) |

use crate::name::{ClassName, MethodName};
use crate::res::ResRef;
use serde::{Deserialize, Serialize};

/// The target of an `Intent` constructor or `setClass`/`setAction` call.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntentTarget {
    /// Explicit intent: `new Intent(ctx, Target.class)`.
    Class(ClassName),
    /// Implicit intent: `new Intent("com.example.ACTION")`; resolved via
    /// `AndroidManifest.xml` intent filters.
    Action(String),
}

/// A condition guarding an [`Stmt::If`] block.
///
/// Conditions model the input gates of the paper's §V-C: a login screen
/// that only advances on the correct credentials, a weather search that
/// needs an existing place name, an activity that requires Intent extras.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// The text field's current content equals the expected string.
    InputEquals {
        /// The `EditText` widget read.
        field: ResRef,
        /// The exact value required to pass.
        expected: String,
    },
    /// The text field is non-empty.
    InputNonEmpty {
        /// The `EditText` widget read.
        field: ResRef,
    },
    /// The launching intent carried the given extra.
    HasExtra {
        /// The extra key looked up.
        key: String,
    },
}

/// One executable statement of a method body.
///
/// The statement set is deliberately small: it is the union of (a) the
/// shapes the paper's static analysis recognises and (b) the UI actions
/// its dynamic analysis must provoke or survive (dialogs, popup menus,
/// navigation drawers, crashes).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stmt {
    /// `setContentView(R.layout.x)` — inflate an activity's layout.
    SetContentView(ResRef),
    /// `inflater.inflate(R.layout.x, ..)` — inflate a fragment's layout
    /// from `onCreateView`.
    InflateLayout(ResRef),
    /// `findViewById(R.id.x)` — a code reference to a widget; Algorithm 3
    /// uses these to bind widgets to their host class.
    FindViewById(ResRef),
    /// `view.setOnClickListener(..)` — wires a widget to a handler method
    /// of the defining class.
    SetOnClick {
        /// The widget that receives clicks.
        widget: ResRef,
        /// The handler method invoked (a method of the same class).
        handler: MethodName,
    },
    /// `new Intent(..)` — begins building an intent in the implicit
    /// "current intent" register.
    NewIntent(IntentTarget),
    /// `intent.setClass(ctx, A1.class)` on the current intent.
    SetClass(ClassName),
    /// `intent.setAction("..")` on the current intent.
    SetAction(String),
    /// `intent.putExtra(key, value)` on the current intent.
    PutExtra {
        /// Extra key.
        key: String,
        /// Extra value (string-typed in this IR).
        value: String,
    },
    /// `startActivity(intent)`; `via_host` marks the
    /// `getActivity().startActivity(..)` form used inside fragments.
    StartActivity {
        /// Whether the call goes through the host activity's context.
        via_host: bool,
    },
    /// A guard in `onCreate` that force-closes the activity when the
    /// launching intent is missing the extra — the reason the paper's
    /// "mandatory starting" with empty intents fails on some activities.
    RequireExtra {
        /// Required extra key.
        key: String,
    },
    /// A guard that force-closes unless the app holds the permission —
    /// models the apps that "failed in the dynamic testing due to the
    /// issues of permissions".
    RequirePermission {
        /// Required permission, e.g. `android.permission.CAMERA`.
        permission: String,
    },
    /// `new F1()`.
    NewInstance(ClassName),
    /// `F1.newInstance()` — the static factory idiom.
    NewInstanceStatic(ClassName),
    /// `x instanceof F1`.
    InstanceOf(ClassName),
    /// `getFragmentManager()` (`support == false`) or
    /// `getSupportFragmentManager()` (`support == true`).
    GetFragmentManager {
        /// Whether the support-library manager is used.
        support: bool,
    },
    /// `fragmentManager.beginTransaction()`.
    BeginTransaction,
    /// `transaction.add(R.id.container, fragment)`.
    TxnAdd {
        /// The `ViewGroup` the fragment is placed into.
        container: ResRef,
        /// The fragment class instantiated.
        fragment: ClassName,
    },
    /// `transaction.replace(R.id.container, fragment)`.
    TxnReplace {
        /// The `ViewGroup` whose fragment is swapped.
        container: ResRef,
        /// The fragment class instantiated.
        fragment: ClassName,
    },
    /// `transaction.commit()`.
    TxnCommit,
    /// Attaches a fragment's view directly, bypassing the
    /// `FragmentManager` — the loading style FragDroid "cannot determine
    /// whether the Fragment is a real loading" for.
    AttachDirect {
        /// The container the fragment view is injected into.
        container: ResRef,
        /// The fragment class.
        fragment: ClassName,
    },
    /// Opens/closes a navigation drawer (the hidden slide menu of Fig. 2).
    ToggleDrawer {
        /// The drawer container widget.
        drawer: ResRef,
    },
    /// Shows a modal dialog; dismissed by the driver "clicking on blank
    /// space".
    ShowDialog {
        /// A label identifying the dialog.
        id: String,
    },
    /// Shows an action-bar popup menu — the pop operations that
    /// "interrupt normal test case generation" in the paper's §VII-B1.
    ShowPopupMenu {
        /// A label identifying the menu.
        id: String,
    },
    /// An invocation of a sensitive API, e.g.
    /// `invoke-api location/getAllProviders` (XPrivacy taxonomy).
    InvokeApi {
        /// The XPrivacy group (`location`, `internet`, …).
        group: String,
        /// The function name within the group.
        name: String,
    },
    /// A generic call into another app class; feeds Algorithm 2's
    /// used-class analysis.
    InvokeMethod {
        /// The callee class.
        class: ClassName,
        /// The callee method.
        method: MethodName,
    },
    /// `finish()` — pops the current activity.
    Finish,
    /// An unconditional crash (uncaught exception → Force Close).
    Crash {
        /// The exception message.
        reason: String,
    },
    /// A conditional block.
    If {
        /// The guard.
        cond: Cond,
        /// Statements executed when the guard holds.
        then: Vec<Stmt>,
        /// Statements executed otherwise.
        els: Vec<Stmt>,
    },
}

impl Stmt {
    /// Convenience constructor for a guarded block without an `else` arm.
    pub fn if_then(cond: Cond, then: Vec<Stmt>) -> Stmt {
        Stmt::If { cond, then, els: Vec::new() }
    }

    /// The class names this single statement references, if any.
    /// (Use [`crate::visit::referenced_classes`] for whole-body queries —
    /// it also descends into `If` arms.)
    pub fn class_refs(&self) -> Vec<&ClassName> {
        match self {
            Stmt::NewIntent(IntentTarget::Class(c))
            | Stmt::SetClass(c)
            | Stmt::NewInstance(c)
            | Stmt::NewInstanceStatic(c)
            | Stmt::InstanceOf(c)
            | Stmt::TxnAdd { fragment: c, .. }
            | Stmt::TxnReplace { fragment: c, .. }
            | Stmt::AttachDirect { fragment: c, .. }
            | Stmt::InvokeMethod { class: c, .. } => vec![c],
            _ => Vec::new(),
        }
    }

    /// The resource references this single statement mentions, if any.
    pub fn res_refs(&self) -> Vec<&ResRef> {
        self.res_ref().into_iter().collect()
    }

    /// The resource reference this statement names, if any. No statement
    /// names more than one (an `if` contributes only its condition's
    /// field; refs inside the branches belong to the nested statements),
    /// so this is the allocation-free primitive behind [`Stmt::res_refs`].
    pub fn res_ref(&self) -> Option<&ResRef> {
        match self {
            Stmt::SetContentView(r)
            | Stmt::InflateLayout(r)
            | Stmt::FindViewById(r)
            | Stmt::SetOnClick { widget: r, .. }
            | Stmt::TxnAdd { container: r, .. }
            | Stmt::TxnReplace { container: r, .. }
            | Stmt::AttachDirect { container: r, .. }
            | Stmt::ToggleDrawer { drawer: r } => Some(r),
            Stmt::If { cond, .. } => match cond {
                Cond::InputEquals { field, .. } | Cond::InputNonEmpty { field } => Some(field),
                Cond::HasExtra { .. } => None,
            },
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_refs_cover_fragment_shapes() {
        let f = ClassName::new("a.F1");
        for s in [
            Stmt::NewInstance(f.clone()),
            Stmt::NewInstanceStatic(f.clone()),
            Stmt::InstanceOf(f.clone()),
            Stmt::TxnAdd { container: ResRef::id("c"), fragment: f.clone() },
            Stmt::TxnReplace { container: ResRef::id("c"), fragment: f.clone() },
        ] {
            assert_eq!(s.class_refs(), vec![&f], "statement {s:?}");
        }
    }

    #[test]
    fn res_refs_include_condition_fields() {
        let s = Stmt::if_then(
            Cond::InputEquals { field: ResRef::id("edit"), expected: "x".into() },
            vec![],
        );
        assert_eq!(s.res_refs(), vec![&ResRef::id("edit")]);
    }

    #[test]
    fn plain_statements_have_no_refs() {
        assert!(Stmt::Finish.class_refs().is_empty());
        assert!(Stmt::TxnCommit.res_refs().is_empty());
    }
}
