//! Property tests: printing a class and re-parsing it is the identity,
//! for arbitrary well-formed class definitions.

use fd_smali::{
    parser::parse_class, parser::parse_classes, printer::print_class, ClassDef, ClassName, Cond,
    FieldDef, IntentTarget, MethodDef, MethodName, ResKind, ResRef, Stmt, Visibility,
};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,10}"
}

fn class_name() -> impl Strategy<Value = ClassName> {
    (ident(), ident(), prop::option::of(1usize..4)).prop_map(|(pkg, simple, inner)| {
        let base = format!("{pkg}.{}", capitalize(&simple));
        match inner {
            Some(n) => ClassName::new(format!("{base}${n}")),
            None => ClassName::new(base),
        }
    })
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

fn res_ref() -> impl Strategy<Value = ResRef> {
    (
        prop_oneof![
            Just(ResKind::Id),
            Just(ResKind::Layout),
            Just(ResKind::Menu),
            Just(ResKind::String)
        ],
        ident(),
    )
        .prop_map(|(kind, name)| ResRef::new(kind, name))
}

/// Arbitrary free-form text for string literals — exercises the escape
/// machinery with quotes, backslashes, newlines and control characters.
fn literal() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\\n\\t\"\\\\]{0,20}").expect("valid regex")
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        (res_ref(), literal()).prop_map(|(field, expected)| Cond::InputEquals { field, expected }),
        res_ref().prop_map(|field| Cond::InputNonEmpty { field }),
        literal().prop_map(|key| Cond::HasExtra { key }),
    ]
}

fn simple_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        res_ref().prop_map(Stmt::SetContentView),
        res_ref().prop_map(Stmt::InflateLayout),
        res_ref().prop_map(Stmt::FindViewById),
        (res_ref(), ident())
            .prop_map(|(widget, h)| Stmt::SetOnClick { widget, handler: MethodName::new(h) }),
        class_name().prop_map(|c| Stmt::NewIntent(IntentTarget::Class(c))),
        literal().prop_map(|a| Stmt::NewIntent(IntentTarget::Action(a))),
        class_name().prop_map(Stmt::SetClass),
        literal().prop_map(Stmt::SetAction),
        (literal(), literal()).prop_map(|(key, value)| Stmt::PutExtra { key, value }),
        any::<bool>().prop_map(|via_host| Stmt::StartActivity { via_host }),
        literal().prop_map(|key| Stmt::RequireExtra { key }),
        literal().prop_map(|permission| Stmt::RequirePermission { permission }),
        class_name().prop_map(Stmt::NewInstance),
        class_name().prop_map(Stmt::NewInstanceStatic),
        class_name().prop_map(Stmt::InstanceOf),
        any::<bool>().prop_map(|support| Stmt::GetFragmentManager { support }),
        Just(Stmt::BeginTransaction),
        (res_ref(), class_name())
            .prop_map(|(container, fragment)| Stmt::TxnAdd { container, fragment }),
        (res_ref(), class_name())
            .prop_map(|(container, fragment)| Stmt::TxnReplace { container, fragment }),
        Just(Stmt::TxnCommit),
        (res_ref(), class_name())
            .prop_map(|(container, fragment)| Stmt::AttachDirect { container, fragment }),
        res_ref().prop_map(|drawer| Stmt::ToggleDrawer { drawer }),
        literal().prop_map(|id| Stmt::ShowDialog { id }),
        literal().prop_map(|id| Stmt::ShowPopupMenu { id }),
        (ident(), ident()).prop_map(|(group, name)| Stmt::InvokeApi { group, name }),
        (class_name(), ident())
            .prop_map(|(class, m)| Stmt::InvokeMethod { class, method: MethodName::new(m) }),
        Just(Stmt::Finish),
        literal().prop_map(|reason| Stmt::Crash { reason }),
    ]
}

fn stmt() -> impl Strategy<Value = Stmt> {
    simple_stmt().prop_recursive(3, 24, 4, |inner| {
        (cond(), prop::collection::vec(inner.clone(), 0..4), prop::collection::vec(inner, 0..4))
            .prop_map(|(cond, then, els)| Stmt::If { cond, then, els })
    })
}

fn visibility() -> impl Strategy<Value = Visibility> {
    prop_oneof![
        Just(Visibility::Public),
        Just(Visibility::Protected),
        Just(Visibility::Package),
        Just(Visibility::Private),
    ]
}

fn method() -> impl Strategy<Value = MethodDef> {
    (
        ident(),
        prop::collection::vec(ident(), 0..3),
        visibility(),
        prop::collection::vec(stmt(), 0..8),
    )
        .prop_map(|(name, params, visibility, body)| MethodDef {
            name: MethodName::new(name),
            params,
            visibility,
            body,
        })
}

fn class_def() -> impl Strategy<Value = ClassDef> {
    (
        class_name(),
        class_name(),
        prop::collection::vec(class_name(), 0..3),
        visibility(),
        any::<bool>(),
        prop::collection::vec((ident(), ident()), 0..3),
        prop::collection::vec(method(), 0..4),
    )
        .prop_map(
            |(name, super_class, interfaces, visibility, is_abstract, fields, methods)| ClassDef {
                name,
                super_class,
                interfaces,
                visibility,
                is_abstract,
                fields: fields.into_iter().map(|(n, t)| FieldDef::new(n, t)).collect(),
                methods,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_then_parse_is_identity(class in class_def()) {
        let text = print_class(&class);
        let parsed = parse_class(&text)
            .unwrap_or_else(|e| panic!("failed to re-parse:\n{text}\nerror: {e}"));
        prop_assert_eq!(parsed, class);
    }

    #[test]
    fn multi_class_files_roundtrip(classes in prop::collection::vec(class_def(), 0..4)) {
        let text: String = classes.iter().map(print_class).collect::<Vec<_>>().join("\n");
        let parsed = parse_classes(&text).unwrap();
        prop_assert_eq!(parsed, classes);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(text in "[ -~\\n]{0,500}") {
        let _ = parse_classes(&text); // must return Err, not panic
    }

    /// Raw byte soup, lossily decoded the way the ingestion frontier
    /// does it, never panics the lexer or parser either.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..500)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_classes(&text); // must return Err, not panic
    }
}
