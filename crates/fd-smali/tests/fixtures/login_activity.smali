# A hand-written fixture covering every construct of the textual syntax.
# Checked against the parser in tests/golden.rs — if the grammar changes,
# this file is the canary.

.class public Lcom/fixture/LoginActivity;
.super Landroid/app/Activity;
.implements Landroid/view/View$OnClickListener;
.field attempts int
.field last Ljava/lang/String;

.method public onCreate()
    set-content-view @layout/login
    find-view @id/username
    find-view @id/password
    set-on-click @id/submit onSubmit
    set-on-click @id/help onHelp
    get-support-fragment-manager
    begin-transaction
    txn-add @id/banner_slot Lcom/fixture/BannerFragment;
    txn-commit
    invoke-api identification/getString
.end method

.method public onSubmit()
    if input-equals @id/password "s3cr3t!\"quoted\""
        new-intent-class Lcom/fixture/HomeActivity;
        put-extra "user" "from\nfixture"
        start-activity
    else
        if input-non-empty @id/username
            show-dialog "wrong password"
        else
            show-popup-menu "field help"
        end-if
    end-if
.end method

.method public onHelp()
    new-intent-action "com.fixture.HELP"
    start-activity
.end method

.method protected onDestroy()
    invoke Lcom/fixture/Telemetry; flush
.end method

.end class

.class public abstract Lcom/fixture/BaseFragment;
.super Landroid/support/v4/app/Fragment;
.end class

.class public Lcom/fixture/BannerFragment;
.super Lcom/fixture/BaseFragment;

.method public <init>(java.lang.String,int)
.end method

.method public onCreateView()
    inflate @layout/banner
    attach-direct @id/inner Lcom/fixture/InnerFragment;
    toggle-drawer @id/banner_drawer
    instance-of Lcom/fixture/InnerFragment;
    new-instance-static Lcom/fixture/InnerFragment;
    require-extra "campaign"
    require-permission "android.permission.INTERNET"
    crash "unreachable sentinel"
.end method

.end class
