//! Golden-fixture test: a hand-written smali file covering the whole
//! grammar must parse, expose the expected structure, and survive a
//! print → parse round trip.

use fd_smali::{parser, printer, Cond, IntentTarget, Stmt, Visibility};

const FIXTURE: &str = include_str!("fixtures/login_activity.smali");

#[test]
fn fixture_parses_with_expected_structure() {
    let classes = parser::parse_classes(FIXTURE).expect("fixture parses");
    assert_eq!(classes.len(), 3);

    let login = &classes[0];
    assert_eq!(login.name.as_str(), "com.fixture.LoginActivity");
    assert_eq!(login.super_class.as_str(), "android.app.Activity");
    assert_eq!(login.interfaces.len(), 1);
    assert_eq!(login.fields.len(), 2);
    assert_eq!(login.methods.len(), 4);
    assert_eq!(login.method("onDestroy").unwrap().visibility, Visibility::Protected);

    // Nested if/else with escapes.
    let submit = login.method("onSubmit").unwrap();
    let Stmt::If { cond, then, els } = &submit.body[0] else { panic!("expected if") };
    assert_eq!(
        cond,
        &Cond::InputEquals {
            field: fd_smali::ResRef::id("password"),
            expected: "s3cr3t!\"quoted\"".into()
        }
    );
    assert!(matches!(&then[1], Stmt::PutExtra { value, .. } if value == "from\nfixture"));
    assert!(matches!(&els[0], Stmt::If { .. }), "nested else-if");

    // Implicit intent.
    let help = login.method("onHelp").unwrap();
    assert!(
        matches!(&help.body[0], Stmt::NewIntent(IntentTarget::Action(a)) if a == "com.fixture.HELP")
    );

    // Abstract base + parameterized ctor.
    let base = &classes[1];
    assert!(base.is_abstract);
    let banner = &classes[2];
    assert!(!banner.has_default_ctor());
    assert_eq!(banner.method("<init>").unwrap().params, vec!["java.lang.String", "int"]);
}

#[test]
fn fixture_survives_print_parse_roundtrip() {
    let classes = parser::parse_classes(FIXTURE).expect("fixture parses");
    let printed: String = classes.iter().map(printer::print_class).collect::<Vec<_>>().join("\n");
    let reparsed = parser::parse_classes(&printed).expect("printed form parses");
    assert_eq!(reparsed, classes);
}

#[test]
fn fixture_class_pool_queries() {
    let pool: fd_smali::ClassPool = parser::parse_classes(FIXTURE).unwrap().into_iter().collect();
    assert!(pool.is_activity_class("com.fixture.LoginActivity"));
    assert!(pool.is_fragment_class("com.fixture.BannerFragment"));
    assert!(pool.is_fragment_class("com.fixture.BaseFragment"));
    let used = pool.used_classes("com.fixture.LoginActivity");
    assert!(used.contains("com.fixture.BannerFragment"));
    assert!(used.contains("com.fixture.HomeActivity"));
    assert!(used.contains("com.fixture.Telemetry"));
}
