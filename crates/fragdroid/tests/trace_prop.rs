//! Tracing must never change results: a disabled tracer is property-tested
//! to produce byte-identical reports, and an enabled tracer's spans must
//! agree with the suite's own wall-clock metrics.

use fragdroid::{run_suite_traced, FragDroid, FragDroidConfig, SuiteMetrics};

fn corpus_slice(seed: u64, n: usize) -> Vec<fragdroid::suite::SuiteApp> {
    fd_appgen::corpus::corpus_217(seed)
        .into_iter()
        .filter(|g| !g.app.meta.packed)
        .take(n)
        .map(|g| (g.app, g.known_inputs))
        .collect()
}

mod disabled_is_byte_identical {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// `run` (which routes through a disabled tracer) and an enabled
        /// traced run produce byte-identical reports: tracing observes,
        /// never steers. Fault injection is armed so the instrumented
        /// retry/crash/recovery paths are all exercised.
        #[test]
        fn traced_and_untraced_reports_match(seed in 0u64..32, rate in 0usize..2) {
            let gen = fd_appgen::templates::quickstart();
            let config = if rate == 0 {
                FragDroidConfig::default()
            } else {
                FragDroidConfig::default().with_faults(seed, 0.25)
            };
            let untraced = FragDroid::new(config.clone()).run(&gen.app, &gen.known_inputs);
            let disabled = FragDroid::new(config.clone()).run_traced(
                &gen.app,
                &gen.known_inputs,
                &fd_trace::Tracer::disabled(),
            );
            let enabled_tracer =
                fd_trace::Tracer::new(&fd_trace::TraceConfig::on(), fd_trace::TraceClock::start(), 0);
            let enabled = FragDroid::new(config).run_traced(
                &gen.app,
                &gen.known_inputs,
                &enabled_tracer,
            );
            let track = enabled_tracer.finish();

            let a = serde_json::to_string(&untraced).unwrap();
            let b = serde_json::to_string(&disabled).unwrap();
            let c = serde_json::to_string(&enabled).unwrap();
            prop_assert_eq!(&a, &b, "disabled tracer must be invisible");
            prop_assert_eq!(&a, &c, "enabled tracer must be invisible too");
            prop_assert!(!track.records.is_empty(), "enabled run did record");
        }

        /// The suite entry points agree the same way: `run_suite_traced`
        /// with tracing off is byte-identical to the untraced suite, and
        /// turning tracing on changes the trace, not the outcomes.
        #[test]
        fn suite_reports_unaffected_by_tracing(seed in 0u64..16) {
            let apps = corpus_slice(seed + 1, 3);
            let config = FragDroidConfig::default().with_faults(seed, 0.2);
            let baseline = fragdroid::run_suite_with_workers(&apps, &config, 2);
            let (off_run, off_trace) =
                run_suite_traced(&apps, &config, 2, &fd_trace::TraceConfig::off());
            let (on_run, on_trace) =
                run_suite_traced(&apps, &config, 2, &fd_trace::TraceConfig::on());
            prop_assert!(off_trace.records.is_empty());
            prop_assert!(!on_trace.records.is_empty());
            for ((b, off), on) in
                baseline.outcomes.iter().zip(&off_run.outcomes).zip(&on_run.outcomes)
            {
                let b = serde_json::to_string(b.report().unwrap()).unwrap();
                let off = serde_json::to_string(off.report().unwrap()).unwrap();
                let on = serde_json::to_string(on.report().unwrap()).unwrap();
                prop_assert_eq!(&b, &off);
                prop_assert_eq!(&b, &on);
            }
        }
    }
}

/// The per-phase spans `fd-cli trace` reports must agree with the
/// suite's own accounting — checked *structurally* (span counts,
/// timestamp nesting, and a truncation-only stopwatch bound), never
/// against wall-clock coverage ratios: how much of an App span the
/// phases cover depends on scheduler preemption, so any duration-slack
/// assertion is flaky on a loaded host.
#[test]
fn phase_totals_agree_with_suite_metrics() {
    let apps = corpus_slice(3, 6);
    let config = FragDroidConfig::default().with_faults(9, 0.25);
    let (run, trace) = run_suite_traced(&apps, &config, 2, &fd_trace::TraceConfig::on());
    let summary = fd_trace::TraceSummary::compute(&trace);

    let phase_total = summary.top_level_phase_total_us();
    let app_total = summary.app_total_us;
    assert!(phase_total <= app_total, "phases nest inside the App spans");

    // Structural containment: each worker track carries one App span
    // per app it ran, and every top-level phase span on a track nests
    // inside one of that track's App spans — the span guards enforce
    // this ordering in code, so the timestamps must agree no matter how
    // loaded the machine is.
    let mut app_spans: std::collections::BTreeMap<u64, Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    let mut total_app_spans = 0usize;
    for record in &trace.records {
        if let fd_trace::TraceRecord::Span(span) = record {
            if span.phase == fd_trace::Phase::App {
                let end = span.wall_start_us + span.wall_dur_us;
                app_spans.entry(span.track).or_default().push((span.wall_start_us, end));
                total_app_spans += 1;
            }
        }
    }
    assert_eq!(total_app_spans, run.metrics.apps.len(), "every app got an App span");

    let top_level = [
        fd_trace::Phase::Decompile,
        fd_trace::Phase::Pack,
        fd_trace::Phase::Static,
        fd_trace::Phase::Explore,
    ];
    let (mut static_spans, mut explore_spans) = (0usize, 0usize);
    for record in &trace.records {
        if let fd_trace::TraceRecord::Span(span) = record {
            if top_level.contains(&span.phase) {
                let intervals = app_spans.get(&span.track).expect("phase span on an app track");
                let (s, e) = (span.wall_start_us, span.wall_start_us + span.wall_dur_us);
                assert!(
                    intervals.iter().any(|&(start, end)| s >= start && e <= end),
                    "{} span [{s}..{e}]µs must nest inside an App span of its track \
                     (App spans: {intervals:?})",
                    span.phase.as_str(),
                );
                match span.phase {
                    fd_trace::Phase::Static => static_spans += 1,
                    fd_trace::Phase::Explore => explore_spans += 1,
                    _ => {}
                }
            }
        }
    }
    assert_eq!(static_spans, run.metrics.apps.len(), "one Static span per app");
    assert_eq!(explore_spans, run.metrics.apps.len(), "one Explore span per app");

    // The engine's stopwatch brackets each job (which contains the App
    // span), and `wall_ms` truncates to milliseconds — so the only
    // legitimate excess of span total over stopwatch total is that
    // sub-millisecond truncation, one per app. No load-dependent slack.
    let metrics_total_us: u64 = run.metrics.apps.iter().map(|m| m.wall_ms * 1000).sum();
    let truncation = 1_000 * run.metrics.apps.len() as u64;
    assert!(
        app_total <= metrics_total_us + truncation,
        "span total {app_total}µs vs engine total {metrics_total_us}µs"
    );

    // Every fault and retry the reports counted is on the trace.
    let (mut faults, mut retries, mut crashes) = (0u64, 0u64, 0u64);
    for outcome in &run.outcomes {
        let report = outcome.report().unwrap();
        faults += report.faults_injected as u64;
        retries += report.retries as u64;
        crashes += report.crashes as u64;
    }
    assert_eq!(summary.faults, faults, "every injected fault is traced");
    assert_eq!(summary.retries, retries, "every retry is traced");
    assert_eq!(summary.crashes, crashes, "every crash is traced");
}

/// The quantile fields added to [`SuiteMetrics`] survive a JSON roundtrip
/// and default to zero when parsing a record written before they existed.
#[test]
fn suite_metrics_quantiles_roundtrip_and_default() {
    let apps = corpus_slice(5, 5);
    let run = fragdroid::run_suite_with_workers(&apps, &FragDroidConfig::default(), 2);
    let metrics = &run.metrics;
    assert_eq!(metrics.app_wall_ms_max, metrics.apps.iter().map(|m| m.wall_ms).max().unwrap());
    assert!(metrics.app_wall_ms_p50 <= metrics.app_wall_ms_p95);
    assert!(metrics.app_wall_ms_p95 <= metrics.app_wall_ms_max);

    let json = metrics.to_json().expect("metrics serialize");
    let parsed = SuiteMetrics::from_json(&json).expect("roundtrip parses");
    assert_eq!(&parsed, metrics);

    // A pre-quantile record still parses; the new fields default to 0.
    let legacy = r#"{
        "workers": 2, "wall_ms": 10, "busy_ms": 9,
        "worker_utilization": 0.45, "apps": []
    }"#;
    let parsed = SuiteMetrics::from_json(legacy).expect("legacy record parses");
    assert_eq!(parsed.app_wall_ms_p50, 0);
    assert_eq!(parsed.app_wall_ms_p95, 0);
    assert_eq!(parsed.app_wall_ms_max, 0);
}
