//! The checkpoint journal's two load-bearing promises, property-tested:
//!
//! 1. **Kill-and-resume determinism** — a same-seed corpus run
//!    interrupted at any completed-app boundary and resumed produces
//!    serialized outcomes byte-identical to the uninterrupted run.
//! 2. **Torn-tail recovery** — truncating a valid journal at *every*
//!    byte offset either resumes cleanly (tail dropped, progress
//!    preserved) or fails with a typed [`JournalError`] — never a panic
//!    and never a silent wrong resume.

use fragdroid::suite::SuiteContainer;
use fragdroid::{
    load_journal, run_container_suite_checkpointed, run_container_suite_traced, CheckpointOptions,
    FragDroidConfig, JournalError, SuiteRun,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh scratch path per call (the OS temp dir survives the test
/// binary; files are removed by each test when it finishes cleanly).
fn scratch(name: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fd-ckpt-{}-{name}-{n}", std::process::id()))
}

/// A small mixed corpus: well-formed apps (fault injection armed so some
/// crash), one malformed container, and one truncated one — every
/// [`fragdroid::AppOutcome`] variant except `Panicked` shows up.
fn mixed_corpus(seed: u64) -> Vec<SuiteContainer> {
    let mut containers: Vec<SuiteContainer> = [
        fd_appgen::templates::quickstart(),
        fd_appgen::templates::nav_drawer_wallpapers(),
        fd_appgen::templates::tabbed_categories(),
    ]
    .into_iter()
    .map(|g| (fd_apk::pack(&g.app), g.known_inputs))
    .collect();
    containers.insert(1, (bytes::Bytes::from_static(b"not a container"), BTreeMap::new()));
    let truncated = containers[0].0.slice(0..12);
    containers.push((truncated, BTreeMap::new()));
    // Perturb the corpus by seed so different cases journal different
    // bytes (the seed feeds the fault plan below too).
    let n = containers.len() as u64;
    containers.rotate_left((seed % n) as usize);
    containers
}

fn faulty_config(seed: u64) -> FragDroidConfig {
    FragDroidConfig::default().with_faults(seed, 0.25)
}

/// The determinism surface: the serialized outcomes, in input order.
/// (Timing fields in the metrics legitimately differ between runs.)
fn outcome_bytes(run: &SuiteRun) -> Vec<String> {
    run.outcomes.iter().map(|o| serde_json::to_string(o).expect("outcomes serialize")).collect()
}

/// Runs the corpus uninterrupted (no journal) as the reference.
fn reference_run(containers: &[SuiteContainer], config: &FragDroidConfig) -> SuiteRun {
    run_container_suite_traced(containers, config, 2, &fd_trace::TraceConfig::off()).0
}

mod kill_and_resume {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Interrupt at every app-budget cutoff (0..=n fresh apps run,
        /// then the process "dies"), resume, and compare against the
        /// uninterrupted run: the serialized outcomes must be
        /// byte-identical, and the digest must agree.
        #[test]
        fn resume_matches_uninterrupted(seed in 0u64..16, cutoff in 0usize..6) {
            let containers = mixed_corpus(seed);
            let config = faulty_config(seed);
            let reference = reference_run(&containers, &config);

            let path = scratch("resume");
            let first = CheckpointOptions::new(&path).with_app_budget(cutoff);
            let (partial, _) = run_container_suite_checkpointed(
                &containers, &config, 2, &fd_trace::TraceConfig::off(), Some(&first), 0,
            ).expect("budgeted run journals cleanly");
            prop_assert_eq!(partial.fresh, cutoff.min(containers.len()));

            let second = CheckpointOptions::new(&path).with_resume(true);
            let (full, _) = run_container_suite_checkpointed(
                &containers, &config, 2, &fd_trace::TraceConfig::off(), Some(&second), 0,
            ).expect("resume completes the corpus");
            prop_assert!(full.is_complete());
            prop_assert_eq!(full.resumed, cutoff.min(containers.len()));

            prop_assert_eq!(outcome_bytes(&full.run), outcome_bytes(&reference));
            prop_assert_eq!(full.run.outcome_digest(), reference.outcome_digest());
            std::fs::remove_file(&path).ok();
        }

        /// A second resume with zero remaining work restores everything
        /// from the journal (no app runs at all) and still reproduces
        /// the reference outcomes byte-for-byte — including the flake
        /// summary, which is replayed from the journal, not recomputed.
        #[test]
        fn zero_work_resume_is_byte_identical(seed in 0u64..16) {
            let containers = mixed_corpus(seed);
            let config = faulty_config(seed);
            let path = scratch("zero");

            let first = CheckpointOptions::new(&path);
            let (complete, _) = run_container_suite_checkpointed(
                &containers, &config, 2, &fd_trace::TraceConfig::off(), Some(&first), 2,
            ).expect("full run journals cleanly");
            prop_assert!(complete.is_complete());

            let again = CheckpointOptions::new(&path).with_resume(true);
            let (replayed, _) = run_container_suite_checkpointed(
                &containers, &config, 2, &fd_trace::TraceConfig::off(), Some(&again), 2,
            ).expect("complete journal replays");
            prop_assert_eq!(replayed.fresh, 0, "no fresh work on a complete journal");
            prop_assert_eq!(outcome_bytes(&replayed.run), outcome_bytes(&complete.run));
            prop_assert_eq!(
                serde_json::to_string(&replayed.run.metrics.flake_summary).unwrap(),
                serde_json::to_string(&complete.run.metrics.flake_summary).unwrap(),
                "journaled flake verdicts are replayed verbatim"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

mod torn_tail {
    use super::*;

    /// Writes a complete journal and returns its bytes plus the
    /// reference outcomes.
    fn complete_journal(path: &PathBuf) -> (Vec<u8>, SuiteRun) {
        let containers = mixed_corpus(3);
        let config = faulty_config(3);
        let opts = CheckpointOptions::new(path);
        let (complete, _) = run_container_suite_checkpointed(
            &containers,
            &config,
            2,
            &fd_trace::TraceConfig::off(),
            Some(&opts),
            0,
        )
        .expect("full run journals cleanly");
        let bytes = std::fs::read(path).expect("journal readable");
        (bytes, complete.run)
    }

    /// Truncating at every byte offset: `load_journal` must return
    /// either a clean prefix (mid-line truncation → torn tail dropped)
    /// or a typed error (header damaged) — never panic.
    #[test]
    fn every_truncation_offset_loads_or_fails_typed() {
        let path = scratch("trunc");
        let (bytes, _) = complete_journal(&path);
        let header_len = bytes
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| p + 1)
            .expect("journal has a header line");

        let victim = scratch("trunc-victim");
        let mut boundaries = vec![0usize];
        for offset in 0..=bytes.len() {
            std::fs::write(&victim, &bytes[..offset]).expect("write truncated copy");
            let result = load_journal(&victim);
            match result {
                Ok(loaded) => {
                    // A loadable prefix always has an intact header, its
                    // valid length never exceeds the truncation point,
                    // and torn bytes account for the rest exactly.
                    assert!(
                        offset >= header_len,
                        "no load without a full header (offset {offset})"
                    );
                    assert_eq!(
                        loaded.valid_len + loaded.torn_tail_bytes,
                        offset as u64,
                        "every byte is either valid or torn at offset {offset}"
                    );
                    if loaded.torn_tail_bytes == 0 {
                        boundaries.push(offset);
                    }
                }
                Err(
                    JournalError::TornTail { .. }
                    | JournalError::MissingHeader
                    | JournalError::ChecksumMismatch { .. }
                    | JournalError::BadRecord { .. },
                ) => {
                    // Typed refusal: only reachable while the header
                    // itself is incomplete.
                    assert!(
                        offset < header_len,
                        "typed load failure past the header at offset {offset}"
                    );
                }
                Err(other) => panic!("unexpected journal error at offset {offset}: {other}"),
            }
        }
        assert!(
            boundaries.len() > 2,
            "the sweep crossed multiple record boundaries ({boundaries:?})"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&victim).ok();
    }

    /// Resuming from a journal truncated at each record boundary (the
    /// footprint of a kill between appends) reproduces the reference
    /// outcomes byte-identically, and mid-record truncations resume too
    /// (the torn record's app simply re-runs).
    #[test]
    fn truncated_journals_resume_to_the_reference() {
        let containers = mixed_corpus(3);
        let config = faulty_config(3);
        let reference = reference_run(&containers, &config);

        let path = scratch("trunc-resume");
        let (bytes, _) = complete_journal(&path);

        // Every record boundary plus a mid-record sample.
        let mut offsets: Vec<usize> =
            bytes.iter().enumerate().filter(|(_, &b)| b == b'\n').map(|(i, _)| i + 1).collect();
        offsets.push(bytes.len() / 2);
        offsets.push(bytes.len().saturating_sub(3));

        for offset in offsets {
            let victim = scratch("trunc-resume-victim");
            std::fs::write(&victim, &bytes[..offset]).expect("write truncated copy");
            let opts = CheckpointOptions::new(&victim).with_resume(true);
            let (resumed, _) = run_container_suite_checkpointed(
                &containers,
                &config,
                2,
                &fd_trace::TraceConfig::off(),
                Some(&opts),
                0,
            )
            .unwrap_or_else(|e| panic!("resume from offset {offset} failed: {e}"));
            assert!(resumed.is_complete());
            assert_eq!(
                outcome_bytes(&resumed.run),
                outcome_bytes(&reference),
                "offset {offset} resumed to different outcomes"
            );
            std::fs::remove_file(&victim).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    /// Flipping any byte of a *complete* (newline-terminated) record is
    /// caught: the load fails with a typed checksum/parse error instead
    /// of silently resuming wrong data.
    #[test]
    fn mid_file_corruption_is_a_typed_error() {
        let path = scratch("corrupt");
        let (bytes, _) = complete_journal(&path);
        let second_line_start = bytes
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| p + 1)
            .expect("journal has a header line");

        // A sample of positions inside the first outcome record.
        for delta in [0usize, 5, 17, 40] {
            let target = second_line_start + delta;
            let mut corrupt = bytes.clone();
            corrupt[target] ^= 0x20;
            let victim = scratch("corrupt-victim");
            std::fs::write(&victim, &corrupt).expect("write corrupt copy");
            match load_journal(&victim) {
                Err(JournalError::ChecksumMismatch { .. } | JournalError::BadRecord { .. }) => {}
                Ok(_) => panic!("corruption at byte {target} loaded silently"),
                Err(other) => panic!("unexpected error for byte {target}: {other}"),
            }
            std::fs::remove_file(&victim).ok();
        }
        std::fs::remove_file(&path).ok();
    }
}

mod refusals {
    use super::*;

    /// A journal written by a different invocation (different seed →
    /// different fault plan → different config digest) is refused.
    #[test]
    fn fingerprint_mismatch_is_refused() {
        let containers = mixed_corpus(3);
        let path = scratch("fpr");
        let opts = CheckpointOptions::new(&path);
        run_container_suite_checkpointed(
            &containers,
            &faulty_config(3),
            2,
            &fd_trace::TraceConfig::off(),
            Some(&opts),
            0,
        )
        .expect("first run journals");

        let resume = CheckpointOptions::new(&path).with_resume(true);
        let result = run_container_suite_checkpointed(
            &containers,
            &faulty_config(4), // different fault seed
            2,
            &fd_trace::TraceConfig::off(),
            Some(&resume),
            0,
        );
        match result {
            Err(JournalError::FingerprintMismatch { expected, found }) => {
                assert_ne!(expected.config_digest, found.config_digest);
                assert_eq!(expected.corpus_digest, found.corpus_digest);
            }
            other => panic!("expected fingerprint refusal, got {other:?}"),
        }

        // A different flake budget is part of the fingerprint too.
        let result = run_container_suite_checkpointed(
            &containers,
            &faulty_config(3),
            2,
            &fd_trace::TraceConfig::off(),
            Some(&resume),
            5,
        );
        assert!(matches!(result, Err(JournalError::FingerprintMismatch { .. })));
        std::fs::remove_file(&path).ok();
    }

    /// Without `--resume`, an existing journal is never overwritten.
    #[test]
    fn existing_journal_without_resume_is_refused() {
        let containers = mixed_corpus(1);
        let config = faulty_config(1);
        let path = scratch("exists");
        let opts = CheckpointOptions::new(&path);
        run_container_suite_checkpointed(
            &containers,
            &config,
            1,
            &fd_trace::TraceConfig::off(),
            Some(&opts),
            0,
        )
        .expect("first run journals");
        let before = std::fs::read(&path).expect("journal readable");

        let result = run_container_suite_checkpointed(
            &containers,
            &config,
            1,
            &fd_trace::TraceConfig::off(),
            Some(&opts),
            0,
        );
        assert!(matches!(result, Err(JournalError::AlreadyExists { .. })));
        let after = std::fs::read(&path).expect("journal still readable");
        assert_eq!(before, after, "refused overwrite left the journal untouched");
        std::fs::remove_file(&path).ok();
    }

    /// An unwritable checkpoint path is a typed I/O error up front, not
    /// a panic mid-suite.
    #[test]
    fn unwritable_path_is_a_typed_io_error() {
        let containers = mixed_corpus(1);
        let opts = CheckpointOptions::new("/nonexistent-dir/definitely/not/here/j.ckpt");
        let result = run_container_suite_checkpointed(
            &containers,
            &faulty_config(1),
            1,
            &fd_trace::TraceConfig::off(),
            Some(&opts),
            0,
        );
        match result {
            Err(JournalError::Io { op, .. }) => assert_eq!(op, "create"),
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
