//! The device abstraction must be invisible in the results: the
//! subprocess backend (driven over the wire protocol) has to produce
//! byte-identical `RunReport`s to the in-process simulator, with and
//! without fault injection — and an agent that dies at *any* request
//! boundary must yield either a fully recovered run (via the pool) or a
//! typed infrastructure failure, never a hang, a panic, or a phantom
//! app crash.

use fd_droidsim::{AgentOptions, DeviceApi, InProcessDevice, SubprocessDevice};
use fragdroid::{DevicePool, FragDroid, FragDroidConfig, RunReport};

fn corpus_slice(
    seed: u64,
    n: usize,
) -> Vec<(fd_apk::AndroidApp, std::collections::BTreeMap<String, String>)> {
    fd_appgen::corpus::corpus_217(seed)
        .into_iter()
        .filter(|g| !g.app.meta.packed)
        .take(n)
        .map(|g| (g.app, g.known_inputs))
        .collect()
}

fn report_on(
    config: &FragDroidConfig,
    app: &fd_apk::AndroidApp,
    inputs: &std::collections::BTreeMap<String, String>,
    device: &mut dyn DeviceApi,
) -> RunReport {
    FragDroid::new(config.clone()).run_traced_on(app, inputs, &fd_trace::Tracer::disabled(), device)
}

fn report_json(report: &RunReport) -> String {
    serde_json::to_string(report).expect("reports serialize")
}

/// Runs `apps` on both backends and demands byte-for-byte identical
/// serialized reports.
fn assert_backend_parity(config: &FragDroidConfig, seed: u64) {
    for (app, inputs) in corpus_slice(seed, 8) {
        let mut in_process = InProcessDevice::new();
        let mut subprocess = SubprocessDevice::in_memory(AgentOptions { die_after: None });
        let native = report_on(config, &app, &inputs, &mut in_process);
        let wire = report_on(config, &app, &inputs, &mut subprocess);
        assert_eq!(
            report_json(&native),
            report_json(&wire),
            "backend divergence on {} (seed {seed})",
            app.package()
        );
        assert!(native.infra_failure.is_none(), "in-process runs never fail infrastructure");
    }
}

#[test]
fn subprocess_reports_are_byte_identical_without_faults() {
    assert_backend_parity(&FragDroidConfig::default(), 1);
    assert_backend_parity(&FragDroidConfig::default(), 2);
}

#[test]
fn subprocess_reports_are_byte_identical_at_25_percent_faults() {
    let config = FragDroidConfig::default().with_faults(7, 0.25);
    assert_backend_parity(&config, 1);
    assert_backend_parity(&config, 3);
}

/// How many agent requests one healthy run of `app` issues — the index
/// space the kill-injection sweep walks.
fn healthy_run(
    config: &FragDroidConfig,
    app: &fd_apk::AndroidApp,
    inputs: &std::collections::BTreeMap<String, String>,
) -> (RunReport, u64) {
    let mut device = SubprocessDevice::in_memory(AgentOptions { die_after: None });
    let report = report_on(config, app, inputs, &mut device);
    assert!(report.infra_failure.is_none(), "healthy agent, healthy run");
    (report, device.requests())
}

/// A bare `SubprocessDevice` whose agent dies at request `i` must end in
/// either the healthy report (the device self-respawned on install) or a
/// typed infrastructure failure with zero crashes — for every `i`.
#[test]
fn agent_death_at_every_request_boundary_is_contained() {
    let gen = fd_appgen::templates::tabbed_categories();
    let config = FragDroidConfig::default();
    let (healthy, requests) = healthy_run(&config, &gen.app, &gen.known_inputs);
    assert!(requests > 10, "the sweep needs a real request stream, got {requests}");

    for die_at in 0..=requests {
        let mut device = SubprocessDevice::in_memory(AgentOptions { die_after: Some(die_at) });
        let report = report_on(&config, &gen.app, &gen.known_inputs, &mut device);
        match &report.infra_failure {
            None => assert_eq!(
                report_json(&report),
                report_json(&healthy),
                "recovered run at boundary {die_at} must match the healthy run"
            ),
            Some(detail) => {
                assert!(!detail.is_empty(), "typed failure carries a detail");
                assert_eq!(report.crashes, 0, "boundary {die_at}: infra is never an app crash");
                assert!(report.crash_reports.is_empty(), "boundary {die_at}");
                // ≥ 1: the end-of-run summary queries also fail on the
                // poisoned session and are counted too.
                assert!(report.device_errors.infrastructure >= 1, "boundary {die_at}");
            }
        }
    }
}

/// The same sweep through the pool: generation 0 dies at request `i`,
/// the replacement is healthy, and the pool must always deliver the
/// healthy report while counting exactly the incidents it absorbed.
#[test]
fn pool_recovers_the_run_for_every_kill_boundary() {
    let gen = fd_appgen::templates::tabbed_categories();
    let config = FragDroidConfig::default();
    let (healthy, requests) = healthy_run(&config, &gen.app, &gen.known_inputs);

    // Sample the boundary space: the first requests (install/launch),
    // a mid-run stride, and the final boundary.
    let boundaries: Vec<u64> =
        (0..4).chain((4..=requests).step_by(7)).chain(std::iter::once(requests)).collect();
    for die_at in boundaries {
        let pool = DevicePool::with_factory(
            1,
            Box::new(move |_, generation| {
                let die_after = if generation == 0 { Some(die_at) } else { None };
                Box::new(SubprocessDevice::in_memory(AgentOptions { die_after }))
                    as Box<dyn DeviceApi>
            }),
        );
        let report = pool.run_app(0, &fd_trace::Tracer::disabled(), |device| {
            report_on(&config, &gen.app, &gen.known_inputs, device)
        });
        assert!(
            report.infra_failure.is_none(),
            "boundary {die_at}: the pool retries on a fresh device"
        );
        assert_eq!(
            report_json(&report),
            report_json(&healthy),
            "boundary {die_at}: the recovered run is byte-identical to a healthy one"
        );
        let expected_incidents = usize::from(die_at < requests);
        assert_eq!(
            pool.incidents(),
            expected_incidents,
            "boundary {die_at}: every absorbed death is counted, and only those"
        );
    }
}
