//! Runtime verification of the per-app failure modes the paper's §VII-B
//! attributes to specific evaluation apps.

use fd_appgen::paper_apps;
use fragdroid::{FragDroid, FragDroidConfig};

fn report_for(package: &str) -> (usize, fragdroid::RunReport, fd_appgen::GeneratedApp) {
    let (idx, (spec, gen)) = paper_apps::all_paper_apps()
        .into_iter()
        .enumerate()
        .find(|(_, (s, _))| s.package == package)
        .expect("known package");
    let _ = spec;
    let report = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
    (idx, report, gen)
}

#[test]
fn dubsmash_direct_loads_are_visible_on_screen_but_unconfirmed() {
    let (_, report, gen) = report_for("com.mobilemotion.dubsmash");
    assert_eq!(report.fragment_coverage().visited, 0);
    // The fragments ARE on screen — drive the device directly to see one.
    let mut device = fd_droidsim::Device::new(gen.app);
    device.launch().unwrap();
    let screen = device.current().unwrap();
    assert!(
        screen.fragments.values().any(|p| !p.via_manager),
        "a direct-attached pane is displayed yet absent from the FragmentManager"
    );
}

#[test]
fn zara_blocked_fragments_fail_reflection_with_missing_params() {
    let (_, _, gen) = report_for("com.inditex.zara");
    // Find a ctor-args fragment and try to reflect it by hand.
    let blocked = gen
        .app
        .classes
        .iter()
        .find(|c| gen.app.classes.is_fragment_class(c.name.as_str()) && !c.has_default_ctor())
        .expect("zara has parameterized-ctor fragments");
    let mut device = fd_droidsim::Device::new(gen.app.clone());
    device.launch().unwrap();
    // Navigate is unnecessary: reflection fails on the ctor check first.
    let err = device.reflect_switch_fragment(blocked.name.as_str()).unwrap_err();
    assert!(matches!(
        err,
        fd_droidsim::DeviceError::ReflectionFailed {
            why: fd_droidsim::error::ReflectError::MissingCtorParameters,
            ..
        }
    ));
}

#[test]
fn weather_strict_inputs_block_gated_activities() {
    let (_, report, gen) = report_for("com.weather.Weather");
    assert_eq!(report.activity_coverage().visited, 13);
    assert_eq!(report.activity_coverage().sum, 17);
    // The gates' secrets are place names that are NOT in the input data.
    assert!(gen.known_inputs.is_empty(), "no inputs provided for weather");
    // All four gated activities crashed under forced start (missing extra).
    assert!(report.crashes >= 4);
}

#[test]
fn popup_flavored_apps_survive_menu_interruptions() {
    let (_, report, _) = report_for("com.adobe.reader");
    // The popup menu interrupted sweeps but never blocked the run: the
    // engineered coverage is still reached.
    assert_eq!(report.activity_coverage().visited, 7);
    assert_eq!(report.fragment_coverage().visited, 5);
}

#[test]
fn drawer_flavored_cnn_reaches_drawer_fragments() {
    let (_, report, _) = report_for("com.cnn.mobile.android.phone");
    // Visible fragments on Main are drawer-hosted; they were all reached.
    assert_eq!(report.fragment_coverage().visited, 3);
}

// ---------------------------------------------------------------------
// Fault matrix: the explorer must terminate, keep covering, and stay
// deterministic under injected device failures.
// ---------------------------------------------------------------------

/// The apps the matrix runs over — one per §VII-B failure flavor.
const MATRIX_APPS: &[&str] =
    &["com.adobe.reader", "com.weather.Weather", "com.cnn.mobile.android.phone"];

fn faulted_report(package: &str, seed: u64, rate: f64) -> fragdroid::RunReport {
    let (_, gen) = paper_apps::all_paper_apps()
        .into_iter()
        .find(|(s, _)| s.package == package)
        .expect("known package");
    let config = FragDroidConfig::default().with_faults(seed, rate);
    FragDroid::new(config).run(&gen.app, &gen.known_inputs)
}

#[test]
fn fault_matrix_terminates_with_coverage_within_budget() {
    for &(rate, seed) in &[(0.0, 7u64), (0.05, 7), (0.25, 7), (0.25, 11)] {
        for package in MATRIX_APPS {
            let report = faulted_report(package, seed, rate);
            assert!(
                !report.visited_activities.is_empty(),
                "{package} at rate {rate} seed {seed}: no activity ever reached"
            );
            assert!(
                report.events_injected <= FragDroidConfig::default().event_budget,
                "{package} at rate {rate} seed {seed}: budget overrun"
            );
            if rate == 0.0 {
                assert_eq!(report.faults_injected, 0);
                assert_eq!(report.retries, 0);
            } else {
                assert_eq!(report.fault_log.seed, seed);
                assert_eq!(report.fault_log.records.len(), report.faults_injected);
            }
        }
    }
}

#[test]
fn zero_rate_faults_leave_the_report_byte_identical() {
    let (_, gen) = paper_apps::all_paper_apps()
        .into_iter()
        .find(|(s, _)| s.package == "com.adobe.reader")
        .expect("known package");
    let plain = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
    let zero = FragDroid::new(FragDroidConfig::default().with_faults(99, 0.0))
        .run(&gen.app, &gen.known_inputs);
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&zero).unwrap(),
        "a zero-rate fault config must not perturb the run at all"
    );
}

#[test]
fn recovery_supervisor_recovers_injected_process_kills() {
    // Acceptance: at rate 0.25 every app whose fault log contains a
    // ProcessKill also shows at least one recovered crash on average —
    // asserted here in aggregate (total recoveries >= killed apps).
    let mut killed_apps = 0usize;
    let mut total_recovered = 0usize;
    for package in MATRIX_APPS {
        let report = faulted_report(package, 7, 0.25);
        let was_killed = report.fault_log.any(|k| matches!(k, fd_droidsim::FaultKind::ProcessKill));
        if was_killed {
            killed_apps += 1;
        }
        total_recovered += report.recovered_crashes;
        // Every distinct crash signature is tracked.
        let occurrences: usize = report.crash_reports.iter().map(|c| c.occurrences).sum();
        assert_eq!(occurrences, report.crashes, "{package}: crash accounting diverged");
    }
    assert!(killed_apps > 0, "a 25% plan kills at least one app in the matrix");
    assert!(
        total_recovered >= killed_apps,
        "supervisor recovered {total_recovered} crashes across {killed_apps} killed apps"
    );
}

mod fault_determinism {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The same (seed, rate) pair reproduces the whole report byte for
        /// byte — fault log, coverage, crash triage, everything.
        #[test]
        fn same_seed_same_report(seed in 0u64..64) {
            let gen = fd_appgen::templates::quickstart();
            let run = || {
                let config = FragDroidConfig::default().with_faults(seed, 0.25);
                FragDroid::new(config).run(&gen.app, &gen.known_inputs)
            };
            let a = serde_json::to_string(&run()).unwrap();
            let b = serde_json::to_string(&run()).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}
