//! Runtime verification of the per-app failure modes the paper's §VII-B
//! attributes to specific evaluation apps.

use fd_appgen::paper_apps;
use fragdroid::{FragDroid, FragDroidConfig};

fn report_for(package: &str) -> (usize, fragdroid::RunReport, fd_appgen::GeneratedApp) {
    let (idx, (spec, gen)) = paper_apps::all_paper_apps()
        .into_iter()
        .enumerate()
        .find(|(_, (s, _))| s.package == package)
        .expect("known package");
    let _ = spec;
    let report = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
    (idx, report, gen)
}

#[test]
fn dubsmash_direct_loads_are_visible_on_screen_but_unconfirmed() {
    let (_, report, gen) = report_for("com.mobilemotion.dubsmash");
    assert_eq!(report.fragment_coverage().visited, 0);
    // The fragments ARE on screen — drive the device directly to see one.
    let mut device = fd_droidsim::Device::new(gen.app);
    device.launch().unwrap();
    let screen = device.current().unwrap();
    assert!(
        screen.fragments.values().any(|p| !p.via_manager),
        "a direct-attached pane is displayed yet absent from the FragmentManager"
    );
}

#[test]
fn zara_blocked_fragments_fail_reflection_with_missing_params() {
    let (_, _, gen) = report_for("com.inditex.zara");
    // Find a ctor-args fragment and try to reflect it by hand.
    let blocked = gen
        .app
        .classes
        .iter()
        .find(|c| gen.app.classes.is_fragment_class(c.name.as_str()) && !c.has_default_ctor())
        .expect("zara has parameterized-ctor fragments");
    let mut device = fd_droidsim::Device::new(gen.app.clone());
    device.launch().unwrap();
    // Navigate is unnecessary: reflection fails on the ctor check first.
    let err = device.reflect_switch_fragment(blocked.name.as_str()).unwrap_err();
    assert!(matches!(
        err,
        fd_droidsim::DeviceError::ReflectionFailed {
            why: fd_droidsim::error::ReflectError::MissingCtorParameters,
            ..
        }
    ));
}

#[test]
fn weather_strict_inputs_block_gated_activities() {
    let (_, report, gen) = report_for("com.weather.Weather");
    assert_eq!(report.activity_coverage().visited, 13);
    assert_eq!(report.activity_coverage().sum, 17);
    // The gates' secrets are place names that are NOT in the input data.
    assert!(gen.known_inputs.is_empty(), "no inputs provided for weather");
    // All four gated activities crashed under forced start (missing extra).
    assert!(report.crashes >= 4);
}

#[test]
fn popup_flavored_apps_survive_menu_interruptions() {
    let (_, report, _) = report_for("com.adobe.reader");
    // The popup menu interrupted sweeps but never blocked the run: the
    // engineered coverage is still reached.
    assert_eq!(report.activity_coverage().visited, 7);
    assert_eq!(report.fragment_coverage().visited, 5);
}

#[test]
fn drawer_flavored_cnn_reaches_drawer_fragments() {
    let (_, report, _) = report_for("com.cnn.mobile.android.phone");
    // Visible fragments on Main are drawer-hosted; they were all reached.
    assert_eq!(report.fragment_coverage().visited, 3);
}
