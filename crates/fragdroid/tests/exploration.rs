//! End-to-end exploration tests: FragDroid on the template apps and on
//! hand-built apps exercising every case of §VI.

use fd_appgen::{templates, ActivitySpec, AppBuilder, FragmentSpec, GatedLink};
use fd_droidsim::Caller;
use fragdroid::{FragDroid, FragDroidConfig};

fn run(gen: &fd_appgen::GeneratedApp) -> fragdroid::RunReport {
    FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs)
}

#[test]
fn quickstart_reaches_everything() {
    let gen = templates::quickstart();
    let report = run(&gen);
    assert_eq!(report.activity_coverage().visited, 3, "{:?}", report.visited_activities);
    assert_eq!(report.fragment_coverage().visited, 2, "{:?}", report.visited_fragments);
    assert_eq!(report.activity_coverage().rate(), 100.0);
}

#[test]
fn fig1_tabs_both_fragments_visited() {
    let gen = templates::tabbed_categories();
    let report = run(&gen);
    assert_eq!(report.fragment_coverage().visited, 2);
    // The Detail activity behind the CategoryFragment's button is reached,
    // proving fragment-internal widgets are exercised.
    assert!(report.visited_activities.contains("fig1.manga.Detail"));
}

#[test]
fn fig2_hidden_drawer_fragments_visited() {
    let gen = templates::nav_drawer_wallpapers();
    let report = run(&gen);
    assert_eq!(
        report.fragment_coverage().visited,
        2,
        "drawer-only fragments must be reached: {:?}",
        report.visited_fragments
    );
}

#[test]
fn unknown_gate_blocks_and_forced_start_crashes() {
    // Gated behind an unknown secret AND requiring an extra: unreachable
    // by both clicking and forced start.
    let gen = AppBuilder::new("t.blocked")
        .activity(ActivitySpec::new("Main").launcher().gate(GatedLink {
            target: "Vault".into(),
            secret: "you'll never guess".into(),
            input_known: false,
        }))
        .activity(ActivitySpec::new("Vault").requires_extra("token"))
        .build();
    let report = run(&gen);
    assert!(!report.visited_activities.contains("t.blocked.Vault"));
    assert_eq!(report.activity_coverage().visited, 1);
    assert_eq!(report.activity_coverage().sum, 2);
    assert!(report.crashes >= 1, "the forced start must have crashed");
}

#[test]
fn forced_start_rescues_gated_activity_without_extras() {
    // Unknown secret but NO required extra: normal clicking fails, the
    // §VI-C forced start succeeds.
    let gen = AppBuilder::new("t.rescue")
        .activity(ActivitySpec::new("Main").launcher().gate(GatedLink {
            target: "Hidden".into(),
            secret: "nope".into(),
            input_known: false,
        }))
        .activity(ActivitySpec::new("Hidden").initial_fragment("HiddenFrag"))
        .fragment(FragmentSpec::new("HiddenFrag"))
        .build();
    let report = run(&gen);
    assert!(report.visited_activities.contains("t.rescue.Hidden"));
    // Its fragment gets visited too, through the forced start's onCreate.
    assert!(report.visited_fragments.contains("t.rescue.HiddenFrag"));

    // Ablation: without the forced-start phase the activity stays hidden.
    let ablated = FragDroid::new(FragDroidConfig::default().without_force_start())
        .run(&gen.app, &gen.known_inputs);
    assert!(!ablated.visited_activities.contains("t.rescue.Hidden"));
}

#[test]
fn reflection_reaches_dead_code_fragment() {
    // A fragment referenced only from a method no widget triggers:
    // clicking can never reach it; reflection can.
    let gen = AppBuilder::new("t.refl")
        .activity(
            ActivitySpec::new("Main")
                .launcher()
                .initial_fragment("Visible")
                .hidden_fragment("Hidden"),
        )
        .fragment(FragmentSpec::new("Visible"))
        .fragment(FragmentSpec::new("Hidden"))
        .build();
    let report = run(&gen);
    assert!(report.visited_fragments.contains("t.refl.Hidden"));

    let ablated = FragDroid::new(FragDroidConfig::default().without_reflection())
        .run(&gen.app, &gen.known_inputs);
    assert!(
        !ablated.visited_fragments.contains("t.refl.Hidden"),
        "without reflection the hidden fragment must stay unvisited"
    );
}

#[test]
fn zara_style_ctor_args_defeat_reflection() {
    let gen = AppBuilder::new("t.zara")
        .activity(
            ActivitySpec::new("Main")
                .launcher()
                .initial_fragment("Visible")
                .hidden_fragment("Param"),
        )
        .fragment(FragmentSpec::new("Visible"))
        .fragment(FragmentSpec::new("Param").ctor_requires_args())
        .build();
    let report = run(&gen);
    assert!(!report.visited_fragments.contains("t.zara.Param"));
    assert_eq!(report.fragment_coverage().sum, 2);
    assert_eq!(report.fragment_coverage().visited, 1);
}

#[test]
fn dubsmash_style_direct_loads_are_not_confirmed() {
    let gen = AppBuilder::new("t.dub")
        .activity(ActivitySpec::new("Main").launcher().direct_fragment("Raw"))
        .fragment(FragmentSpec::new("Raw"))
        .build();
    let report = run(&gen);
    assert_eq!(
        report.fragment_coverage().visited,
        0,
        "direct-attached fragments cannot be confirmed via the FragmentManager"
    );
    assert_eq!(report.fragment_coverage().sum, 1, "static analysis still finds it");
}

#[test]
fn known_inputs_open_gates_and_ablation_closes_them() {
    let gen = templates::quickstart();
    let report = run(&gen);
    assert!(report.visited_activities.contains("com.example.quickstart.Account"));

    let ablated = FragDroid::new(FragDroidConfig::default().without_input_deps())
        .run(&gen.app, &gen.known_inputs);
    assert!(
        !ablated
            .visited_activities
            .contains("com.example.quickstart.Account"),
        "without input deps the login gate stays shut (Account requires an extra, so forced start FCs)"
    );
}

#[test]
fn api_attribution_covers_both_levels() {
    let gen = templates::quickstart();
    let report = run(&gen);
    // Main's phone API is activity-attributed; the fragments' APIs are
    // fragment-attributed.
    assert!(report.api_invocations.iter().any(|i| i.group == "phone"
        && matches!(&i.caller, Caller::Activity(a) if a.as_str().ends_with(".Main"))));
    assert!(report.api_invocations.iter().any(|i| i.group == "location"
        && matches!(&i.caller, Caller::Fragment { fragment, .. }
            if fragment.as_str().ends_with(".StatsFragment"))));
    let (total, frag_assoc, _) = report.api_relation_counts();
    assert!(total >= 3);
    assert!(frag_assoc >= 2);
}

#[test]
fn evolved_aftm_marks_visited_nodes_and_gains_edges() {
    let gen = templates::quickstart();
    let report = run(&gen);
    let initial_edges = report.static_info.aftm.edges().count();
    let final_edges = report.aftm.edges().count();
    assert!(final_edges >= initial_edges, "evolution only adds");
    // Every visited activity is marked in the final AFTM.
    for a in &report.visited_activities {
        assert!(report.aftm.is_visited(&fd_aftm::NodeId::Activity(a.clone())), "{a}");
    }
}

#[test]
fn event_budget_is_respected() {
    let gen = templates::quickstart();
    let tiny = FragDroidConfig { event_budget: 10, ..FragDroidConfig::default() };
    let report = FragDroid::new(tiny).run(&gen.app, &gen.known_inputs);
    assert!(report.events_injected <= 10);
}

#[test]
fn run_apk_decompiles_then_runs() {
    let gen = templates::quickstart();
    let bytes = fd_apk::pack(&gen.app);
    let report = FragDroid::new(FragDroidConfig::default())
        .run_apk(&bytes, &gen.known_inputs)
        .expect("decompile + run");
    assert_eq!(report.activity_coverage().visited, 3);

    // Packed apps refuse analysis, as in the paper's dataset filtering.
    let mut packed_app = gen.app.clone();
    packed_app.meta.packed = true;
    let packed_bytes = fd_apk::pack(&packed_app);
    assert!(FragDroid::new(FragDroidConfig::default())
        .run_apk(&packed_bytes, &gen.known_inputs)
        .is_err());
}

#[test]
fn deterministic_runs() {
    let gen = templates::quickstart();
    let a = run(&gen);
    let b = run(&gen);
    assert_eq!(a.visited_activities, b.visited_activities);
    assert_eq!(a.visited_fragments, b.visited_fragments);
    assert_eq!(a.events_injected, b.events_injected);
    assert_eq!(a.api_invocations, b.api_invocations);
}

#[test]
fn scripts_and_timeline_are_recorded() {
    let gen = templates::quickstart();
    let report = run(&gen);
    assert_eq!(report.scripts.len(), report.test_cases_run);
    assert_eq!(report.scripts[0].name, "entry");
    // The timeline is sampled at every new visit and is monotone in all
    // three components.
    assert!(!report.timeline.is_empty());
    for w in report.timeline.windows(2) {
        assert!(w[0].0 <= w[1].0, "events monotone");
        assert!(w[0].1 <= w[1].1 && w[0].2 <= w[1].2, "coverage monotone");
    }
    let last = report.timeline.last().unwrap();
    assert_eq!(last.1, report.visited_activities.len());
    assert_eq!(last.2, report.visited_fragments.len());
}

#[test]
fn robotium_java_is_emitted_for_the_whole_run() {
    let gen = AppBuilder::new("t.java")
        .activity(
            ActivitySpec::new("Main")
                .launcher()
                .initial_fragment("Visible")
                .hidden_fragment("Hidden"),
        )
        .fragment(FragmentSpec::new("Visible"))
        .fragment(FragmentSpec::new("Hidden"))
        .build();
    let report = run(&gen);
    let java = report.to_robotium_java();
    assert!(java.starts_with("package t.java.test;"));
    // The hidden fragment needed reflection, so the §VI-B template shows up.
    assert!(java.contains("getSupportFragmentManager"), "reflection template:\n{java}");
    assert!(java.contains("Class.forName(\"t.java.Hidden\")"));
    // Every executed test case became a method.
    assert_eq!(java.matches("public void test").count(), report.test_cases_run);
}

#[test]
fn target_api_mode_stops_early_with_a_witness_script() {
    // The media API only fires in the drawer-hidden MediaFragment-like
    // flow of fig2's FavoritesFragment (storage/sdcard).
    let gen = templates::nav_drawer_wallpapers();
    let full = run(&gen);
    let targeted = FragDroid::new(FragDroidConfig::default().find_api("storage", "sdcard"))
        .run(&gen.app, &gen.known_inputs);
    // The target was found…
    assert!(targeted.api_invocations.iter().any(|i| i.name == "sdcard"));
    // …with no more work than the full run.
    assert!(targeted.events_injected <= full.events_injected);
    // The last executed script is a concrete witness an analyst can replay.
    assert!(!targeted.scripts.is_empty());

    // A target that never fires degrades to the full run.
    let missing = FragDroid::new(FragDroidConfig::default().find_api("ipc", "Binder"))
        .run(&gen.app, &gen.known_inputs);
    assert!(!missing.api_invocations.iter().any(|i| i.group == "ipc"));
    assert_eq!(missing.visited_fragments, full.visited_fragments);
}

#[test]
fn evolution_delta_counts_dynamic_discoveries() {
    let gen = templates::quickstart();
    let report = run(&gen);
    let delta = report.evolution_delta();
    // Everything visited is newly visited (the static model marks nothing).
    assert_eq!(
        delta.newly_visited.len(),
        report.visited_activities.len() + report.visited_fragments.len()
    );
    // Nothing statically known was lost; the delta only adds.
    for node in &delta.added_nodes {
        assert!(report.aftm.contains(node));
    }
}

#[test]
fn launcherless_app_is_still_explored_through_forced_starts() {
    // No launcher activity at all: normal launching fails, but the
    // manifest rewrite lets the §VI-C phase force-start every activity.
    // Side is statically linked (a gate) so it stays effective, but the
    // secret is unknown — only a forced start can reach it.
    let mut gen = AppBuilder::new("t.nolaunch")
        .activity(ActivitySpec::new("Main").initial_fragment("F").gate(GatedLink {
            target: "Side".into(),
            secret: "???".into(),
            input_known: false,
        }))
        .activity(ActivitySpec::new("Side"))
        .fragment(FragmentSpec::new("F"))
        .build();
    // Strip all launcher filters.
    for decl in &mut gen.app.manifest.activities {
        decl.intent_filters.clear();
    }
    let report = run(&gen);
    assert_eq!(report.activity_coverage().visited, 2, "{:?}", report.visited_activities);
    assert!(report.visited_fragments.contains("t.nolaunch.F"));

    // Without the forced-start phase nothing at all is reachable.
    let ablated = FragDroid::new(FragDroidConfig::default().without_force_start())
        .run(&gen.app, &gen.known_inputs);
    assert_eq!(ablated.visited_activities.len(), 0);
}

#[test]
fn sweep_recovers_from_mid_sweep_crashes() {
    // Main has a crashing button alphabetically between two good ones;
    // Case-3 recovery must restart and keep sweeping, so both targets
    // behind the good buttons are reached despite the FC in between.
    use fd_smali::{MethodDef, Stmt};
    let gen = AppBuilder::new("t.crashy")
        .activity(ActivitySpec::new("Main").launcher().button_to("Alpha").button_to("Zeta"))
        .activity(ActivitySpec::new("Alpha"))
        .activity(ActivitySpec::new("Zeta"))
        .build();
    let mut app = gen.app;
    // Inject a crash button wired in Main's onCreate.
    let mut main = app.classes.get("t.crashy.Main").unwrap().clone();
    main.methods[0]
        .body
        .push(Stmt::SetOnClick { widget: fd_smali::ResRef::id("boom"), handler: "onBoom".into() });
    main = main
        .with_method(MethodDef::new("onBoom").push(Stmt::Crash { reason: "mid-sweep NPE".into() }));
    app.classes.insert(main);
    let layout = app.layouts.get_mut("lay_main").unwrap();
    layout.root.children.insert(1, fd_apk::Widget::new(fd_apk::WidgetKind::Button).with_id("boom"));

    let report = FragDroid::new(FragDroidConfig::default()).run(&app, &gen.known_inputs);
    assert!(report.crashes >= 1, "the crash button fired");
    assert!(report.visited_activities.contains("t.crashy.Alpha"));
    assert!(report.visited_activities.contains("t.crashy.Zeta"), "sweep resumed after the FC");
    assert_eq!(report.activity_coverage().rate(), 100.0);
}

#[test]
fn max_test_cases_bounds_the_run() {
    let gen = templates::quickstart();
    let capped = FragDroidConfig { max_test_cases: 3, ..FragDroidConfig::default() };
    let report = FragDroid::new(capped).run(&gen.app, &gen.known_inputs);
    assert!(report.test_cases_run <= 3);
    assert_eq!(report.scripts.len(), report.test_cases_run);
}

#[test]
fn harvested_inputs_open_ui_leaked_gates() {
    // The app shows its own access code in a TextView (onboarding-style
    // leak); nobody filled an input file. The §VIII extension harvests
    // the string and opens the gate.
    let gen = AppBuilder::new("t.hint")
        .activity(ActivitySpec::new("Main").launcher().hinted_gate(GatedLink {
            target: "Vault".into(),
            secret: "ACCESS-2018".into(),
            input_known: false,
        }))
        .activity(ActivitySpec::new("Vault").requires_extra("session"))
        .build();
    assert!(gen.known_inputs.is_empty());

    // Baseline FragDroid: gate shut, forced start FCs → unvisited.
    let plain = run(&gen);
    assert!(!plain.visited_activities.contains("t.hint.Vault"));

    // With harvesting: the leaked string opens the gate.
    let harvesting = FragDroid::new(FragDroidConfig::default().with_input_harvesting())
        .run(&gen.app, &gen.known_inputs);
    assert!(
        harvesting.visited_activities.contains("t.hint.Vault"),
        "harvested UI string must open the gate: {:?}",
        harvesting.visited_activities
    );
}
