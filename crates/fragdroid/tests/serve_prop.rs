//! The serve service's load-bearing promises, property-tested:
//!
//! * under *any* seeded chaos schedule (torn frames, shredded writes,
//!   stalls, duplicated requests, mid-job disconnects) a submitted job
//!   still ends as the byte-identical report a clean transport gets —
//!   or a typed error — and the server neither hangs nor leaks
//!   connection slots;
//! * a job journal truncated at *any* byte offset (a crash torn-write)
//!   recovers: completed jobs are served byte-identically, chopped-off
//!   jobs re-run through idempotent resubmission to the same bytes, and
//!   no job is ever executed twice under its (id, digest) key.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use std::io::{Read, Write};

use fd_droidsim::proto::{decode_payload, encode_frame, to_hex, Envelope, FrameBuffer};
use fragdroid::{
    serve_listener, AnyStream, ChaosConfig, JobOutcome, ListenAddr, ServeListener, ServeOptions,
    ServeRequest, ServeResponse, ServeSummary, SubmitClient,
};

fn scratch(name: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fd-serve-prop-{}-{name}-{n}", std::process::id()))
}

fn quickstart() -> (String, BTreeMap<String, String>) {
    let gen = fd_appgen::templates::quickstart();
    (to_hex(&fd_apk::pack(&gen.app)), gen.known_inputs)
}

/// Binds a fresh loopback server and runs it on a background thread.
fn spawn_server(options: ServeOptions) -> (ListenAddr, std::thread::JoinHandle<ServeSummary>) {
    let listener = ServeListener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_string())).expect("bind");
    let addr = listener.local_addr().clone();
    let handle = std::thread::spawn(move || {
        serve_listener(listener, &options, &fd_trace::TraceConfig::off())
            .expect("server runs to clean shutdown")
    });
    (addr, handle)
}

/// Asks the server to shut down (clean transport) and joins it.
fn shutdown(addr: &ListenAddr, handle: std::thread::JoinHandle<ServeSummary>) -> ServeSummary {
    let mut stream = AnyStream::connect(addr).expect("connect for shutdown");
    stream
        .write_all(&encode_frame(&Envelope { id: 9999, body: ServeRequest::Shutdown }))
        .expect("send shutdown");
    stream.flush().expect("flush shutdown");
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(payload) = frames.next_frame().expect("well-formed reply") {
            let envelope: Envelope<ServeResponse> =
                decode_payload(&payload).expect("decodable reply");
            assert_eq!(envelope.body, ServeResponse::Bye);
            break;
        }
        let n = stream.read(&mut chunk).expect("read reply");
        assert!(n > 0, "server hung up before Bye");
        frames.push(&chunk[..n]);
    }
    handle.join().expect("server thread does not panic")
}

mod chaos_schedules {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// For any chaos seed: the chaotic submission lands the report
        /// byte-identical to a clean one, an idempotent resubmission
        /// does not re-run the job, and every connection slot the chaos
        /// opened is released by the time the server drains.
        #[test]
        fn any_schedule_settles_byte_identically(seed in 0u64..1_000_000) {
            let (hex, inputs) = quickstart();
            let (addr, handle) = spawn_server(ServeOptions::default());

            let mut clean = SubmitClient::new(addr.clone());
            let baseline = clean.submit(1, &hex, &inputs).expect("clean run settles");
            prop_assert!(matches!(baseline, JobOutcome::Report { .. }));

            let mut chaotic = SubmitClient::new(addr.clone())
                .with_chaos(ChaosConfig::from_seed(seed))
                .with_max_attempts(64)
                .with_deadline(Duration::from_secs(120));
            let outcome = chaotic.submit(2, &hex, &inputs).expect("chaos run settles");
            prop_assert_eq!(&outcome, &baseline, "chaos must not change the report bytes");

            // Idempotent resubmission of the settled job — clean
            // transport, same id and content — replays the stored
            // report instead of running the app again.
            let replay = clean.submit(2, &hex, &inputs).expect("resubmit settles");
            prop_assert_eq!(&replay, &baseline);

            let summary = shutdown(&addr, handle);
            let i = &summary.incidents;
            prop_assert_eq!(i.jobs_completed, 2, "dedup prevented any re-execution");
            prop_assert!(i.resubmits_deduped >= 1);
            prop_assert_eq!(
                i.connections_opened, i.connections_closed,
                "no leaked connection slots (opened {} closed {})",
                i.connections_opened, i.connections_closed
            );
            prop_assert_eq!(i.journal_errors, 0);
        }
    }
}

mod journal_truncation {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Life 1 completes three jobs against a journal; the journal is
        /// then truncated at an arbitrary byte offset past the header (a
        /// crash torn-write). Life 2 must recover: any job whose
        /// Completed record survived is served byte-identically from the
        /// journal, and every chopped-off job re-runs through idempotent
        /// resubmission to the same bytes.
        #[test]
        fn any_truncation_point_recovers(cut in 0.0f64..1.0) {
            let (hex, inputs) = quickstart();
            let journal = scratch("trunc.journal");
            let _ = std::fs::remove_file(&journal);

            // Life 1: three distinct jobs, all completed and durable.
            let options =
                ServeOptions { journal: Some(journal.clone()), ..ServeOptions::default() };
            let (addr, handle) = spawn_server(options.clone());
            let mut client = SubmitClient::new(addr.clone());
            let mut reports = Vec::new();
            for job in 1u64..=3 {
                reports.push(client.submit(job, &hex, &inputs).expect("life-1 job settles"));
            }
            let life1 = shutdown(&addr, handle);
            prop_assert_eq!(life1.incidents.jobs_completed, 3);

            // The crash: chop the journal at an arbitrary offset after
            // the header line (the fingerprint must stay readable — a
            // corrupt header is a refused journal, which the unit tests
            // cover separately).
            let bytes = std::fs::read(&journal).expect("journal readable");
            let header_end = bytes.iter().position(|&b| b == b'\n').expect("header line") + 1;
            let cut_at = header_end
                + ((bytes.len() - header_end) as f64 * cut) as usize;
            std::fs::OpenOptions::new()
                .write(true)
                .open(&journal)
                .expect("reopen journal")
                .set_len(cut_at as u64)
                .expect("truncate journal");

            // Life 2: recover, then drive every job back to its bytes.
            let (addr, handle) = spawn_server(options);
            let mut client = SubmitClient::new(addr.clone());
            for (job, expected) in (1u64..=3).zip(&reports) {
                let outcome = client.submit(job, &hex, &inputs).expect("life-2 job settles");
                prop_assert_eq!(
                    &outcome, expected,
                    "job {} must come back byte-identical after the crash", job
                );
            }
            let life2 = shutdown(&addr, handle);
            prop_assert_eq!(life2.incidents.journal_errors, 0);
            // Every job either survived the cut (recovered) or re-ran;
            // between them the three ids are fully accounted for.
            let i = &life2.incidents;
            prop_assert!(
                i.jobs_recovered + i.jobs_completed >= 3,
                "recovered {} + completed {} must cover the 3 jobs",
                i.jobs_recovered, i.jobs_completed
            );

            let _ = std::fs::remove_file(&journal);
        }
    }
}
