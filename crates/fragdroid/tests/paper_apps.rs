//! FragDroid on the 15 synthesized evaluation apps: the Visited counts
//! must match the engineered expectations (Table I reproduction).

use fd_appgen::paper_apps;
use fragdroid::{FragDroid, FragDroidConfig};

#[test]
fn paper_apps_hit_engineered_coverage() {
    let mut failures = Vec::new();
    for (spec, gen) in paper_apps::all_paper_apps() {
        let report = FragDroid::new(FragDroidConfig::default()).run(&gen.app, &gen.known_inputs);
        let a = report.activity_coverage();
        let f = report.fragment_coverage();
        if a.visited != spec.expected_visited_activities()
            || a.sum != spec.activities
            || f.visited != spec.expected_visited_fragments()
            || f.sum != spec.fragments
        {
            failures.push(format!(
                "{}: acts {}/{} (want {}/{}), frags {}/{} (want {}/{})",
                spec.package,
                a.visited,
                a.sum,
                spec.expected_visited_activities(),
                spec.activities,
                f.visited,
                f.sum,
                spec.expected_visited_fragments(),
                spec.fragments,
            ));
        }
    }
    assert!(failures.is_empty(), "coverage mismatches:\n{}", failures.join("\n"));
}
