//! The shard coordinator's load-bearing promise, property-tested: a
//! corpus split across N shard processes, each journaling to its own
//! checkpoint, merges back to the *exact* outcome digest (and
//! timing-free metrics) of a single-process run — for every shard count
//! including ragged splits, under fault injection, and across a
//! kill-and-resume of one shard.

use fragdroid::suite::SuiteContainer;
use fragdroid::{
    merge_shards, run_corpus_suite_checkpointed, run_shard, shard_journal_path, CheckpointOptions,
    CorpusSource, FragDroidConfig, ShardError, SuiteRun,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(name: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fd-shard-{}-{name}-{n}", std::process::id()))
}

/// A mixed corpus: well-formed apps (fault injection arms some crashes),
/// one malformed container, and one truncated one — so the merge has
/// rejections (and their `container[i]` quarantine labels) to relabel.
fn mixed_corpus(seed: u64) -> Vec<SuiteContainer> {
    let mut containers: Vec<SuiteContainer> = [
        fd_appgen::templates::quickstart(),
        fd_appgen::templates::nav_drawer_wallpapers(),
        fd_appgen::templates::tabbed_categories(),
        fd_appgen::templates::quickstart(),
        fd_appgen::templates::tabbed_categories(),
    ]
    .into_iter()
    .map(|g| (fd_apk::pack(&g.app), g.known_inputs))
    .collect();
    containers.insert(1, (bytes::Bytes::from_static(b"not a container"), BTreeMap::new()));
    let truncated = containers[0].0.slice(0..12);
    containers.push((truncated, BTreeMap::new()));
    let n = containers.len() as u64;
    containers.rotate_left((seed % n) as usize);
    containers
}

fn faulty_config(seed: u64) -> FragDroidConfig {
    FragDroidConfig::default().with_faults(seed, 0.25)
}

fn outcome_bytes(run: &SuiteRun) -> Vec<String> {
    run.outcomes.iter().map(|o| serde_json::to_string(o).expect("outcomes serialize")).collect()
}

/// The single-process reference over the same lazy source.
fn reference_run(source: &dyn CorpusSource, config: &FragDroidConfig) -> SuiteRun {
    let (suite, _) =
        run_corpus_suite_checkpointed(source, config, 2, &fd_trace::TraceConfig::off(), None, 0)
            .expect("uncheckpointed run cannot fail on journal errors");
    suite.run
}

fn run_all_shards(
    source: &dyn CorpusSource,
    config: &FragDroidConfig,
    base: &std::path::Path,
    shards: usize,
) {
    for index in 0..shards {
        let opts = CheckpointOptions::new(base);
        run_shard(source, config, 2, &fd_trace::TraceConfig::off(), &opts, 0, shards, index, None)
            .unwrap_or_else(|e| panic!("shard {index}/{shards} failed: {e}"));
    }
}

fn cleanup(base: &std::path::Path, shards: usize) {
    for index in 0..shards {
        std::fs::remove_file(shard_journal_path(base, index, shards)).ok();
    }
}

mod merge_identity {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// N ∈ {1, 2, 4, 7} (7 > app count per shard makes the split
        /// ragged, with some single-entry and larger shards) under 25%
        /// fault injection: merged outcomes, digest, and timing-free
        /// metrics must equal the single-process run exactly.
        #[test]
        fn n_shard_merge_matches_single_run(seed in 0u64..12, pick in 0usize..4) {
            let shards = [1usize, 2, 4, 7][pick];
            let containers = mixed_corpus(seed);
            let config = faulty_config(seed);
            let reference = reference_run(&containers, &config);

            let base = scratch("merge");
            run_all_shards(&containers, &config, &base, shards);
            let (merged, _) = merge_shards(
                &containers, &config, 0, &base, shards, &fd_trace::TraceConfig::off(),
            ).expect("complete shard journals merge");

            prop_assert_eq!(merged.shards.len(), shards);
            prop_assert_eq!(outcome_bytes(&merged.run), outcome_bytes(&reference));
            prop_assert_eq!(merged.run.outcome_digest(), reference.outcome_digest());

            // Timing-free metrics: identical app set, identical per-app
            // event/coverage numbers, identical rejection count.
            let m = &merged.run.metrics;
            let r = &reference.metrics;
            prop_assert_eq!(m.rejected, r.rejected);
            prop_assert_eq!(m.apps.len(), r.apps.len());
            for (ours, theirs) in m.apps.iter().zip(&r.apps) {
                prop_assert_eq!(&ours.package, &theirs.package);
                prop_assert_eq!(ours.events_injected, theirs.events_injected);
                prop_assert_eq!(ours.test_cases_run, theirs.test_cases_run);
                prop_assert_eq!(ours.crashes, theirs.crashes);
                prop_assert_eq!(ours.rejected, theirs.rejected);
            }
            cleanup(&base, shards);
        }
    }
}

mod kill_and_resume {
    use super::*;

    /// Kill one shard mid-run (app budget), confirm the merge refuses
    /// with a typed `Incomplete`, resume just that shard, and the final
    /// merge still reproduces the reference digest.
    #[test]
    fn killed_shard_resumes_and_merge_still_matches() {
        let containers = mixed_corpus(3);
        let config = faulty_config(3);
        let reference = reference_run(&containers, &config);
        let shards = 4;
        let base = scratch("kill");

        for index in 0..shards {
            let opts = if index == 2 {
                // This shard "dies" after one fresh app.
                CheckpointOptions::new(&base).with_app_budget(1)
            } else {
                CheckpointOptions::new(&base)
            };
            run_shard(
                &containers,
                &config,
                2,
                &fd_trace::TraceConfig::off(),
                &opts,
                0,
                shards,
                index,
                None,
            )
            .expect("budgeted shard still journals cleanly");
        }

        match merge_shards(&containers, &config, 0, &base, shards, &fd_trace::TraceConfig::off()) {
            Err(ShardError::Incomplete { shard, done, total }) => {
                assert_eq!(shard, 2);
                assert!(done < total, "incomplete means strictly fewer than {total}");
            }
            other => panic!("merging a killed shard must refuse, got {other:?}"),
        }

        // Resume only the killed shard, from its own journal.
        let resume = CheckpointOptions::new(&base).with_resume(true);
        let (resumed, _) = run_shard(
            &containers,
            &config,
            2,
            &fd_trace::TraceConfig::off(),
            &resume,
            0,
            shards,
            2,
            None,
        )
        .expect("killed shard resumes from its checkpoint");
        assert!(resumed.is_complete());
        assert!(resumed.resumed > 0, "the resume replayed the journaled app");

        let (merged, _) =
            merge_shards(&containers, &config, 0, &base, shards, &fd_trace::TraceConfig::off())
                .expect("all shards complete after the resume");
        assert_eq!(merged.run.outcome_digest(), reference.outcome_digest());
        assert_eq!(outcome_bytes(&merged.run), outcome_bytes(&reference));
        cleanup(&base, shards);
    }

    /// A shard journal written with a different config (different fault
    /// plan) is refused at merge time with a typed fingerprint error.
    #[test]
    fn foreign_shard_journal_is_refused_at_merge() {
        let containers = mixed_corpus(5);
        let shards = 2;
        let base = scratch("foreign");
        run_all_shards(&containers, &faulty_config(5), &base, shards);
        match merge_shards(
            &containers,
            &faulty_config(6), // different fault seed → different fingerprint
            0,
            &base,
            shards,
            &fd_trace::TraceConfig::off(),
        ) {
            Err(ShardError::Journal { shard: 0, error }) => {
                let text = error.to_string();
                assert!(text.contains("fingerprint"), "typed fingerprint refusal, got: {text}");
            }
            other => panic!("expected a fingerprint refusal on shard 0, got {other:?}"),
        }
        cleanup(&base, shards);
    }
}

mod on_disk {
    use super::*;

    /// The full scale-out path end to end in-library: a generated
    /// on-disk corpus streamed by the lazy [`fd_apk::CorpusReader`]
    /// through a 4-shard run merges to the digest of the unsharded
    /// streamed run — no corpus entry is ever materialized eagerly.
    #[test]
    fn lazy_disk_corpus_shards_to_the_streamed_digest() {
        let dir = scratch("disk-corpus");
        let stream_config = fd_appgen::stream::StreamConfig::tiny(10, 42);
        fd_appgen::stream::write_corpus(&dir, &stream_config).expect("write corpus");
        let reader = fd_apk::corpus::CorpusReader::open(&dir).expect("open corpus");

        let config = faulty_config(11);
        let reference = reference_run(&reader, &config);
        assert_eq!(reference.outcomes.len(), 10);

        let shards = 4;
        let base = scratch("disk");
        run_all_shards(&reader, &config, &base, shards);
        let (merged, _) =
            merge_shards(&reader, &config, 0, &base, shards, &fd_trace::TraceConfig::off())
                .expect("disk-backed shards merge");
        assert_eq!(merged.run.outcome_digest(), reference.outcome_digest());
        assert_eq!(outcome_bytes(&merged.run), outcome_bytes(&reference));

        cleanup(&base, shards);
        std::fs::remove_dir_all(&dir).ok();
    }
}
