//! Backward compatibility of the `SuiteMetrics` JSON shape: records
//! written before `flake_summary`, `rejected`, the per-app fault/retry
//! counters, and the wall-time quantiles existed must still parse, with
//! every newer field defaulting. The committed fixture pins the *oldest*
//! shipped shape — if a schema change breaks it, this test fails before
//! any stored metrics file does.

use fragdroid::SuiteMetrics;

const LEGACY: &str = include_str!("fixtures/suite_metrics_legacy.json");

#[test]
fn legacy_suite_metrics_fixture_still_deserializes() {
    let metrics = SuiteMetrics::from_json(LEGACY).expect("legacy fixture parses");

    // The fields the legacy record carries survive verbatim.
    assert_eq!(metrics.workers, 4);
    assert_eq!(metrics.wall_ms, 1843);
    assert_eq!(metrics.busy_ms, 7001);
    assert_eq!(metrics.apps.len(), 3);
    assert_eq!(metrics.apps[0].package, "com.adobe.reader");
    assert_eq!(metrics.apps[1].crashes, 2);
    assert!(metrics.apps[1].deadline_exceeded);
    assert!(metrics.apps[2].panicked);

    // Every post-legacy field lands on its default instead of failing.
    assert_eq!(metrics.rejected, 0);
    assert!(metrics.flake_summary.is_none());
    assert_eq!(metrics.app_wall_ms_p50, 0);
    assert_eq!(metrics.app_wall_ms_p95, 0);
    assert_eq!(metrics.app_wall_ms_max, 0);
    for app in &metrics.apps {
        assert_eq!(app.recovered_crashes, 0);
        assert_eq!(app.retries, 0);
        assert_eq!(app.faults_injected, 0);
        assert!(!app.rejected);
        assert_eq!(app.reject_reason, "");
    }
}

#[test]
fn current_metrics_roundtrip_with_flake_summary() {
    let mut metrics = SuiteMetrics::from_json(LEGACY).expect("legacy fixture parses");
    metrics.flake_summary = Some(fragdroid::FlakeSummary {
        retries: 3,
        deterministic: 1,
        flaky: 1,
        apps: vec![fragdroid::FlakeRecord {
            index: 2,
            package: "com.happy2.bbmanga".into(),
            kind: "panicked".into(),
            attempts: 3,
            passes: 1,
            classification: fragdroid::FlakeClass::Flaky { pass_rate: 1.0 / 3.0 },
        }],
    });
    let json = metrics.to_json().expect("serializes");
    let parsed = SuiteMetrics::from_json(&json).expect("roundtrips");
    assert_eq!(parsed, metrics, "flake summary survives the JSON roundtrip");
}
