//! The dispatch coordinator's load-bearing promises, property-tested:
//!
//! * under *any* seeded chaos schedule on the submit transport, the
//!   merged run's outcome digest is byte-identical to the unsharded
//!   in-process run, and every shard commits exactly once;
//! * under *any* worker-kill schedule — including one that kills every
//!   serve endpoint — followed by a coordinator crash simulated by
//!   truncating the coordinator journal at an arbitrary byte offset,
//!   a `--resume` against a fresh farm still settles on the
//!   byte-identical digest with no shard double-merged or dropped.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use fd_droidsim::proto::{decode_payload, encode_frame, Envelope, FrameBuffer};
use fragdroid::{
    dispatch, serve_listener, shard_journal_path, AnyStream, ChaosConfig, DispatchError,
    DispatchOptions, FragDroidConfig, ListenAddr, ServeListener, ServeOptions, ServeRequest,
    ServeResponse,
};

fn scratch(name: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fd-dispatch-prop-{}-{name}-{n}", std::process::id()))
}

fn corpus(n: usize) -> Vec<fragdroid::suite::SuiteContainer> {
    fd_appgen::corpus::corpus_217(41)
        .into_iter()
        .take(n)
        .map(|g| (fd_apk::pack(&g.app), g.known_inputs))
        .collect()
}

/// Binds a fresh loopback serve endpoint on a background thread.
fn spawn_server(workers: usize) -> (ListenAddr, std::thread::JoinHandle<()>) {
    let listener = ServeListener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_string())).expect("bind");
    let addr = listener.local_addr().clone();
    let options = ServeOptions { workers, ..ServeOptions::default() };
    let handle = std::thread::spawn(move || {
        serve_listener(listener, &options, &fd_trace::TraceConfig::off())
            .expect("server runs to clean shutdown");
    });
    (addr, handle)
}

/// Kills one endpoint: clean `Shutdown`, wait for `Bye`, join. After
/// this returns, connects to `addr` are refused — from the
/// coordinator's point of view the worker machine is gone.
fn kill_server(addr: &ListenAddr, handle: std::thread::JoinHandle<()>) {
    let mut stream = AnyStream::connect(addr).expect("connect for shutdown");
    stream
        .write_all(&encode_frame(&Envelope { id: u64::MAX, body: ServeRequest::Shutdown }))
        .expect("send shutdown");
    stream.flush().expect("flush shutdown");
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(payload) = frames.next_frame().expect("well-formed reply") {
            let reply: Envelope<ServeResponse> = decode_payload(&payload).expect("decodable");
            assert!(matches!(reply.body, ServeResponse::Bye));
            break;
        }
        let n = stream.read(&mut chunk).expect("read shutdown reply");
        assert!(n > 0, "server hung up before Bye");
        frames.push(&chunk[..n]);
    }
    handle.join().expect("server thread exits");
}

/// The digest the farm must reproduce: the same corpus through the
/// plain in-process suite runner.
fn reference_digest(suite: &[fragdroid::suite::SuiteContainer]) -> u64 {
    let (run, _) = fragdroid::run_corpus_suite_traced(
        &suite.to_vec(),
        &FragDroidConfig::default(),
        2,
        &fd_trace::TraceConfig::off(),
    );
    run.outcome_digest()
}

mod chaos_schedules {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// For any chaos seed on the coordinator→worker transport, the
        /// merged digest matches the unsharded run and every shard is
        /// committed exactly once (none dropped, none double-merged).
        #[test]
        fn any_chaos_schedule_merges_byte_identically(seed in 0u64..1_000_000) {
            let suite = corpus(2);
            let reference = reference_digest(&suite);

            let farm: Vec<_> = (0..2).map(|_| spawn_server(2)).collect();
            let mut options =
                DispatchOptions::new(farm.iter().map(|(a, _)| a.clone()).collect());
            options.shards = 2;
            options.chaos = Some(ChaosConfig::from_seed(seed));
            options.job_deadline = Duration::from_secs(120);
            options.job_attempts = 64;
            let run = dispatch(
                &suite,
                &FragDroidConfig::default(),
                &options,
                &fd_trace::TraceConfig::off(),
            )
            .expect("chaotic dispatch completes");
            for (addr, handle) in farm {
                kill_server(&addr, handle);
            }

            prop_assert_eq!(run.merged.run.outcome_digest(), reference);
            let committed: usize =
                run.summary.workers.iter().map(|w| w.shards_completed).sum();
            prop_assert_eq!(committed, 2, "every shard committed exactly once");
            prop_assert_eq!(run.merged.run.metrics.apps.len(), suite.len());
        }
    }
}

mod kill_schedules_and_resume {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// For any stagger of worker kills that eventually takes down
        /// *every* endpoint, plus a coordinator crash truncating the
        /// coordinator journal at any post-header offset: the first
        /// life either completes or fails typed (`Stalled`), and a
        /// `--resume` against a fresh farm settles on the digest of the
        /// unsharded run with each shard merged exactly once.
        #[test]
        fn every_worker_killed_then_resume_settles(
            kill_base_ms in 200u64..2_000,
            chaos_seed in 0u64..1_000_000,
            cut in 0.0f64..1.0,
        ) {
            let suite = corpus(4);
            let reference = reference_digest(&suite);
            let journal = scratch("kill-resume");
            let shards = 4usize;

            // Life 1: three workers, chaos-slowed transport so the
            // kills land mid-run, every worker killed on a stagger.
            let farm: Vec<_> = (0..3).map(|_| spawn_server(2)).collect();
            let endpoints: Vec<_> = farm.iter().map(|(a, _)| a.clone()).collect();
            let mut options = DispatchOptions::new(endpoints);
            options.shards = shards;
            options.journal = Some(journal.clone());
            options.chaos = Some(ChaosConfig::from_seed(chaos_seed));
            options.heartbeat_interval = Duration::from_millis(50);
            options.quarantine_after = 1;
            options.quarantine_backoff = Duration::from_millis(100);
            options.job_deadline = Duration::from_secs(10);
            options.job_attempts = 2;
            options.stall_timeout = Duration::from_secs(3);
            let life1 = {
                let suite = suite.clone();
                let options = options.clone();
                std::thread::spawn(move || {
                    dispatch(
                        &suite,
                        &FragDroidConfig::default(),
                        &options,
                        &fd_trace::TraceConfig::off(),
                    )
                })
            };
            for (which, (addr, handle)) in farm.into_iter().enumerate() {
                std::thread::sleep(Duration::from_millis(
                    kill_base_ms * (which as u64 + 1) / 3,
                ));
                kill_server(&addr, handle);
            }
            let first = life1.join().expect("coordinator thread does not panic");
            prop_assert!(
                matches!(first, Ok(_) | Err(DispatchError::Stalled { .. })),
                "life 1 must complete or stall typed, got {first:?}"
            );

            // Coordinator crash: chop the journal at any offset past
            // the header line (a corrupt header is a refused journal,
            // which the unit tests cover separately).
            let bytes = std::fs::read(&journal).expect("coordinator journal readable");
            let header_end = bytes.iter().position(|&b| b == b'\n').expect("header line") + 1;
            let cut_at = header_end + ((bytes.len() - header_end) as f64 * cut) as usize;
            std::fs::OpenOptions::new()
                .write(true)
                .open(&journal)
                .expect("reopen coordinator journal")
                .set_len(cut_at as u64)
                .expect("truncate coordinator journal");

            // Life 2: a fresh farm (new ports — resume does not pin
            // endpoints), clean transport, `--resume`.
            let farm: Vec<_> = (0..3).map(|_| spawn_server(2)).collect();
            let mut options =
                DispatchOptions::new(farm.iter().map(|(a, _)| a.clone()).collect());
            options.shards = shards;
            options.journal = Some(journal.clone());
            options.resume = true;
            let run = dispatch(
                &suite,
                &FragDroidConfig::default(),
                &options,
                &fd_trace::TraceConfig::off(),
            )
            .expect("resumed dispatch completes");
            for (addr, handle) in farm {
                kill_server(&addr, handle);
            }

            prop_assert_eq!(run.merged.run.outcome_digest(), reference);
            let rerun: usize =
                run.summary.workers.iter().map(|w| w.shards_completed).sum();
            prop_assert_eq!(
                run.summary.resumed_shards + rerun,
                shards,
                "each shard is either resumed or re-run, never both or neither: {:?}",
                run.summary
            );
            prop_assert_eq!(run.merged.run.metrics.apps.len(), suite.len());

            for shard in 0..shards {
                drop(std::fs::remove_file(shard_journal_path(&journal, shard, shards)));
            }
            drop(std::fs::remove_file(&journal));
        }
    }
}
