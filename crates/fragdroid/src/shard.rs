//! The shard coordinator: split a corpus across N independent suite
//! processes and merge their journals back into one result.
//!
//! A *shard* is a contiguous slice of the corpus ([`shard_range`] —
//! ragged tails land on the leading shards). Each shard runs the normal
//! checkpointed suite over a [`ShardSlice`] of the corpus source and
//! journals to its own path ([`shard_journal_path`]). Shard identity
//! falls out of the PR 5 fingerprint scheme for free: a sub-corpus has
//! its own length and streamed digest, so shard 2-of-4's journal can
//! never be resumed as shard 3-of-4's, against a different corpus, or
//! with a different config.
//!
//! [`merge_shards`] folds the per-shard journals into one
//! [`SuiteRun`]: every journal is fingerprint-checked against its
//! expected slice, completeness-checked, local indexes are mapped back
//! to global input order, and the outcomes are reassembled in that
//! order — so the merged [`SuiteRun::outcome_digest`] is byte-identical
//! to an unsharded run by construction. Merge rules for the lossy bits:
//!
//! * per-app wall times come from the journals unchanged; the merged
//!   suite-level `wall_ms`/`busy_ms` are the *sum* of per-app walls
//!   (shards ran on different clocks, so there is no meaningful
//!   end-to-end wall), and `workers` is the shard count;
//! * quarantined slots journaled under their shard-local label
//!   (`container[3]`) are relabeled to their global index;
//! * flake summaries merge by concatenation (indexes remapped), with
//!   `retries` the maximum across shards;
//! * device incidents are a live-pool observation, not a journaled
//!   fact, so the merged metrics report 0.

use crate::checkpoint::{load_journal, Fingerprint, FlakeSummary, JournalError};
use crate::config::FragDroidConfig;
use crate::suite::{
    assemble_metrics, AppMetrics, AppOutcome, CorpusSource, SuiteContainer, SuiteRun, SuiteSource,
};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The contiguous corpus range shard `index` of `shards` owns. The
/// remainder of an uneven split lands one extra app on each of the
/// leading shards, so shard sizes differ by at most one.
///
/// # Errors
/// [`ShardError::Split`] if `shards == 0` or `index >= shards`.
pub fn shard_range(total: usize, shards: usize, index: usize) -> Result<Range<usize>, ShardError> {
    if shards == 0 || index >= shards {
        return Err(ShardError::Split { shards, index });
    }
    let base = total / shards;
    let extra = total % shards;
    let start = index * base + index.min(extra);
    let len = base + usize::from(index < extra);
    Ok(start..start + len)
}

/// The journal path shard `index` of `shards` writes:
/// `<base>.shard-<index>-of-<shards>`.
pub fn shard_journal_path(base: &Path, index: usize, shards: usize) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".shard-{index}-of-{shards}"));
    PathBuf::from(name)
}

/// One shard's view of a corpus: a contiguous sub-range, offset back to
/// local indexes. Its streamed digest covers only the range, giving the
/// shard's journal its own fingerprint.
pub struct ShardSlice<'a> {
    source: &'a dyn CorpusSource,
    range: Range<usize>,
}

impl<'a> ShardSlice<'a> {
    /// Shard `index` of `shards` over `source`.
    ///
    /// # Errors
    /// [`ShardError::Split`] if `shards == 0` or `index >= shards`.
    pub fn new(
        source: &'a dyn CorpusSource,
        shards: usize,
        index: usize,
    ) -> Result<Self, ShardError> {
        let range = shard_range(source.len(), shards, index)?;
        Ok(ShardSlice { source, range })
    }

    /// The global corpus range this slice covers.
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }
}

impl CorpusSource for ShardSlice<'_> {
    fn len(&self) -> usize {
        self.range.len()
    }

    fn fetch(&self, index: usize) -> Result<SuiteContainer, String> {
        if index >= self.range.len() {
            return Err(format!("shard entry {index} out of range ({} entries)", self.range.len()));
        }
        self.source.fetch(self.range.start + index)
    }
}

/// A typed shard failure — an invalid split, or a per-shard journal
/// that cannot be run or merged. `fd-cli` maps these to exit code 4.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardError {
    /// The split parameters themselves are invalid: a zero-shard
    /// split, or a shard index outside it.
    Split {
        /// Shards in the rejected split.
        shards: usize,
        /// The offending shard index.
        index: usize,
    },
    /// A shard's journal failed to load or carries the wrong
    /// fingerprint (different corpus slice, config, or flake budget).
    Journal {
        /// The shard's index within the split.
        shard: usize,
        /// The underlying journal failure.
        error: JournalError,
    },
    /// A shard's journal is valid but does not cover its whole slice —
    /// the shard was killed and never resumed to completion.
    Incomplete {
        /// The shard's index within the split.
        shard: usize,
        /// Apps the journal holds.
        done: usize,
        /// Apps the shard's slice requires.
        total: usize,
    },
    /// The corpus source itself could not be streamed to fingerprint
    /// the shards.
    Source {
        /// The streaming failure, rendered.
        detail: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Split { shards: 0, index: _ } => {
                write!(f, "invalid split: a corpus cannot be split into 0 shards")
            }
            ShardError::Split { shards, index } => {
                write!(f, "shard index {index} out of range for {shards} shards")
            }
            ShardError::Journal { shard, error } => {
                write!(f, "shard {shard}: {error}")
            }
            ShardError::Incomplete { shard, done, total } => write!(
                f,
                "shard {shard} is incomplete: {done} of {total} apps journaled \
                 (resume it with the same --shards/--shard-index before merging)"
            ),
            ShardError::Source { detail } => write!(f, "corpus source failed: {detail}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// One shard's contribution to a merged run, for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardStat {
    /// The shard's index within the split.
    pub shard: usize,
    /// Apps the shard contributed.
    pub apps: usize,
    /// Quarantined inputs among them.
    pub rejected: usize,
    /// Crashes among them.
    pub crashes: usize,
    /// The journal the shard was read from.
    pub journal: PathBuf,
}

/// A merged multi-shard suite: the reassembled run plus per-shard
/// accounting.
#[derive(Debug)]
pub struct MergedRun {
    /// Outcomes and metrics in global input order — `outcome_digest()`
    /// is byte-identical to an unsharded run of the same corpus.
    pub run: SuiteRun,
    /// Per-shard contributions, in shard order.
    pub shards: Vec<ShardStat>,
}

/// Runs shard `index` of `shards`: the checkpointed suite over the
/// shard's slice, journaling to [`shard_journal_path`] derived from
/// `base.path`. Resume (`base.resume`) and `base.app_budget` apply to
/// the shard's own journal, so a killed shard picks up exactly where it
/// stopped.
///
/// # Errors
/// [`ShardError::Split`] if `shards == 0` or `index >= shards`;
/// [`ShardError::Journal`] when the shard's own journal cannot be
/// written, resumed, or fingerprint-matched.
#[allow(clippy::too_many_arguments)]
pub fn run_shard(
    source: &dyn CorpusSource,
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
    base: &crate::checkpoint::CheckpointOptions,
    flake_retries: usize,
    shards: usize,
    index: usize,
    pool: Option<&crate::pool::DevicePool>,
) -> Result<(crate::checkpoint::CheckpointedSuite, fd_trace::Trace), ShardError> {
    let slice = ShardSlice::new(source, shards, index)?;
    let options = crate::checkpoint::CheckpointOptions {
        path: shard_journal_path(&base.path, index, shards),
        ..base.clone()
    };
    match pool {
        Some(pool) => crate::checkpoint::run_corpus_suite_checkpointed_pooled(
            &slice,
            config,
            workers,
            trace_config,
            Some(&options),
            flake_retries,
            pool,
        ),
        None => crate::checkpoint::run_corpus_suite_checkpointed(
            &slice,
            config,
            workers,
            trace_config,
            Some(&options),
            flake_retries,
        ),
    }
    .map_err(|error| ShardError::Journal { shard: index, error })
}

/// Merges the per-shard journals of an N-way split back into one
/// [`SuiteRun`]. Every journal must exist, carry the fingerprint of its
/// exact slice (corpus digest + config + flake budget), and cover its
/// whole range; anything else is a typed [`ShardError`].
pub fn merge_shards(
    source: &dyn CorpusSource,
    config: &FragDroidConfig,
    flake_retries: usize,
    base: &Path,
    shards: usize,
    trace_config: &fd_trace::TraceConfig,
) -> Result<(MergedRun, fd_trace::Trace), ShardError> {
    if shards == 0 {
        return Err(ShardError::Split { shards, index: 0 });
    }
    let total = source.len();
    let clock = fd_trace::TraceClock::start();
    let tracer = fd_trace::Tracer::new(trace_config, clock, 0);

    let mut slots: BTreeMap<usize, (AppOutcome, AppMetrics)> = BTreeMap::new();
    let mut stats = Vec::with_capacity(shards);
    let mut merged_flakes: Option<FlakeSummary> = None;

    for shard in 0..shards {
        let slice = ShardSlice::new(source, shards, shard)?;
        let range = slice.range();
        let expected = Fingerprint::of(&SuiteSource::Lazy(&slice), config, flake_retries)
            .map_err(|detail| ShardError::Source { detail })?;
        let journal = shard_journal_path(base, shard, shards);
        let loaded =
            load_journal(&journal).map_err(|error| ShardError::Journal { shard, error })?;
        if loaded.fingerprint != expected {
            return Err(ShardError::Journal {
                shard,
                error: JournalError::FingerprintMismatch { expected, found: loaded.fingerprint },
            });
        }
        if loaded.slots.len() != range.len() {
            return Err(ShardError::Incomplete {
                shard,
                done: loaded.slots.len(),
                total: range.len(),
            });
        }
        let mut rejected = 0;
        let mut crashes = 0;
        for (local, (outcome, mut metrics)) in loaded.slots {
            let global = range.start + local;
            relabel(&mut metrics.package, local, global);
            rejected += usize::from(metrics.rejected);
            crashes += metrics.crashes;
            slots.insert(global, (outcome, metrics));
        }
        if let Some(mut flakes) = loaded.flakes {
            for record in &mut flakes.apps {
                let local = record.index;
                record.index = range.start + local;
                relabel(&mut record.package, local, record.index);
            }
            merged_flakes = Some(match merged_flakes.take() {
                None => flakes,
                Some(mut all) => {
                    all.retries = all.retries.max(flakes.retries);
                    all.deterministic += flakes.deterministic;
                    all.flaky += flakes.flaky;
                    all.apps.extend(flakes.apps);
                    all
                }
            });
        }
        tracer.event(|| fd_trace::TraceEvent::ShardMerged {
            shard: shard as u64,
            apps: range.len() as u64,
        });
        stats.push(ShardStat { shard, apps: range.len(), rejected, crashes, journal });
    }

    debug_assert_eq!(slots.len(), total, "complete shards cover the corpus exactly");
    let mut outcomes = Vec::with_capacity(total);
    let mut per_app = Vec::with_capacity(total);
    let mut wall_ms = 0u64;
    for (_, (outcome, metrics)) in slots {
        wall_ms += metrics.wall_ms;
        per_app.push(metrics);
        outcomes.push(outcome);
    }
    if let Some(flakes) = &mut merged_flakes {
        flakes.apps.sort_by_key(|record| record.index);
    }

    let wall = Duration::from_millis(wall_ms);
    let mut metrics = assemble_metrics(per_app, shards, wall, wall, 0);
    metrics.flake_summary = merged_flakes;

    let run = SuiteRun { outcomes, metrics };
    let mut trace = fd_trace::Trace::new("fragdroid-shard-merge");
    trace.absorb(tracer.finish());
    Ok((MergedRun { run, shards: stats }, trace))
}

/// Rewrites a shard-local quarantine label (`container[<local>]`) to its
/// global spelling; real package names pass through untouched.
fn relabel(package: &mut String, local: usize, global: usize) {
    if *package == format!("container[{local}]") {
        *package = format!("container[{global}]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_contiguous_and_ragged_tails_lead() {
        for (total, shards) in [(10, 4), (7, 7), (3, 7), (0, 3), (217, 4), (100, 1)] {
            let mut next = 0;
            for index in 0..shards {
                let range = shard_range(total, shards, index).expect("valid split");
                assert_eq!(range.start, next, "{total}/{shards} shard {index}");
                next = range.end;
            }
            assert_eq!(next, total, "{total}/{shards} must cover the corpus");
            let sizes: Vec<usize> = (0..shards)
                .map(|i| shard_range(total, shards, i).expect("valid split").len())
                .collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "sizes differ by at most one: {sizes:?}");
            assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "extras lead: {sizes:?}");
        }
    }

    #[test]
    fn invalid_splits_are_typed_errors() {
        assert_eq!(shard_range(10, 4, 4), Err(ShardError::Split { shards: 4, index: 4 }));
        assert_eq!(shard_range(10, 0, 0), Err(ShardError::Split { shards: 0, index: 0 }));
        let out_of_range = shard_range(10, 4, 7).unwrap_err();
        assert!(out_of_range.to_string().contains("out of range"), "{out_of_range}");
        let zero = shard_range(10, 0, 2).unwrap_err();
        assert!(zero.to_string().contains("0 shards"), "{zero}");
        let containers: Vec<SuiteContainer> = Vec::new();
        assert!(matches!(
            ShardSlice::new(&containers, 2, 2),
            Err(ShardError::Split { shards: 2, index: 2 })
        ));
    }

    #[test]
    fn journal_paths_are_distinct_per_shard_and_split() {
        let base = Path::new("/tmp/suite.journal");
        let p0 = shard_journal_path(base, 0, 4);
        let p1 = shard_journal_path(base, 1, 4);
        let q0 = shard_journal_path(base, 0, 2);
        assert_eq!(p0, Path::new("/tmp/suite.journal.shard-0-of-4"));
        assert_ne!(p0, p1);
        assert_ne!(p0, q0);
    }

    #[test]
    fn shard_slice_offsets_and_digests_its_range() {
        let containers: Vec<SuiteContainer> = (0..5)
            .map(|i| (bytes::Bytes::from(vec![i as u8; 3]), std::collections::BTreeMap::new()))
            .collect();
        let slice = ShardSlice::new(&containers, 2, 1).expect("valid split"); // entries 3, 4 (ragged: 3+2)
        assert_eq!(slice.range(), 3..5);
        assert_eq!(CorpusSource::len(&slice), 2);
        let (bytes, _) = slice.fetch(0).expect("fetch maps to global 3");
        assert_eq!(bytes.as_slice(), &[3, 3, 3]);
        assert!(slice.fetch(2).is_err(), "local indexes stay in range");
        // The slice digest equals an eager digest of just its entries.
        let eager: &[SuiteContainer] = &containers[3..5];
        assert_eq!(CorpusSource::digest(&slice).unwrap(), CorpusSource::digest(eager).unwrap());
        assert_ne!(
            CorpusSource::digest(&slice).unwrap(),
            CorpusSource::digest(&containers).unwrap()
        );
    }

    #[test]
    fn relabel_only_touches_local_quarantine_labels() {
        let mut real = "com.example.app".to_string();
        relabel(&mut real, 2, 12);
        assert_eq!(real, "com.example.app");
        let mut local = "container[2]".to_string();
        relabel(&mut local, 2, 12);
        assert_eq!(local, "container[12]");
    }
}
