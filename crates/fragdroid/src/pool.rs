//! The fault-tolerant device-pool scheduler.
//!
//! The suite runner historically built one simulator per app inside the
//! run closure — fine in-process, wasteful and fragile for subprocess
//! backends, where "the device" is a child process that can die. The
//! pool owns one [`DeviceLane`] per worker and hands out *leases*:
//!
//! * a lease reuses the lane's live device when its health check
//!   ([`DeviceApi::ping`]) passes, and builds a fresh one (bumping the
//!   lane's generation counter) when it does not;
//! * a run that ends in [`RunReport::infra_failure`] counts as a
//!   *device incident* — the app is re-run on a fresh lease, up to
//!   [`DevicePool::with_max_attempts`] attempts;
//! * [`DevicePool::with_quarantine_threshold`] consecutive incidents on
//!   one lane retire the lane's device entirely (it is dropped, which
//!   kills a subprocess agent), so a sick device cannot eat the whole
//!   suite.
//!
//! Incidents are never misattributed to the app under test: an
//! infra-failed attempt keeps `crashes == 0` and is reported through
//! [`RunReport::infra_failure`] and the suite-level
//! `SuiteMetrics::device_incidents` counter instead.

use crate::config::FragDroidConfig;
use crate::report::RunReport;
use fd_droidsim::{DeviceApi, DeviceBackend, InProcessDevice, MockAdbDevice, SubprocessDevice};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Builds a fresh backend of the configured kind. The subprocess
/// backend re-executes the current binary with the `device-agent`
/// argument, so it only works from binaries that route that argument to
/// [`fd_droidsim::serve`] (`fd-cli` does); library tests use
/// [`SubprocessDevice::in_memory`] instead.
pub fn build_backend(backend: DeviceBackend) -> Box<dyn DeviceApi> {
    match backend {
        DeviceBackend::InProcess => Box::new(InProcessDevice::new()),
        DeviceBackend::Subprocess => Box::new(SubprocessDevice::spawn_cli(Vec::new())),
        DeviceBackend::MockAdb => Box::new(MockAdbDevice::new()),
    }
}

/// How a pool builds a device for lane `lane` at generation
/// `generation` (0 for the lane's first device, bumped on every
/// rebuild). Tests inject factories that fail on purpose; the CLI
/// injects one whose generation-0 device dies after N requests.
pub type DeviceFactory = Box<dyn Fn(usize, u64) -> Box<dyn DeviceApi> + Send + Sync>;

/// Consecutive infra failures on one lane before its device is retired.
pub const DEFAULT_QUARANTINE_THRESHOLD: usize = 3;

/// Total attempts one app gets across leases before its infra failure
/// becomes the final outcome.
pub const DEFAULT_MAX_ATTEMPTS: usize = 3;

/// One worker's device slot: the (possibly absent) live device, the
/// lane's device generation, and its consecutive-incident count.
struct DeviceLane {
    device: Option<Box<dyn DeviceApi>>,
    /// Devices ever built for this lane; the live device's generation is
    /// `generation - 1`.
    generation: u64,
    consecutive_infra: usize,
}

/// A fixed set of device lanes with lease/retry/quarantine scheduling.
/// One lane per suite worker: workers only ever lock their own lane, so
/// the mutexes are uncontended and exist to keep the pool `Sync`.
pub struct DevicePool {
    lanes: Vec<Mutex<DeviceLane>>,
    factory: DeviceFactory,
    quarantine_threshold: usize,
    max_attempts: usize,
    incidents: AtomicUsize,
    retired: AtomicUsize,
}

impl std::fmt::Debug for DevicePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DevicePool")
            .field("lanes", &self.lanes.len())
            .field("quarantine_threshold", &self.quarantine_threshold)
            .field("max_attempts", &self.max_attempts)
            .field("incidents", &self.incidents())
            .field("retired", &self.retired())
            .finish()
    }
}

impl DevicePool {
    /// A pool of `lanes` lanes over an injected device factory.
    pub fn with_factory(lanes: usize, factory: DeviceFactory) -> Self {
        let lanes = lanes.max(1);
        DevicePool {
            lanes: (0..lanes)
                .map(|_| {
                    Mutex::new(DeviceLane { device: None, generation: 0, consecutive_infra: 0 })
                })
                .collect(),
            factory,
            quarantine_threshold: DEFAULT_QUARANTINE_THRESHOLD,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            incidents: AtomicUsize::new(0),
            retired: AtomicUsize::new(0),
        }
    }

    /// A pool whose factory builds the backend named by
    /// [`FragDroidConfig::backend`].
    pub fn from_config(config: &FragDroidConfig, lanes: usize) -> Self {
        let backend = config.backend;
        DevicePool::with_factory(lanes, Box::new(move |_, _| build_backend(backend)))
    }

    /// Overrides the consecutive-incident count that retires a device
    /// (builder style). Clamped to at least 1.
    pub fn with_quarantine_threshold(mut self, threshold: usize) -> Self {
        self.quarantine_threshold = threshold.max(1);
        self
    }

    /// Overrides the per-app attempt cap (builder style). Clamped to at
    /// least 1.
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Device incidents so far: app attempts that ended in an
    /// infrastructure failure (plus devices retired by a failed health
    /// check).
    pub fn incidents(&self) -> usize {
        self.incidents.load(Ordering::Relaxed)
    }

    /// Devices retired so far (quarantine or failed health check).
    pub fn retired(&self) -> usize {
        self.retired.load(Ordering::Relaxed)
    }

    /// Runs one app on lane `lane` (wrapped modulo the lane count) with
    /// lease/retry/quarantine handling around the `run` closure. The
    /// closure is called with a leased device and must return the app's
    /// [`RunReport`]; an [`RunReport::infra_failure`] outcome is retried
    /// on a fresh lease up to the attempt cap, and the final report is
    /// returned either way.
    pub fn run_app(
        &self,
        lane: usize,
        tracer: &fd_trace::Tracer,
        mut run: impl FnMut(&mut dyn DeviceApi) -> RunReport,
    ) -> RunReport {
        let lane_index = lane % self.lanes.len();
        let mut slot = match self.lanes[lane_index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut last: Option<RunReport> = None;
        for _ in 0..self.max_attempts {
            // Lease: health-check a reused device, build a fresh one when
            // the lane is empty or the check fails.
            if let Some(device) = slot.device.as_mut() {
                if device.ping().is_err() {
                    self.retire(&mut slot, lane_index, tracer);
                }
            }
            if slot.device.is_none() {
                let generation = slot.generation;
                slot.generation += 1;
                slot.device = Some((self.factory)(lane_index, generation));
            }
            let generation = slot.generation - 1;
            let lane_id = lane_index as u64;
            tracer.event(|| fd_trace::TraceEvent::DeviceLeased { lane: lane_id, generation });

            let report = run(slot.device.as_mut().expect("lease built a device").as_mut());
            match &report.infra_failure {
                None => {
                    slot.consecutive_infra = 0;
                    return report;
                }
                Some(detail) => {
                    self.incidents.fetch_add(1, Ordering::Relaxed);
                    slot.consecutive_infra += 1;
                    let detail = detail.clone();
                    tracer.event(|| fd_trace::TraceEvent::DeviceIncident { detail });
                    if slot.consecutive_infra >= self.quarantine_threshold {
                        self.retire(&mut slot, lane_index, tracer);
                    }
                    last = Some(report);
                }
            }
        }
        last.expect("max_attempts >= 1 ran at least one attempt")
    }

    /// Drops the lane's device (killing a subprocess agent) and resets
    /// its incident streak; the next lease builds a fresh generation.
    fn retire(&self, slot: &mut DeviceLane, lane_index: usize, tracer: &fd_trace::Tracer) {
        if slot.device.take().is_none() {
            return;
        }
        slot.consecutive_infra = 0;
        self.retired.fetch_add(1, Ordering::Relaxed);
        let lane_id = lane_index as u64;
        tracer.event(|| fd_trace::TraceEvent::DeviceRetired { lane: lane_id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::DeviceErrorStats;
    use fd_droidsim::{DeviceConfig, DeviceError};
    use std::sync::atomic::AtomicUsize as Counter;
    use std::sync::Arc;

    fn infra_report(detail: &str) -> RunReport {
        let mut report = ok_report();
        report.infra_failure = Some(detail.to_string());
        report.device_errors = DeviceErrorStats { infrastructure: 1, ..Default::default() };
        report
    }

    fn ok_report() -> RunReport {
        let gen = fd_appgen::templates::quickstart();
        let info = fd_static::extract(&gen.app, &std::collections::BTreeMap::new());
        RunReport {
            aftm: info.aftm.clone(),
            static_info: info,
            visited_activities: Default::default(),
            visited_fragments: Default::default(),
            api_invocations: Vec::new(),
            scripts: Vec::new(),
            timeline: Vec::new(),
            events_injected: 0,
            test_cases_run: 0,
            test_cases_generated: 0,
            crashes: 0,
            deadline_exceeded: false,
            crash_reports: Vec::new(),
            recovered_crashes: 0,
            retries: 0,
            faults_injected: 0,
            fault_log: Default::default(),
            device_errors: Default::default(),
            infra_failure: None,
        }
    }

    /// A device whose ping fails after being marked sick.
    struct Sickly {
        inner: InProcessDevice,
        sick: bool,
    }

    impl DeviceApi for Sickly {
        fn install_app(
            &mut self,
            app: &fd_apk::AndroidApp,
            config: DeviceConfig,
        ) -> Result<(), DeviceError> {
            self.inner.install_app(app, config)
        }
        fn launch(&mut self) -> Result<fd_droidsim::EventOutcome, DeviceError> {
            self.inner.launch()
        }
        fn am_start(&mut self, c: &str) -> Result<fd_droidsim::EventOutcome, DeviceError> {
            self.inner.am_start(c)
        }
        fn click(&mut self, id: &str) -> Result<fd_droidsim::EventOutcome, DeviceError> {
            self.inner.click(id)
        }
        fn enter_text(&mut self, id: &str, text: &str) -> Result<(), DeviceError> {
            self.inner.enter_text(id, text)
        }
        fn dismiss_overlay(&mut self) -> Result<fd_droidsim::EventOutcome, DeviceError> {
            self.inner.dismiss_overlay()
        }
        fn back(&mut self) -> Result<fd_droidsim::EventOutcome, DeviceError> {
            self.inner.back()
        }
        fn swipe_open_drawer(&mut self) -> Result<fd_droidsim::EventOutcome, DeviceError> {
            self.inner.swipe_open_drawer()
        }
        fn reflect_switch_fragment(
            &mut self,
            f: &str,
        ) -> Result<fd_droidsim::EventOutcome, DeviceError> {
            self.inner.reflect_switch_fragment(f)
        }
        fn observe(&mut self) -> Result<Option<fd_droidsim::ScreenObservation>, DeviceError> {
            self.inner.observe()
        }
        fn signature(&mut self) -> Result<Option<fd_droidsim::UiSignature>, DeviceError> {
            self.inner.signature()
        }
        fn visible_widgets(&mut self) -> Result<Vec<fd_droidsim::VisibleWidget>, DeviceError> {
            self.inner.visible_widgets()
        }
        fn stack_depth(&mut self) -> Result<usize, DeviceError> {
            self.inner.stack_depth()
        }
        fn is_crashed(&mut self) -> Result<bool, DeviceError> {
            self.inner.is_crashed()
        }
        fn crash_site(&mut self) -> Result<Option<fd_droidsim::UiSignature>, DeviceError> {
            self.inner.crash_site()
        }
        fn invocations(&mut self) -> Result<Vec<fd_droidsim::ApiInvocation>, DeviceError> {
            self.inner.invocations()
        }
        fn fault_records_since(
            &mut self,
            from: usize,
        ) -> Result<Vec<fd_droidsim::FaultRecord>, DeviceError> {
            self.inner.fault_records_since(from)
        }
        fn fault_log(&mut self) -> Result<fd_droidsim::FaultLog, DeviceError> {
            self.inner.fault_log()
        }
        fn faults_injected(&mut self) -> Result<usize, DeviceError> {
            self.inner.faults_injected()
        }
        fn clock(&mut self) -> Result<u64, DeviceError> {
            self.inner.clock()
        }
        fn advance_clock(&mut self, ticks: u64) -> Result<(), DeviceError> {
            self.inner.advance_clock(ticks)
        }
        fn reset(&mut self) -> Result<(), DeviceError> {
            self.inner.reset()
        }
        fn grant(&mut self, p: &str) -> Result<(), DeviceError> {
            self.inner.grant(p)
        }
        fn revoke(&mut self, p: &str) -> Result<(), DeviceError> {
            self.inner.revoke(p)
        }
        fn ping(&mut self) -> Result<(), DeviceError> {
            if self.sick {
                Err(DeviceError::AgentDied { detail: "sick".to_string() })
            } else {
                Ok(())
            }
        }
        fn backend_name(&self) -> &'static str {
            "sickly"
        }
    }

    #[test]
    fn healthy_runs_reuse_the_same_device_generation() {
        let built = Arc::new(Counter::new(0));
        let built_in_factory = Arc::clone(&built);
        let pool = DevicePool::with_factory(
            1,
            Box::new(move |_, _| {
                built_in_factory.fetch_add(1, Ordering::Relaxed);
                Box::new(InProcessDevice::new())
            }),
        );
        let tracer = fd_trace::Tracer::disabled();
        for _ in 0..3 {
            let report = pool.run_app(0, &tracer, |_| ok_report());
            assert!(report.infra_failure.is_none());
        }
        assert_eq!(built.load(Ordering::Relaxed), 1, "one device serves consecutive apps");
        assert_eq!(pool.incidents(), 0);
        assert_eq!(pool.retired(), 0);
    }

    #[test]
    fn infra_failures_are_retried_and_counted_never_as_crashes() {
        let pool = DevicePool::with_factory(1, Box::new(|_, _| Box::new(InProcessDevice::new())))
            .with_max_attempts(3);
        let tracer = fd_trace::Tracer::disabled();
        let attempts = Counter::new(0);
        let report = pool.run_app(0, &tracer, |_| {
            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                infra_report("agent died")
            } else {
                ok_report()
            }
        });
        assert_eq!(attempts.load(Ordering::Relaxed), 2, "app re-ran after the incident");
        assert!(report.infra_failure.is_none(), "final outcome is the successful retry");
        assert_eq!(report.crashes, 0);
        assert_eq!(pool.incidents(), 1);
    }

    #[test]
    fn quarantine_retires_a_sick_device_and_final_outcome_stays_infra() {
        let built = Arc::new(Counter::new(0));
        let built_in_factory = Arc::clone(&built);
        let pool = DevicePool::with_factory(
            1,
            Box::new(move |_, generation| {
                built_in_factory.fetch_add(1, Ordering::Relaxed);
                assert!(generation < 3);
                Box::new(InProcessDevice::new())
            }),
        )
        .with_quarantine_threshold(2)
        .with_max_attempts(4);
        let tracer = fd_trace::Tracer::disabled();
        let report = pool.run_app(0, &tracer, |_| infra_report("agent died"));
        assert_eq!(report.infra_failure.as_deref(), Some("agent died"));
        assert_eq!(report.crashes, 0, "an infra failure is never an app crash");
        assert_eq!(pool.incidents(), 4, "every attempt was an incident");
        assert_eq!(pool.retired(), 2, "threshold 2 retired the device twice in 4 attempts");
        assert_eq!(built.load(Ordering::Relaxed), 2, "each generation served 2 attempts");
    }

    #[test]
    fn failed_health_check_replaces_the_device_before_the_run() {
        let pool = DevicePool::with_factory(
            1,
            Box::new(|_, _| Box::new(Sickly { inner: InProcessDevice::new(), sick: false })),
        );
        let tracer = fd_trace::Tracer::disabled();
        let report = pool.run_app(0, &tracer, |device| {
            assert_eq!(device.backend_name(), "sickly");
            ok_report()
        });
        assert!(report.infra_failure.is_none());
        // Swap in a device that fails its health check; the next lease
        // must retire it and build a replacement before running the app.
        {
            let mut slot = pool.lanes[0].lock().unwrap();
            slot.device = Some(Box::new(Sickly { inner: InProcessDevice::new(), sick: true }));
        }
        let report = pool.run_app(0, &tracer, |device| {
            assert!(device.ping().is_ok(), "the lease replaced the sick device");
            ok_report()
        });
        assert!(report.infra_failure.is_none());
        assert_eq!(pool.retired(), 1, "the failed health check retired the sick device");
    }

    #[test]
    fn from_config_builds_the_configured_backend() {
        let config = FragDroidConfig::default().with_backend(DeviceBackend::MockAdb);
        let pool = DevicePool::from_config(&config, 2);
        assert_eq!(pool.lanes(), 2);
        let tracer = fd_trace::Tracer::disabled();
        let report = pool.run_app(0, &tracer, |device| {
            assert_eq!(device.backend_name(), "mock-adb");
            ok_report()
        });
        assert!(report.infra_failure.is_none());
    }
}
