//! FragDroid — automated UI interaction with Activity *and* Fragment
//! analysis (the paper's primary contribution).
//!
//! The tool runs in two phases, mirroring Fig. 4:
//!
//! 1. **Static Information Extraction** (`fd-static`): the initial AFTM,
//!    the Activity & Fragment dependency, the resource dependency and the
//!    input dependency are extracted from the decompiled app, and the
//!    manifest is rewritten so every activity can be force-started.
//! 2. **Evolutionary Test Case Generation** (this crate): a UI transition
//!    queue is initialized from the AFTM by breadth-first search; each
//!    item is compiled to a Robotium-style [`fd_droidsim::TestScript`] and
//!    executed; the [`driver`] observes the resulting fragment-level UI
//!    states, updates the AFTM with every newly seen transition, enqueues
//!    newly discovered states, injects reflection-based switches for
//!    dependent fragments (Case 1/2), sweeps every settled interface's
//!    clickable widgets (Case 3), and finally force-starts the activities
//!    normal interaction never reached. The loop ends when the queue is
//!    empty and the AFTM stops changing.
//!
//! # Example
//!
//! ```
//! use fragdroid::{FragDroid, FragDroidConfig};
//!
//! let gen = fd_appgen::templates::quickstart();
//! let report = FragDroid::new(FragDroidConfig::default())
//!     .run(&gen.app, &gen.known_inputs);
//! assert_eq!(report.activity_coverage().visited, 3);
//! ```

pub mod checkpoint;
pub mod codegen;
pub mod config;
pub mod dispatch;
pub mod driver;
pub mod pool;
pub mod queue;
pub mod report;
pub mod serve;
pub mod shard;
pub mod suite;

pub use checkpoint::{
    load_journal, run_container_suite_checkpointed, run_container_suite_checkpointed_pooled,
    run_corpus_suite_checkpointed, run_corpus_suite_checkpointed_pooled, run_suite_checkpointed,
    CheckpointOptions, CheckpointedSuite, Fingerprint, FlakeClass, FlakeRecord, FlakeSummary,
    JournalError, LoadedJournal,
};
pub use config::FragDroidConfig;
pub use dispatch::{
    decode_dispatch_line, demo_dispatch_journal, dispatch, parse_dispatch_journal, DispatchError,
    DispatchJournal, DispatchOptions, DispatchRun, DispatchSummary, WorkerStat,
    DISPATCH_JOURNAL_VERSION,
};
pub use driver::FragDroid;
pub use pool::{build_backend, DeviceFactory, DevicePool};
pub use queue::{QueueItem, UiQueue};
pub use report::{Coverage, CrashReport, CrashSignature, DeviceErrorStats, RunReport};
pub use serve::{
    serve, serve_listen, serve_listener, AnyStream, ChaosConfig, ChaosStream, ClientError,
    JobOutcome, ListenAddr, ServeError, ServeIncidents, ServeListener, ServeOptions, ServeRequest,
    ServeResponse, ServeSummary, SubmitClient,
};
pub use shard::{
    merge_shards, run_shard, shard_journal_path, shard_range, MergedRun, ShardError, ShardSlice,
    ShardStat,
};
pub use suite::{
    run_container_suite_outcomes, run_container_suite_pooled, run_container_suite_traced,
    run_corpus_suite_pooled, run_corpus_suite_traced, run_suite, run_suite_outcomes,
    run_suite_traced, run_suite_with_workers, AppMetrics, AppOutcome, CorpusSource, SuiteMetrics,
    SuiteRun,
};
