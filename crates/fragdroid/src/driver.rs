//! The UI-driving and AFTM-update loop (§VI).

use crate::config::FragDroidConfig;
use crate::queue::{QueueItem, UiQueue};
use crate::report::{CrashReport, CrashSignature, DeviceErrorStats, RunReport};
use fd_aftm::{Aftm, NodeId, RawTransition};
use fd_apk::AndroidApp;
use fd_droidsim::{
    ApiInvocation, DeviceApi, DeviceConfig, DeviceError, ErrorClass, EventOutcome, FaultConfig,
    FaultLog, Op, ScreenObservation, TestScript, UiSignature, VisibleWidget,
};
use fd_smali::ClassName;
use fd_static::{StaticInfo, UiOwner};
use std::collections::{BTreeMap, BTreeSet};

/// Base backoff after a transient device error, in simulated clock
/// ticks; attempt `n` waits `BACKOFF_BASE_TICKS << n`.
const BACKOFF_BASE_TICKS: u64 = 50;

/// The FragDroid tool.
#[derive(Clone, Debug, Default)]
pub struct FragDroid {
    config: FragDroidConfig,
}

impl FragDroid {
    /// Creates a tool instance.
    pub fn new(config: FragDroidConfig) -> Self {
        FragDroid { config }
    }

    /// Runs the full pipeline on a decompiled app. `provided_inputs` is
    /// the analyst-filled input-dependency data.
    pub fn run(&self, app: &AndroidApp, provided_inputs: &BTreeMap<String, String>) -> RunReport {
        self.run_traced(app, provided_inputs, &fd_trace::Tracer::disabled())
    }

    /// [`run`](Self::run) under a tracer: the static phase, every
    /// explored test case, and each crash-recovery attempt become spans;
    /// dispatched events, faults, retries, crashes, and AFTM discoveries
    /// become typed instant events. With a disabled tracer this *is*
    /// `run` — the same code path, producing a byte-identical report.
    ///
    /// The device backend is built from
    /// [`FragDroidConfig::backend`]; use
    /// [`run_traced_on`](Self::run_traced_on) to run against a device the
    /// caller already holds (what the device pool does with leases).
    pub fn run_traced(
        &self,
        app: &AndroidApp,
        provided_inputs: &BTreeMap<String, String>,
        tracer: &fd_trace::Tracer,
    ) -> RunReport {
        let mut device = crate::pool::build_backend(self.config.backend);
        self.run_traced_on(app, provided_inputs, tracer, &mut *device)
    }

    /// [`run_traced`](Self::run_traced) against a caller-provided
    /// [`DeviceApi`] backend. The device is wiped by the initial
    /// [`DeviceApi::install_app`], so a leased (possibly reused) device
    /// behaves exactly like a fresh one. If the install itself fails —
    /// only possible on a remote backend — the run is cut short with an
    /// [`RunReport::infra_failure`] report that blames the harness, not
    /// the app.
    pub fn run_traced_on(
        &self,
        app: &AndroidApp,
        provided_inputs: &BTreeMap<String, String>,
        tracer: &fd_trace::Tracer,
        device: &mut dyn DeviceApi,
    ) -> RunReport {
        // Phase 1: static information extraction.
        let info = fd_static::extract_traced(app, provided_inputs, tracer);

        // Manifest rewrite so `am start -n` can reach every activity.
        let mut installed = app.clone();
        installed.manifest.add_main_action_everywhere();
        let mut device_config = DeviceConfig::default();
        if self.config.faults_armed() {
            device_config.faults =
                Some(FaultConfig::new(self.config.fault_seed, self.config.fault_rate));
        }
        if let Err(err) = device.install_app(&installed, device_config) {
            return install_failure_report(info, &err, tracer);
        }

        // Phase 2: evolutionary test case generation.
        let explore_span = tracer.span(fd_trace::Phase::Explore, "explore");
        let mut explorer = Explorer {
            config: &self.config,
            tracer,
            faults_seen: 0,
            started: std::time::Instant::now(),
            deadline_hit: std::cell::Cell::new(false),
            device,
            infra: None,
            info: &info,
            aftm: info.aftm.clone(),
            queue: UiQueue::new(),
            swept: BTreeSet::new(),
            tried: BTreeSet::new(),
            paths: BTreeMap::new(),
            visited_activities: BTreeSet::new(),
            visited_fragments: BTreeSet::new(),
            reflection_pushed: BTreeSet::new(),
            force_tried: BTreeSet::new(),
            scripts: Vec::new(),
            timeline: Vec::new(),
            events: 0,
            test_cases: 0,
            crashes: 0,
            crash_reports: Vec::new(),
            recovered_crashes: 0,
            retries: 0,
            device_errors: DeviceErrorStats::default(),
            in_recovery: false,
        };
        explorer.explore();
        if tracer.is_enabled() {
            let clock = explorer.dev_clock();
            tracer.set_sim_clock(clock);
        }
        explore_span.end();

        // Drain the device's accumulated observations before assembling
        // the report; each can still fail on a remote backend, in which
        // case the report keeps the (empty) fallback and records the
        // infrastructure failure.
        let api_invocations = explorer.dev_invocations();
        let faults_injected = explorer.dev_faults_injected();
        let fault_log = explorer.dev_fault_log();

        RunReport {
            scripts: explorer.scripts,
            timeline: explorer.timeline,
            visited_activities: explorer.visited_activities,
            visited_fragments: explorer.visited_fragments,
            api_invocations,
            events_injected: explorer.events,
            test_cases_run: explorer.test_cases,
            test_cases_generated: explorer.queue.generated(),
            crashes: explorer.crashes,
            deadline_exceeded: explorer.deadline_hit.get(),
            crash_reports: explorer.crash_reports,
            recovered_crashes: explorer.recovered_crashes,
            retries: explorer.retries,
            faults_injected,
            fault_log,
            device_errors: explorer.device_errors,
            infra_failure: explorer.infra,
            aftm: explorer.aftm,
            static_info: info,
        }
    }

    /// Convenience entry: decompile a packed APK container and run.
    pub fn run_apk(
        &self,
        bytes: &bytes::Bytes,
        provided_inputs: &BTreeMap<String, String>,
    ) -> Result<RunReport, fd_apk::ApkError> {
        self.run_apk_traced(bytes, provided_inputs, &fd_trace::Tracer::disabled())
    }

    /// [`run_apk`](Self::run_apk) under a tracer: adds a
    /// [`fd_trace::Phase::Decompile`] span around unpacking on top of
    /// everything [`run_traced`](Self::run_traced) records.
    pub fn run_apk_traced(
        &self,
        bytes: &bytes::Bytes,
        provided_inputs: &BTreeMap<String, String>,
        tracer: &fd_trace::Tracer,
    ) -> Result<RunReport, fd_apk::ApkError> {
        let app = fd_apk::decompile_traced(bytes, tracer)?;
        Ok(self.run_traced(&app, provided_inputs, tracer))
    }
}

/// The report for a run that never got past `install_app`: static
/// results only, one infrastructure incident, zero app crashes.
fn install_failure_report(
    info: StaticInfo,
    err: &DeviceError,
    tracer: &fd_trace::Tracer,
) -> RunReport {
    let detail = err.to_string();
    tracer.event(|| fd_trace::TraceEvent::DeviceIncident { detail: detail.clone() });
    RunReport {
        aftm: info.aftm.clone(),
        visited_activities: BTreeSet::new(),
        visited_fragments: BTreeSet::new(),
        api_invocations: Vec::new(),
        scripts: Vec::new(),
        timeline: Vec::new(),
        events_injected: 0,
        test_cases_run: 0,
        test_cases_generated: 0,
        crashes: 0,
        deadline_exceeded: false,
        crash_reports: Vec::new(),
        recovered_crashes: 0,
        retries: 0,
        faults_injected: 0,
        fault_log: FaultLog::default(),
        device_errors: DeviceErrorStats { infrastructure: 1, ..DeviceErrorStats::default() },
        infra_failure: Some(detail),
        static_info: info,
    }
}

/// A stable short name for each device operation, used as the
/// `EventDispatched` payload (never allocates for the common case).
fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Launch => "launch",
        Op::ForceStart(_) => "force-start",
        Op::Click(_) => "click",
        Op::EnterText { .. } => "enter-text",
        Op::DismissOverlay => "dismiss-overlay",
        Op::Back => "back",
        Op::SwipeOpenDrawer => "swipe-open-drawer",
        Op::ReflectSwitch(_) => "reflect-switch",
    }
}

struct Explorer<'a> {
    config: &'a FragDroidConfig,
    /// Trace sink for this run (a disabled tracer is a no-op).
    tracer: &'a fd_trace::Tracer,
    /// Fault-log records already mirrored into the trace, so each
    /// injected fault becomes exactly one [`fd_trace::TraceEvent`].
    faults_seen: usize,
    /// When the run began — compared against `config.app_deadline`.
    started: std::time::Instant,
    /// Latched true the first time a budget check fails on the deadline,
    /// so the report can distinguish a timeout from natural exhaustion.
    deadline_hit: std::cell::Cell<bool>,
    device: &'a mut dyn DeviceApi,
    /// Latched to the first infrastructure failure's rendered error. Once
    /// set, the budget is treated as exhausted: the run unwinds and the
    /// report carries the partial results plus
    /// [`RunReport::infra_failure`] — never an app crash.
    infra: Option<String>,
    info: &'a StaticInfo,
    aftm: Aftm,
    queue: UiQueue,
    /// Fragment-level states already swept (Case 3 runs once per state).
    swept: BTreeSet<UiSignature>,
    /// (state, widget) pairs already clicked.
    tried: BTreeSet<(UiSignature, String)>,
    /// Shortest-known operation list reaching each state.
    paths: BTreeMap<UiSignature, Vec<Op>>,
    visited_activities: BTreeSet<ClassName>,
    visited_fragments: BTreeSet<ClassName>,
    /// (activity, fragment) pairs a reflection item was generated for.
    reflection_pushed: BTreeSet<(ClassName, ClassName)>,
    /// Activities already force-started in the second loop phase.
    force_tried: BTreeSet<ClassName>,
    /// Executed test cases, in order.
    scripts: Vec<TestScript>,
    /// `(events, activities, fragments)` samples at each new visit.
    timeline: Vec<(usize, usize, usize)>,
    events: usize,
    test_cases: usize,
    crashes: usize,
    /// Distinct crashes by signature, with occurrence/recovery triage.
    crash_reports: Vec<CrashReport>,
    /// Crashes the supervisor relaunched and replayed past.
    recovered_crashes: usize,
    /// Retries after transient device errors.
    retries: usize,
    /// Device errors by class (see the satellite fix in [`Explorer::exec`]:
    /// an errored event is counted, not reported as "no change").
    device_errors: DeviceErrorStats,
    /// Guard against recursive crash recovery: a crash *during* recovery
    /// is triaged but not recovered from again.
    in_recovery: bool,
}

/// What one [`Explorer::exec`] step produced: either a real device
/// outcome, or a classified device error — no longer conflated with
/// [`EventOutcome::NoChange`].
#[derive(Clone, Debug, PartialEq, Eq)]
enum StepOutcome {
    /// The device accepted the event.
    Outcome(EventOutcome),
    /// The device rejected the event (after any retries).
    Errored(ErrorClass),
}

impl<'a> Explorer<'a> {
    /// Latches the first infrastructure failure and mirrors every one
    /// into the trace. The latch makes [`Explorer::budget_left`] report
    /// exhaustion, so the exploration unwinds promptly instead of
    /// hammering a dead transport.
    fn latch_infra(&mut self, err: &DeviceError) {
        let detail = err.to_string();
        self.tracer.event(|| fd_trace::TraceEvent::DeviceIncident { detail: detail.clone() });
        if self.infra.is_none() {
            self.infra = Some(detail);
        }
    }

    /// Unwraps a device observation, absorbing errors: the error class is
    /// counted, infrastructure failures latch the run, and the caller
    /// gets `fallback`. In-process backends never take the error path, so
    /// this is behaviorally identical to the pre-trait driver there.
    fn absorb<T>(&mut self, result: Result<T, DeviceError>, fallback: T) -> T {
        match result {
            Ok(value) => value,
            Err(err) => {
                let class = err.class();
                self.count_error(class);
                if class == ErrorClass::Infrastructure {
                    self.latch_infra(&err);
                }
                fallback
            }
        }
    }

    fn dev_signature(&mut self) -> Option<UiSignature> {
        let result = self.device.signature();
        self.absorb(result, None)
    }

    fn dev_observe(&mut self) -> Option<ScreenObservation> {
        let result = self.device.observe();
        self.absorb(result, None)
    }

    fn dev_widgets(&mut self) -> Vec<VisibleWidget> {
        let result = self.device.visible_widgets();
        self.absorb(result, Vec::new())
    }

    fn dev_crash_site(&mut self) -> Option<UiSignature> {
        let result = self.device.crash_site();
        self.absorb(result, None)
    }

    fn dev_clock(&mut self) -> u64 {
        let result = self.device.clock();
        self.absorb(result, 0)
    }

    fn dev_invocations(&mut self) -> Vec<ApiInvocation> {
        let result = self.device.invocations();
        self.absorb(result, Vec::new())
    }

    fn dev_faults_injected(&mut self) -> usize {
        let result = self.device.faults_injected();
        self.absorb(result, 0)
    }

    fn dev_fault_log(&mut self) -> FaultLog {
        let result = self.device.fault_log();
        self.absorb(result, FaultLog::default())
    }

    fn budget_left(&mut self) -> bool {
        if self.infra.is_some() {
            return false;
        }
        if let Some(deadline) = self.config.app_deadline {
            if self.started.elapsed() >= deadline {
                self.deadline_hit.set(true);
                return false;
            }
        }
        self.events < self.config.event_budget && !self.target_reached()
    }

    /// Whether the configured target API has been observed — the early
    /// exit of the "detect arbitrary API calls" mode.
    fn target_reached(&mut self) -> bool {
        let config = self.config;
        match &config.target_api {
            None => false,
            Some((group, name)) => {
                let result = self.device.invocations();
                self.absorb(result, Vec::new()).iter().any(|i| &i.group == group && &i.name == name)
            }
        }
    }

    fn explore(&mut self) {
        self.queue.push(QueueItem::new("entry", vec![Op::Launch]));
        loop {
            // Drain the transition queue (first loop phase).
            while let Some(item) = self.queue.pop() {
                if !self.budget_left() || self.test_cases >= self.config.max_test_cases {
                    return;
                }
                if let Some(node) = &item.skip_if_visited {
                    if self.is_node_visited(node) {
                        continue;
                    }
                }
                self.test_cases += 1;
                let _case = self.tracer.span(fd_trace::Phase::Case, &item.label);
                self.scripts.push(TestScript::new(item.label.clone(), item.ops.clone()));
                let mut trace = Vec::new();
                for op in &item.ops {
                    if self.exec(op.clone(), &mut trace).is_none() {
                        break;
                    }
                }
                if let Some(sig) = self.dev_signature() {
                    self.sweep(sig);
                }
            }

            // Second loop phase: forcibly start whatever is left (§VI-C).
            if !self.config.force_start_phase || !self.budget_left() {
                return;
            }
            let leftovers: Vec<ClassName> = self
                .info
                .activities
                .iter()
                .filter(|a| {
                    !self.visited_activities.contains(a.as_str())
                        && !self.force_tried.contains(a.as_str())
                })
                .cloned()
                .collect();
            if leftovers.is_empty() {
                return;
            }
            for activity in leftovers {
                self.force_tried.insert(activity.clone());
                self.queue.push(QueueItem::targeting(
                    format!("force-start {activity}"),
                    vec![Op::ForceStart(activity.clone())],
                    NodeId::Activity(activity),
                ));
            }
        }
    }

    fn is_node_visited(&self, node: &NodeId) -> bool {
        match node {
            NodeId::Activity(a) => self.visited_activities.contains(a.as_str()),
            NodeId::Fragment(f) => self.visited_fragments.contains(f.as_str()),
        }
    }

    /// Executes one operation, recording events, transitions, and newly
    /// discovered states. Returns `None` when the event budget is gone
    /// (or an infrastructure failure latched it). Device-level rejections
    /// are classified and counted ([`DeviceErrorStats`]); transient ones
    /// (injected ANRs, flaky `am start`) are retried up to
    /// [`FragDroidConfig::retry_limit`] times with exponential backoff in
    /// simulated device time — every attempt costs one budget event.
    fn exec(&mut self, op: Op, ops_so_far: &mut Vec<Op>) -> Option<StepOutcome> {
        let mut attempt = 0usize;
        let outcome = loop {
            if !self.budget_left() {
                return None;
            }
            self.events += 1;
            if self.tracer.is_enabled() {
                let clock = self.dev_clock();
                self.tracer.set_sim_clock(clock);
            }
            self.tracer.event(|| fd_trace::TraceEvent::EventDispatched { op: op_name(&op).into() });
            self.tracer.count("events_dispatched", 1);
            let result = match &op {
                Op::Launch => self.device.launch(),
                Op::ForceStart(c) => self.device.am_start(c.as_str()),
                Op::Click(id) => self.device.click(id),
                Op::EnterText { id, text } => {
                    self.device.enter_text(id, text).map(|()| EventOutcome::NoChange)
                }
                Op::DismissOverlay => self.device.dismiss_overlay(),
                Op::Back => self.device.back(),
                Op::SwipeOpenDrawer => self.device.swipe_open_drawer(),
                Op::ReflectSwitch(f) => self.device.reflect_switch_fragment(f.as_str()),
            };
            self.trace_new_faults();
            match result {
                Ok(outcome) => break outcome,
                Err(err) => {
                    let class = err.class();
                    self.count_error(class);
                    if class == ErrorClass::Infrastructure {
                        self.latch_infra(&err);
                        return None;
                    }
                    if class == ErrorClass::Transient && attempt < self.config.retry_limit {
                        attempt += 1;
                        self.retries += 1;
                        let attempt_now = attempt as u64;
                        self.tracer.event(|| fd_trace::TraceEvent::Retry { attempt: attempt_now });
                        self.tracer.count("retries", 1);
                        let advanced = self.device.advance_clock(BACKOFF_BASE_TICKS << attempt);
                        self.absorb(advanced, ());
                        continue;
                    }
                    return Some(StepOutcome::Errored(class));
                }
            }
        };
        ops_so_far.push(op.clone());
        match &outcome {
            EventOutcome::UiChanged { from, to } => {
                self.record_transition(&op, from, to);
            }
            EventOutcome::Crashed { .. } => {
                self.crashes += 1;
            }
            _ => {}
        }
        self.observe(ops_so_far);
        if let EventOutcome::Crashed { reason } = &outcome {
            self.triage_crash(reason.clone());
        }
        Some(StepOutcome::Outcome(outcome))
    }

    /// Mirrors fault-log records the device appended since the last call
    /// into the trace, one [`fd_trace::TraceEvent::FaultInjected`] each.
    /// The log is monotonic (surviving [`DeviceApi::reset`]), so an index
    /// cursor is enough — and [`DeviceApi::fault_records_since`] ships
    /// only the tail, not the whole log, across the wire. Skipped
    /// entirely when nothing could have been injected or nobody is
    /// listening.
    fn trace_new_faults(&mut self) {
        if !self.tracer.is_enabled() || !self.config.faults_armed() {
            return;
        }
        let result = self.device.fault_records_since(self.faults_seen);
        let records = self.absorb(result, Vec::new());
        for record in &records {
            let kind = record.kind.clone();
            self.tracer.event(|| fd_trace::TraceEvent::FaultInjected { kind: kind.to_string() });
            self.tracer.count("faults_injected", 1);
        }
        self.faults_seen += records.len();
    }

    fn count_error(&mut self, class: ErrorClass) {
        match class {
            ErrorClass::Transient => self.device_errors.transient += 1,
            ErrorClass::WidgetGone => self.device_errors.widget_gone += 1,
            ErrorClass::Fatal => self.device_errors.fatal += 1,
            ErrorClass::Infrastructure => self.device_errors.infrastructure += 1,
        }
    }

    /// Crash triage: deduplicate by (activity, fragment stack, reason)
    /// signature, then — with the supervisor armed — relaunch the app and
    /// replay the shortest known path back to the crash site so the
    /// exploration resumes instead of abandoning the test case.
    fn triage_crash(&mut self, reason: String) {
        let site = self.dev_crash_site();
        if self.tracer.is_enabled() {
            let clock = self.dev_clock();
            self.tracer.set_sim_clock(clock);
        }
        self.tracer.event(|| fd_trace::TraceEvent::Crash {
            activity: site.as_ref().map(|s| s.activity.as_str().to_string()).unwrap_or_default(),
            reason: reason.clone(),
        });
        self.tracer.count("crashes", 1);
        let signature = CrashSignature {
            activity: site
                .as_ref()
                .map(|s| s.activity.clone())
                .unwrap_or_else(|| ClassName::new("")),
            fragments: site
                .as_ref()
                .map(|s| s.fragments.values().cloned().collect())
                .unwrap_or_default(),
            reason,
        };
        match self.crash_reports.iter_mut().find(|c| c.signature == signature) {
            Some(existing) => existing.occurrences += 1,
            None => self.crash_reports.push(CrashReport {
                signature: signature.clone(),
                occurrences: 1,
                recovered: false,
            }),
        }
        if !self.config.faults_armed() || self.in_recovery {
            return;
        }
        self.in_recovery = true;
        let recovery_span = self.tracer.span(fd_trace::Phase::Recovery, "crash-recovery");
        let recovered = self.recover(site);
        recovery_span.end();
        self.tracer.event(|| fd_trace::TraceEvent::Recovery { recovered });
        self.in_recovery = false;
        if recovered {
            self.recovered_crashes += 1;
            if let Some(report) = self.crash_reports.iter_mut().find(|c| c.signature == signature) {
                report.recovered = true;
            }
        }
    }

    /// Relaunches after a crash and replays the shortest known operation
    /// list reaching the crash site (falling back to a bare launch when
    /// the site was never registered). Returns whether the app is up
    /// again. Replayed ops run through [`Explorer::exec`], so they count
    /// against the budget and keep feeding the AFTM.
    fn recover(&mut self, site: Option<UiSignature>) -> bool {
        let reset = self.device.reset();
        self.absorb(reset, ());
        let plan =
            site.and_then(|sig| self.paths.get(&sig).cloned()).unwrap_or_else(|| vec![Op::Launch]);
        let mut scratch = Vec::new();
        for op in plan {
            match self.exec(op, &mut scratch) {
                None => return false,
                Some(StepOutcome::Outcome(EventOutcome::Crashed { .. })) => return false,
                Some(_) => {}
            }
        }
        self.dev_signature().is_some()
    }

    /// Marks the current interface's elements visited, registers its reach
    /// path, enqueues a sweep for newly discovered states, and generates
    /// Case-1 reflection items for a newly visited activity's dependent
    /// fragments.
    fn observe(&mut self, ops_so_far: &[Op]) {
        let Some(screen) = self.dev_observe() else { return };
        let sig = screen.signature;
        let activity = screen.activity;
        let manager_frags = screen.manager_fragments;

        let activity_is_new = self.visited_activities.insert(activity.clone());
        if activity_is_new {
            self.tracer
                .event(|| fd_trace::TraceEvent::NewActivity { name: activity.as_str().into() });
        }
        let node = NodeId::Activity(activity.clone());
        self.aftm.add_node(node.clone());
        self.aftm.mark_visited(&node);
        let mut fragment_is_new = false;
        for f in &manager_frags {
            let this_is_new = self.visited_fragments.insert(f.clone());
            fragment_is_new |= this_is_new;
            if this_is_new {
                self.tracer.event(|| fd_trace::TraceEvent::NewFragment { name: f.as_str().into() });
            }
            let fnode = NodeId::Fragment(f.clone());
            self.aftm.add_node(fnode.clone());
            self.aftm.mark_visited(&fnode);
        }
        if activity_is_new || fragment_is_new {
            self.timeline.push((
                self.events,
                self.visited_activities.len(),
                self.visited_fragments.len(),
            ));
        }

        if !self.paths.contains_key(&sig) {
            self.paths.insert(sig.clone(), ops_so_far.to_vec());
            self.queue.push(QueueItem::new(format!("sweep {sig}"), ops_so_far.to_vec()));
        }

        // Case 1: a (newly reached) activity that obtains a FragmentManager
        // gets one reflection item per dependent, unvisited fragment.
        if activity_is_new && self.config.use_reflection {
            let deps = self.info.af_dependency.get(&activity).cloned().unwrap_or_default();
            let base = self.paths.get(&sig).cloned().unwrap_or_else(|| ops_so_far.to_vec());
            for fragment in deps {
                if self.visited_fragments.contains(fragment.as_str()) {
                    continue;
                }
                if !self.reflection_pushed.insert((activity.clone(), fragment.clone())) {
                    continue;
                }
                let mut ops = base.clone();
                ops.push(Op::ReflectSwitch(fragment.clone()));
                self.queue.push(QueueItem::targeting(
                    format!("reflect {fragment} in {activity}"),
                    ops,
                    NodeId::Fragment(fragment),
                ));
            }
        }
    }

    /// Translates an observed UI change into raw AFTM transitions, with
    /// the clicked widget's owner (resource dependency) deciding whether
    /// the edge starts at the activity or at a fragment.
    fn record_transition(&mut self, op: &Op, from: &UiSignature, to: &UiSignature) {
        if from.activity != to.activity {
            self.tracer.event(|| fd_trace::TraceEvent::TransitionDiscovered {
                from: from.activity.as_str().into(),
                to: to.activity.as_str().into(),
            });
        }
        let owner_fragment = match op {
            Op::Click(id) => match self.info.resource_dep.owner_of(id) {
                Some(UiOwner::Fragment(f)) => Some(f.clone()),
                _ => None,
            },
            _ => None,
        };

        if from.activity != to.activity {
            let raw = match owner_fragment {
                Some(f) => RawTransition::FragmentToActivity {
                    host: from.activity.clone(),
                    fragment: f,
                    to: to.activity.clone(),
                },
                None => RawTransition::ActivityToActivity {
                    from: from.activity.clone(),
                    to: to.activity.clone(),
                },
            };
            self.aftm.apply(raw);
            return;
        }

        // Same activity: fragment transformations. Only manager-confirmed
        // panes count (the current screen is `to`).
        let confirmed: BTreeSet<ClassName> = self
            .dev_observe()
            .map(|s| s.manager_fragments.into_iter().collect())
            .unwrap_or_default();
        for (container, fragment) in &to.fragments {
            let was_there = from.fragments.get(container) == Some(fragment);
            if was_there || !confirmed.contains(fragment) {
                continue;
            }
            self.tracer.event(|| fd_trace::TraceEvent::TransitionDiscovered {
                from: to.activity.as_str().into(),
                to: fragment.as_str().into(),
            });
            let raw = match &owner_fragment {
                Some(f0) if f0 != fragment => RawTransition::FragmentToFragment {
                    host: to.activity.clone(),
                    from: f0.clone(),
                    to: fragment.clone(),
                },
                _ => RawTransition::ActivityToOwnFragment {
                    activity: to.activity.clone(),
                    fragment: fragment.clone(),
                },
            };
            self.aftm.apply(raw);
        }
    }

    /// Case 3: the clicking sweep over one settled interface.
    fn sweep(&mut self, sig: UiSignature) {
        if self.swept.contains(&sig) {
            return;
        }
        self.swept.insert(sig.clone());
        let base_ops = match self.paths.get(&sig) {
            Some(ops) => ops.clone(),
            None => return,
        };

        // "FragDroid will complete the input fields and get all
        // coordinates of the controls that can be clicked."
        let fill_ops = self.fill_inputs();
        let widgets: Vec<String> =
            self.dev_widgets().into_iter().filter(|w| w.clickable).filter_map(|w| w.id).collect();

        for widget in widgets {
            if !self.budget_left() {
                return;
            }
            if !self.tried.insert((sig.clone(), widget.clone())) {
                continue;
            }
            if !self.ensure_at(&sig, &base_ops, &fill_ops) {
                return;
            }
            let mut trace = base_ops.clone();
            trace.extend(fill_ops.iter().cloned());
            match self.exec(Op::Click(widget.clone()), &mut trace) {
                None => return,
                Some(StepOutcome::Outcome(EventOutcome::OverlayShown)) => {
                    // "it will be removed by clicking on blank space."
                    let _ = self.exec(Op::DismissOverlay, &mut Vec::new());
                    // §VIII extension: a submit that only produced an error
                    // dialog may just need a better input — retry with
                    // strings harvested from the app's own UI.
                    if self.config.harvest_inputs {
                        self.try_harvested_inputs(&sig, &base_ops, &widget);
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Retries clicking `widget` once per harvested candidate string,
    /// filling every visible input field with the candidate first. Stops
    /// at the first UI change (the gate opened) or after the candidates
    /// are exhausted.
    fn try_harvested_inputs(&mut self, sig: &UiSignature, base_ops: &[Op], widget: &str) {
        const MAX_CANDIDATES: usize = 8;
        let candidates: Vec<String> =
            self.info.input_dep.harvested.iter().take(MAX_CANDIDATES).cloned().collect();
        for candidate in candidates {
            if !self.budget_left() {
                return;
            }
            if !self.ensure_at(sig, base_ops, &[]) {
                return;
            }
            let fields: Vec<String> = self
                .dev_widgets()
                .into_iter()
                .filter(|w| w.kind == fd_apk::WidgetKind::EditText)
                .filter_map(|w| w.id)
                .collect();
            if fields.is_empty() {
                return;
            }
            let mut trace = base_ops.to_vec();
            for id in fields {
                let op = Op::EnterText { id, text: candidate.clone() };
                if self.exec(op, &mut trace).is_none() {
                    return;
                }
            }
            match self.exec(Op::Click(widget.to_string()), &mut trace) {
                None => return,
                Some(StepOutcome::Outcome(EventOutcome::UiChanged { .. })) => return, // gate opened
                Some(StepOutcome::Outcome(EventOutcome::OverlayShown)) => {
                    let _ = self.exec(Op::DismissOverlay, &mut Vec::new());
                }
                Some(_) => {}
            }
        }
    }

    /// Fills every visible input widget (§V-C), returning the ops used so
    /// discovered paths can replay them.
    fn fill_inputs(&mut self) -> Vec<Op> {
        let inputs: Vec<String> = self
            .dev_widgets()
            .into_iter()
            .filter(|w| w.kind == fd_apk::WidgetKind::EditText)
            .filter_map(|w| w.id)
            .collect();
        let mut ops = Vec::new();
        for id in inputs {
            let value = if self.config.use_input_deps {
                self.info.input_dep.value_for(&id).to_string()
            } else {
                "abc".to_string()
            };
            let op = Op::EnterText { id, text: value };
            if self.exec(op.clone(), &mut Vec::new()).is_some() {
                ops.push(op);
            }
        }
        ops
    }

    /// Re-reaches `sig` by replaying its path (after a crash, a finish, or
    /// a transition away). Returns false if the state cannot be restored.
    fn ensure_at(&mut self, sig: &UiSignature, base_ops: &[Op], fill_ops: &[Op]) -> bool {
        if self.dev_signature().as_ref() == Some(sig) {
            return true;
        }
        let mut scratch = Vec::new();
        for op in base_ops {
            if self.exec(op.clone(), &mut scratch).is_none() {
                return false;
            }
        }
        for op in fill_ops {
            if self.exec(op.clone(), &mut scratch).is_none() {
                return false;
            }
        }
        self.dev_signature().as_ref() == Some(sig)
    }
}
