//! Run results: coverage accounting and sensitive-API summaries.

use fd_aftm::Aftm;
use fd_droidsim::{ApiInvocation, Caller, FaultLog, TestScript};
use fd_smali::ClassName;
use fd_static::StaticInfo;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The deduplication key of one distinct Force-Close: where the app was
/// (activity + fragment stack) and why it died.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CrashSignature {
    /// The foreground activity at crash time (empty if the app died
    /// before any screen existed).
    pub activity: ClassName,
    /// The fragments attached at crash time, in container order.
    pub fragments: Vec<ClassName>,
    /// The exception message / synthetic kill reason.
    pub reason: String,
}

/// One distinct crash observed during a run, with triage results.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashReport {
    /// The dedup key.
    pub signature: CrashSignature,
    /// How many times this signature fired.
    pub occurrences: usize,
    /// Whether the supervisor ever recovered from it (relaunch + replay
    /// of the shortest known path back to the crash site).
    pub recovered: bool,
}

/// Per-class counts of device errors the driver observed (and no longer
/// silently conflates with "the UI did not change").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceErrorStats {
    /// Transient failures (ANR, flaky `am start`) — retried.
    pub transient: usize,
    /// Events that targeted a widget no longer on screen.
    pub widget_gone: usize,
    /// Everything else (app crashed/not running, unsatisfiable request).
    pub fatal: usize,
    /// Infrastructure failures — the device agent died, timed out, or
    /// broke protocol. These say nothing about the app under test and are
    /// never counted toward its crashes.
    #[serde(default)]
    pub infrastructure: usize,
}

impl DeviceErrorStats {
    /// Total device errors across all classes.
    pub fn total(&self) -> usize {
        self.transient + self.widget_gone + self.fatal + self.infrastructure
    }
}

/// A visited/sum pair with a rate — one cell group of Table I.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coverage {
    /// Elements successfully tested.
    pub visited: usize,
    /// Elements found by static extraction.
    pub sum: usize,
}

impl Coverage {
    /// The coverage rate in percent (100 when the sum is zero, matching
    /// the table's treatment of empty categories).
    pub fn rate(&self) -> f64 {
        if self.sum == 0 {
            100.0
        } else {
            self.visited as f64 / self.sum as f64 * 100.0
        }
    }
}

/// The complete result of one FragDroid run on one app.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// The static phase's output.
    pub static_info: StaticInfo,
    /// The final, evolved AFTM.
    pub aftm: Aftm,
    /// Activities whose interface was actually reached.
    pub visited_activities: BTreeSet<ClassName>,
    /// Fragments confirmed through the FragmentManager.
    pub visited_fragments: BTreeSet<ClassName>,
    /// Every sensitive-API invocation the monitor recorded, with caller
    /// attribution.
    pub api_invocations: Vec<ApiInvocation>,
    /// The executed test cases, in order (compiled UI-queue items).
    pub scripts: Vec<TestScript>,
    /// Coverage timeline: `(events injected, activities visited, fragments
    /// visited)` sampled whenever a new element is reached.
    pub timeline: Vec<(usize, usize, usize)>,
    /// Total UI events injected.
    pub events_injected: usize,
    /// Test cases (queue items) executed.
    pub test_cases_run: usize,
    /// Test cases ever generated (enqueued), including skipped ones.
    #[serde(default)]
    pub test_cases_generated: usize,
    /// Force-closes observed.
    pub crashes: usize,
    /// Whether the run stopped early because the configured
    /// [`crate::FragDroidConfig::app_deadline`] passed; the report holds
    /// the partial results accumulated up to that point.
    #[serde(default)]
    pub deadline_exceeded: bool,
    /// Distinct crashes, deduplicated by (activity, fragment stack,
    /// reason) signature, with occurrence counts and recovery outcomes.
    #[serde(default)]
    pub crash_reports: Vec<CrashReport>,
    /// Crashes the supervisor recovered from: the app was relaunched and
    /// the shortest known path back to the crash site replayed, so the
    /// test case resumed instead of being abandoned.
    #[serde(default)]
    pub recovered_crashes: usize,
    /// Event retries after transient device errors (each one also cost
    /// an event from the budget).
    #[serde(default)]
    pub retries: usize,
    /// Faults the device's plan injected during the run.
    #[serde(default)]
    pub faults_injected: usize,
    /// The device's replayable fault log (empty without a fault plan).
    #[serde(default)]
    pub fault_log: FaultLog,
    /// Device errors by class.
    #[serde(default)]
    pub device_errors: DeviceErrorStats,
    /// Set when the run was cut short by a device-infrastructure failure
    /// (agent death, protocol timeout): the rendered [`fd_droidsim::DeviceError`].
    /// An infra failure is an incident of the harness, not a finding
    /// about the app — it never counts toward [`RunReport::crashes`].
    #[serde(default)]
    pub infra_failure: Option<String>,
}

impl RunReport {
    /// Activity coverage (Table I, first group).
    pub fn activity_coverage(&self) -> Coverage {
        Coverage { visited: self.visited_activities.len(), sum: self.static_info.activities.len() }
    }

    /// Fragment coverage (Table I, second group).
    pub fn fragment_coverage(&self) -> Coverage {
        Coverage { visited: self.visited_fragments.len(), sum: self.static_info.fragments.len() }
    }

    /// Fragments-in-visited-activities coverage (Table I, third group):
    /// the sum counts effective fragments at least one of whose dependent
    /// activities was visited.
    pub fn fragments_in_visited_coverage(&self) -> Coverage {
        let in_visited: BTreeSet<&ClassName> = self
            .static_info
            .af_dependency
            .iter()
            .filter(|(activity, _)| self.visited_activities.contains(activity.as_str()))
            .flat_map(|(_, frags)| frags)
            .collect();
        Coverage {
            visited: self.visited_fragments.iter().filter(|f| in_visited.contains(f)).count(),
            sum: in_visited.len(),
        }
    }

    /// What the dynamic phase added beyond the static model — observed
    /// transitions and forcibly reached nodes.
    pub fn evolution_delta(&self) -> fd_aftm::AftmDelta {
        fd_aftm::diff(&self.static_info.aftm, &self.aftm)
    }

    /// Materializes every executed test case as one generated Robotium
    /// Java class (§VI-B's artifact).
    pub fn to_robotium_java(&self) -> String {
        let package = self
            .static_info
            .aftm
            .entry()
            .map(|c| c.package().to_string())
            .unwrap_or_else(|| "generated".to_string());
        crate::codegen::to_java_class(&package, &self.scripts)
    }

    /// Distinct sensitive APIs detected.
    pub fn distinct_apis(&self) -> BTreeSet<(&str, &str)> {
        self.api_invocations.iter().map(|i| (i.group.as_str(), i.name.as_str())).collect()
    }

    /// `(total, fragment_associated, fragment_only)` invocation-relation
    /// counts — the aggregates behind Table II's headline numbers. An API
    /// is *fragment-associated* in an app if any of its recorded callers
    /// is a fragment, and *fragment-only* if all of them are.
    pub fn api_relation_counts(&self) -> (usize, usize, usize) {
        let total = self.api_invocations.len();
        let fragment_associated =
            self.api_invocations.iter().filter(|i| i.caller.is_fragment()).count();
        // Fragment-only: APIs never called from an activity in this app.
        let activity_called: BTreeSet<(&str, &str)> = self
            .api_invocations
            .iter()
            .filter(|i| matches!(i.caller, Caller::Activity(_)))
            .map(|i| (i.group.as_str(), i.name.as_str()))
            .collect();
        let fragment_only = self
            .api_invocations
            .iter()
            .filter(|i| {
                i.caller.is_fragment()
                    && !activity_called.contains(&(i.group.as_str(), i.name.as_str()))
            })
            .count();
        (total, fragment_associated, fragment_only)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_rate_handles_zero_sum() {
        assert_eq!(Coverage { visited: 0, sum: 0 }.rate(), 100.0);
        let half = Coverage { visited: 1, sum: 2 };
        assert!((half.rate() - 50.0).abs() < f64::EPSILON);
    }
}
