//! The UI transition queue (§VI-B).
//!
//! Each dynamically generated item is "the information on the transition
//! from one interface to another": a reach method plus the concrete
//! operation list from the entry to the target. The queue is maintained
//! breadth-first: new discoveries are pushed at the back.

use fd_aftm::NodeId;
use fd_droidsim::Op;
use std::collections::VecDeque;

/// One UI-queue item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueueItem {
    /// Human-readable name of the generated test case.
    pub label: String,
    /// The operation list from app start to the target interface.
    pub ops: Vec<Op>,
    /// If set, the item only exists to visit this node; it is skipped when
    /// the node has already been visited by the time it is popped (the
    /// paper's Case 2: an explicit clicking path "will take the place of
    /// the implicit reflection mechanism").
    pub skip_if_visited: Option<NodeId>,
}

impl QueueItem {
    /// An unconditional item.
    pub fn new(label: impl Into<String>, ops: Vec<Op>) -> Self {
        QueueItem { label: label.into(), ops, skip_if_visited: None }
    }

    /// An item that targets a specific node.
    pub fn targeting(label: impl Into<String>, ops: Vec<Op>, node: NodeId) -> Self {
        QueueItem { label: label.into(), ops, skip_if_visited: Some(node) }
    }
}

/// The FIFO transition queue with bookkeeping for how many items ever
/// entered it (= number of generated test cases).
#[derive(Clone, Debug, Default)]
pub struct UiQueue {
    items: VecDeque<QueueItem>,
    generated: usize,
}

impl UiQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an item at the back (breadth-first order).
    pub fn push(&mut self, item: QueueItem) {
        self.generated += 1;
        self.items.push_back(item);
    }

    /// Dequeues the front item.
    pub fn pop(&mut self) -> Option<QueueItem> {
        self.items.pop_front()
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is drained — half of the termination condition.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total items ever enqueued.
    pub fn generated(&self) -> usize {
        self.generated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_generation_count() {
        let mut q = UiQueue::new();
        q.push(QueueItem::new("a", vec![Op::Launch]));
        q.push(QueueItem::new("b", vec![Op::Launch, Op::Back]));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().label, "a");
        assert_eq!(q.pop().unwrap().label, "b");
        assert!(q.is_empty());
        assert_eq!(q.generated(), 2, "generation count survives pops");
    }

    #[test]
    fn targeting_items_carry_their_node() {
        let node = NodeId::Fragment("a.F".into());
        let item = QueueItem::targeting("reflect", vec![Op::Launch], node.clone());
        assert_eq!(item.skip_if_visited, Some(node));
    }
}
