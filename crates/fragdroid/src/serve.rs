//! `fragdroid serve` — a long-running job queue over the device wire
//! plumbing: submit a packed container, get a job id back immediately,
//! poll for the finished report.
//!
//! The transport is the same length-prefixed frame protocol the
//! subprocess device agent speaks ([`fd_droidsim::proto`]): one
//! [`ServeRequest`] per frame in, one [`ServeResponse`] echoing the
//! request id per frame out. The serve loop owns the connection; a pool
//! of worker threads drains the job queue, leasing devices from a
//! [`crate::pool::DevicePool`] lane per worker and tracing each job on
//! its own lane (track = job id). Reports are stored exactly as
//! `fd-cli run --json` prints them — `serde_json::to_string_pretty` of
//! the [`crate::report::RunReport`] — so a served report is
//! byte-identical to a CLI run of the same container.
//!
//! Failure behavior mirrors the device agent: a malformed frame ends
//! the session without a reply (resyncing a corrupt length-prefixed
//! stream is guesswork), and an orderly [`ServeRequest::Shutdown`] gets
//! a [`ServeResponse::Bye`] before the loop exits. Jobs already queued
//! when the session ends are abandoned, not run.

use crate::config::FragDroidConfig;
use crate::pool::DevicePool;
use crate::suite::run_container_slot;
use fd_droidsim::proto::{decode_payload, encode_frame, from_hex, Envelope, FrameBuffer};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::sync::{Condvar, Mutex};

/// Everything a client can ask the serve loop.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ServeRequest {
    /// Enqueue one app. The reply is an immediate
    /// [`ServeResponse::Accepted`]; rejection (bad hex, refused
    /// container) surfaces later through [`ServeRequest::Poll`].
    Submit {
        /// The packed container, hex-encoded (binary-safe in JSON).
        container_hex: String,
        /// The app's known inputs, field id → value.
        inputs: BTreeMap<String, String>,
    },
    /// Ask for a job's result.
    Poll {
        /// The id [`ServeResponse::Accepted`] returned.
        job: u64,
    },
    /// Ask for a queue snapshot.
    Status,
    /// Orderly shutdown; the server replies [`ServeResponse::Bye`] and
    /// ends the session.
    Shutdown,
}

/// Everything the serve loop can answer with.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ServeResponse {
    /// Reply to [`ServeRequest::Submit`]: the job is queued.
    Accepted {
        /// The id to poll with.
        job: u64,
    },
    /// Reply to [`ServeRequest::Poll`]: still queued or running.
    Pending {
        /// The polled job.
        job: u64,
    },
    /// Reply to [`ServeRequest::Poll`]: the run finished.
    Report {
        /// The polled job.
        job: u64,
        /// The report, pretty-printed exactly as `fd-cli run --json`
        /// prints it.
        json: String,
    },
    /// Reply to [`ServeRequest::Poll`]: the input was refused (bad hex,
    /// ingestion-frontier rejection, or an unserializable report).
    Rejected {
        /// The polled job.
        job: u64,
        /// The typed refusal, rendered.
        reason: String,
    },
    /// Reply to [`ServeRequest::Poll`] for an id never accepted.
    UnknownJob {
        /// The polled job.
        job: u64,
    },
    /// Reply to [`ServeRequest::Status`].
    Status {
        /// Jobs accepted but not yet picked up by a worker.
        queued: u64,
        /// Jobs a worker is currently running.
        running: u64,
        /// Jobs that finished with a report.
        completed: u64,
        /// Jobs that finished rejected.
        rejected: u64,
        /// Worker threads draining the queue.
        workers: u64,
    },
    /// Reply to [`ServeRequest::Shutdown`].
    Bye,
}

/// How a serve loop should run.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads (and device-pool lanes). Clamped to at least 1.
    pub workers: usize,
    /// The exploration configuration every job runs with.
    pub config: FragDroidConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { workers: 1, config: FragDroidConfig::default() }
    }
}

/// One queued job.
struct Job {
    id: u64,
    container: Vec<u8>,
    inputs: BTreeMap<String, String>,
}

/// Where a job is in its lifecycle.
enum JobState {
    Queued,
    Running,
    Done(Result<String, String>),
}

/// Shared queue + job table, guarded by one mutex; the condvar wakes
/// idle workers on submit and shutdown.
#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    jobs: BTreeMap<u64, JobState>,
    shutdown: bool,
}

/// Runs the serve loop until EOF, a protocol error, or an orderly
/// [`ServeRequest::Shutdown`], returning the session's trace (empty
/// when `trace_config` is off).
pub fn serve<R: Read, W: Write>(
    mut input: R,
    mut output: W,
    options: &ServeOptions,
    trace_config: &fd_trace::TraceConfig,
) -> std::io::Result<fd_trace::Trace> {
    let workers = options.workers.max(1);
    let pool = DevicePool::from_config(&options.config, workers);
    let clock = fd_trace::TraceClock::start();
    let tracer = fd_trace::Tracer::new(trace_config, clock, 0);
    let sync = (Mutex::new(State::default()), Condvar::new());
    let tracks: Mutex<Vec<fd_trace::TrackTrace>> = Mutex::new(Vec::new());

    let result = std::thread::scope(|scope| -> std::io::Result<()> {
        for lane in 0..workers {
            let sync = &sync;
            let tracks = &tracks;
            let pool = &pool;
            let config = &options.config;
            scope.spawn(move || worker_loop(sync, tracks, pool, config, trace_config, clock, lane));
        }

        let io_result = session_loop(&mut input, &mut output, &sync, &tracer, workers);

        let (state, cvar) = &sync;
        lock(state).shutdown = true;
        cvar.notify_all();
        io_result
    });

    let mut trace = fd_trace::Trace::new("fragdroid serve");
    trace.absorb(tracer.finish());
    for track in lock(&tracks).drain(..) {
        trace.absorb(track);
    }
    result.map(|()| trace)
}

/// Locks a mutex, shrugging off poisoning (a panicked worker must not
/// wedge the session).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Reads frames and dispatches requests until the session ends. A
/// corrupt frame ends the session quietly (no reply), matching the
/// device agent.
fn session_loop<R: Read, W: Write>(
    input: &mut R,
    output: &mut W,
    sync: &(Mutex<State>, Condvar),
    tracer: &fd_trace::Tracer,
    workers: usize,
) -> std::io::Result<()> {
    let (state, cvar) = sync;
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut next_job = 0u64;
    loop {
        loop {
            let payload = match frames.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(_) => return Ok(()),
            };
            let Ok(envelope) = decode_payload::<ServeRequest>(&payload) else {
                return Ok(());
            };
            let shutdown = matches!(envelope.body, ServeRequest::Shutdown);
            let reply = {
                let mut st = lock(state);
                match envelope.body {
                    ServeRequest::Submit { container_hex, inputs } => {
                        let job = next_job;
                        next_job += 1;
                        match from_hex(&container_hex) {
                            Ok(container) => {
                                st.queue.push_back(Job { id: job, container, inputs });
                                st.jobs.insert(job, JobState::Queued);
                                cvar.notify_one();
                            }
                            // A submission that is not even hex never
                            // reaches a worker; it still gets a job id
                            // so the refusal is pollable.
                            Err(e) => {
                                st.jobs.insert(
                                    job,
                                    JobState::Done(Err(format!("bad container hex: {e}"))),
                                );
                            }
                        }
                        tracer.event(|| fd_trace::TraceEvent::JobSubmitted { job });
                        ServeResponse::Accepted { job }
                    }
                    ServeRequest::Poll { job } => match st.jobs.get(&job) {
                        None => ServeResponse::UnknownJob { job },
                        Some(JobState::Queued) | Some(JobState::Running) => {
                            ServeResponse::Pending { job }
                        }
                        Some(JobState::Done(Ok(json))) => {
                            ServeResponse::Report { job, json: json.clone() }
                        }
                        Some(JobState::Done(Err(reason))) => {
                            ServeResponse::Rejected { job, reason: reason.clone() }
                        }
                    },
                    ServeRequest::Status => {
                        let mut counts = [0u64; 4];
                        for job_state in st.jobs.values() {
                            match job_state {
                                JobState::Queued => counts[0] += 1,
                                JobState::Running => counts[1] += 1,
                                JobState::Done(Ok(_)) => counts[2] += 1,
                                JobState::Done(Err(_)) => counts[3] += 1,
                            }
                        }
                        ServeResponse::Status {
                            queued: counts[0],
                            running: counts[1],
                            completed: counts[2],
                            rejected: counts[3],
                            workers: workers as u64,
                        }
                    }
                    ServeRequest::Shutdown => ServeResponse::Bye,
                }
            };
            output.write_all(&encode_frame(&Envelope { id: envelope.id, body: reply }))?;
            output.flush()?;
            if shutdown {
                return Ok(());
            }
        }
        match input.read(&mut chunk) {
            Ok(0) => return Ok(()), // client hung up
            Ok(n) => frames.push(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// One worker: pop a job, run it on this lane's pooled device, store
/// the finished report (or the typed refusal), repeat. Queued jobs are
/// drained even after shutdown is signaled, so an orderly shutdown
/// never abandons accepted work mid-queue — but the session that could
/// have polled them is gone, so callers wanting the results should
/// poll before shutting down.
fn worker_loop(
    sync: &(Mutex<State>, Condvar),
    tracks: &Mutex<Vec<fd_trace::TrackTrace>>,
    pool: &DevicePool,
    config: &FragDroidConfig,
    trace_config: &fd_trace::TraceConfig,
    clock: fd_trace::TraceClock,
    lane: usize,
) {
    let (state, cvar) = sync;
    loop {
        let job = {
            let mut st = lock(state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.jobs.insert(job.id, JobState::Running);
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = match cvar.wait(st) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        let tracer = fd_trace::Tracer::new(trace_config, clock, job.id);
        let bytes = bytes::Bytes::from(job.container);
        let result = run_container_slot(&bytes, &job.inputs, config, &tracer, pool, lane).and_then(
            |(report, _package)| {
                serde_json::to_string_pretty(&report)
                    .map_err(|e| format!("cannot serialize report: {e}"))
            },
        );
        tracer.event(|| fd_trace::TraceEvent::JobCompleted {
            job: job.id,
            rejected: result.is_err(),
        });
        lock(tracks).push(tracer.finish());
        lock(state).jobs.insert(job.id, JobState::Done(result));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::net::UnixStream;

    fn request(id: u64, body: ServeRequest) -> Vec<u8> {
        encode_frame(&Envelope { id, body })
    }

    /// Reads exactly one reply frame off the stream.
    fn read_reply(stream: &mut UnixStream) -> Envelope<ServeResponse> {
        let mut frames = FrameBuffer::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(payload) = frames.next_frame().expect("server frames are well-formed") {
                return decode_payload(&payload).expect("server replies decode");
            }
            let n = stream.read(&mut chunk).expect("read reply");
            assert_ne!(n, 0, "server hung up mid-conversation");
            frames.push(&chunk[..n]);
        }
    }

    fn quickstart_submission() -> ServeRequest {
        let generated = fd_appgen::templates::quickstart();
        ServeRequest::Submit {
            container_hex: fd_droidsim::proto::to_hex(&fd_apk::pack(&generated.app)),
            inputs: generated.known_inputs,
        }
    }

    /// Spawns a serve loop on a thread over a socketpair, returning the
    /// client end and the join handle.
    fn spawn_server(
        options: ServeOptions,
    ) -> (UnixStream, std::thread::JoinHandle<std::io::Result<fd_trace::Trace>>) {
        let (client, server) = UnixStream::pair().expect("socketpair");
        let handle = std::thread::spawn(move || {
            let reader = server.try_clone().expect("clone server end");
            serve(reader, server, &options, &fd_trace::TraceConfig::on())
        });
        (client, handle)
    }

    #[test]
    fn submit_poll_status_shutdown_round_trip() {
        let (mut client, handle) = spawn_server(ServeOptions::default());
        client.write_all(&request(1, quickstart_submission())).expect("submit");
        let accepted = read_reply(&mut client);
        assert_eq!(accepted.id, 1);
        let ServeResponse::Accepted { job } = accepted.body else {
            panic!("expected Accepted, got {:?}", accepted.body);
        };

        // Poll until the worker finishes; each poll echoes its own id.
        let mut poll_id = 2u64;
        let json = loop {
            client.write_all(&request(poll_id, ServeRequest::Poll { job })).expect("poll");
            let reply = read_reply(&mut client);
            assert_eq!(reply.id, poll_id);
            poll_id += 1;
            match reply.body {
                ServeResponse::Pending { .. } => {
                    std::thread::sleep(std::time::Duration::from_millis(5))
                }
                ServeResponse::Report { job: done, json } => {
                    assert_eq!(done, job);
                    break json;
                }
                other => panic!("expected Pending/Report, got {other:?}"),
            }
        };
        let report: crate::report::RunReport =
            serde_json::from_str(&json).expect("served report parses");
        assert_eq!(report.activity_coverage().visited, 3, "quickstart visits 3 activities");

        client.write_all(&request(poll_id, ServeRequest::Status)).expect("status");
        match read_reply(&mut client).body {
            ServeResponse::Status { completed, rejected, .. } => {
                assert_eq!((completed, rejected), (1, 0));
            }
            other => panic!("expected Status, got {other:?}"),
        }

        client.write_all(&request(99, ServeRequest::Shutdown)).expect("shutdown");
        assert_eq!(read_reply(&mut client).body, ServeResponse::Bye);
        let trace = handle.join().expect("no panic").expect("no io error");
        let summary = fd_trace::TraceSummary::compute(&trace);
        let submitted = trace
            .records
            .iter()
            .filter(|r| match r {
                fd_trace::TraceRecord::Event(e) => {
                    matches!(e.event, fd_trace::TraceEvent::JobSubmitted { .. })
                }
                _ => false,
            })
            .count();
        assert_eq!(submitted, 1, "one submission traced");
        assert!(summary.records > 0);
    }

    #[test]
    fn bad_hex_and_rejected_containers_are_pollable_refusals() {
        let (mut client, handle) = spawn_server(ServeOptions::default());
        client
            .write_all(&request(
                1,
                ServeRequest::Submit { container_hex: "zz".to_string(), inputs: BTreeMap::new() },
            ))
            .expect("submit bad hex");
        let ServeResponse::Accepted { job: bad_hex } = read_reply(&mut client).body else {
            panic!("bad hex is still accepted; the refusal is pollable");
        };
        client
            .write_all(&request(
                2,
                ServeRequest::Submit {
                    container_hex: fd_droidsim::proto::to_hex(b"not a container"),
                    inputs: BTreeMap::new(),
                },
            ))
            .expect("submit bad container");
        let ServeResponse::Accepted { job: bad_container } = read_reply(&mut client).body else {
            panic!("expected Accepted");
        };

        for job in [bad_hex, bad_container] {
            loop {
                client.write_all(&request(10 + job, ServeRequest::Poll { job })).expect("poll");
                match read_reply(&mut client).body {
                    ServeResponse::Pending { .. } => {
                        std::thread::sleep(std::time::Duration::from_millis(5))
                    }
                    ServeResponse::Rejected { reason, .. } => {
                        assert!(!reason.is_empty());
                        break;
                    }
                    other => panic!("expected Rejected, got {other:?}"),
                }
            }
        }

        client.write_all(&request(30, ServeRequest::Poll { job: 999 })).expect("poll unknown");
        assert_eq!(read_reply(&mut client).body, ServeResponse::UnknownJob { job: 999 });

        client.write_all(&request(31, ServeRequest::Shutdown)).expect("shutdown");
        assert_eq!(read_reply(&mut client).body, ServeResponse::Bye);
        handle.join().expect("no panic").expect("no io error");
    }

    #[test]
    fn corrupt_frames_end_the_session_quietly() {
        let mut output = Vec::new();
        let trace = serve(
            &b"not a frame at all"[..],
            &mut output,
            &ServeOptions::default(),
            &fd_trace::TraceConfig::off(),
        )
        .expect("no io error");
        assert!(output.is_empty(), "corrupt stream gets no reply");
        assert!(trace.records.is_empty());
    }

    #[test]
    fn many_jobs_drain_across_workers() {
        let (mut client, handle) =
            spawn_server(ServeOptions { workers: 3, ..ServeOptions::default() });
        let jobs: Vec<u64> = (0..6)
            .map(|i| {
                client.write_all(&request(i, quickstart_submission())).expect("submit");
                match read_reply(&mut client).body {
                    ServeResponse::Accepted { job } => job,
                    other => panic!("expected Accepted, got {other:?}"),
                }
            })
            .collect();
        assert_eq!(jobs, (0..6).collect::<Vec<u64>>(), "job ids are sequential");
        let mut reports = Vec::new();
        for job in jobs {
            loop {
                client.write_all(&request(100 + job, ServeRequest::Poll { job })).expect("poll");
                match read_reply(&mut client).body {
                    ServeResponse::Pending { .. } => {
                        std::thread::sleep(std::time::Duration::from_millis(5))
                    }
                    ServeResponse::Report { json, .. } => {
                        reports.push(json);
                        break;
                    }
                    other => panic!("expected Report, got {other:?}"),
                }
            }
        }
        assert!(
            reports.windows(2).all(|w| w[0] == w[1]),
            "identical submissions produce byte-identical reports"
        );
        client.write_all(&request(999, ServeRequest::Shutdown)).expect("shutdown");
        assert_eq!(read_reply(&mut client).body, ServeResponse::Bye);
        handle.join().expect("no panic").expect("no io error");
    }
}
