//! Exploration configuration, including the ablation switches the
//! benchmark suite toggles.

/// Configuration for a FragDroid run.
#[derive(Clone, Debug)]
pub struct FragDroidConfig {
    /// Total injected-event budget (clicks, text entries, launches …). The
    /// run stops when exhausted.
    pub event_budget: usize,
    /// Maximum queue items processed (test cases executed).
    pub max_test_cases: usize,
    /// Use the Java-reflection mechanism to force fragment switches
    /// (Cases 1/2). Disabling reproduces a traditional clicking-only tool
    /// at the fragment level.
    pub use_reflection: bool,
    /// Run the second loop phase that force-starts unvisited activities
    /// through empty intents (§VI-C).
    pub force_start_phase: bool,
    /// Fill input widgets from the input-dependency file. When disabled
    /// every field gets the random-string fallback (`"abc"`), like the
    /// naive tools §V-C criticizes.
    pub use_input_deps: bool,
    /// Stop exploring as soon as this sensitive API is observed — the
    /// "detecting arbitrary API calls" mode: the run's last executed
    /// script is then a witness that triggers the call.
    pub target_api: Option<(String, String)>,
    /// The §VIII extension: when a submit produces only an error dialog,
    /// retry it with candidate inputs harvested from the app's own UI
    /// strings. Off by default (the paper leaves it as future work).
    pub harvest_inputs: bool,
    /// Soft per-app wall-clock deadline. When set, the exploration loop
    /// stops at the next budget check after the deadline passes and the
    /// partial report is marked [`crate::report::RunReport::deadline_exceeded`].
    /// `None` (the default) means unlimited.
    pub app_deadline: Option<std::time::Duration>,
    /// Seed for the device's fault injector (only meaningful when
    /// [`FragDroidConfig::fault_rate`] is nonzero). The same seed + rate
    /// reproduces the same faults, bit for bit.
    pub fault_seed: u64,
    /// Per-event fault probability handed to the device's
    /// [`fd_droidsim::FaultPlan`]. `0.0` (the default) injects nothing
    /// and leaves the run byte-identical to an unfaulted one; a nonzero
    /// rate also arms the driver's recovery supervisor (bounded retries
    /// for transient errors, crash relaunch + path replay).
    pub fault_rate: f64,
    /// Maximum retries of one event after a transient device error
    /// (ANR, flaky `am start`). Each retry costs one event from the
    /// budget and an exponential backoff in simulated device time.
    pub retry_limit: usize,
    /// Which device backend runs the exploration: the in-process
    /// simulator (default), a subprocess-isolated device agent, or the
    /// command-stream-recording mock-adb backend.
    pub backend: fd_droidsim::DeviceBackend,
}

impl Default for FragDroidConfig {
    fn default() -> Self {
        FragDroidConfig {
            event_budget: 40_000,
            max_test_cases: 2_000,
            use_reflection: true,
            force_start_phase: true,
            use_input_deps: true,
            target_api: None,
            harvest_inputs: false,
            app_deadline: None,
            fault_seed: 0,
            fault_rate: 0.0,
            retry_limit: 3,
            backend: fd_droidsim::DeviceBackend::default(),
        }
    }
}

impl FragDroidConfig {
    /// An ablation with reflection disabled.
    pub fn without_reflection(mut self) -> Self {
        self.use_reflection = false;
        self
    }

    /// An ablation with the forced-start phase disabled.
    pub fn without_force_start(mut self) -> Self {
        self.force_start_phase = false;
        self
    }

    /// An ablation with the input-dependency file disabled.
    pub fn without_input_deps(mut self) -> Self {
        self.use_input_deps = false;
        self
    }

    /// Stops the run once `group/name` is observed (builder style).
    pub fn find_api(mut self, group: &str, name: &str) -> Self {
        self.target_api = Some((group.to_string(), name.to_string()));
        self
    }

    /// Enables the input-harvesting extension (builder style).
    pub fn with_input_harvesting(mut self) -> Self {
        self.harvest_inputs = true;
        self
    }

    /// Caps each app's run at `deadline` of wall-clock time (builder
    /// style). The run keeps whatever it found so far.
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.app_deadline = Some(deadline);
        self
    }

    /// Arms seeded fault injection at `rate` (and with it the recovery
    /// supervisor). A rate of `0.0` is a no-op.
    pub fn with_faults(mut self, seed: u64, rate: f64) -> Self {
        self.fault_seed = seed;
        self.fault_rate = rate;
        self
    }

    /// Selects the device backend (builder style).
    pub fn with_backend(mut self, backend: fd_droidsim::DeviceBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Whether the recovery supervisor is armed (faults can happen).
    pub fn faults_armed(&self) -> bool {
        self.fault_rate > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_builders_flip_exactly_one_flag() {
        let base = FragDroidConfig::default();
        let no_refl = base.clone().without_reflection();
        assert!(!no_refl.use_reflection && no_refl.force_start_phase && no_refl.use_input_deps);
        let no_force = base.clone().without_force_start();
        assert!(no_force.use_reflection && !no_force.force_start_phase);
        let no_inputs = base.without_input_deps();
        assert!(!no_inputs.use_input_deps && no_inputs.use_reflection);
    }
}
