//! The dispatch coordinator: drive a sharded corpus across N serve
//! endpoints with lease-based fault tolerance, and merge the results
//! back into one byte-identical run.
//!
//! This is [`crate::shard`] lifted across machines. The corpus is split
//! with [`shard_range`](crate::shard::shard_range); each shard is
//! *leased* to one endpoint and driven job-by-job over the
//! [`SubmitClient`] frame protocol. Worker death is the common case,
//! not the exception:
//!
//! * **Leases, not assignments.** A grant is time-bounded and carries a
//!   globally monotonic generation counter (the
//!   [`DevicePool`](crate::pool::DevicePool) pattern, one level up). A
//!   lease that expires — or whose endpoint fails a heartbeat probe —
//!   is revoked and its shard goes back to the front of the queue.
//!   Stale holders notice mid-shard (every job re-checks the lease) and
//!   abandon their work; if a stale holder finishes anyway, first-wins
//!   completion makes the duplicate harmless.
//! * **Quarantine with revival.** An endpoint that fails
//!   `quarantine_after` shard attempts in a row is benched for
//!   `quarantine_backoff` and must pass a clean-transport `Status`
//!   probe before it is leased work again.
//! * **Stragglers.** Once the queue drains, the last in-flight shards
//!   are re-dispatched to idle endpoints; whoever finishes first
//!   commits, the other attempt is counted as wasted.
//! * **Idempotency by construction.** Job ids are global corpus
//!   indexes, so the server's `(id, digest)` dedup makes re-execution
//!   safe; shard journals are written atomically (tmp + rename) with
//!   content derived only from deterministic outcomes, so re-writing
//!   one replaces it with identical bytes.
//! * **A crash-safe coordinator journal.** Every grant, revocation,
//!   quarantine, and shard completion is a checksummed line in the same
//!   codec as the checkpoint journal; `ShardDone` is appended only
//!   *after* the shard's own journal is durable. `dispatch --resume`
//!   replays the journal, re-validates every completed shard's file,
//!   and re-runs only what does not check out — so SIGKILL of the
//!   coordinator itself loses at most in-flight work.
//!
//! Completed shards merge through
//! [`merge_shards`](crate::shard::merge_shards), so the merged
//! [`SuiteRun::outcome_digest`](crate::suite::SuiteRun) is
//! byte-identical to an unsharded run of the same corpus and config.
//!
//! One operator responsibility remains: every serve endpoint must run
//! the *same* engine config as the coordinator passes to `dispatch` —
//! the `Status` probe carries no config digest, so a mismatched worker
//! is only caught by the report digest at merge time.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{Read as _, Write as _};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::checkpoint::{
    decode_line, encode_line_into, load_journal, write_complete_journal, Fingerprint, JournalError,
    JournalWriter, LineError,
};
use crate::config::FragDroidConfig;
use crate::report::RunReport;
use crate::serve::{
    AnyStream, ChaosConfig, JobOutcome, ListenAddr, ServeRequest, ServeResponse, SubmitClient,
};
use crate::shard::{merge_shards, shard_journal_path, MergedRun, ShardError, ShardSlice};
use crate::suite::{slot_metrics, AppMetrics, AppOutcome, CorpusSource, SuiteSource};
use fd_droidsim::proto::{decode_payload, encode_frame, to_hex, Envelope, FrameBuffer};

/// Format version of the coordinator journal.
pub const DISPATCH_JOURNAL_VERSION: u64 = 1;

/// Clean-transport budget for one heartbeat/revival probe.
const PROBE_TIMEOUT: Duration = Duration::from_secs(1);

// ---------------------------------------------------------------------------
// Options

/// Knobs for one dispatch run.
#[derive(Clone, Debug)]
pub struct DispatchOptions {
    /// The serve endpoints to drive (one worker thread each).
    pub endpoints: Vec<ListenAddr>,
    /// Shards to split the corpus into; `0` means one per endpoint.
    pub shards: usize,
    /// Coordinator journal path. `None` disables crash-safety (shard
    /// journals go to a scratch path and are removed after the merge).
    pub journal: Option<PathBuf>,
    /// Resume a previous coordinator journal instead of starting fresh.
    pub resume: bool,
    /// A lease older than this is revoked and its shard re-queued.
    pub lease_timeout: Duration,
    /// Coordinator tick: health probes, expiry sweeps, straggler checks.
    pub heartbeat_interval: Duration,
    /// Consecutive shard failures before an endpoint is quarantined.
    pub quarantine_after: u32,
    /// How long a quarantined endpoint sits out before a revival probe.
    pub quarantine_backoff: Duration,
    /// Per-job submit deadline (passed to [`SubmitClient`]).
    pub job_deadline: Duration,
    /// Per-job reconnect-attempt budget.
    pub job_attempts: u32,
    /// With no progress (grant, job, or shard completion) for this
    /// long, the run fails typed instead of hanging forever.
    pub stall_timeout: Duration,
    /// Wrap every job's connection in the seeded chaos proxy; each job
    /// and generation derives its own schedule.
    pub chaos: Option<ChaosConfig>,
    /// Seed for the clients' retry-backoff jitter.
    pub jitter_seed: u64,
}

impl DispatchOptions {
    /// Defaults for `endpoints`: one shard per endpoint, no journal,
    /// 120 s leases, 250 ms heartbeat, quarantine after 3 straight
    /// failures for 500 ms, 60 s / 8-attempt jobs, 300 s stall guard.
    pub fn new(endpoints: Vec<ListenAddr>) -> DispatchOptions {
        DispatchOptions {
            endpoints,
            shards: 0,
            journal: None,
            resume: false,
            lease_timeout: Duration::from_secs(120),
            heartbeat_interval: Duration::from_millis(250),
            quarantine_after: 3,
            quarantine_backoff: Duration::from_millis(500),
            job_deadline: Duration::from_secs(60),
            job_attempts: 8,
            stall_timeout: Duration::from_secs(300),
            chaos: None,
            jitter_seed: 0xD15_9A7C,
        }
    }
}

// ---------------------------------------------------------------------------
// Errors

/// A typed dispatch failure. `fd-cli` maps these to exit code 6.
#[derive(Clone, Debug, PartialEq)]
pub enum DispatchError {
    /// No endpoints were given.
    NoEndpoints,
    /// `--resume` without a journal path: there is nothing to resume.
    ResumeWithoutJournal,
    /// The coordinator journal failed (create, append, parse, resume).
    Journal(JournalError),
    /// The split or the merge failed.
    Shard(ShardError),
    /// The corpus source could not be streamed to fingerprint the run.
    Source {
        /// The streaming failure, rendered.
        detail: String,
    },
    /// A resumed journal was written for a different shard count.
    ShardCountMismatch {
        /// Shards recorded in the journal.
        journal: usize,
        /// Shards this invocation asked for.
        requested: usize,
    },
    /// No grant, job, or completion for `stall_timeout`: every endpoint
    /// is dead or quarantined and nothing can make progress.
    Stalled {
        /// Shards completed before the stall.
        completed: usize,
        /// Total shards in the run.
        shards: usize,
        /// What the coordinator was waiting on, rendered.
        detail: String,
    },
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::NoEndpoints => {
                write!(f, "dispatch needs at least one serve endpoint (--connect)")
            }
            DispatchError::ResumeWithoutJournal => {
                write!(f, "--resume needs a coordinator journal path (--checkpoint)")
            }
            DispatchError::Journal(error) => write!(f, "coordinator journal: {error}"),
            DispatchError::Shard(error) => write!(f, "{error}"),
            DispatchError::Source { detail } => write!(f, "corpus source failed: {detail}"),
            DispatchError::ShardCountMismatch { journal, requested } => write!(
                f,
                "coordinator journal records {journal} shards, this invocation asked for \
                 {requested}; shard counts must match to resume"
            ),
            DispatchError::Stalled { completed, shards, detail } => {
                write!(f, "dispatch stalled at {completed}/{shards} shards: {detail}")
            }
        }
    }
}

impl std::error::Error for DispatchError {}

impl From<JournalError> for DispatchError {
    fn from(error: JournalError) -> Self {
        DispatchError::Journal(error)
    }
}

impl From<ShardError> for DispatchError {
    fn from(error: ShardError) -> Self {
        DispatchError::Shard(error)
    }
}

// ---------------------------------------------------------------------------
// Coordinator journal

/// Header record of the coordinator journal.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct DispatchHeader {
    /// Format version ([`DISPATCH_JOURNAL_VERSION`]).
    version: u64,
    /// Fingerprint of the whole (unsharded) invocation.
    fingerprint: Fingerprint,
    /// Shards the corpus was split into.
    shards: usize,
}

/// One checksummed line in the coordinator journal. `Granted`,
/// `Revoked`, and `Quarantined` are an advisory audit trail; only
/// `Header` and `ShardDone` decide what a resume re-runs.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum DispatchRecord {
    /// The journal's identity; always the first record.
    Header(DispatchHeader),
    /// A lease was granted.
    Granted {
        /// The shard leased.
        shard: usize,
        /// The endpoint index it went to.
        worker: usize,
        /// The lease's generation counter.
        generation: u64,
    },
    /// A lease was revoked (expiry, probe failure, or a failed run).
    Revoked {
        /// The shard whose lease was revoked.
        shard: usize,
        /// The endpoint index that held it.
        worker: usize,
        /// The revoked lease's generation.
        generation: u64,
    },
    /// An endpoint was quarantined after consecutive failures.
    Quarantined {
        /// The quarantined endpoint index.
        worker: usize,
    },
    /// A shard's journal is durable and complete. Appended only after
    /// the shard journal's fsync returns.
    ShardDone {
        /// The completed shard.
        shard: usize,
        /// The endpoint index that completed it.
        worker: usize,
        /// The winning lease's generation.
        generation: u64,
        /// Apps the shard covered.
        apps: usize,
    },
}

fn encode_dispatch_line(record: &DispatchRecord) -> String {
    let mut json = String::new();
    let mut out = String::new();
    encode_line_into(record, &mut json, &mut out);
    out
}

/// Decodes one coordinator-journal line (without trailing newline).
/// The byte-at-a-time half of the fd-fuzz differential: a prefix-torn,
/// bit-flipped, or hand-edited line must come back as a rendered error,
/// never a panic.
pub fn decode_dispatch_line(line: &[u8]) -> Result<(), String> {
    match decode_line::<DispatchRecord>(line) {
        Ok(_) => Ok(()),
        Err(LineError::Checksum) => Err("checksum mismatch".to_string()),
        Err(LineError::Malformed(error)) => Err(format!("malformed: {error}")),
    }
}

/// What a parsed coordinator journal says about a run.
#[derive(Clone, Debug, PartialEq)]
pub struct DispatchJournal {
    /// Fingerprint of the invocation that wrote the journal.
    pub fingerprint: Fingerprint,
    /// Shards the corpus was split into.
    pub shards: usize,
    /// Completed shards, by index, with the app count each covered.
    pub done: BTreeMap<usize, usize>,
    /// Lease grants recorded.
    pub grants: u64,
    /// Lease revocations recorded.
    pub revocations: u64,
    /// Quarantines recorded.
    pub quarantines: u64,
    /// Bytes of complete, checksummed records.
    pub valid_len: u64,
    /// Bytes of torn tail past `valid_len` (0 for a clean file).
    pub torn_tail_bytes: u64,
}

/// Parses a coordinator journal. A torn tail (the coordinator died
/// mid-append) is tolerated and measured; everything else that is wrong
/// — corrupt checksums, a missing or foreign header, duplicate
/// completions — is a typed [`JournalError`].
pub fn parse_dispatch_journal(data: &[u8]) -> Result<DispatchJournal, JournalError> {
    let mut offset = 0usize;
    let mut line_no = 0usize;
    let mut torn_tail_bytes = 0u64;
    let mut records: Vec<(usize, DispatchRecord)> = Vec::new();
    while offset < data.len() {
        line_no += 1;
        let Some(newline) = data[offset..].iter().position(|&b| b == b'\n') else {
            torn_tail_bytes = (data.len() - offset) as u64;
            break;
        };
        let line = &data[offset..offset + newline];
        match decode_line::<DispatchRecord>(line) {
            Ok(record) => {
                records.push((line_no, record));
                offset += newline + 1;
            }
            Err(LineError::Checksum) => {
                return Err(JournalError::ChecksumMismatch { line: line_no })
            }
            Err(LineError::Malformed(error)) => {
                return Err(JournalError::BadRecord { line: line_no, error })
            }
        }
    }
    let valid_len = offset as u64;

    let mut iter = records.into_iter();
    let (fingerprint, shards) = match iter.next() {
        Some((_, DispatchRecord::Header(header))) => {
            if header.version != DISPATCH_JOURNAL_VERSION {
                return Err(JournalError::VersionMismatch { found: header.version });
            }
            (header.fingerprint, header.shards)
        }
        Some((_, _)) => return Err(JournalError::MissingHeader),
        None if torn_tail_bytes > 0 => {
            return Err(JournalError::TornTail { bytes: torn_tail_bytes })
        }
        None => return Err(JournalError::MissingHeader),
    };

    let mut done = BTreeMap::new();
    let (mut grants, mut revocations, mut quarantines) = (0u64, 0u64, 0u64);
    for (line, record) in iter {
        match record {
            DispatchRecord::Header(_) => {
                return Err(JournalError::BadRecord {
                    line,
                    error: "second header record".to_string(),
                })
            }
            DispatchRecord::Granted { .. } => grants += 1,
            DispatchRecord::Revoked { .. } => revocations += 1,
            DispatchRecord::Quarantined { .. } => quarantines += 1,
            DispatchRecord::ShardDone { shard, apps, .. } => {
                if shard >= shards {
                    return Err(JournalError::IndexOutOfRange { index: shard, total: shards });
                }
                if done.insert(shard, apps).is_some() {
                    return Err(JournalError::DuplicateIndex { index: shard });
                }
            }
        }
    }

    Ok(DispatchJournal {
        fingerprint,
        shards,
        done,
        grants,
        revocations,
        quarantines,
        valid_len,
        torn_tail_bytes,
    })
}

/// A small, well-formed coordinator journal for fuzz seeds: a header, a
/// grant per shard, one revoke/quarantine/re-grant episode, and every
/// shard completed. Pure — no clock, no filesystem.
pub fn demo_dispatch_journal(seed: u64, shards: usize) -> Vec<u8> {
    let fingerprint = Fingerprint {
        apps: (shards as u64) * 2,
        corpus_digest: 0xfd15_7a7c_0000_0000 ^ seed,
        config_digest: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        flake_retries: 0,
    };
    let mut out = String::new();
    out.push_str(&encode_dispatch_line(&DispatchRecord::Header(DispatchHeader {
        version: DISPATCH_JOURNAL_VERSION,
        fingerprint,
        shards,
    })));
    for shard in 0..shards {
        let worker = shard % 2;
        let generation = shard as u64;
        out.push_str(&encode_dispatch_line(&DispatchRecord::Granted { shard, worker, generation }));
        if shard % 3 == 1 {
            out.push_str(&encode_dispatch_line(&DispatchRecord::Revoked {
                shard,
                worker,
                generation,
            }));
            out.push_str(&encode_dispatch_line(&DispatchRecord::Quarantined { worker }));
            out.push_str(&encode_dispatch_line(&DispatchRecord::Granted {
                shard,
                worker: (worker + 1) % 2,
                generation: generation + shards as u64,
            }));
        }
        out.push_str(&encode_dispatch_line(&DispatchRecord::ShardDone {
            shard,
            worker,
            generation,
            apps: 2,
        }));
    }
    out.into_bytes()
}

// ---------------------------------------------------------------------------
// Results

/// Per-endpoint accounting for the dispatch summary.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct WorkerStat {
    /// The endpoint, rendered (`host:port` or `unix:path`).
    pub endpoint: String,
    /// Leases granted to this endpoint.
    pub assignments: usize,
    /// Shards it completed first.
    pub shards_completed: usize,
    /// Shard attempts that failed (transport death, revocation).
    pub failures: usize,
    /// Times it was quarantined.
    pub quarantines: usize,
}

/// What happened operationally, alongside the merged result.
#[derive(Clone, Debug, Serialize)]
pub struct DispatchSummary {
    /// Shards the corpus was split into.
    pub shards: usize,
    /// Shards skipped on `--resume` because their journals validated.
    pub resumed_shards: usize,
    /// Shards re-granted after a revocation.
    pub reassignments: usize,
    /// Backup grants issued for stragglers after the queue drained.
    pub straggler_redispatches: usize,
    /// Completed shard attempts that lost the first-wins commit.
    pub wasted_completions: usize,
    /// Revocation→re-grant latency of each reassignment, milliseconds.
    pub reassignment_latencies_ms: Vec<u64>,
    /// Per-endpoint accounting, in `--connect` order.
    pub workers: Vec<WorkerStat>,
}

/// A completed dispatch: the merged run plus operational accounting.
#[derive(Debug)]
pub struct DispatchRun {
    /// The merged result; `merged.run.outcome_digest()` is
    /// byte-identical to an unsharded run.
    pub merged: MergedRun,
    /// Leases, reassignments, quarantines, waste.
    pub summary: DispatchSummary,
    /// The coordinator's trace (track 0) plus one track per endpoint.
    pub trace: fd_trace::Trace,
}

// ---------------------------------------------------------------------------
// Farm state

/// One live lease.
struct Lease {
    shard: usize,
    worker: usize,
    generation: u64,
    granted_at: Instant,
}

/// One endpoint's health and accounting.
#[derive(Clone)]
struct WorkerSlot {
    consecutive_failures: u32,
    quarantined_until: Option<Instant>,
    /// Set when leaving quarantine: a clean `Status` probe must pass
    /// before this endpoint is leased work again.
    needs_probe: bool,
    assignments: usize,
    completed: usize,
    failures: usize,
    quarantines: usize,
}

impl WorkerSlot {
    fn new() -> WorkerSlot {
        WorkerSlot {
            consecutive_failures: 0,
            quarantined_until: None,
            needs_probe: false,
            assignments: 0,
            completed: 0,
            failures: 0,
            quarantines: 0,
        }
    }
}

/// The shared lease machine, guarded by one mutex.
struct Farm {
    pending: VecDeque<usize>,
    leases: Vec<Lease>,
    done: BTreeSet<usize>,
    /// When each shard's last lease was revoked, for reassignment
    /// latency; cleared at the re-grant that consumes it.
    revoked_at: Vec<Option<Instant>>,
    workers: Vec<WorkerSlot>,
    next_generation: u64,
    shutdown: bool,
    fatal: Option<DispatchError>,
    last_progress: Instant,
    reassignments: usize,
    stragglers: usize,
    wasted: usize,
    reassignment_latencies: Vec<Duration>,
}

/// Mutex lock that shrugs off poisoning: the farm state stays usable
/// even if a worker thread panicked while holding the lock.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Everything worker threads and the coordinator share by reference.
struct DispatchCtx<'a> {
    source: &'a dyn CorpusSource,
    options: &'a DispatchOptions,
    shards: usize,
    base: &'a Path,
    shard_fingerprints: &'a [Fingerprint],
    ranges: &'a [Range<usize>],
    /// Shards whose `ShardDone` is already in the resumed journal;
    /// completing one again must not append a duplicate record.
    journaled_done: &'a BTreeSet<usize>,
    farm: &'a Mutex<Farm>,
    cv: &'a Condvar,
    writer: &'a Option<Mutex<JournalWriter>>,
}

impl DispatchCtx<'_> {
    /// Appends one record to the coordinator journal (fsync'd per
    /// record). An append failure is fatal: a journal whose durability
    /// cannot be trusted is worse than stopping.
    fn append(&self, record: &DispatchRecord) {
        let Some(writer) = self.writer else { return };
        if let Err(error) = lock(writer).append(record) {
            let mut g = lock(self.farm);
            if g.fatal.is_none() {
                g.fatal = Some(DispatchError::Journal(error));
            }
            g.shutdown = true;
            self.cv.notify_all();
        }
    }
}

/// What an idle worker thread should do next, decided under the lock.
enum Action {
    Exit,
    Wait(Duration),
    Probe,
    Run { shard: usize, generation: u64, reassigned: bool },
}

/// Removes `worker`'s lease on `(shard, generation)` if it still holds
/// it; `false` means the coordinator already revoked it.
fn remove_lease(g: &mut Farm, shard: usize, worker: usize, generation: u64) -> bool {
    let before = g.leases.len();
    g.leases.retain(|l| !(l.shard == shard && l.worker == worker && l.generation == generation));
    g.leases.len() != before
}

/// Puts a shard back at the front of the queue unless it is done, still
/// leased elsewhere, or already queued. `revoked` stamps the clock the
/// reassignment latency is measured from.
fn requeue(g: &mut Farm, shard: usize, revoked: Option<Instant>) {
    if g.done.contains(&shard)
        || g.leases.iter().any(|l| l.shard == shard)
        || g.pending.contains(&shard)
    {
        return;
    }
    if let Some(at) = revoked {
        g.revoked_at[shard] = Some(at);
    }
    g.pending.push_front(shard);
}

/// Counts one failed shard attempt against `worker`; `true` means the
/// failure tipped it into quarantine (callers journal + trace that).
fn bump_failure(g: &mut Farm, worker: usize, options: &DispatchOptions, now: Instant) -> bool {
    let slot = &mut g.workers[worker];
    slot.failures += 1;
    slot.consecutive_failures += 1;
    if slot.consecutive_failures >= options.quarantine_after {
        slot.consecutive_failures = 0;
        slot.quarantines += 1;
        slot.quarantined_until = Some(now + options.quarantine_backoff);
        slot.needs_probe = true;
        true
    } else {
        false
    }
}

fn next_action(g: &mut Farm, worker: usize, ctx: &DispatchCtx<'_>, now: Instant) -> Action {
    if g.shutdown || g.fatal.is_some() || g.done.len() == ctx.shards {
        return Action::Exit;
    }
    if let Some(until) = g.workers[worker].quarantined_until {
        if now < until {
            return Action::Wait(until.duration_since(now).min(ctx.options.heartbeat_interval));
        }
        // Quarantine elapsed: the endpoint earns its way back with a
        // clean probe before any lease.
        g.workers[worker].quarantined_until = None;
        g.workers[worker].needs_probe = true;
    }
    if g.workers[worker].needs_probe {
        return Action::Probe;
    }
    let mut i = 0;
    while i < g.pending.len() {
        let shard = g.pending[i];
        if g.done.contains(&shard) {
            g.pending.remove(i);
            continue;
        }
        if g.leases.iter().any(|l| l.shard == shard && l.worker == worker) {
            // A straggler backup of a shard this worker already holds
            // is pointless; leave it for someone else.
            i += 1;
            continue;
        }
        g.pending.remove(i);
        let generation = g.next_generation;
        g.next_generation += 1;
        g.leases.push(Lease { shard, worker, generation, granted_at: now });
        g.workers[worker].assignments += 1;
        g.last_progress = now;
        let mut reassigned = false;
        if let Some(revoked) = g.revoked_at[shard].take() {
            g.reassignments += 1;
            g.reassignment_latencies.push(now.duration_since(revoked));
            reassigned = true;
        }
        return Action::Run { shard, generation, reassigned };
    }
    Action::Wait(ctx.options.heartbeat_interval)
}

// ---------------------------------------------------------------------------
// Health probes

/// Clean-transport liveness probe: connect, send `Status`, expect any
/// coherent reply from a server that will still take work. `Busy` means
/// alive-but-saturated (fine); `Draining` means it is dying (not fine).
fn probe_endpoint(addr: &ListenAddr, timeout: Duration) -> Result<(), String> {
    let mut stream = AnyStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| format!("set read timeout: {e}"))?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| format!("set write timeout: {e}"))?;
    stream
        .write_all(&encode_frame(&Envelope { id: 1, body: ServeRequest::Status }))
        .map_err(|e| format!("send status: {e}"))?;
    stream.flush().map_err(|e| format!("flush status: {e}"))?;
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    let started = Instant::now();
    loop {
        if let Some(payload) = frames.next_frame().map_err(|e| format!("bad frame: {e}"))? {
            let reply: Envelope<ServeResponse> =
                decode_payload(&payload).map_err(|e| format!("bad reply: {e}"))?;
            return match reply.body {
                ServeResponse::Status { .. } | ServeResponse::Busy { .. } => Ok(()),
                other => Err(format!("unhealthy reply: {other:?}")),
            };
        }
        if started.elapsed() >= timeout {
            return Err("probe timed out".to_string());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read status reply: {e}"))?;
        if n == 0 {
            return Err("server hung up during probe".to_string());
        }
        frames.push(&chunk[..n]);
    }
}

// ---------------------------------------------------------------------------
// Worker threads

/// Drives one shard's jobs over the wire against `worker`'s endpoint.
/// Every job re-checks the lease first, so a stale holder abandons the
/// shard instead of burning a dead generation's budget.
fn run_shard_over_wire(
    ctx: &DispatchCtx<'_>,
    worker: usize,
    shard: usize,
    generation: u64,
) -> Result<Vec<(usize, AppOutcome, AppMetrics)>, String> {
    let range = ctx.ranges[shard].clone();
    let addr = ctx.options.endpoints[worker].clone();
    let mut outcomes = Vec::with_capacity(range.len());
    for (local, global) in range.enumerate() {
        {
            let g = lock(ctx.farm);
            if g.shutdown || g.fatal.is_some() {
                return Err("coordinator shut down mid-shard".to_string());
            }
            if !g
                .leases
                .iter()
                .any(|l| l.shard == shard && l.worker == worker && l.generation == generation)
            {
                return Err("lease revoked mid-shard".to_string());
            }
        }
        let started = Instant::now();
        let (outcome, package) = match ctx.source.fetch(global) {
            // A source-side rejection needs no server round trip; the
            // reason string matches what the in-process runner records.
            Err(reason) => (AppOutcome::Rejected { reason }, format!("container[{local}]")),
            Ok((bytes, inputs)) => {
                // The job id is the global corpus index: the server's
                // (id, digest) idempotency key, so a re-dispatched
                // shard replays the same jobs and dedups server-side.
                let job = global as u64 + 1;
                let mut client = SubmitClient::new(addr.clone())
                    .with_deadline(ctx.options.job_deadline)
                    .with_max_attempts(ctx.options.job_attempts)
                    .with_backoff_jitter(ctx.options.jitter_seed ^ job ^ (generation << 20));
                if let Some(base) = &ctx.options.chaos {
                    // Vary the schedule by job *and* generation, so a
                    // reassigned shard does not replay the exact chaos
                    // that killed its first attempt.
                    client = client.with_chaos(ChaosConfig {
                        seed: base.seed ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ generation,
                        ..base.clone()
                    });
                }
                match client.submit(job, &to_hex(&bytes), &inputs) {
                    Err(error) => return Err(format!("job {job}: {error}")),
                    Ok(JobOutcome::Rejected { reason }) => {
                        (AppOutcome::Rejected { reason }, format!("container[{local}]"))
                    }
                    Ok(JobOutcome::Report { json }) => {
                        match serde_json::from_str::<RunReport>(&json) {
                            Err(error) => {
                                return Err(format!("job {job}: undecodable report: {error}"))
                            }
                            Ok(report) => {
                                let package = report
                                    .static_info
                                    .aftm
                                    .entry()
                                    .map(|c| c.package().to_string())
                                    .unwrap_or_else(|| "generated".to_string());
                                let outcome = if report.deadline_exceeded {
                                    AppOutcome::DeadlineExceeded(report)
                                } else {
                                    AppOutcome::Completed(report)
                                };
                                (outcome, package)
                            }
                        }
                    }
                }
            }
        };
        let metrics = slot_metrics(&outcome, package, started.elapsed());
        outcomes.push((local, outcome, metrics));
        lock(ctx.farm).last_progress = Instant::now();
    }
    Ok(outcomes)
}

/// One endpoint's worker thread: claim a shard, drive it, commit or
/// fail, repeat until the farm shuts down.
fn worker_loop(
    ctx: &DispatchCtx<'_>,
    worker: usize,
    clock: fd_trace::TraceClock,
    trace_config: &fd_trace::TraceConfig,
) -> fd_trace::TrackTrace {
    let tracer = fd_trace::Tracer::new(trace_config, clock, worker as u64 + 1);
    loop {
        let action = {
            let mut g = lock(ctx.farm);
            next_action(&mut g, worker, ctx, Instant::now())
        };
        match action {
            Action::Exit => break,
            Action::Wait(duration) => {
                let g = lock(ctx.farm);
                drop(ctx.cv.wait_timeout(g, duration));
            }
            Action::Probe => {
                let healthy = probe_endpoint(&ctx.options.endpoints[worker], PROBE_TIMEOUT);
                let mut g = lock(ctx.farm);
                match healthy {
                    Ok(()) => {
                        g.workers[worker].needs_probe = false;
                        g.workers[worker].consecutive_failures = 0;
                    }
                    // Still dead: back to the bench, probe again after
                    // the backoff. The original quarantine was already
                    // journaled; re-probing is not a new event.
                    Err(_) => {
                        g.workers[worker].quarantined_until =
                            Some(Instant::now() + ctx.options.quarantine_backoff);
                    }
                }
            }
            Action::Run { shard, generation, reassigned } => {
                ctx.append(&DispatchRecord::Granted { shard, worker, generation });
                tracer.event(|| fd_trace::TraceEvent::LeaseGranted {
                    shard: shard as u64,
                    worker: worker as u64,
                    generation,
                });
                if reassigned {
                    tracer.event(|| fd_trace::TraceEvent::ShardReassigned {
                        shard: shard as u64,
                        worker: worker as u64,
                    });
                }
                match run_shard_over_wire(ctx, worker, shard, generation) {
                    Ok(outcomes) => {
                        // Durability order is the whole invariant:
                        // shard journal fsync'd first, ShardDone after.
                        let path = shard_journal_path(ctx.base, shard, ctx.shards);
                        let written = write_complete_journal(
                            &path,
                            ctx.shard_fingerprints[shard],
                            outcomes.iter().map(|(i, o, m)| (*i, o, m)),
                        );
                        if let Err(error) = written {
                            let mut g = lock(ctx.farm);
                            if g.fatal.is_none() {
                                g.fatal = Some(DispatchError::Journal(error));
                            }
                            g.shutdown = true;
                            ctx.cv.notify_all();
                            continue;
                        }
                        let won = {
                            let mut g = lock(ctx.farm);
                            remove_lease(&mut g, shard, worker, generation);
                            let won = g.done.insert(shard);
                            if won {
                                g.workers[worker].completed += 1;
                                g.workers[worker].consecutive_failures = 0;
                                g.last_progress = Instant::now();
                            } else {
                                // A straggler race we lost; the shard
                                // journal we rewrote holds identical
                                // bytes, so no harm done.
                                g.wasted += 1;
                            }
                            ctx.cv.notify_all();
                            won
                        };
                        if won && !ctx.journaled_done.contains(&shard) {
                            ctx.append(&DispatchRecord::ShardDone {
                                shard,
                                worker,
                                generation,
                                apps: outcomes.len(),
                            });
                        }
                    }
                    Err(_reason) => {
                        let (had_lease, quarantined) = {
                            let mut g = lock(ctx.farm);
                            let had = remove_lease(&mut g, shard, worker, generation);
                            let mut quarantined = false;
                            if had {
                                let now = Instant::now();
                                requeue(&mut g, shard, Some(now));
                                quarantined = bump_failure(&mut g, worker, ctx.options, now);
                                ctx.cv.notify_all();
                            }
                            (had, quarantined)
                        };
                        // If the coordinator revoked the lease first it
                        // also journaled the revocation; only a failure
                        // we discovered ourselves is ours to record.
                        if had_lease {
                            ctx.append(&DispatchRecord::Revoked { shard, worker, generation });
                            tracer.event(|| fd_trace::TraceEvent::LeaseRevoked {
                                shard: shard as u64,
                                worker: worker as u64,
                                generation,
                            });
                            if quarantined {
                                ctx.append(&DispatchRecord::Quarantined { worker });
                                tracer.event(|| fd_trace::TraceEvent::WorkerQuarantined {
                                    worker: worker as u64,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    tracer.finish()
}

// ---------------------------------------------------------------------------
// Coordinator loop

/// The coordinator's own duties, on the calling thread: revoke expired
/// leases, heartbeat-probe busy endpoints, re-dispatch stragglers, and
/// fail typed on a total stall.
fn coordinator_loop(
    ctx: &DispatchCtx<'_>,
    clock: fd_trace::TraceClock,
    trace_config: &fd_trace::TraceConfig,
) -> fd_trace::TrackTrace {
    let tracer = fd_trace::Tracer::new(trace_config, clock, 0);
    loop {
        let mut revoked: Vec<(usize, usize, u64)> = Vec::new();
        let mut quarantined: Vec<usize> = Vec::new();
        let mut probes: Vec<usize> = Vec::new();
        let exit = {
            let mut g = lock(ctx.farm);
            if g.done.len() == ctx.shards || g.fatal.is_some() || g.shutdown {
                g.shutdown = true;
                ctx.cv.notify_all();
                true
            } else {
                let now = Instant::now();
                // Expired leases: the holder is presumed dead or wedged.
                let mut idx = 0;
                while idx < g.leases.len() {
                    if now.duration_since(g.leases[idx].granted_at) >= ctx.options.lease_timeout {
                        let lease = g.leases.remove(idx);
                        requeue(&mut g, lease.shard, Some(now));
                        if bump_failure(&mut g, lease.worker, ctx.options, now) {
                            quarantined.push(lease.worker);
                        }
                        revoked.push((lease.shard, lease.worker, lease.generation));
                        ctx.cv.notify_all();
                    } else {
                        idx += 1;
                    }
                }
                // Stragglers: the queue is dry, so idle endpoints may
                // as well race the slowest in-flight shards.
                if g.pending.is_empty() {
                    let candidates: Vec<usize> = g
                        .leases
                        .iter()
                        .filter(|l| {
                            now.duration_since(l.granted_at) >= ctx.options.lease_timeout / 2
                        })
                        .map(|l| l.shard)
                        .collect();
                    for shard in candidates {
                        if g.done.contains(&shard)
                            || g.pending.contains(&shard)
                            || g.leases.iter().filter(|l| l.shard == shard).count() != 1
                        {
                            continue;
                        }
                        g.pending.push_back(shard);
                        g.stragglers += 1;
                        ctx.cv.notify_all();
                    }
                }
                // Total stall: nothing has moved for stall_timeout.
                if now.duration_since(g.last_progress) >= ctx.options.stall_timeout {
                    let leased = g.leases.len();
                    let queued = g.pending.len();
                    g.fatal = Some(DispatchError::Stalled {
                        completed: g.done.len(),
                        shards: ctx.shards,
                        detail: format!(
                            "no progress for {:?} ({leased} leases in flight, {queued} shards \
                             queued, every endpoint dead or quarantined)",
                            ctx.options.stall_timeout
                        ),
                    });
                    g.shutdown = true;
                    ctx.cv.notify_all();
                }
                probes = g
                    .leases
                    .iter()
                    .map(|l| l.worker)
                    .collect::<BTreeSet<usize>>()
                    .into_iter()
                    .collect();
                g.shutdown
            }
        };
        for &(shard, worker, generation) in &revoked {
            ctx.append(&DispatchRecord::Revoked { shard, worker, generation });
            tracer.event(|| fd_trace::TraceEvent::LeaseRevoked {
                shard: shard as u64,
                worker: worker as u64,
                generation,
            });
        }
        for &worker in &quarantined {
            ctx.append(&DispatchRecord::Quarantined { worker });
            tracer.event(|| fd_trace::TraceEvent::WorkerQuarantined { worker: worker as u64 });
        }
        if exit {
            break;
        }
        // Heartbeats, off the lock: a failed probe revokes everything
        // the endpoint holds rather than waiting out the lease.
        for worker in probes {
            if probe_endpoint(&ctx.options.endpoints[worker], PROBE_TIMEOUT).is_ok() {
                continue;
            }
            let mut dead: Vec<(usize, u64)> = Vec::new();
            let mut benched = false;
            {
                let mut g = lock(ctx.farm);
                let now = Instant::now();
                let mut idx = 0;
                while idx < g.leases.len() {
                    if g.leases[idx].worker == worker {
                        let lease = g.leases.remove(idx);
                        requeue(&mut g, lease.shard, Some(now));
                        dead.push((lease.shard, lease.generation));
                    } else {
                        idx += 1;
                    }
                }
                if !dead.is_empty() {
                    benched = bump_failure(&mut g, worker, ctx.options, now);
                    ctx.cv.notify_all();
                }
            }
            for &(shard, generation) in &dead {
                ctx.append(&DispatchRecord::Revoked { shard, worker, generation });
                tracer.event(|| fd_trace::TraceEvent::LeaseRevoked {
                    shard: shard as u64,
                    worker: worker as u64,
                    generation,
                });
            }
            if benched {
                ctx.append(&DispatchRecord::Quarantined { worker });
                tracer.event(|| fd_trace::TraceEvent::WorkerQuarantined { worker: worker as u64 });
            }
        }
        let g = lock(ctx.farm);
        drop(ctx.cv.wait_timeout(g, ctx.options.heartbeat_interval));
    }
    tracer.finish()
}

// ---------------------------------------------------------------------------
// Entry point

/// Distinguishes concurrent scratch journals within one process.
static SCRATCH: AtomicU64 = AtomicU64::new(0);

/// Dispatches `source` across `options.endpoints`, drives every shard
/// to completion with lease-based fault tolerance, and merges the shard
/// journals into one run whose `outcome_digest` is byte-identical to an
/// unsharded run of the same corpus and config.
///
/// # Errors
/// [`DispatchError::NoEndpoints`] / [`DispatchError::ResumeWithoutJournal`]
/// for invalid invocations; [`DispatchError::Journal`] when the
/// coordinator journal cannot be created, resumed, or appended;
/// [`DispatchError::Stalled`] when every endpoint is dead and nothing
/// can progress; [`DispatchError::Shard`] when the final merge fails.
pub fn dispatch(
    source: &dyn CorpusSource,
    config: &FragDroidConfig,
    options: &DispatchOptions,
    trace_config: &fd_trace::TraceConfig,
) -> Result<DispatchRun, DispatchError> {
    if options.endpoints.is_empty() {
        return Err(DispatchError::NoEndpoints);
    }
    if options.resume && options.journal.is_none() {
        return Err(DispatchError::ResumeWithoutJournal);
    }
    let shards = if options.shards == 0 { options.endpoints.len() } else { options.shards };
    let fingerprint = Fingerprint::of(&SuiteSource::Lazy(source), config, 0)
        .map_err(|detail| DispatchError::Source { detail })?;

    let mut ranges = Vec::with_capacity(shards);
    let mut shard_fingerprints = Vec::with_capacity(shards);
    for index in 0..shards {
        let slice = ShardSlice::new(source, shards, index)?;
        let fp = Fingerprint::of(&SuiteSource::Lazy(&slice), config, 0)
            .map_err(|detail| DispatchError::Source { detail })?;
        ranges.push(slice.range());
        shard_fingerprints.push(fp);
    }

    let scratch = options.journal.is_none();
    let base: PathBuf = match &options.journal {
        Some(path) => path.clone(),
        None => std::env::temp_dir().join(format!(
            "fragdroid-dispatch-{}-{}",
            std::process::id(),
            SCRATCH.fetch_add(1, Ordering::Relaxed)
        )),
    };

    let mut done = BTreeSet::new();
    let mut journaled_done = BTreeSet::new();
    let mut resumed_shards = 0usize;
    let writer: Option<Mutex<JournalWriter>> = match &options.journal {
        None => None,
        Some(path) if options.resume && path.exists() => {
            let data = std::fs::read(path).map_err(|e| JournalError::Io {
                path: path.display().to_string(),
                op: "read",
                error: e.to_string(),
            })?;
            let loaded = parse_dispatch_journal(&data)?;
            if loaded.fingerprint != fingerprint {
                return Err(DispatchError::Journal(JournalError::FingerprintMismatch {
                    expected: fingerprint,
                    found: loaded.fingerprint,
                }));
            }
            if loaded.shards != shards {
                return Err(DispatchError::ShardCountMismatch {
                    journal: loaded.shards,
                    requested: shards,
                });
            }
            for &shard in loaded.done.keys() {
                journaled_done.insert(shard);
                // ShardDone is a claim, not proof: trust only shard
                // journals that still load, fingerprint-match, and
                // cover their whole slice. Anything else re-runs.
                match load_journal(&shard_journal_path(&base, shard, shards)) {
                    Ok(l)
                        if l.fingerprint == shard_fingerprints[shard]
                            && l.slots.len() == ranges[shard].len() =>
                    {
                        done.insert(shard);
                        resumed_shards += 1;
                    }
                    _ => {}
                }
            }
            Some(Mutex::new(JournalWriter::resume(path, loaded.valid_len, 1)?))
        }
        Some(path) => {
            if path.exists() {
                return Err(DispatchError::Journal(JournalError::AlreadyExists {
                    path: path.display().to_string(),
                }));
            }
            let header = encode_dispatch_line(&DispatchRecord::Header(DispatchHeader {
                version: DISPATCH_JOURNAL_VERSION,
                fingerprint,
                shards,
            }));
            Some(Mutex::new(JournalWriter::create_raw(path, &header, 1)?))
        }
    };

    let farm = Mutex::new(Farm {
        pending: (0..shards).filter(|s| !done.contains(s)).collect(),
        leases: Vec::new(),
        done,
        revoked_at: vec![None; shards],
        workers: vec![WorkerSlot::new(); options.endpoints.len()],
        next_generation: 0,
        shutdown: false,
        fatal: None,
        last_progress: Instant::now(),
        reassignments: 0,
        stragglers: 0,
        wasted: 0,
        reassignment_latencies: Vec::new(),
    });
    let cv = Condvar::new();
    let ctx = DispatchCtx {
        source,
        options,
        shards,
        base: &base,
        shard_fingerprints: &shard_fingerprints,
        ranges: &ranges,
        journaled_done: &journaled_done,
        farm: &farm,
        cv: &cv,
        writer: &writer,
    };

    let clock = fd_trace::TraceClock::start();
    let mut tracks: Vec<fd_trace::TrackTrace> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.endpoints.len())
            .map(|worker| {
                let ctx = &ctx;
                scope.spawn(move || worker_loop(ctx, worker, clock, trace_config))
            })
            .collect();
        tracks.push(coordinator_loop(&ctx, clock, trace_config));
        for handle in handles {
            tracks.push(handle.join().expect("dispatch worker thread must not panic"));
        }
    });

    let summary = {
        let mut g = lock(&farm);
        if let Some(error) = g.fatal.take() {
            return Err(error);
        }
        DispatchSummary {
            shards,
            resumed_shards,
            reassignments: g.reassignments,
            straggler_redispatches: g.stragglers,
            wasted_completions: g.wasted,
            reassignment_latencies_ms: g
                .reassignment_latencies
                .iter()
                .map(|d| d.as_millis() as u64)
                .collect(),
            workers: options
                .endpoints
                .iter()
                .zip(g.workers.iter())
                .map(|(addr, slot)| WorkerStat {
                    endpoint: addr.to_string(),
                    assignments: slot.assignments,
                    shards_completed: slot.completed,
                    failures: slot.failures,
                    quarantines: slot.quarantines,
                })
                .collect(),
        }
    };

    let (merged, _merge_trace) = merge_shards(source, config, 0, &base, shards, trace_config)?;
    if scratch {
        for shard in 0..shards {
            drop(std::fs::remove_file(shard_journal_path(&base, shard, shards)));
        }
    }

    let mut trace = fd_trace::Trace::new("fragdroid-dispatch");
    for track in tracks {
        trace.absorb(track);
    }
    Ok(DispatchRun { merged, summary, trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{serve_listener, ServeListener, ServeOptions};
    use crate::suite::{run_corpus_suite_traced, SuiteContainer};
    use std::sync::atomic::AtomicU64 as TestCounter;

    fn scratch(name: &str) -> PathBuf {
        static NEXT: TestCounter = TestCounter::new(0);
        std::env::temp_dir().join(format!(
            "fragdroid-dispatch-test-{}-{}-{name}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn corpus(n: usize) -> Vec<SuiteContainer> {
        fd_appgen::corpus::corpus_217(41)
            .into_iter()
            .take(n)
            .map(|g| (fd_apk::pack(&g.app), g.known_inputs))
            .collect()
    }

    fn spawn_server(workers: usize) -> (ListenAddr, std::thread::JoinHandle<()>) {
        let listener = ServeListener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_string()))
            .expect("bind a loopback test server");
        let addr = listener.local_addr().clone();
        let options = ServeOptions { workers, ..ServeOptions::default() };
        let handle = std::thread::spawn(move || {
            serve_listener(listener, &options, &fd_trace::TraceConfig::off())
                .expect("test server runs to clean shutdown");
        });
        (addr, handle)
    }

    fn shutdown(addr: &ListenAddr, handle: std::thread::JoinHandle<()>) {
        let mut stream = AnyStream::connect(addr).expect("connect for shutdown");
        stream
            .write_all(&encode_frame(&Envelope { id: u64::MAX, body: ServeRequest::Shutdown }))
            .expect("send shutdown");
        stream.flush().expect("flush shutdown");
        let mut frames = FrameBuffer::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(payload) = frames.next_frame().expect("well-formed reply") {
                let reply: Envelope<ServeResponse> =
                    decode_payload(&payload).expect("decodable reply");
                assert!(matches!(reply.body, ServeResponse::Bye));
                break;
            }
            let n = stream.read(&mut chunk).expect("read shutdown reply");
            assert!(n > 0, "server hung up before Bye");
            frames.push(&chunk[..n]);
        }
        handle.join().expect("test server thread exits");
    }

    #[test]
    fn invalid_invocations_are_typed() {
        let corpus: Vec<SuiteContainer> = Vec::new();
        let config = FragDroidConfig::default();
        let off = fd_trace::TraceConfig::off();
        assert_eq!(
            dispatch(&corpus, &config, &DispatchOptions::new(Vec::new()), &off).unwrap_err(),
            DispatchError::NoEndpoints
        );
        let mut options = DispatchOptions::new(vec![ListenAddr::Tcp("127.0.0.1:1".to_string())]);
        options.resume = true;
        assert_eq!(
            dispatch(&corpus, &config, &options, &off).unwrap_err(),
            DispatchError::ResumeWithoutJournal
        );
    }

    #[test]
    fn demo_journal_roundtrips_and_counts() {
        let bytes = demo_dispatch_journal(7, 5);
        let parsed = parse_dispatch_journal(&bytes).expect("demo journal parses");
        assert_eq!(parsed.shards, 5);
        assert_eq!(parsed.done.len(), 5);
        assert_eq!(parsed.torn_tail_bytes, 0);
        assert_eq!(parsed.valid_len, bytes.len() as u64);
        assert!(parsed.grants > parsed.done.len() as u64 - 1, "re-grants recorded");
        assert!(parsed.revocations >= 1 && parsed.quarantines >= 1);
        // Every line decodes on its own too.
        for line in bytes.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            decode_dispatch_line(line).expect("each demo line decodes");
        }
    }

    #[test]
    fn parse_failures_are_typed() {
        let bytes = demo_dispatch_journal(3, 4);
        // Torn tail after the header: tolerated and measured.
        let torn = &bytes[..bytes.len() - 3];
        let parsed = parse_dispatch_journal(torn).expect("torn tail is tolerated");
        assert!(parsed.torn_tail_bytes > 0);
        // Torn mid-header: nothing can be trusted.
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        assert!(matches!(
            parse_dispatch_journal(&bytes[..header_end / 2]),
            Err(JournalError::TornTail { .. })
        ));
        // Empty: missing header.
        assert_eq!(parse_dispatch_journal(b""), Err(JournalError::MissingHeader));
        // A flipped payload byte: checksum mismatch at that line.
        let mut corrupt = bytes.clone();
        let target = header_end + 20;
        corrupt[target] ^= 0x01;
        assert!(matches!(
            parse_dispatch_journal(&corrupt),
            Err(JournalError::ChecksumMismatch { .. } | JournalError::BadRecord { .. })
        ));
        // A non-header first record: missing header.
        let second_line = bytes[header_end + 1..].to_vec();
        assert_eq!(parse_dispatch_journal(&second_line), Err(JournalError::MissingHeader));
        // Duplicate ShardDone: DuplicateIndex.
        let mut dup = String::from_utf8(bytes.clone()).unwrap();
        dup.push_str(&encode_dispatch_line(&DispatchRecord::ShardDone {
            shard: 0,
            worker: 0,
            generation: 99,
            apps: 2,
        }));
        assert_eq!(
            parse_dispatch_journal(dup.as_bytes()),
            Err(JournalError::DuplicateIndex { index: 0 })
        );
        // ShardDone outside the split: IndexOutOfRange.
        let mut oob = String::from_utf8(bytes.clone()).unwrap();
        oob.push_str(&encode_dispatch_line(&DispatchRecord::ShardDone {
            shard: 9,
            worker: 0,
            generation: 99,
            apps: 2,
        }));
        assert_eq!(
            parse_dispatch_journal(oob.as_bytes()),
            Err(JournalError::IndexOutOfRange { index: 9, total: 4 })
        );
        // A future format version is refused.
        let future = encode_dispatch_line(&DispatchRecord::Header(DispatchHeader {
            version: DISPATCH_JOURNAL_VERSION + 1,
            fingerprint: Fingerprint {
                apps: 1,
                corpus_digest: 2,
                config_digest: 3,
                flake_retries: 0,
            },
            shards: 1,
        }));
        assert_eq!(
            parse_dispatch_journal(future.as_bytes()),
            Err(JournalError::VersionMismatch { found: DISPATCH_JOURNAL_VERSION + 1 })
        );
    }

    #[test]
    fn dispatched_digest_matches_unsharded_run() {
        let corpus = corpus(6);
        let config = FragDroidConfig::default();
        let off = fd_trace::TraceConfig::off();
        let (reference, _) = run_corpus_suite_traced(&corpus, &config, 2, &off);

        let (addr_a, server_a) = spawn_server(1);
        let (addr_b, server_b) = spawn_server(1);
        let mut options = DispatchOptions::new(vec![addr_a.clone(), addr_b.clone()]);
        options.shards = 3;
        let run = dispatch(&corpus, &config, &options, &off).expect("dispatch completes");
        shutdown(&addr_a, server_a);
        shutdown(&addr_b, server_b);

        assert_eq!(run.merged.run.outcome_digest(), reference.outcome_digest());
        assert_eq!(run.summary.shards, 3);
        assert_eq!(run.summary.resumed_shards, 0);
        let completed: usize = run.summary.workers.iter().map(|w| w.shards_completed).sum();
        assert_eq!(completed, 3, "every shard committed exactly once");
    }

    #[test]
    fn dead_endpoint_is_quarantined_and_its_shards_reassigned() {
        let corpus = corpus(4);
        let config = FragDroidConfig::default();
        let off = fd_trace::TraceConfig::off();
        let (reference, _) = run_corpus_suite_traced(&corpus, &config, 2, &off);

        let (live, server) = spawn_server(1);
        // Port 1 on loopback is essentially never bound: instant refusal.
        let dead = ListenAddr::Tcp("127.0.0.1:1".to_string());
        let mut options = DispatchOptions::new(vec![dead, live.clone()]);
        options.shards = 2;
        options.job_deadline = Duration::from_secs(5);
        options.job_attempts = 2;
        options.quarantine_backoff = Duration::from_millis(100);
        options.heartbeat_interval = Duration::from_millis(50);
        options.stall_timeout = Duration::from_secs(60);
        let run = dispatch(&corpus, &config, &options, &off).expect("dispatch completes");
        shutdown(&live, server);

        assert_eq!(run.merged.run.outcome_digest(), reference.outcome_digest());
        assert!(
            run.summary.workers[0].failures > 0,
            "the dead endpoint must have recorded failures: {:?}",
            run.summary
        );
        assert_eq!(
            run.summary.workers[1].shards_completed, 2,
            "the live endpoint completes everything: {:?}",
            run.summary
        );
    }

    #[test]
    fn resume_skips_validated_shards_and_preserves_the_digest() {
        let corpus = corpus(4);
        let config = FragDroidConfig::default();
        let off = fd_trace::TraceConfig::off();
        let journal = scratch("resume");

        let (addr, server) = spawn_server(1);
        let mut options = DispatchOptions::new(vec![addr.clone()]);
        options.shards = 2;
        options.journal = Some(journal.clone());
        let first = dispatch(&corpus, &config, &options, &off).expect("first dispatch");

        // A second fresh run refuses the existing journal.
        assert!(matches!(
            dispatch(&corpus, &config, &options, &off),
            Err(DispatchError::Journal(JournalError::AlreadyExists { .. }))
        ));

        // Resume re-validates both shard journals and re-runs nothing.
        options.resume = true;
        let second = dispatch(&corpus, &config, &options, &off).expect("resumed dispatch");
        shutdown(&addr, server);
        assert_eq!(second.summary.resumed_shards, 2);
        assert_eq!(
            second.summary.workers[0].assignments, 0,
            "nothing re-leased on a complete journal"
        );
        assert_eq!(second.merged.run.outcome_digest(), first.merged.run.outcome_digest());

        for shard in 0..2 {
            drop(std::fs::remove_file(shard_journal_path(&journal, shard, 2)));
        }
        drop(std::fs::remove_file(&journal));
    }
}
