//! Crash-safe suite checkpointing: a journaled corpus run that survives
//! kills, OOMs and host reboots, plus flake triage for the runs that
//! failed.
//!
//! The paper's evaluation pushes thousands of apps through hours-long
//! device campaigns; a production runner cannot afford to lose a whole
//! corpus to one dead process. This module gives the work-stealing suite
//! runner ([`crate::suite`]) durable progress:
//!
//! * **Journal** — an append-only JSON-Lines file. The first line is a
//!   header carrying a [`Fingerprint`] of the invocation (corpus digest,
//!   configuration digest, app count, flake-retry budget), written
//!   atomically via tmp-file + rename + fsync so the journal either does
//!   not exist or starts with a complete, durable header. Every
//!   completed app appends one [`AppOutcome`] record. Each line is
//!   prefixed with its FNV-1a checksum, and appends are fsync'd in
//!   batches ([`CheckpointOptions::fsync_every`]).
//! * **Resume** — [`load_journal`] replays the file, verifies every
//!   checksum, detects a *torn tail* (a partial last line from a
//!   mid-write kill) and drops it, and refuses journals whose
//!   fingerprint does not match the current invocation. The runner then
//!   skips every journaled app; restored slots reproduce their recorded
//!   reports byte-for-byte, so a resumed run's final report is identical
//!   to an uninterrupted one (property-tested in
//!   `tests/checkpoint_prop.rs`).
//! * **Flake triage** — after a complete run, apps that finished
//!   [`AppOutcome::Panicked`], [`AppOutcome::DeadlineExceeded`] or
//!   crashed are re-run up to `flake_retries` times with the same seed
//!   and classified [`FlakeClass::Deterministic`] (never passed) or
//!   [`FlakeClass::Flaky`] (passed sometimes, with its pass rate). The
//!   verdicts land in [`SuiteMetrics::flake_summary`] and the journal,
//!   and every attempt is traced as [`fd_trace::TraceEvent::FlakeRetry`].
//!
//! Every failure is a typed [`JournalError`] — a full disk, an
//! unreadable checkpoint, or a corrupt record is a diagnostic, never a
//! panic.

use crate::config::FragDroidConfig;
use crate::suite::{
    assemble_metrics, engine, slot_metrics, slot_outcome, AppMetrics, AppOutcome, SuiteApp,
    SuiteContainer, SuiteRun, SuiteSource,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Journal format version, stamped into every header; bumped whenever a
/// record shape changes incompatibly.
pub const JOURNAL_VERSION: u64 = 1;

/// Default number of appended records between fsyncs.
pub const DEFAULT_FSYNC_BATCH: usize = 8;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a hash.
pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

// ---------------------------------------------------------------------------
// Errors

/// A typed journal failure. Everything the checkpoint layer can hit —
/// I/O, corruption, a mismatched invocation — surfaces here instead of
/// panicking; `fd-cli` maps these to exit code 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// An I/O operation on the journal failed (unreadable file, full
    /// disk, permission problem …).
    Io {
        /// The journal path.
        path: String,
        /// What was being attempted (`read`, `append`, `fsync`, …).
        op: &'static str,
        /// The OS error, rendered.
        error: String,
    },
    /// A fresh (non-`--resume`) run found an existing journal at the
    /// path. Refusing protects completed progress from an accidental
    /// overwrite.
    AlreadyExists {
        /// The journal path.
        path: String,
    },
    /// The journal was written by a different invocation: its corpus,
    /// configuration, app count or flake budget differ from the current
    /// one. Resuming would silently mix incompatible results.
    FingerprintMismatch {
        /// The fingerprint of the current invocation.
        expected: Fingerprint,
        /// The fingerprint recorded in the journal.
        found: Fingerprint,
    },
    /// A record in the middle of the journal fails its checksum — bit
    /// rot or tampering, not a torn append (those only affect the tail).
    ChecksumMismatch {
        /// 1-based journal line.
        line: usize,
    },
    /// The journal's header line itself is torn or missing: the file has
    /// bytes but no complete, checksummed header, so nothing about it
    /// can be trusted.
    TornTail {
        /// Bytes present in the unusable file.
        bytes: u64,
    },
    /// The first complete record is not a header (or the file is empty).
    MissingHeader,
    /// The header's format version is not [`JOURNAL_VERSION`].
    VersionMismatch {
        /// The version found in the header.
        found: u64,
    },
    /// A record passed its checksum but does not parse — a writer bug or
    /// hand-edited file.
    BadRecord {
        /// 1-based journal line.
        line: usize,
        /// The parse error, rendered.
        error: String,
    },
    /// Two outcome records claim the same app index.
    DuplicateIndex {
        /// The repeated input-order index.
        index: usize,
    },
    /// An outcome record's index is outside the corpus.
    IndexOutOfRange {
        /// The out-of-range index.
        index: usize,
        /// The corpus size from the header.
        total: usize,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, op, error } => {
                write!(f, "journal {op} failed for {path}: {error}")
            }
            JournalError::AlreadyExists { path } => write!(
                f,
                "checkpoint journal {path} already exists; pass --resume to continue it or \
                 remove it to start over"
            ),
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal fingerprint mismatch: journal records {found}, current invocation is \
                 {expected}; refusing to resume a different corpus/config"
            ),
            JournalError::ChecksumMismatch { line } => {
                write!(f, "journal line {line}: checksum mismatch (corrupt record)")
            }
            JournalError::TornTail { bytes } => {
                write!(f, "journal has no complete header ({bytes} bytes of torn data)")
            }
            JournalError::MissingHeader => write!(f, "journal does not start with a header record"),
            JournalError::VersionMismatch { found } => {
                write!(f, "journal format version {found} (this binary writes {JOURNAL_VERSION})")
            }
            JournalError::BadRecord { line, error } => {
                write!(f, "journal line {line}: checksummed record does not parse: {error}")
            }
            JournalError::DuplicateIndex { index } => {
                write!(f, "journal records app index {index} twice")
            }
            JournalError::IndexOutOfRange { index, total } => {
                write!(f, "journal records app index {index}, but the corpus has {total} apps")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl JournalError {
    fn io(path: &Path, op: &'static str, error: std::io::Error) -> Self {
        JournalError::Io { path: path.display().to_string(), op, error: error.to_string() }
    }
}

// ---------------------------------------------------------------------------
// Fingerprint

/// What a journal is *for*: a digest of the invocation that wrote it.
/// Resume refuses any journal whose fingerprint differs from the current
/// run — a different corpus, seed, fault plan, deadline or flake budget
/// would silently mix incomparable results.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Number of apps in the corpus.
    pub apps: u64,
    /// FNV-1a digest of the corpus content (container bytes / packed
    /// apps plus analyst inputs, in order).
    pub corpus_digest: u64,
    /// FNV-1a digest of the full [`FragDroidConfig`] (budgets, ablation
    /// switches, deadline, fault seed and rate, retry limit).
    pub config_digest: u64,
    /// The flake-retry budget the run classifies with.
    pub flake_retries: u64,
}

impl Fingerprint {
    /// Fingerprints an invocation. A lazy source whose corpus cannot be
    /// streamed (I/O failure, corrupt shard) surfaces its reason.
    pub(crate) fn of(
        source: &SuiteSource<'_>,
        config: &FragDroidConfig,
        flake_retries: usize,
    ) -> Result<Self, String> {
        Ok(Fingerprint {
            apps: source.len() as u64,
            corpus_digest: source.digest()?,
            // The derived Debug rendering covers every config field, so
            // any behavioral knob changing changes the digest.
            config_digest: fnv1a(FNV_OFFSET, format!("{config:?}").as_bytes()),
            flake_retries: flake_retries as u64,
        })
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{{apps: {}, corpus: {:#018x}, config: {:#018x}, flake-retries: {}}}",
            self.apps, self.corpus_digest, self.config_digest, self.flake_retries
        )
    }
}

// ---------------------------------------------------------------------------
// Flake triage model

/// The verdict for one re-run failure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FlakeClass {
    /// Every retry reproduced the failure: a true bug (or a true
    /// resource exhaustion), worth a human's time.
    Deterministic,
    /// Some retries passed: the failure is environmental.
    Flaky {
        /// Fraction of retries that passed, in `(0, 1]`.
        pass_rate: f64,
    },
}

/// One triaged app.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlakeRecord {
    /// The app's input-order index.
    pub index: usize,
    /// The app's package (or slot label if it never decoded).
    pub package: String,
    /// What failed originally: `panicked`, `deadline-exceeded` or
    /// `crashed`.
    pub kind: String,
    /// Retry attempts executed.
    pub attempts: usize,
    /// Attempts that passed (no panic, no deadline, no crash).
    pub passes: usize,
    /// The verdict.
    pub classification: FlakeClass,
}

/// The whole triage pass: every failed app's verdict.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlakeSummary {
    /// The per-app retry budget the pass ran with.
    pub retries: usize,
    /// Apps classified [`FlakeClass::Deterministic`].
    pub deterministic: usize,
    /// Apps classified [`FlakeClass::Flaky`].
    pub flaky: usize,
    /// Per-app verdicts, in input order.
    pub apps: Vec<FlakeRecord>,
}

/// The failure kind that makes an outcome a triage candidate, if any.
pub fn failure_kind(outcome: &AppOutcome) -> Option<&'static str> {
    match outcome {
        AppOutcome::Panicked { .. } => Some("panicked"),
        AppOutcome::DeadlineExceeded(_) => Some("deadline-exceeded"),
        AppOutcome::Completed(report) if report.crashes > 0 => Some("crashed"),
        _ => None,
    }
}

/// The classification rule: zero passes is deterministic, anything else
/// is flaky with its pass rate.
pub(crate) fn classify(passes: usize, attempts: usize) -> FlakeClass {
    if passes == 0 || attempts == 0 {
        FlakeClass::Deterministic
    } else {
        FlakeClass::Flaky { pass_rate: passes as f64 / attempts as f64 }
    }
}

/// Runs the triage loop over `candidates` (`(index, package, kind)`),
/// calling `attempt(index, attempt_number)` up to `retries` times each.
/// Split from the suite plumbing so tests can drive it with synthetic
/// (genuinely nondeterministic) attempt functions.
pub(crate) fn triage_with(
    candidates: &[(usize, String, &'static str)],
    retries: usize,
    tracer: &fd_trace::Tracer,
    mut attempt: impl FnMut(usize, usize) -> bool,
) -> FlakeSummary {
    let mut summary = FlakeSummary {
        retries,
        deterministic: 0,
        flaky: 0,
        apps: Vec::with_capacity(candidates.len()),
    };
    for (index, package, kind) in candidates {
        let mut passes = 0;
        for attempt_number in 1..=retries {
            let passed = attempt(*index, attempt_number);
            tracer.event(|| fd_trace::TraceEvent::FlakeRetry {
                package: package.clone(),
                attempt: attempt_number as u64,
                passed,
            });
            if passed {
                passes += 1;
            }
        }
        let classification = classify(passes, retries);
        match classification {
            FlakeClass::Deterministic => summary.deterministic += 1,
            FlakeClass::Flaky { .. } => summary.flaky += 1,
        }
        summary.apps.push(FlakeRecord {
            index: *index,
            package: package.clone(),
            kind: (*kind).to_string(),
            attempts: retries,
            passes,
            classification,
        });
    }
    summary
}

/// Whether one re-run of `index` passes: it must complete without a
/// panic, a deadline, or a crash. Runs with the *same* config (and thus
/// the same seed), so a simulated-deterministic failure reproduces.
/// Re-runs lease from `pool` lane 0 — triage is sequential and happens
/// after the engine drained, so the lane is free.
fn retry_passes(
    source: &SuiteSource<'_>,
    index: usize,
    config: &FragDroidConfig,
    pool: &crate::pool::DevicePool,
) -> bool {
    let result = catch_unwind(AssertUnwindSafe(|| {
        source.run_one(index, config, &fd_trace::Tracer::disabled(), pool, 0)
    }));
    match result {
        Ok(Ok((report, _))) => !report.deadline_exceeded && report.crashes == 0,
        Ok(Err(_)) | Err(_) => false,
    }
}

// ---------------------------------------------------------------------------
// Journal records and line codec

/// One journal line's payload.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum JournalRecord {
    /// The first line: what this journal is for.
    Header(JournalHeader),
    /// One completed app. Boxed: this variant dwarfs the other two.
    Outcome(Box<OutcomeRecord>),
    /// The flake-triage verdicts of a completed run.
    Flakes(FlakeSummary),
}

/// The journal's first record.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct JournalHeader {
    /// Format version ([`JOURNAL_VERSION`]).
    version: u64,
    /// The invocation fingerprint.
    fingerprint: Fingerprint,
}

/// One completed app's durable state: enough to restore its suite slot
/// byte-identically.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct OutcomeRecord {
    /// The app's input-order index.
    index: usize,
    /// The slot's observability record (wall time preserved from the
    /// original run).
    metrics: AppMetrics,
    /// The outcome itself, report included.
    outcome: AppOutcome,
}

/// Borrowed mirror of [`JournalRecord::Outcome`]: serializes to exactly
/// the same JSON (external tag included) without cloning the outcome or
/// metrics into an owned record first. The hot append path uses this;
/// [`tests::journal_records_stream_identical_to_tree_render`] pins the
/// two encodings byte-identical.
struct OutcomeRef<'a> {
    /// The app's input-order index.
    index: usize,
    /// Borrowed slot metrics.
    metrics: &'a AppMetrics,
    /// Borrowed outcome.
    outcome: &'a AppOutcome,
}

impl serde::Serialize for OutcomeRef<'_> {
    fn to_value(&self) -> serde::Value {
        JournalRecord::Outcome(Box::new(OutcomeRecord {
            index: self.index,
            metrics: self.metrics.clone(),
            outcome: self.outcome.clone(),
        }))
        .to_value()
    }

    fn write_json(&self, out: &mut String) {
        // `{"Outcome":{...}}` with the record's keys in sorted order —
        // the shape the derived `JournalRecord`/`OutcomeRecord` impls
        // produce.
        out.push_str("{\"Outcome\":{\"index\":");
        serde::Serialize::write_json(&self.index, out);
        out.push_str(",\"metrics\":");
        serde::Serialize::write_json(self.metrics, out);
        out.push_str(",\"outcome\":");
        serde::Serialize::write_json(self.outcome, out);
        out.push_str("}}");
    }
}

/// Encodes one record as `"<fnv16hex> <json>\n"`, appended to `out`.
/// The checksum covers the JSON payload bytes, so any torn or corrupted
/// byte is detectable. `json` is a caller-owned scratch buffer: the
/// record streams into it (no `Value` tree, no per-record `String`), the
/// checksum is taken over it, and both buffers keep their capacity for
/// the next record. Shared with the serve job journal
/// ([`crate::serve`]), which speaks the same line format over its own
/// record type.
pub(crate) fn encode_line_into<T: serde::Serialize>(
    record: &T,
    json: &mut String,
    out: &mut String,
) {
    use std::fmt::Write as _;
    json.clear();
    serde::Serialize::write_json(record, json);
    let _ = write!(out, "{:016x} ", fnv1a(FNV_OFFSET, json.as_bytes()));
    out.push_str(json);
    out.push('\n');
}

/// One-shot form of [`encode_line_into`] for cold paths (header line,
/// tests).
fn encode_line(record: &JournalRecord) -> String {
    let mut json = String::new();
    let mut out = String::new();
    encode_line_into(record, &mut json, &mut out);
    out
}

pub(crate) enum LineError {
    /// The checksum prefix does not match the payload.
    Checksum,
    /// The line shape or JSON payload is invalid.
    Malformed(String),
}

/// Decodes one newline-stripped journal line into any record type that
/// shares the `"<fnv16hex> <json>\n"` framing.
pub(crate) fn decode_line<T: serde::Deserialize>(line: &[u8]) -> Result<T, LineError> {
    if line.len() < 18 || line[16] != b' ' {
        return Err(LineError::Malformed("line shorter than checksum prefix".into()));
    }
    let hex = std::str::from_utf8(&line[..16])
        .map_err(|_| LineError::Malformed("non-UTF-8 checksum".into()))?;
    // The writer emits exactly lowercase hex; accepting any other form
    // would let a flipped bit in the checksum field itself go unnoticed.
    if hex.bytes().any(|b| !matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return Err(LineError::Malformed(format!("non-canonical checksum field '{hex}'")));
    }
    let expected = u64::from_str_radix(hex, 16)
        .map_err(|_| LineError::Malformed(format!("bad checksum field '{hex}'")))?;
    let payload = &line[17..];
    if fnv1a(FNV_OFFSET, payload) != expected {
        return Err(LineError::Checksum);
    }
    let json = std::str::from_utf8(payload)
        .map_err(|_| LineError::Malformed("non-UTF-8 payload".into()))?;
    serde_json::from_str(json).map_err(|e| LineError::Malformed(e.to_string()))
}

// ---------------------------------------------------------------------------
// Loading

/// A journal replayed from disk.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The invocation fingerprint the journal was written for.
    pub fingerprint: Fingerprint,
    /// Completed slots by input-order index.
    pub slots: BTreeMap<usize, (AppOutcome, AppMetrics)>,
    /// The journaled flake-triage verdicts, if the run completed one.
    pub flakes: Option<FlakeSummary>,
    /// Length of the valid prefix, in bytes; everything past it is torn.
    pub valid_len: u64,
    /// Bytes of torn tail past `valid_len` (0 for a clean journal).
    pub torn_tail_bytes: u64,
}

/// Replays a journal: verifies every line's checksum, parses every
/// record, and isolates a torn tail (a final line without its newline —
/// the footprint of a mid-write kill), which is *dropped*, preserving
/// all progress before it. Corruption anywhere else is a typed error,
/// never a panic and never a silent wrong resume.
pub fn load_journal(path: &Path) -> Result<LoadedJournal, JournalError> {
    let data = std::fs::read(path).map_err(|e| JournalError::io(path, "read", e))?;

    let mut offset = 0usize;
    let mut line_no = 0usize;
    let mut torn_tail_bytes = 0u64;
    let mut records: Vec<(usize, JournalRecord)> = Vec::new();
    while offset < data.len() {
        line_no += 1;
        let Some(newline) = data[offset..].iter().position(|&b| b == b'\n') else {
            // No terminator: the writer died mid-append. Drop the tail.
            torn_tail_bytes = (data.len() - offset) as u64;
            break;
        };
        let line = &data[offset..offset + newline];
        let line_end = offset + newline + 1;
        match decode_line(line) {
            Ok(record) => {
                records.push((line_no, record));
                offset = line_end;
            }
            Err(LineError::Checksum) => {
                return Err(JournalError::ChecksumMismatch { line: line_no })
            }
            Err(LineError::Malformed(error)) => {
                return Err(JournalError::BadRecord { line: line_no, error })
            }
        }
    }
    let valid_len = offset as u64;

    let mut iter = records.into_iter();
    let fingerprint = match iter.next() {
        Some((_, JournalRecord::Header(header))) => {
            if header.version != JOURNAL_VERSION {
                return Err(JournalError::VersionMismatch { found: header.version });
            }
            header.fingerprint
        }
        Some((_, _)) => return Err(JournalError::MissingHeader),
        None if torn_tail_bytes > 0 => {
            // Bytes exist but not one complete record: the header itself
            // is torn, so nothing about the file can be trusted.
            return Err(JournalError::TornTail { bytes: torn_tail_bytes });
        }
        None => return Err(JournalError::MissingHeader),
    };

    let total = fingerprint.apps as usize;
    let mut slots = BTreeMap::new();
    let mut flakes = None;
    for (line, record) in iter {
        match record {
            JournalRecord::Header(_) => {
                return Err(JournalError::BadRecord {
                    line,
                    error: "second header record".to_string(),
                })
            }
            JournalRecord::Outcome(record) => {
                if record.index >= total {
                    return Err(JournalError::IndexOutOfRange { index: record.index, total });
                }
                if slots.insert(record.index, (record.outcome, record.metrics)).is_some() {
                    return Err(JournalError::DuplicateIndex { index: record.index });
                }
            }
            JournalRecord::Flakes(summary) => flakes = Some(summary),
        }
    }

    Ok(LoadedJournal { fingerprint, slots, flakes, valid_len, torn_tail_bytes })
}

// ---------------------------------------------------------------------------
// Writing

/// The append side of the journal, with group commit: appended records
/// are encoded into a reusable buffer and hit the file as one
/// `write_all` + one `sync_data` when the batch fills (or at `sync`).
/// Durability is unchanged from the write-per-append scheme — a record
/// was never guaranteed before its batch's fsync either — but the
/// per-record cost drops to an in-memory encode.
pub(crate) struct JournalWriter {
    file: File,
    path: PathBuf,
    /// Encoded-but-unwritten lines; flushed as one write.
    buf: String,
    /// Reusable per-record JSON scratch (see [`encode_line_into`]).
    json: String,
    /// Records in `buf`.
    pending: usize,
    fsync_every: usize,
}

impl JournalWriter {
    /// Creates a fresh journal: the header line is written to
    /// `<path>.tmp`, fsync'd, and renamed into place, so a crash at any
    /// point leaves either no journal or one with a complete header.
    fn create(
        path: &Path,
        fingerprint: Fingerprint,
        fsync_every: usize,
    ) -> Result<Self, JournalError> {
        let header = encode_line(&JournalRecord::Header(JournalHeader {
            version: JOURNAL_VERSION,
            fingerprint,
        }));
        JournalWriter::create_raw(path, &header, fsync_every)
    }

    /// [`Self::create`] over an already-encoded header line, so other
    /// journals sharing the line codec (the dispatch coordinator's, with
    /// its own header record) get the same atomic-create semantics.
    pub(crate) fn create_raw(
        path: &Path,
        header: &str,
        fsync_every: usize,
    ) -> Result<Self, JournalError> {
        let tmp = PathBuf::from(format!("{}.tmp", path.display()));
        {
            let mut file = File::create(&tmp).map_err(|e| JournalError::io(&tmp, "create", e))?;
            file.write_all(header.as_bytes())
                .map_err(|e| JournalError::io(&tmp, "write header", e))?;
            file.sync_all().map_err(|e| JournalError::io(&tmp, "fsync header", e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| JournalError::io(path, "rename into place", e))?;
        // Make the rename itself durable where the platform allows
        // directory fsync. A failure is surfaced, not swallowed: until
        // the directory entry is on stable storage a crash can lose the
        // just-renamed header, and a journal whose durability the caller
        // cannot trust is worse than an error.
        if let Some(parent) = path.parent() {
            let dir_path = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
            let dir = File::open(dir_path)
                .map_err(|e| JournalError::io(dir_path, "open directory", e))?;
            dir.sync_all().map_err(|e| JournalError::io(dir_path, "fsync directory", e))?;
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| JournalError::io(path, "open for append", e))?;
        Ok(JournalWriter::over(file, path, fsync_every))
    }

    /// Reopens an existing journal for appending, first truncating away
    /// the torn tail past `valid_len`.
    pub(crate) fn resume(
        path: &Path,
        valid_len: u64,
        fsync_every: usize,
    ) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| JournalError::io(path, "open for append", e))?;
        file.set_len(valid_len).map_err(|e| JournalError::io(path, "truncate torn tail", e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| JournalError::io(path, "seek to end", e))?;
        Ok(JournalWriter::over(file, path, fsync_every))
    }

    /// A writer over an already-positioned file.
    fn over(file: File, path: &Path, fsync_every: usize) -> Self {
        JournalWriter {
            file,
            path: path.to_path_buf(),
            buf: String::new(),
            json: String::new(),
            pending: 0,
            fsync_every,
        }
    }

    /// Appends one record to the in-memory batch; group-commits when the
    /// batch fills.
    pub(crate) fn append<T: serde::Serialize>(&mut self, record: &T) -> Result<(), JournalError> {
        encode_line_into(record, &mut self.json, &mut self.buf);
        self.pending += 1;
        if self.pending >= self.fsync_every.max(1) {
            self.sync()?;
        }
        Ok(())
    }

    /// Group commit: writes the whole batch with one `write_all` and
    /// makes it durable with one `sync_data` (the file is append-only,
    /// so data-plus-size is all that needs to reach stable storage).
    pub(crate) fn sync(&mut self) -> Result<(), JournalError> {
        if self.pending == 0 {
            return Ok(());
        }
        self.file
            .write_all(self.buf.as_bytes())
            .map_err(|e| JournalError::io(&self.path, "append", e))?;
        self.buf.clear();
        self.file.sync_data().map_err(|e| JournalError::io(&self.path, "fsync", e))?;
        self.pending = 0;
        Ok(())
    }
}

/// Writes a *complete* journal in one shot: header, every slot in index
/// order, one final fsync. Used by the dispatch coordinator
/// ([`crate::dispatch`]) to materialize a shard journal from outcomes it
/// collected over the wire — the resulting file is byte-for-byte what a
/// local [`run_shard`](crate::shard::run_shard) would have left behind,
/// so [`merge_shards`](crate::shard::merge_shards) accepts it without
/// knowing who wrote it. `create`'s tmp-then-rename makes re-dispatch
/// idempotent: rewriting an already-complete shard journal replaces it
/// atomically with identical bytes.
pub(crate) fn write_complete_journal<'a, I>(
    path: &Path,
    fingerprint: Fingerprint,
    slots: I,
) -> Result<(), JournalError>
where
    I: IntoIterator<Item = (usize, &'a AppOutcome, &'a AppMetrics)>,
{
    let mut writer = JournalWriter::create(path, fingerprint, usize::MAX)?;
    for (index, outcome, metrics) in slots {
        writer.append(&OutcomeRef { index, metrics, outcome })?;
    }
    writer.sync()
}

/// The writer plus its first failure: once an append fails (full disk,
/// revoked permissions) journaling stops, the suite keeps running, and
/// the error is reported when the run returns.
struct WriterState {
    writer: JournalWriter,
    failed: Option<JournalError>,
}

impl WriterState {
    /// Appends unless a previous append already failed; records the
    /// first failure. Returns whether the record was durably queued.
    fn append<T: serde::Serialize>(&mut self, record: &T) -> bool {
        if self.failed.is_some() {
            return false;
        }
        match self.writer.append(record) {
            Ok(()) => true,
            Err(error) => {
                self.failed = Some(error);
                false
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The checkpointed runner

/// How to checkpoint a suite run.
#[derive(Clone, Debug)]
pub struct CheckpointOptions {
    /// The journal path.
    pub path: PathBuf,
    /// Whether to resume an existing journal. Without this, an existing
    /// journal at the path is a refused overwrite
    /// ([`JournalError::AlreadyExists`]); a missing journal with
    /// `resume` simply starts fresh.
    pub resume: bool,
    /// Appended records between fsyncs ([`DEFAULT_FSYNC_BATCH`]).
    pub fsync_every: usize,
    /// Stop after this many *fresh* apps this invocation, leaving the
    /// journal partial — the deterministic stand-in for a kill that CI's
    /// resume-smoke job uses, and a way to slice long campaigns.
    pub app_budget: Option<usize>,
}

impl CheckpointOptions {
    /// Options writing to `path`, not resuming, with the default fsync
    /// batch.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointOptions {
            path: path.into(),
            resume: false,
            fsync_every: DEFAULT_FSYNC_BATCH,
            app_budget: None,
        }
    }

    /// Resume an existing journal (builder style).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Override the fsync batch size (builder style).
    pub fn with_fsync_every(mut self, fsync_every: usize) -> Self {
        self.fsync_every = fsync_every;
        self
    }

    /// Cap the fresh apps run this invocation (builder style).
    pub fn with_app_budget(mut self, budget: usize) -> Self {
        self.app_budget = Some(budget);
        self
    }
}

/// What a checkpointed (or flake-triaged) suite invocation produced.
#[derive(Debug)]
pub struct CheckpointedSuite {
    /// Outcomes and metrics for every *completed* app, in input order.
    /// For a complete run this covers the whole corpus; under an
    /// [`CheckpointOptions::app_budget`] cutoff it covers the journaled
    /// prefix of progress.
    pub run: SuiteRun,
    /// Corpus size.
    pub total: usize,
    /// Slots restored from the journal this invocation.
    pub resumed: usize,
    /// Slots actually run this invocation.
    pub fresh: usize,
    /// Bytes of torn tail dropped while loading the journal.
    pub torn_tail_bytes: u64,
}

impl CheckpointedSuite {
    /// Whether every corpus slot has an outcome.
    pub fn is_complete(&self) -> bool {
        self.run.outcomes.len() == self.total
    }

    /// Apps still missing an outcome (0 for a complete run).
    pub fn remaining(&self) -> usize {
        self.total - self.run.outcomes.len()
    }
}

/// [`run_container_suite_checkpointed`] over already-decoded apps.
pub fn run_suite_checkpointed(
    apps: &[SuiteApp],
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
    checkpoint: Option<&CheckpointOptions>,
    flake_retries: usize,
) -> Result<(CheckpointedSuite, fd_trace::Trace), JournalError> {
    run_checkpointed(
        &SuiteSource::Apps(apps),
        config,
        workers,
        trace_config,
        checkpoint,
        flake_retries,
        None,
    )
}

/// Runs a container suite with durable progress and flake triage.
///
/// With `checkpoint` set, every completed app's outcome is appended to
/// the journal as it finishes; with `resume`, journaled apps are skipped
/// and their slots restored byte-identically. With `flake_retries > 0`,
/// a complete run ends with the triage pass (resumed-complete runs reuse
/// the journaled verdicts instead of re-running). Passing `None` and `0`
/// reproduces the plain suite exactly.
pub fn run_container_suite_checkpointed(
    containers: &[SuiteContainer],
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
    checkpoint: Option<&CheckpointOptions>,
    flake_retries: usize,
) -> Result<(CheckpointedSuite, fd_trace::Trace), JournalError> {
    run_checkpointed(
        &SuiteSource::Containers(containers),
        config,
        workers,
        trace_config,
        checkpoint,
        flake_retries,
        None,
    )
}

/// [`run_container_suite_checkpointed`] against a caller-built
/// [`crate::pool::DevicePool`] — the hook for custom device factories
/// (kill-injection in CI). The pool should have at least `workers`
/// lanes.
#[allow(clippy::too_many_arguments)]
pub fn run_container_suite_checkpointed_pooled(
    containers: &[SuiteContainer],
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
    checkpoint: Option<&CheckpointOptions>,
    flake_retries: usize,
    pool: &crate::pool::DevicePool,
) -> Result<(CheckpointedSuite, fd_trace::Trace), JournalError> {
    run_checkpointed(
        &SuiteSource::Containers(containers),
        config,
        workers,
        trace_config,
        checkpoint,
        flake_retries,
        Some(pool),
    )
}

/// [`run_container_suite_checkpointed`] over a lazily fetched
/// [`CorpusSource`] — the shard coordinator's runner: an on-disk corpus
/// (or a sub-range of one) streams through the checkpointed engine
/// without ever materializing, and the journal fingerprint is computed
/// from the streamed digest, so it is identical to an eager run over
/// the same entries.
pub fn run_corpus_suite_checkpointed(
    source: &dyn crate::suite::CorpusSource,
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
    checkpoint: Option<&CheckpointOptions>,
    flake_retries: usize,
) -> Result<(CheckpointedSuite, fd_trace::Trace), JournalError> {
    run_checkpointed(
        &SuiteSource::Lazy(source),
        config,
        workers,
        trace_config,
        checkpoint,
        flake_retries,
        None,
    )
}

/// [`run_corpus_suite_checkpointed`] against a caller-built
/// [`crate::pool::DevicePool`].
#[allow(clippy::too_many_arguments)]
pub fn run_corpus_suite_checkpointed_pooled(
    source: &dyn crate::suite::CorpusSource,
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
    checkpoint: Option<&CheckpointOptions>,
    flake_retries: usize,
    pool: &crate::pool::DevicePool,
) -> Result<(CheckpointedSuite, fd_trace::Trace), JournalError> {
    run_checkpointed(
        &SuiteSource::Lazy(source),
        config,
        workers,
        trace_config,
        checkpoint,
        flake_retries,
        Some(pool),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_checkpointed(
    source: &SuiteSource<'_>,
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
    checkpoint: Option<&CheckpointOptions>,
    flake_retries: usize,
    pool: Option<&crate::pool::DevicePool>,
) -> Result<(CheckpointedSuite, fd_trace::Trace), JournalError> {
    let n = source.len();
    let fingerprint =
        Fingerprint::of(source, config, flake_retries).map_err(|detail| JournalError::Io {
            path: checkpoint.map(|o| o.path.display().to_string()).unwrap_or_default(),
            op: "digest corpus source",
            error: detail,
        })?;

    // Load or create the journal.
    let mut restored: BTreeMap<usize, (AppOutcome, AppMetrics)> = BTreeMap::new();
    let mut journaled_flakes: Option<FlakeSummary> = None;
    let mut torn_tail_bytes = 0u64;
    let writer: Option<Mutex<WriterState>> = match checkpoint {
        None => None,
        Some(opts) => {
            let journal_exists = opts.path.exists();
            let writer = if opts.resume && journal_exists {
                let loaded = load_journal(&opts.path)?;
                if loaded.fingerprint != fingerprint {
                    return Err(JournalError::FingerprintMismatch {
                        expected: fingerprint,
                        found: loaded.fingerprint,
                    });
                }
                torn_tail_bytes = loaded.torn_tail_bytes;
                restored = loaded.slots;
                journaled_flakes = loaded.flakes;
                JournalWriter::resume(&opts.path, loaded.valid_len, opts.fsync_every)?
            } else {
                if journal_exists {
                    return Err(JournalError::AlreadyExists {
                        path: opts.path.display().to_string(),
                    });
                }
                JournalWriter::create(&opts.path, fingerprint, opts.fsync_every)?
            };
            Some(Mutex::new(WriterState { writer, failed: None }))
        }
    };

    let resumed = restored.len();
    let mut remaining: Vec<usize> = (0..n).filter(|i| !restored.contains_key(i)).collect();
    if let Some(budget) = checkpoint.and_then(|o| o.app_budget) {
        remaining.truncate(budget);
    }
    let fresh = remaining.len();

    // Tracing scaffolding mirrors the plain runner: per-lane tracers for
    // the workers, a coordinator lane for the suite span and the
    // checkpoint/triage events.
    let trace_config = *trace_config;
    let clock = fd_trace::TraceClock::start();
    let coordinator_lane = workers.min(fresh.max(1)).max(1) as u64;
    let coordinator = fd_trace::Tracer::new(&trace_config, clock, coordinator_lane);
    let suite_span = coordinator.span(fd_trace::Phase::Suite, "suite");
    if resumed > 0 || torn_tail_bytes > 0 {
        coordinator.event(|| fd_trace::TraceEvent::CheckpointResume {
            skipped: resumed as u64,
            torn_tail_bytes,
        });
    }

    // One device lane per worker lane (plus one for sequential triage
    // re-runs, which use lane 0 after the engine drained).
    let default_pool;
    let pool = match pool {
        Some(pool) => pool,
        None => {
            default_pool =
                crate::pool::DevicePool::from_config(config, workers.min(fresh.max(1)).max(1));
            &default_pool
        }
    };

    let remaining_ref = &remaining;
    let writer_ref = &writer;
    let engine_run = engine::run_indexed_tagged(fresh, workers, |worker, k| {
        let index = remaining_ref[k];
        let tracer = fd_trace::Tracer::new(&trace_config, clock, worker as u64);
        // Catch panics *here* (inside the engine's own isolation) so a
        // panicked app still gets its journal record: the engine's
        // catch_unwind only fires if this closure itself dies.
        let started = Instant::now();
        let job =
            catch_unwind(AssertUnwindSafe(|| source.run_one(index, config, &tracer, pool, worker)))
                .map_err(|payload| engine::panic_message(payload.as_ref()));
        let elapsed = started.elapsed();
        let (outcome, package) = slot_outcome(job, source, index);
        let metrics = slot_metrics(&outcome, package, elapsed);
        if let Some(writer) = writer_ref {
            let appended = writer
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .append(&OutcomeRef { index, metrics: &metrics, outcome: &outcome });
            if appended {
                tracer.event(|| fd_trace::TraceEvent::CheckpointWrite { index: index as u64 });
            }
        }
        (outcome, metrics, tracer.finish())
    });

    // Merge restored and fresh slots, in input order.
    let mut slots = restored;
    let mut tracks = Vec::new();
    for (k, (result, _elapsed)) in engine_run.results.into_iter().enumerate() {
        let index = remaining[k];
        match result {
            Ok((outcome, metrics, track)) => {
                tracks.push(track);
                slots.insert(index, (outcome, metrics));
            }
            Err(message) => {
                // Only reachable if a worker died outside job isolation;
                // the slot degrades to a panic outcome.
                let outcome = AppOutcome::Panicked { message };
                let metrics = slot_metrics(&outcome, source.name_of(index), Duration::ZERO);
                slots.insert(index, (outcome, metrics));
            }
        }
    }

    // Flake triage: only once the whole corpus has outcomes. A fully
    // resumed run reuses the journaled verdicts — zero remaining work
    // means zero re-runs, and the report is byte-identical to the
    // uninterrupted one.
    let complete = slots.len() == n;
    let flake_summary = if flake_retries > 0 && complete {
        match journaled_flakes {
            Some(summary) if fresh == 0 => Some(summary),
            _ => {
                let candidates: Vec<(usize, String, &'static str)> = slots
                    .iter()
                    .filter_map(|(index, (outcome, metrics))| {
                        failure_kind(outcome).map(|kind| (*index, metrics.package.clone(), kind))
                    })
                    .collect();
                let summary = triage_with(&candidates, flake_retries, &coordinator, |index, _| {
                    retry_passes(source, index, config, pool)
                });
                if let Some(writer) = &writer {
                    writer
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .append(&JournalRecord::Flakes(summary.clone()));
                }
                Some(summary)
            }
        }
    } else {
        None
    };

    suite_span.end();
    let mut trace = fd_trace::Trace::new("fragdroid-suite");
    trace.absorb(coordinator.finish());
    for track in tracks {
        trace.absorb(track);
    }

    // Close out the journal: flush the last batch and surface the first
    // append failure (if any) as the run's error.
    if let Some(writer) = writer {
        let mut state = writer.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(error) = state.failed.take() {
            return Err(error);
        }
        state.writer.sync()?;
    }

    let mut outcomes = Vec::with_capacity(slots.len());
    let mut per_app = Vec::with_capacity(slots.len());
    for (_, (outcome, metrics)) in slots {
        outcomes.push(outcome);
        per_app.push(metrics);
    }
    let mut metrics = assemble_metrics(
        per_app,
        engine_run.workers,
        engine_run.wall,
        engine_run.busy,
        pool.incidents(),
    );
    metrics.flake_summary = flake_summary;

    Ok((
        CheckpointedSuite {
            run: SuiteRun { outcomes, metrics },
            total: n,
            resumed,
            fresh,
            torn_tail_bytes,
        },
        trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_splits_deterministic_from_flaky() {
        assert_eq!(classify(0, 3), FlakeClass::Deterministic);
        assert_eq!(classify(0, 0), FlakeClass::Deterministic);
        match classify(2, 3) {
            FlakeClass::Flaky { pass_rate } => assert!((pass_rate - 2.0 / 3.0).abs() < 1e-9),
            other => panic!("expected flaky, got {other:?}"),
        }
        assert_eq!(classify(3, 3), FlakeClass::Flaky { pass_rate: 1.0 });
    }

    #[test]
    fn triage_with_classifies_synthetic_nondeterminism() {
        let candidates = vec![
            (0usize, "com.example.heisenbug".to_string(), "crashed"),
            (3usize, "com.example.brick".to_string(), "panicked"),
        ];
        let tracer =
            fd_trace::Tracer::new(&fd_trace::TraceConfig::on(), fd_trace::TraceClock::start(), 0);
        // Index 0 passes on its 2nd and 4th attempts; index 3 never does.
        let summary =
            triage_with(&candidates, 4, &tracer, |index, attempt| index == 0 && attempt % 2 == 0);
        assert_eq!(summary.retries, 4);
        assert_eq!(summary.flaky, 1);
        assert_eq!(summary.deterministic, 1);
        assert_eq!(summary.apps.len(), 2);
        assert_eq!(summary.apps[0].passes, 2);
        assert_eq!(summary.apps[0].classification, FlakeClass::Flaky { pass_rate: 0.5 });
        assert_eq!(summary.apps[1].passes, 0);
        assert_eq!(summary.apps[1].classification, FlakeClass::Deterministic);

        // Every attempt is traced.
        let track = tracer.finish();
        let retries = track
            .records
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    fd_trace::TraceRecord::Event(e)
                        if matches!(e.event, fd_trace::TraceEvent::FlakeRetry { .. })
                )
            })
            .count();
        assert_eq!(retries, 8, "4 attempts × 2 candidates traced");
    }

    #[test]
    fn failure_kinds_cover_the_triage_candidates() {
        assert_eq!(failure_kind(&AppOutcome::Panicked { message: "x".into() }), Some("panicked"));
        assert_eq!(failure_kind(&AppOutcome::Rejected { reason: "x".into() }), None);
    }

    #[test]
    fn line_codec_roundtrips_and_rejects_corruption() {
        let record = JournalRecord::Header(JournalHeader {
            version: JOURNAL_VERSION,
            fingerprint: Fingerprint {
                apps: 3,
                corpus_digest: 7,
                config_digest: 9,
                flake_retries: 0,
            },
        });
        let line = encode_line(&record);
        assert!(line.ends_with('\n'));
        let decoded = decode_line::<JournalRecord>(line.trim_end().as_bytes());
        assert!(decoded.is_ok());

        // Flip one payload byte: checksum catches it.
        let mut bytes = line.trim_end().as_bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(matches!(decode_line::<JournalRecord>(&bytes), Err(LineError::Checksum)));

        // Too-short lines are malformed, not panics.
        assert!(matches!(decode_line::<JournalRecord>(b"abc"), Err(LineError::Malformed(_))));
        assert!(matches!(decode_line::<JournalRecord>(b""), Err(LineError::Malformed(_))));
    }

    /// The journal encodes records through the streaming
    /// `Serialize::write_json` path; a resumed run decodes them through
    /// `from_str`. Pin the stream byte-identical to the `Value`-tree
    /// render so the two paths can never drift apart silently (the tree
    /// is the reference: sorted keys, canonical number/string forms).
    #[test]
    fn journal_records_stream_identical_to_tree_render() {
        let records = vec![
            JournalRecord::Header(JournalHeader {
                version: JOURNAL_VERSION,
                fingerprint: Fingerprint {
                    apps: 3,
                    corpus_digest: 7,
                    config_digest: 9,
                    flake_retries: 2,
                },
            }),
            JournalRecord::Outcome(Box::new(OutcomeRecord {
                index: 11,
                metrics: AppMetrics {
                    package: "com.example.\"quoted\"\n".to_string(),
                    wall_ms: 1843,
                    events_injected: 250,
                    events_per_second: 135.63,
                    test_cases_run: 4,
                    test_cases_generated: 9,
                    crashes: 1,
                    recovered_crashes: 1,
                    retries: 0,
                    faults_injected: 3,
                    panicked: false,
                    deadline_exceeded: true,
                    rejected: false,
                    reject_reason: String::new(),
                },
                outcome: AppOutcome::Panicked { message: "index out of bounds".to_string() },
            })),
            JournalRecord::Outcome(Box::new(OutcomeRecord {
                index: 0,
                metrics: AppMetrics {
                    package: "com.example.reject".to_string(),
                    wall_ms: 0,
                    events_injected: 0,
                    events_per_second: 0.0,
                    test_cases_run: 0,
                    test_cases_generated: 0,
                    crashes: 0,
                    recovered_crashes: 0,
                    retries: 0,
                    faults_injected: 0,
                    panicked: false,
                    deadline_exceeded: false,
                    rejected: true,
                    reject_reason: "container: 4 trailing bytes".to_string(),
                },
                outcome: AppOutcome::Rejected { reason: "container: 4 trailing bytes".to_string() },
            })),
            JournalRecord::Flakes(FlakeSummary {
                retries: 3,
                flaky: 1,
                deterministic: 1,
                apps: vec![FlakeRecord {
                    index: 2,
                    package: "com.example.heisenbug".to_string(),
                    kind: "crashed".to_string(),
                    attempts: 3,
                    passes: 2,
                    classification: FlakeClass::Flaky { pass_rate: 2.0 / 3.0 },
                }],
            }),
        ];
        for record in &records {
            let mut streamed = String::new();
            serde::Serialize::write_json(record, &mut streamed);
            let tree = serde::Serialize::to_value(record).render_json(false);
            assert_eq!(streamed, tree, "streamed JSON must match the tree render");

            // And the framed line round-trips through the decoder.
            let line = encode_line(record);
            assert!(decode_line::<JournalRecord>(line.trim_end().as_bytes()).is_ok());
        }
    }

    #[test]
    fn journal_errors_render_actionable_messages() {
        let text = JournalError::AlreadyExists { path: "j.ckpt".into() }.to_string();
        assert!(text.contains("--resume"));
        let expected =
            Fingerprint { apps: 1, corpus_digest: 2, config_digest: 3, flake_retries: 0 };
        let found = Fingerprint { apps: 9, corpus_digest: 8, config_digest: 7, flake_retries: 1 };
        let text = JournalError::FingerprintMismatch { expected, found }.to_string();
        assert!(text.contains("refusing to resume"));
        assert!(JournalError::ChecksumMismatch { line: 4 }.to_string().contains("line 4"));
    }
}
