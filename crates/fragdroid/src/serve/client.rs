//! The retry-with-backoff serve client `fragdroid submit` drives: it
//! connects (TCP or Unix), submits one job under a client-assigned id,
//! and polls until the report lands — reconnecting and resubmitting
//! idempotently across torn connections, `Busy` queues, draining
//! servers, and server restarts. With a [`ChaosConfig`] armed, every
//! connection is wrapped in a seeded [`ChaosStream`] and requests are
//! occasionally duplicated out of order, turning the client into the
//! deterministic chaos harness the serve property tests run.

use super::chaos::{ChaosConfig, ChaosStream};
use super::{AnyStream, ListenAddr, ServeRequest, ServeResponse};
use fd_droidsim::proto::{decode_payload, encode_frame, Envelope, FrameBuffer};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// How a driven job ended — both arms are *successful conversations*;
/// a `Rejected` is the server's typed refusal of the content, not a
/// transport failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// The run finished; `json` is byte-identical to `run --json`.
    Report {
        /// The pretty-printed report.
        json: String,
    },
    /// The server refused the content (bad hex, rejected container).
    Rejected {
        /// The typed refusal, rendered.
        reason: String,
    },
}

/// A typed client failure. Everything transient is retried internally;
/// these are the ends of the road. `fd-cli` maps them to exit code 5.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Every reconnect attempt failed.
    Exhausted {
        /// The job being driven.
        job: u64,
        /// Attempts made.
        attempts: u32,
        /// The last failure, rendered.
        last: String,
    },
    /// The overall deadline passed before the job finished.
    DeadlineExceeded {
        /// The job being driven.
        job: u64,
        /// The last failure (or progress state), rendered.
        last: String,
    },
    /// The server knows this job id under different content — a
    /// permanent error; pick a fresh id.
    Conflict {
        /// The conflicting job id.
        job: u64,
        /// The server's rendering of the mismatch.
        reason: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { job, attempts, last } => {
                write!(f, "job {job}: gave up after {attempts} attempts: {last}")
            }
            ClientError::DeadlineExceeded { job, last } => {
                write!(f, "job {job}: deadline exceeded: {last}")
            }
            ClientError::Conflict { job, reason } => write!(f, "job {job}: conflict: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A submit-and-poll client with retry, backoff, and optional chaos.
pub struct SubmitClient {
    addr: ListenAddr,
    max_attempts: u32,
    base_backoff: Duration,
    poll_interval: Duration,
    deadline: Duration,
    io_timeout: Duration,
    chaos: Option<ChaosConfig>,
    connections: u64,
    /// Seeded jitter source for retry backoff. `None` keeps the legacy
    /// deterministic schedule (tests that pin exact sleep totals).
    jitter: Option<StdRng>,
}

impl SubmitClient {
    /// A client for `addr` with the default budgets: 8 reconnect
    /// attempts, 10 ms base backoff (doubling, capped at 500 ms), 5 ms
    /// poll interval, 60 s overall deadline, 2 s per-operation I/O
    /// timeout, no chaos.
    pub fn new(addr: ListenAddr) -> SubmitClient {
        SubmitClient {
            addr,
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            poll_interval: Duration::from_millis(5),
            deadline: Duration::from_secs(60),
            io_timeout: Duration::from_secs(2),
            chaos: None,
            connections: 0,
            jitter: None,
        }
    }

    /// Arms the seeded chaos schedule on every connection.
    pub fn with_chaos(mut self, config: ChaosConfig) -> SubmitClient {
        self.chaos = Some(config);
        self
    }

    /// Overrides the overall per-job deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> SubmitClient {
        self.deadline = deadline;
        self
    }

    /// Overrides the reconnect-attempt budget (clamped to at least 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> SubmitClient {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Arms seeded *equal jitter* on the retry backoff: each nap keeps
    /// half its exponential value and draws the other half uniformly
    /// from the seeded stream. Deterministic backoff synchronizes retry
    /// storms when many clients lose the same server at once; the seed
    /// keeps tests reproducible.
    pub fn with_backoff_jitter(mut self, seed: u64) -> SubmitClient {
        self.jitter = Some(StdRng::seed_from_u64(seed));
        self
    }

    /// Submits `job` and waits for its report or typed refusal.
    pub fn submit(
        &mut self,
        job: u64,
        container_hex: &str,
        inputs: &BTreeMap<String, String>,
    ) -> Result<JobOutcome, ClientError> {
        match self.drive(job, container_hex, inputs, false)? {
            Some(outcome) => Ok(outcome),
            None => Err(ClientError::DeadlineExceeded {
                job,
                last: "drive returned without an outcome".to_string(),
            }),
        }
    }

    /// Submits `job` and returns once the server has (durably)
    /// accepted it, without waiting for the run.
    pub fn submit_async(
        &mut self,
        job: u64,
        container_hex: &str,
        inputs: &BTreeMap<String, String>,
    ) -> Result<(), ClientError> {
        self.drive(job, container_hex, inputs, true).map(|_| ())
    }

    /// The submit/poll/retry state machine shared by [`Self::submit`]
    /// and [`Self::submit_async`].
    fn drive(
        &mut self,
        job: u64,
        container_hex: &str,
        inputs: &BTreeMap<String, String>,
        accept_only: bool,
    ) -> Result<Option<JobOutcome>, ClientError> {
        let started = Instant::now();
        let mut attempts: u32 = 0;
        let mut last = String::from("no attempt made");
        let mut conversation: Option<Conversation> = None;
        loop {
            if started.elapsed() >= self.deadline {
                return Err(ClientError::DeadlineExceeded { job, last });
            }
            if conversation.is_none() {
                match self.open() {
                    Ok(c) => conversation = Some(c),
                    Err(error) => {
                        last = error;
                        attempts += 1;
                        if attempts >= self.max_attempts {
                            return Err(ClientError::Exhausted { job, attempts, last });
                        }
                        self.backoff(attempts, started);
                        continue;
                    }
                }
            }
            // The open above either filled the slot or `continue`d; a
            // still-empty slot is a logic regression we recover from by
            // reconnecting rather than panicking mid-retry-loop.
            let Some(c) = conversation.as_mut() else {
                last = "no open conversation after connect".to_string();
                continue;
            };
            let request = ServeRequest::Submit {
                job,
                container_hex: container_hex.to_string(),
                inputs: inputs.clone(),
            };
            let step = match c.call(request) {
                Ok(ServeResponse::Accepted { .. }) => {
                    if accept_only {
                        return Ok(None);
                    }
                    poll_until_settled(c, job, started, self.deadline, self.poll_interval)
                }
                Ok(ServeResponse::Busy { retry_after_ms, .. }) => {
                    Step::SleepResubmit(retry_after_ms)
                }
                Ok(ServeResponse::Draining { retry_after_ms, .. }) => {
                    Step::Broken(format!("server draining; retry after {retry_after_ms}ms"))
                }
                Ok(ServeResponse::Conflict { reason, .. }) => {
                    return Err(ClientError::Conflict { job, reason })
                }
                Ok(ServeResponse::Rejected { reason, .. }) => {
                    return Ok(Some(JobOutcome::Rejected { reason }))
                }
                Ok(other) => Step::Broken(format!("unexpected submit reply: {other:?}")),
                Err(error) => Step::Broken(error),
            };
            match step {
                Step::Settled(outcome) => return Ok(Some(outcome)),
                Step::Deadline(progress) => {
                    return Err(ClientError::DeadlineExceeded { job, last: progress })
                }
                Step::SleepResubmit(ms) => {
                    // Typed back-pressure: the server asked us to wait;
                    // the connection is still good, no attempt burned.
                    bounded_sleep(Duration::from_millis(ms), started, self.deadline);
                }
                Step::Resubmit => {}
                Step::Broken(error) => {
                    last = error;
                    conversation = None;
                    attempts += 1;
                    if attempts >= self.max_attempts {
                        return Err(ClientError::Exhausted { job, attempts, last });
                    }
                    self.backoff(attempts, started);
                }
            }
        }
    }

    /// Opens (and chaos-wraps) a fresh connection.
    fn open(&mut self) -> Result<Conversation, String> {
        let stream =
            AnyStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.io_timeout))
            .map_err(|e| format!("set read timeout: {e}"))?;
        stream
            .set_write_timeout(Some(self.io_timeout))
            .map_err(|e| format!("set write timeout: {e}"))?;
        self.connections += 1;
        let (wire, dup_rng, dup_per_mille) = match &self.chaos {
            Some(config) => {
                let per_conn = config.for_connection(self.connections);
                let dup_seed = per_conn.seed.wrapping_add(0x5eed);
                (
                    Wire::Chaos(ChaosStream::new(stream, per_conn)),
                    Some(StdRng::seed_from_u64(dup_seed)),
                    config.dup_per_mille,
                )
            }
            None => (Wire::Plain(stream), None, 0),
        };
        Ok(Conversation {
            wire,
            frames: FrameBuffer::new(),
            next_id: 1,
            last_frame: None,
            dup_rng,
            dup_per_mille,
        })
    }

    /// Exponential backoff, doubling from the base and capped at
    /// 500 ms, never sleeping past the deadline. With jitter armed
    /// ([`Self::with_backoff_jitter`]) the nap is equal-jittered: half
    /// fixed, half drawn from the seeded stream, so a fleet of clients
    /// that lost the same server desynchronizes instead of hammering it
    /// in lockstep.
    fn backoff(&mut self, attempt: u32, started: Instant) {
        let factor = 1u32 << attempt.min(6);
        let mut nap = (self.base_backoff * factor).min(Duration::from_millis(500));
        if let Some(rng) = self.jitter.as_mut() {
            let half = nap / 2;
            nap = half + Duration::from_nanos(rng.gen_range(0..=half.as_nanos() as u64));
        }
        bounded_sleep(nap, started, self.deadline);
    }
}

/// What one submit-or-poll round decided.
enum Step {
    /// The job reached a terminal outcome.
    Settled(JobOutcome),
    /// The deadline passed mid-poll.
    Deadline(String),
    /// Server said `Busy`: sleep the hint, resubmit on the same
    /// connection.
    SleepResubmit(u64),
    /// Resubmit immediately (server forgot the job — restart without a
    /// journal).
    Resubmit,
    /// The connection is no longer trustworthy: reconnect with
    /// backoff.
    Broken(String),
}

/// Polls until the job settles, the connection breaks, or the deadline
/// passes.
fn poll_until_settled(
    c: &mut Conversation,
    job: u64,
    started: Instant,
    deadline: Duration,
    poll_interval: Duration,
) -> Step {
    loop {
        if started.elapsed() >= deadline {
            return Step::Deadline("job accepted, report still pending".to_string());
        }
        match c.call(ServeRequest::Poll { job }) {
            Ok(ServeResponse::Pending { .. }) => {
                bounded_sleep(poll_interval, started, deadline);
            }
            Ok(ServeResponse::Report { json, .. }) => {
                return Step::Settled(JobOutcome::Report { json })
            }
            Ok(ServeResponse::Rejected { reason, .. }) => {
                return Step::Settled(JobOutcome::Rejected { reason })
            }
            // The server does not know the job: it restarted without a
            // journal (or we raced its recovery). Resubmitting under
            // the same id is idempotent either way.
            Ok(ServeResponse::UnknownJob { .. }) => return Step::Resubmit,
            Ok(other) => return Step::Broken(format!("unexpected poll reply: {other:?}")),
            Err(error) => return Step::Broken(error),
        }
    }
}

/// Sleeps `nap`, clipped so it never overshoots the deadline.
fn bounded_sleep(nap: Duration, started: Instant, deadline: Duration) {
    let remaining = deadline.saturating_sub(started.elapsed());
    let nap = nap.min(remaining);
    if !nap.is_zero() {
        std::thread::sleep(nap);
    }
}

/// A connection that is either honest or chaos-wrapped.
enum Wire {
    Plain(AnyStream),
    Chaos(ChaosStream<AnyStream>),
}

impl Read for Wire {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Wire::Plain(s) => s.read(buf),
            Wire::Chaos(s) => s.read(buf),
        }
    }
}

impl Write for Wire {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Wire::Plain(s) => s.write(buf),
            Wire::Chaos(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Wire::Plain(s) => s.flush(),
            Wire::Chaos(s) => s.flush(),
        }
    }
}

/// One request/reply exchange stream: monotonically-increasing request
/// ids, stale-duplicate replies skipped, optional chaos duplication of
/// the previous frame.
struct Conversation {
    wire: Wire,
    frames: FrameBuffer,
    next_id: u64,
    last_frame: Option<Vec<u8>>,
    dup_rng: Option<StdRng>,
    dup_per_mille: u32,
}

impl Conversation {
    /// Sends one request and reads until its reply arrives. Any
    /// transport or protocol trouble is an `Err(String)` — the caller
    /// reconnects.
    fn call(&mut self, body: ServeRequest) -> Result<ServeResponse, String> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_frame(&Envelope { id, body });
        if let (Some(rng), Some(previous)) = (self.dup_rng.as_mut(), self.last_frame.as_ref()) {
            // Chaos reordering: occasionally replay the previous frame
            // first. The server must absorb the duplicate idempotently;
            // we skip its stale reply below.
            if rng.gen_range(0u32..1000) < self.dup_per_mille {
                self.wire.write_all(previous).map_err(|e| format!("write dup: {e}"))?;
            }
        }
        self.wire.write_all(&frame).map_err(|e| format!("write: {e}"))?;
        self.wire.flush().map_err(|e| format!("flush: {e}"))?;
        self.last_frame = Some(frame);

        let mut chunk = [0u8; 64 * 1024];
        loop {
            loop {
                let payload = match self.frames.next_frame() {
                    Ok(Some(p)) => p,
                    Ok(None) => break,
                    Err(e) => return Err(format!("bad reply frame: {e:?}")),
                };
                let envelope = decode_payload::<ServeResponse>(&payload)
                    .map_err(|e| format!("bad reply payload: {e:?}"))?;
                if envelope.id == id {
                    return Ok(envelope.body);
                }
                if envelope.id > id {
                    return Err(format!(
                        "reply id {} is from the future (expected {id})",
                        envelope.id
                    ));
                }
                // A reply to a chaos-duplicated earlier request (or the
                // listener's id-0 Overloaded frame): surface the typed
                // overload, skip ordinary stale duplicates.
                if let ServeResponse::Overloaded { retry_after_ms } = envelope.body {
                    return Err(format!("server overloaded; retry after {retry_after_ms}ms"));
                }
            }
            match self.wire.read(&mut chunk) {
                Ok(0) => return Err("server closed the connection".to_string()),
                Ok(n) => self.frames.push(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("read: {e}")),
            }
        }
    }
}
