//! The serve job journal: an append-only, checksummed record of every
//! accepted submission and every finished result, so a killed server
//! can be restarted and pick up exactly where it died.
//!
//! The on-disk format reuses the checkpoint journal's line codec —
//! `"<fnv16hex> <json>\n"` per record ([`crate::checkpoint`]) — over
//! its own record type:
//!
//! - a `Header` stamping the format version and the config digest
//!   (refusing to mix results from different configurations, like the
//!   checkpoint fingerprint),
//! - one `Submitted` per accepted job, fsynced **before** the client
//!   sees `Accepted` (durable admission),
//! - one `Completed` per finished job, fsynced before the in-memory
//!   table flips to done.
//!
//! Recovery replays the valid prefix: a `Completed` job is served from
//! the journal byte-identically, a `Submitted`-only job is re-queued
//! (the engine is deterministic, so the re-run reproduces the same
//! report), and a torn tail — the half-written line a `kill -9` leaves
//! behind — is truncated away. Creation is atomic (tmp + fsync +
//! rename + directory fsync), so a journal file at the path always has
//! a complete header.

use crate::checkpoint::{decode_line, encode_line_into, JournalError, LineError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Job-journal format version; bumped whenever a record shape changes
/// incompatibly.
pub(crate) const JOB_JOURNAL_VERSION: u64 = 1;

/// One journal line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum JobRecord {
    /// First line of every journal.
    Header { config_digest: u64, version: u64 },
    /// An accepted submission, written before the `Accepted` reply.
    Submitted { container_hex: String, digest: u64, inputs: BTreeMap<String, String>, job: u64 },
    /// A finished job: `ok` selects report (`true`) vs refusal.
    Completed { job: u64, ok: bool, payload: String },
}

/// One job restored from the journal.
pub(crate) struct RecoveredJob {
    pub job: u64,
    pub digest: u64,
    pub container_hex: String,
    pub inputs: BTreeMap<String, String>,
    /// `Some` when a `Completed` record survived: `Ok(report_json)` or
    /// `Err(refusal)`. `None` means the job must be re-queued.
    pub result: Option<Result<String, String>>,
}

/// Everything recovery found.
#[derive(Default)]
pub(crate) struct Recovery {
    /// Restored jobs in job-id order.
    pub jobs: Vec<RecoveredJob>,
    /// Bytes of torn tail truncated away (0 for a clean journal).
    pub torn_tail_bytes: u64,
}

/// An open job journal, positioned for appending.
pub(crate) struct JobJournal {
    path: PathBuf,
    file: File,
    json_scratch: String,
    line_scratch: String,
}

impl JobJournal {
    /// Opens the journal at `path`, recovering its contents, or creates
    /// a fresh one when the path does not exist.
    pub fn open_or_create(
        path: &Path,
        config_digest: u64,
    ) -> Result<(JobJournal, Recovery), JournalError> {
        if path.exists() {
            Self::recover(path, config_digest)
        } else {
            Self::create(path, config_digest).map(|journal| (journal, Recovery::default()))
        }
    }

    /// Creates a fresh journal: header into a tmp file, fsync, rename
    /// over the final path, fsync the directory — after this sequence
    /// the journal either exists with a complete header or not at all.
    fn create(path: &Path, config_digest: u64) -> Result<JobJournal, JournalError> {
        let tmp = path.with_extension("jobs.tmp");
        let mut file = File::create(&tmp).map_err(|e| io_err(&tmp, "create", e))?;
        let mut json = String::new();
        let mut line = String::new();
        encode_line_into(
            &JobRecord::Header { config_digest, version: JOB_JOURNAL_VERSION },
            &mut json,
            &mut line,
        );
        file.write_all(line.as_bytes()).map_err(|e| io_err(&tmp, "write header", e))?;
        file.sync_all().map_err(|e| io_err(&tmp, "fsync", e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, "rename", e))?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(dir_handle) = File::open(dir) {
                let _ = dir_handle.sync_all();
            }
        }
        let file =
            OpenOptions::new().append(true).open(path).map_err(|e| io_err(path, "open", e))?;
        Ok(JobJournal { path: path.to_path_buf(), file, json_scratch: json, line_scratch: line })
    }

    /// Replays an existing journal: validates the header, restores the
    /// job table from the valid record prefix, truncates everything
    /// past the first undecodable line (the torn tail a crash leaves),
    /// and reopens for appending.
    fn recover(path: &Path, config_digest: u64) -> Result<(JobJournal, Recovery), JournalError> {
        let data = std::fs::read(path).map_err(|e| io_err(path, "read", e))?;
        let mut records: Vec<JobRecord> = Vec::new();
        let mut offset = 0usize;
        while offset < data.len() {
            let Some(newline) = data[offset..].iter().position(|&b| b == b'\n') else {
                break; // incomplete final line: torn tail
            };
            // A line that fails its checksum or does not parse marks
            // the start of the torn tail; resubmission re-runs anything
            // the truncation drops, so stopping here is safe.
            match decode_line::<JobRecord>(&data[offset..offset + newline]) {
                Ok(record) => {
                    records.push(record);
                    offset += newline + 1;
                }
                Err(LineError::Checksum) | Err(LineError::Malformed(_)) => break,
            }
        }
        let valid_len = offset as u64;
        let torn_tail_bytes = data.len() as u64 - valid_len;

        let mut iter = records.into_iter();
        match iter.next() {
            Some(JobRecord::Header { config_digest: found, version }) => {
                if version != JOB_JOURNAL_VERSION {
                    return Err(JournalError::VersionMismatch { found: version });
                }
                if found != config_digest {
                    return Err(JournalError::FingerprintMismatch {
                        expected: digest_fingerprint(config_digest),
                        found: digest_fingerprint(found),
                    });
                }
            }
            Some(_) | None => return Err(JournalError::MissingHeader),
        }

        let mut jobs: BTreeMap<u64, RecoveredJob> = BTreeMap::new();
        for (line, record) in iter.enumerate() {
            // 1-based, counting the header as line 1.
            let line = line + 2;
            match record {
                JobRecord::Header { .. } => {
                    return Err(JournalError::BadRecord {
                        line,
                        error: "second header record".to_string(),
                    })
                }
                JobRecord::Submitted { container_hex, digest, inputs, job } => {
                    if jobs.contains_key(&job) {
                        return Err(JournalError::DuplicateIndex { index: job as usize });
                    }
                    jobs.insert(
                        job,
                        RecoveredJob { job, digest, container_hex, inputs, result: None },
                    );
                }
                JobRecord::Completed { job, ok, payload } => {
                    let Some(entry) = jobs.get_mut(&job) else {
                        return Err(JournalError::BadRecord {
                            line,
                            error: format!("Completed record for unsubmitted job {job}"),
                        });
                    };
                    entry.result = Some(if ok { Ok(payload) } else { Err(payload) });
                }
            }
        }

        if torn_tail_bytes > 0 {
            let file =
                OpenOptions::new().write(true).open(path).map_err(|e| io_err(path, "open", e))?;
            file.set_len(valid_len).map_err(|e| io_err(path, "truncate", e))?;
            file.sync_all().map_err(|e| io_err(path, "fsync", e))?;
        }
        let file =
            OpenOptions::new().append(true).open(path).map_err(|e| io_err(path, "open", e))?;
        Ok((
            JobJournal {
                path: path.to_path_buf(),
                file,
                json_scratch: String::new(),
                line_scratch: String::new(),
            },
            Recovery { jobs: jobs.into_values().collect(), torn_tail_bytes },
        ))
    }

    /// Appends (and fsyncs) one `Submitted` record. Called before the
    /// `Accepted` reply — an error here refuses the submission.
    pub fn append_submitted(
        &mut self,
        job: u64,
        digest: u64,
        container_hex: &str,
        inputs: &BTreeMap<String, String>,
    ) -> Result<(), JournalError> {
        self.append(&JobRecord::Submitted {
            container_hex: container_hex.to_string(),
            digest,
            inputs: inputs.clone(),
            job,
        })
    }

    /// Appends (and fsyncs) one `Completed` record.
    pub fn append_completed(
        &mut self,
        job: u64,
        ok: bool,
        payload: &str,
    ) -> Result<(), JournalError> {
        self.append(&JobRecord::Completed { job, ok, payload: payload.to_string() })
    }

    fn append(&mut self, record: &JobRecord) -> Result<(), JournalError> {
        self.line_scratch.clear();
        encode_line_into(record, &mut self.json_scratch, &mut self.line_scratch);
        self.file
            .write_all(self.line_scratch.as_bytes())
            .map_err(|e| io_err(&self.path, "append", e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, "fsync", e))
    }

    /// Flushes pending writes to disk.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_data().map_err(|e| io_err(&self.path, "fsync", e))
    }
}

fn io_err(path: &Path, op: &'static str, error: std::io::Error) -> JournalError {
    JournalError::Io { path: path.display().to_string(), op, error: error.to_string() }
}

/// Wraps a bare config digest in the checkpoint [`Fingerprint`] shape
/// so the mismatch error renders through the same Display path. The
/// job journal has no corpus or flake budget, so those fields are 0.
fn digest_fingerprint(config_digest: u64) -> crate::checkpoint::Fingerprint {
    crate::checkpoint::Fingerprint { apps: 0, corpus_digest: 0, config_digest, flake_retries: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fd-serve-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    fn inputs() -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        m.insert("field".to_string(), "value".to_string());
        m
    }

    #[test]
    fn create_append_recover_round_trip() {
        let path = tmp("roundtrip.jobs");
        let _ = std::fs::remove_file(&path);
        let (mut journal, recovery) = JobJournal::open_or_create(&path, 7).expect("create");
        assert!(recovery.jobs.is_empty());
        journal.append_submitted(3, 11, "aabb", &inputs()).expect("submit 3");
        journal.append_submitted(1, 12, "ccdd", &BTreeMap::new()).expect("submit 1");
        journal.append_completed(3, true, "{\"report\":1}").expect("complete 3");
        drop(journal);

        let (_journal, recovery) = JobJournal::open_or_create(&path, 7).expect("recover");
        assert_eq!(recovery.torn_tail_bytes, 0);
        assert_eq!(recovery.jobs.len(), 2);
        // Job-id order: job 1 (pending) then job 3 (completed).
        assert_eq!(recovery.jobs[0].job, 1);
        assert!(recovery.jobs[0].result.is_none());
        assert_eq!(recovery.jobs[0].container_hex, "ccdd");
        assert_eq!(recovery.jobs[1].job, 3);
        assert_eq!(recovery.jobs[1].digest, 11);
        assert_eq!(recovery.jobs[1].inputs, inputs());
        assert_eq!(recovery.jobs[1].result, Some(Ok("{\"report\":1}".to_string())));
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_kept() {
        let path = tmp("torn.jobs");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _) = JobJournal::open_or_create(&path, 1).expect("create");
        journal.append_submitted(0, 5, "aa", &BTreeMap::new()).expect("submit");
        journal.append_completed(0, false, "refused").expect("complete");
        drop(journal);

        let clean_len = std::fs::metadata(&path).expect("meta").len();
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(b"0123456789abcdef torn-half-written-line");
        std::fs::write(&path, &bytes).expect("tear");

        let (_journal, recovery) = JobJournal::open_or_create(&path, 1).expect("recover");
        assert_eq!(recovery.torn_tail_bytes, 39);
        assert_eq!(recovery.jobs.len(), 1);
        assert_eq!(recovery.jobs[0].result, Some(Err("refused".to_string())));
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), clean_len, "tail truncated");
    }

    #[test]
    fn config_mismatch_and_version_are_refused() {
        let path = tmp("mismatch.jobs");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = JobJournal::open_or_create(&path, 42).expect("create");
        drop(journal);
        match JobJournal::open_or_create(&path, 43) {
            Err(JournalError::FingerprintMismatch { expected, found }) => {
                assert_eq!(expected.config_digest, 43);
                assert_eq!(found.config_digest, 42);
            }
            other => panic!("expected FingerprintMismatch, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn completed_without_submitted_is_a_bad_record() {
        let path = tmp("orphan.jobs");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _) = JobJournal::open_or_create(&path, 9).expect("create");
        journal.append_completed(8, true, "{}").expect("orphan complete");
        drop(journal);
        assert!(matches!(
            JobJournal::open_or_create(&path, 9),
            Err(JournalError::BadRecord { line: 2, .. })
        ));
    }
}
