//! Deterministic, seeded chaos for the serve transport: a stream
//! wrapper that shreds writes into tiny chunks (torn frames on the
//! wire), injects short stalls, and tears the connection down
//! mid-write on a seeded schedule. Used by the chaos-mode
//! [`super::SubmitClient`], `bench_serve`, and the serve property
//! tests to prove the server survives hostile transport behavior:
//! under *any* seed the submitted job still ends as a byte-identical
//! report or a typed error.
//!
//! Same seed → same schedule: every decision comes from one `StdRng`,
//! so a failing chaos run replays exactly.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::{Read, Write};
use std::time::Duration;

/// The knobs of one chaos schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed of the `StdRng` every decision draws from.
    pub seed: u64,
    /// Writes and reads are shredded into chunks of at most this many
    /// bytes (minimum 1), so frames arrive torn across many segments.
    pub max_chunk: usize,
    /// Stalls sleep up to this many milliseconds; 0 disables stalls.
    pub stall_ms: u64,
    /// Per-connection probability (in thousandths) that the connection
    /// tears: when armed, a seeded byte offset inside the first
    /// [`TEAR_WINDOW`] written bytes is chosen, a partial chunk goes
    /// out at that offset, and the stream errors until reconnect. The
    /// roll is per connection — not per write — so a retrying client
    /// always converges no matter how large its frames are.
    pub tear_per_mille: u32,
    /// Per-request probability (in thousandths) that the client
    /// re-sends its previous frame before the new one — an
    /// out-of-order duplicate the server must absorb idempotently.
    pub dup_per_mille: u32,
}

/// Tears land inside the first this-many written bytes of a torn
/// connection, so both tiny and huge frames get torn mid-frame.
pub const TEAR_WINDOW: u64 = 4096;

impl ChaosConfig {
    /// A schedule with every mischief armed at moderate rates.
    pub fn from_seed(seed: u64) -> ChaosConfig {
        ChaosConfig { seed, max_chunk: 7, stall_ms: 1, tear_per_mille: 150, dup_per_mille: 50 }
    }

    /// Derives the schedule for the `n`-th connection of a client, so
    /// reconnects get fresh (but still seed-determined) schedules.
    pub(crate) fn for_connection(&self, n: u64) -> ChaosConfig {
        let mut derived = self.clone();
        derived.seed = self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(n);
        derived
    }
}

/// A `Read + Write` stream that misbehaves on a seeded schedule.
pub struct ChaosStream<S> {
    inner: S,
    rng: StdRng,
    config: ChaosConfig,
    torn: bool,
    tear_at: Option<u64>,
    written: u64,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` under `config`'s schedule.
    pub fn new(inner: S, config: ChaosConfig) -> ChaosStream<S> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let tear_at = (rng.gen_range(0u32..1000) < config.tear_per_mille)
            .then(|| rng.gen_range(0u64..TEAR_WINDOW));
        ChaosStream { inner, rng, config, torn: false, tear_at, written: 0 }
    }

    /// Whether the schedule already tore this connection down.
    pub fn is_torn(&self) -> bool {
        self.torn
    }

    fn maybe_stall(&mut self) {
        if self.config.stall_ms > 0 {
            let ms = self.rng.gen_range(0..=self.config.stall_ms);
            if ms > 0 {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
    }

    fn chunk(&mut self, len: usize) -> usize {
        let cap = self.config.max_chunk.max(1);
        self.rng.gen_range(1..=cap).min(len)
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.torn {
            return Err(torn_error());
        }
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        self.maybe_stall();
        let want = self.chunk(buf.len());
        self.inner.read(&mut buf[..want])
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.torn {
            return Err(torn_error());
        }
        if buf.is_empty() {
            return Ok(0);
        }
        self.maybe_stall();
        let want = self.chunk(buf.len());
        if let Some(at) = self.tear_at {
            if self.written + want as u64 > at {
                // Mid-frame disconnect: push the partial chunk up to
                // the armed offset onto the wire (the server sees a
                // torn frame), then fail every further operation until
                // the client reconnects.
                let torn_len = (at - self.written) as usize;
                if torn_len > 0 {
                    let _ = self.inner.write(&buf[..torn_len]);
                    let _ = self.inner.flush();
                }
                self.torn = true;
                return Err(torn_error());
            }
        }
        let n = self.inner.write(&buf[..want])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.torn {
            return Err(torn_error());
        }
        self.inner.flush()
    }
}

fn torn_error() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::BrokenPipe, "chaos: connection torn")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A same-seeded pair of chaos streams over in-memory buffers makes
    /// identical chunking/tear decisions.
    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut out: Vec<(usize, bool)> = Vec::new();
            let mut stream = ChaosStream::new(
                Vec::<u8>::new(),
                ChaosConfig { stall_ms: 0, ..ChaosConfig::from_seed(seed) },
            );
            for _ in 0..64 {
                match stream.write(&[0u8; 64]) {
                    Ok(n) => out.push((n, false)),
                    Err(_) => {
                        out.push((0, true));
                        break;
                    }
                }
            }
            out
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    /// A `tear_per_mille: 1000` connection tears inside the tear
    /// window, and a torn stream stays torn: every later operation
    /// fails until the caller reconnects with a fresh wrapper.
    #[test]
    fn torn_is_sticky() {
        let config = ChaosConfig { tear_per_mille: 1000, stall_ms: 0, ..ChaosConfig::from_seed(1) };
        let mut stream = ChaosStream::new(std::io::Cursor::new(Vec::<u8>::new()), config);
        let mut wrote = 0u64;
        while stream.write(&[0u8; 64]).map(|n| wrote += n as u64).is_ok() {
            assert!(wrote <= TEAR_WINDOW, "tear must land inside the window");
        }
        assert!(stream.is_torn());
        assert!(stream.write(b"again").is_err());
        assert!(stream.flush().is_err());
        let mut buf = [0u8; 4];
        assert!(stream.read(&mut buf).is_err());
    }

    /// Chunking never writes more than `max_chunk` bytes at once.
    #[test]
    fn chunks_respect_the_cap() {
        let config = ChaosConfig {
            tear_per_mille: 0,
            stall_ms: 0,
            max_chunk: 3,
            ..ChaosConfig::from_seed(11)
        };
        let mut stream = ChaosStream::new(Vec::<u8>::new(), config);
        for _ in 0..32 {
            let n = stream.write(&[7u8; 100]).expect("no tears armed");
            assert!((1..=3).contains(&n));
        }
    }
}
