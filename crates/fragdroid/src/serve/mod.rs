//! `fragdroid serve` — a hardened, long-running job service over the
//! device wire plumbing: submit a packed container, get the job
//! acknowledged durably, poll for the finished report.
//!
//! The transport is the same length-prefixed frame protocol the
//! subprocess device agent speaks ([`fd_droidsim::proto`]): one
//! [`ServeRequest`] per frame in, one [`ServeResponse`] echoing the
//! request id per frame out. Two front ends share one state machine:
//!
//! - **stdio** ([`serve`]) — the single-client pipe mode `fd-cli`'s
//!   plain `serve` has always offered.
//! - **socket** ([`serve_listen`] / [`serve_listener`]) — a TCP or Unix
//!   listener that accepts many concurrent sessions, enforces a
//!   connection cap (excess connections get one typed
//!   [`ServeResponse::Overloaded`] frame and are closed), per-connection
//!   read/write deadlines, and a slow-loris idle timeout (a connection
//!   that completes no frame within the window is dropped).
//!
//! **Admission control.** Job ids are client-assigned and the queue is
//! bounded: a full queue answers [`ServeResponse::Busy`] with a
//! retry-after hint instead of growing without bound, and a draining
//! server answers [`ServeResponse::Draining`]. Resubmitting an id the
//! server already knows is idempotent — same content digest replies
//! [`ServeResponse::Accepted`] again without re-queuing or re-running;
//! a different digest under the same id is a [`ServeResponse::Conflict`].
//!
//! **Crash safety.** With [`ServeOptions::journal`] set, every accepted
//! submission is fsynced to an append-only checksummed journal *before*
//! the `Accepted` reply, and every finished report is journaled after
//! the run (same `"<fnv16hex> <json>\n"` line format as the checkpoint
//! journal). A killed-and-restarted server replays the journal: finished
//! jobs are served byte-identically from the journal, unfinished ones
//! are re-queued, and clients resubmit idempotently by job id.
//!
//! **Drain.** [`ServeRequest::Shutdown`] flips the server to draining:
//! the listener stops accepting, new submissions are refused typed,
//! workers finish every queued job, the journal is flushed, and only
//! then are the remaining sessions closed.
//!
//! Failure behavior mirrors the device agent: a malformed frame ends
//! that session without a reply (resyncing a corrupt length-prefixed
//! stream is guesswork) — but in socket mode only the offending session
//! dies; the server and its queue live on.

mod chaos;
mod client;
mod journal;

pub use chaos::{ChaosConfig, ChaosStream};
pub use client::{ClientError, JobOutcome, SubmitClient};

use crate::checkpoint::{fnv1a, JournalError, FNV_OFFSET};
use crate::config::FragDroidConfig;
use crate::pool::DevicePool;
use crate::suite::run_container_slot;
use fd_droidsim::proto::{decode_payload, encode_frame, from_hex, Envelope, FrameBuffer};
use journal::JobJournal;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often a socket session wakes from a blocked read to check the
/// idle deadline and the server's stop flag. Doubles as the read
/// timeout on the socket.
const SESSION_TICK: Duration = Duration::from_millis(25);

/// How often the accept loop polls for the drain flag.
const ACCEPT_TICK: Duration = Duration::from_millis(10);

/// Retry-after hint on [`ServeResponse::Draining`]: long enough for a
/// restart to come back up.
const DRAIN_RETRY_MS: u64 = 200;

/// Retry-after hint on [`ServeResponse::Overloaded`].
const OVERLOADED_RETRY_MS: u64 = 100;

/// Trace-track offset for connection sessions, far above any realistic
/// job id so session tracks never collide with per-job worker tracks.
const SESSION_TRACK_BASE: u64 = 1 << 32;

/// Everything a client can ask the serve loop.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ServeRequest {
    /// Enqueue one app under a client-assigned job id. The reply is an
    /// immediate [`ServeResponse::Accepted`] (durable when a journal is
    /// configured), [`ServeResponse::Busy`] when the queue is full, or
    /// [`ServeResponse::Draining`] during shutdown. Rejection of the
    /// content itself (bad hex, refused container) surfaces later
    /// through [`ServeRequest::Poll`]. Resubmitting the same id with
    /// the same content is idempotent; with different content it is a
    /// [`ServeResponse::Conflict`].
    Submit {
        /// The client-assigned job id, the idempotency key.
        job: u64,
        /// The packed container, hex-encoded (binary-safe in JSON).
        container_hex: String,
        /// The app's known inputs, field id → value.
        inputs: BTreeMap<String, String>,
    },
    /// Ask for a job's result.
    Poll {
        /// The id the submission used.
        job: u64,
    },
    /// Ask for a queue snapshot.
    Status,
    /// Orderly shutdown: the server stops accepting, finishes every
    /// queued job, flushes the journal, replies [`ServeResponse::Bye`]
    /// and exits.
    Shutdown,
}

/// Everything the serve loop can answer with.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ServeResponse {
    /// Reply to [`ServeRequest::Submit`]: the job is queued (or already
    /// known under the same content — idempotent resubmission).
    Accepted {
        /// The job id to poll with.
        job: u64,
    },
    /// Reply to [`ServeRequest::Poll`]: still queued or running.
    Pending {
        /// The polled job.
        job: u64,
    },
    /// Reply to [`ServeRequest::Poll`]: the run finished.
    Report {
        /// The polled job.
        job: u64,
        /// The report, pretty-printed exactly as `fd-cli run --json`
        /// prints it.
        json: String,
    },
    /// Reply to [`ServeRequest::Poll`]: the input was refused (bad hex,
    /// ingestion-frontier rejection, or an unserializable report).
    Rejected {
        /// The polled job.
        job: u64,
        /// The typed refusal, rendered.
        reason: String,
    },
    /// Reply to [`ServeRequest::Poll`] for an id never accepted.
    UnknownJob {
        /// The polled job.
        job: u64,
    },
    /// Reply to [`ServeRequest::Submit`] when the bounded queue is
    /// full. Typed and retryable: nothing was queued or journaled; try
    /// again after the hint.
    Busy {
        /// The refused job id.
        job: u64,
        /// Suggested client back-off before resubmitting, milliseconds.
        retry_after_ms: u64,
    },
    /// Reply to [`ServeRequest::Submit`] while the server drains for
    /// shutdown. Nothing was queued; retry against the restarted
    /// server.
    Draining {
        /// The refused job id.
        job: u64,
        /// Suggested client back-off before resubmitting, milliseconds.
        retry_after_ms: u64,
    },
    /// Reply to [`ServeRequest::Submit`] reusing a known job id with
    /// *different* content. Permanent: pick a fresh id.
    Conflict {
        /// The conflicting job id.
        job: u64,
        /// What differed, rendered.
        reason: String,
    },
    /// The one frame a connection beyond the connection cap receives
    /// before the server closes it.
    Overloaded {
        /// Suggested client back-off before reconnecting, milliseconds.
        retry_after_ms: u64,
    },
    /// Reply to [`ServeRequest::Status`].
    Status {
        /// Jobs accepted but not yet picked up by a worker.
        queued: u64,
        /// Jobs a worker is currently running.
        running: u64,
        /// Jobs that finished with a report.
        completed: u64,
        /// Jobs that finished rejected.
        rejected: u64,
        /// Worker threads draining the queue.
        workers: u64,
    },
    /// Reply to [`ServeRequest::Shutdown`].
    Bye,
}

/// How a serve loop should run.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads (and device-pool lanes). Clamped to at least 1.
    pub workers: usize,
    /// The exploration configuration every job runs with.
    pub config: FragDroidConfig,
    /// Maximum jobs waiting in the queue before submissions get
    /// [`ServeResponse::Busy`]. `0` means unbounded.
    pub queue_cap: usize,
    /// Maximum concurrent socket sessions; excess connections get one
    /// [`ServeResponse::Overloaded`] frame and are closed. Clamped to
    /// at least 1. Ignored in stdio mode.
    pub max_connections: usize,
    /// Slow-loris guard: a socket session that completes no frame
    /// within this window is closed. `0` disables the guard. Ignored in
    /// stdio mode.
    pub idle_timeout_ms: u64,
    /// Per-connection write deadline, milliseconds. `0` means no
    /// deadline. Ignored in stdio mode.
    pub write_timeout_ms: u64,
    /// Path of the crash-safe job journal. `None` serves from memory
    /// only (a restart forgets every job).
    pub journal: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 1,
            config: FragDroidConfig::default(),
            queue_cap: 256,
            max_connections: 32,
            idle_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            journal: None,
        }
    }
}

/// A typed serve failure: socket setup, session I/O the server cannot
/// shrug off, or a journal problem. `fd-cli` maps these to exit code 5.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// An I/O operation failed (bind, accept, stdio read/write …).
    Io {
        /// What was being attempted (`bind`, `read`, `write`, …).
        op: &'static str,
        /// The OS error, rendered.
        error: String,
    },
    /// The job journal failed (see [`JournalError`]).
    Journal(JournalError),
    /// A listen/connect address did not parse.
    BadAddr {
        /// The offending address string.
        addr: String,
        /// Why it was refused.
        reason: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { op, error } => write!(f, "serve {op} failed: {error}"),
            ServeError::Journal(e) => write!(f, "serve job journal: {e}"),
            ServeError::BadAddr { addr, reason } => {
                write!(f, "bad serve address '{addr}': {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    fn io(op: &'static str, error: std::io::Error) -> Self {
        ServeError::Io { op, error: error.to_string() }
    }
}

/// Where a socket server listens (or a client connects): `unix:PATH`
/// or `HOST:PORT`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP address, e.g. `127.0.0.1:7788`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parses `unix:PATH` into [`ListenAddr::Unix`] and anything with a
    /// colon into [`ListenAddr::Tcp`].
    pub fn parse(s: &str) -> Result<ListenAddr, ServeError> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(ServeError::BadAddr {
                    addr: s.to_string(),
                    reason: "empty unix socket path".to_string(),
                });
            }
            return Ok(ListenAddr::Unix(PathBuf::from(path)));
        }
        if s.contains(':') {
            return Ok(ListenAddr::Tcp(s.to_string()));
        }
        Err(ServeError::BadAddr {
            addr: s.to_string(),
            reason: "expected unix:PATH or HOST:PORT".to_string(),
        })
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(addr) => write!(f, "{addr}"),
            ListenAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A bound but not-yet-serving socket listener. Binding separately from
/// serving lets callers learn the resolved address (a TCP port 0 bind)
/// before the serve loop blocks.
pub struct ServeListener {
    inner: AnyListener,
    addr: ListenAddr,
}

impl ServeListener {
    /// Binds the address. A stale Unix socket file at the path is
    /// removed first.
    pub fn bind(addr: &ListenAddr) -> Result<ServeListener, ServeError> {
        match addr {
            ListenAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec).map_err(|e| ServeError::io("bind", e))?;
                let resolved = listener
                    .local_addr()
                    .map(|a| ListenAddr::Tcp(a.to_string()))
                    .unwrap_or_else(|_| addr.clone());
                Ok(ServeListener { inner: AnyListener::Tcp(listener), addr: resolved })
            }
            ListenAddr::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path).map_err(|e| ServeError::io("unlink", e))?;
                }
                let listener = UnixListener::bind(path).map_err(|e| ServeError::io("bind", e))?;
                Ok(ServeListener {
                    inner: AnyListener::Unix(listener),
                    addr: ListenAddr::Unix(path.clone()),
                })
            }
        }
    }

    /// The resolved listen address (TCP port filled in after a `:0`
    /// bind).
    pub fn local_addr(&self) -> &ListenAddr {
        &self.addr
    }
}

enum AnyListener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl AnyListener {
    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            AnyListener::Tcp(l) => l.set_nonblocking(on),
            AnyListener::Unix(l) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> std::io::Result<AnyStream> {
        match self {
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| AnyStream::Tcp(s)),
            AnyListener::Unix(l) => l.accept().map(|(s, _)| AnyStream::Unix(s)),
        }
    }
}

/// One accepted (or client-side connected) socket, TCP or Unix, with
/// the small deadline/clone/shutdown surface the serve loops need.
pub enum AnyStream {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A Unix-domain stream.
    Unix(UnixStream),
}

impl AnyStream {
    /// Connects a client stream to `addr`.
    pub fn connect(addr: &ListenAddr) -> std::io::Result<AnyStream> {
        match addr {
            ListenAddr::Tcp(spec) => TcpStream::connect(spec).map(AnyStream::Tcp),
            ListenAddr::Unix(path) => UnixStream::connect(path).map(AnyStream::Unix),
        }
    }

    fn try_clone(&self) -> std::io::Result<AnyStream> {
        match self {
            AnyStream::Tcp(s) => s.try_clone().map(AnyStream::Tcp),
            AnyStream::Unix(s) => s.try_clone().map(AnyStream::Unix),
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_nonblocking(on),
            AnyStream::Unix(s) => s.set_nonblocking(on),
        }
    }

    /// Sets the read deadline; `None` blocks forever.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_read_timeout(timeout),
            AnyStream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Sets the write deadline; `None` blocks forever.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_write_timeout(timeout),
            AnyStream::Unix(s) => s.set_write_timeout(timeout),
        }
    }

    fn shutdown_both(&self) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            AnyStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

/// Counters the server keeps about its own weather: connections,
/// admission rejections, protocol trouble, journal recovery. Rendered
/// by `fd-report`'s serve incident summary.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeIncidents {
    /// Socket sessions accepted and served.
    pub connections_opened: u64,
    /// Socket sessions that ended (any reason).
    pub connections_closed: u64,
    /// Connections past the cap, answered `Overloaded` and closed.
    pub overloaded_rejections: u64,
    /// Submissions refused with `Busy` (queue full).
    pub busy_rejections: u64,
    /// Submissions refused with `Draining` (shutdown in progress).
    pub draining_rejections: u64,
    /// Submissions refused with `Conflict` (id reuse, new content).
    pub conflicts: u64,
    /// Idempotent resubmissions absorbed without re-execution.
    pub resubmits_deduped: u64,
    /// Sessions ended by a malformed frame or payload.
    pub protocol_errors: u64,
    /// Sessions dropped by the slow-loris idle timeout.
    pub idle_timeouts: u64,
    /// Transient `accept()` failures the listener absorbed.
    pub accept_errors: u64,
    /// Journal appends that failed (the result was still served from
    /// memory).
    pub journal_errors: u64,
    /// Jobs that finished with a report.
    pub jobs_completed: u64,
    /// Jobs that finished rejected.
    pub jobs_rejected: u64,
    /// Jobs restored from the journal at startup (completed or
    /// re-queued).
    pub jobs_recovered: u64,
    /// Bytes of torn journal tail truncated at recovery (a crash
    /// mid-append leaves these).
    pub torn_tail_bytes: u64,
}

/// What a socket serve run returns: the merged trace plus the incident
/// counters.
pub struct ServeSummary {
    /// The session + per-job trace (empty when tracing is off).
    pub trace: fd_trace::Trace,
    /// The server's incident counters.
    pub incidents: ServeIncidents,
}

/// One queued job.
struct Job {
    id: u64,
    container: Vec<u8>,
    inputs: BTreeMap<String, String>,
}

/// Where a job is in its lifecycle.
enum JobState {
    Queued,
    Running,
    Done(Result<String, String>),
}

/// Everything the server remembers about one job id.
struct JobEntry {
    /// FNV digest of the submitted content — the idempotency check.
    digest: u64,
    state: JobState,
}

/// Shared queue + job table, guarded by one mutex; the condvar wakes
/// idle workers on submit and the drain waiter on completion.
#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    jobs: BTreeMap<u64, JobEntry>,
    /// Jobs currently inside a worker.
    running: usize,
    /// No new submissions; the listener stops accepting.
    draining: bool,
    /// Workers may exit once the queue is empty.
    shutdown: bool,
}

/// Everything the session and worker loops share. Lock order: `state`
/// may be held while taking `journal` or `incidents`; never the
/// reverse.
struct Core<'a> {
    state: Mutex<State>,
    cvar: Condvar,
    options: &'a ServeOptions,
    trace_config: &'a fd_trace::TraceConfig,
    clock: fd_trace::TraceClock,
    journal: Mutex<Option<JobJournal>>,
    incidents: Mutex<ServeIncidents>,
    tracks: Mutex<Vec<fd_trace::TrackTrace>>,
}

impl<'a> Core<'a> {
    /// Builds the shared state, opening (and recovering) the job
    /// journal when one is configured.
    fn new(
        options: &'a ServeOptions,
        trace_config: &'a fd_trace::TraceConfig,
    ) -> Result<Core<'a>, ServeError> {
        let mut state = State::default();
        let mut incidents = ServeIncidents::default();
        let mut journal = None;
        if let Some(path) = &options.journal {
            let digest = config_digest(&options.config);
            let (j, recovery) =
                JobJournal::open_or_create(path, digest).map_err(ServeError::Journal)?;
            incidents.torn_tail_bytes = recovery.torn_tail_bytes;
            for rec in recovery.jobs {
                incidents.jobs_recovered += 1;
                match rec.result {
                    Some(result) => {
                        state.jobs.insert(
                            rec.job,
                            JobEntry { digest: rec.digest, state: JobState::Done(result) },
                        );
                    }
                    None => match from_hex(&rec.container_hex) {
                        Ok(container) => {
                            state.queue.push_back(Job {
                                id: rec.job,
                                container,
                                inputs: rec.inputs,
                            });
                            state.jobs.insert(
                                rec.job,
                                JobEntry { digest: rec.digest, state: JobState::Queued },
                            );
                        }
                        Err(e) => {
                            state.jobs.insert(
                                rec.job,
                                JobEntry {
                                    digest: rec.digest,
                                    state: JobState::Done(Err(format!("bad container hex: {e}"))),
                                },
                            );
                        }
                    },
                }
            }
            journal = Some(j);
        }
        Ok(Core {
            state: Mutex::new(state),
            cvar: Condvar::new(),
            options,
            trace_config,
            clock: fd_trace::TraceClock::start(),
            journal: Mutex::new(journal),
            incidents: Mutex::new(incidents),
            tracks: Mutex::new(Vec::new()),
        })
    }

    fn bump<F: FnOnce(&mut ServeIncidents)>(&self, f: F) {
        f(&mut lock(&self.incidents));
    }

    /// Flushes the journal, latching any failure as an incident.
    fn sync_journal(&self) {
        if let Some(j) = lock(&self.journal).as_mut() {
            if j.sync().is_err() {
                self.bump(|i| i.journal_errors += 1);
            }
        }
    }

    /// Marks the server draining + shut down and wakes everyone.
    fn begin_drain(&self) {
        let mut st = lock(&self.state);
        st.draining = true;
        st.shutdown = true;
        drop(st);
        self.cvar.notify_all();
    }

    /// Blocks until every queued and running job has finished.
    fn wait_drained(&self) {
        let mut st = lock(&self.state);
        while !(st.queue.is_empty() && st.running == 0) {
            st = match self.cvar.wait(st) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// FNV digest of the full config; journal headers refuse to mix
/// configurations, mirroring the checkpoint fingerprint.
fn config_digest(config: &FragDroidConfig) -> u64 {
    fnv1a(FNV_OFFSET, format!("{config:?}").as_bytes())
}

/// FNV digest of one submission's content — the idempotency key's
/// value side.
fn submission_digest(container_hex: &str, inputs: &BTreeMap<String, String>) -> u64 {
    let mut hash = fnv1a(FNV_OFFSET, container_hex.as_bytes());
    for (key, value) in inputs {
        hash = fnv1a(hash, key.as_bytes());
        hash = fnv1a(hash, &[0]);
        hash = fnv1a(hash, value.as_bytes());
        hash = fnv1a(hash, &[1]);
    }
    hash
}

/// The retry-after hint for a full queue: grows with the backlog so
/// heavier congestion spreads retries wider.
fn busy_retry_after_ms(queued: usize, workers: usize) -> u64 {
    10 + (queued as u64 * 20) / workers.max(1) as u64
}

/// Locks a mutex, shrugging off poisoning (a panicked worker must not
/// wedge the session).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs one request against the shared state. Returns the reply and
/// whether the session should end after sending it.
fn handle_request(
    core: &Core<'_>,
    tracer: &fd_trace::Tracer,
    body: ServeRequest,
    workers: usize,
) -> (ServeResponse, bool) {
    match body {
        ServeRequest::Submit { job, container_hex, inputs } => {
            let digest = submission_digest(&container_hex, &inputs);
            let mut st = lock(&core.state);
            if let Some(entry) = st.jobs.get(&job) {
                if entry.digest == digest {
                    core.bump(|i| i.resubmits_deduped += 1);
                    return (ServeResponse::Accepted { job }, false);
                }
                core.bump(|i| i.conflicts += 1);
                return (
                    ServeResponse::Conflict {
                        job,
                        reason: format!(
                            "job {job} was already submitted with different content \
                             (digest {:#018x} != {digest:#018x})",
                            entry.digest
                        ),
                    },
                    false,
                );
            }
            if st.draining {
                core.bump(|i| i.draining_rejections += 1);
                return (ServeResponse::Draining { job, retry_after_ms: DRAIN_RETRY_MS }, false);
            }
            let cap = core.options.queue_cap;
            if cap != 0 && st.queue.len() >= cap {
                core.bump(|i| i.busy_rejections += 1);
                tracer.event(|| fd_trace::TraceEvent::QueueSaturated { job });
                let hint = busy_retry_after_ms(st.queue.len(), workers);
                return (ServeResponse::Busy { job, retry_after_ms: hint }, false);
            }
            // Durable admission: the Submitted record reaches disk
            // before the Accepted reply. The state lock is held across
            // the fsync on purpose — admission is serialized, so a
            // concurrent duplicate cannot slip in between the check
            // above and the journal append.
            if let Some(j) = lock(&core.journal).as_mut() {
                if let Err(e) = j.append_submitted(job, digest, &container_hex, &inputs) {
                    core.bump(|i| i.journal_errors += 1);
                    let reason = format!("journal append failed: {e}");
                    st.jobs.insert(
                        job,
                        JobEntry { digest, state: JobState::Done(Err(reason.clone())) },
                    );
                    return (ServeResponse::Rejected { job, reason }, false);
                }
            }
            match from_hex(&container_hex) {
                Ok(container) => {
                    st.queue.push_back(Job { id: job, container, inputs });
                    st.jobs.insert(job, JobEntry { digest, state: JobState::Queued });
                    core.cvar.notify_one();
                }
                // A submission that is not even hex never reaches a
                // worker; the refusal is pollable under its job id.
                Err(e) => {
                    st.jobs.insert(
                        job,
                        JobEntry {
                            digest,
                            state: JobState::Done(Err(format!("bad container hex: {e}"))),
                        },
                    );
                }
            }
            tracer.event(|| fd_trace::TraceEvent::JobSubmitted { job });
            (ServeResponse::Accepted { job }, false)
        }
        ServeRequest::Poll { job } => {
            let st = lock(&core.state);
            let reply = match st.jobs.get(&job).map(|e| &e.state) {
                None => ServeResponse::UnknownJob { job },
                Some(JobState::Queued) | Some(JobState::Running) => ServeResponse::Pending { job },
                Some(JobState::Done(Ok(json))) => ServeResponse::Report { job, json: json.clone() },
                Some(JobState::Done(Err(reason))) => {
                    ServeResponse::Rejected { job, reason: reason.clone() }
                }
            };
            (reply, false)
        }
        ServeRequest::Status => {
            let st = lock(&core.state);
            let mut counts = [0u64; 4];
            for entry in st.jobs.values() {
                match &entry.state {
                    JobState::Queued => counts[0] += 1,
                    JobState::Running => counts[1] += 1,
                    JobState::Done(Ok(_)) => counts[2] += 1,
                    JobState::Done(Err(_)) => counts[3] += 1,
                }
            }
            (
                ServeResponse::Status {
                    queued: counts[0],
                    running: counts[1],
                    completed: counts[2],
                    rejected: counts[3],
                    workers: workers as u64,
                },
                false,
            )
        }
        ServeRequest::Shutdown => {
            tracer.event(|| fd_trace::TraceEvent::DrainStarted);
            // Draining begins only after the `Bye` reply is flushed
            // (in `session_loop`): flipping it here would let the
            // accept loop force-close this session before the reply
            // hits the wire, and the shutdown client would see EOF.
            (ServeResponse::Bye, true)
        }
    }
}

/// Deadline/stop behavior of one session.
struct SessionMode<'a> {
    /// Close the session when no complete frame arrives within this
    /// window (socket sessions only).
    idle_timeout: Option<Duration>,
    /// Server-side force-stop flag, checked every read tick.
    stop: Option<&'a AtomicBool>,
}

impl SessionMode<'_> {
    /// Stdio: block forever, no stop flag.
    fn blocking() -> SessionMode<'static> {
        SessionMode { idle_timeout: None, stop: None }
    }
}

/// Reads frames and dispatches requests until the session ends. A
/// corrupt frame ends the session without a reply, matching the device
/// agent; in socket mode only this session dies.
fn session_loop<R: Read, W: Write>(
    input: &mut R,
    output: &mut W,
    core: &Core<'_>,
    tracer: &fd_trace::Tracer,
    workers: usize,
    mode: &SessionMode<'_>,
) -> Result<(), ServeError> {
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut last_frame = Instant::now();
    loop {
        loop {
            let payload = match frames.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(_) => {
                    core.bump(|i| i.protocol_errors += 1);
                    return Ok(());
                }
            };
            last_frame = Instant::now();
            let Ok(envelope) = decode_payload::<ServeRequest>(&payload) else {
                core.bump(|i| i.protocol_errors += 1);
                return Ok(());
            };
            let (reply, end) = handle_request(core, tracer, envelope.body, workers);
            let written = output
                .write_all(&encode_frame(&Envelope { id: envelope.id, body: reply }))
                .and_then(|()| output.flush())
                .map_err(|e| ServeError::io("write", e));
            if end {
                // The `Bye` is on the wire (or the client is already
                // gone); now it is safe to flip the server to draining
                // and let the listener close every session, including
                // this one. Flipping before the write would let the
                // listener cut this session off mid-reply.
                core.begin_drain();
                return written;
            }
            written?;
        }
        if let Some(stop) = mode.stop {
            if stop.load(Ordering::Relaxed) {
                return Ok(());
            }
        }
        match input.read(&mut chunk) {
            Ok(0) => return Ok(()), // client hung up
            Ok(n) => frames.push(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A read tick: enforce the slow-loris deadline, then
                // wait for more bytes.
                if let Some(idle) = mode.idle_timeout {
                    if last_frame.elapsed() >= idle {
                        core.bump(|i| i.idle_timeouts += 1);
                        return Ok(());
                    }
                }
            }
            Err(e) => return Err(ServeError::io("read", e)),
        }
    }
}

/// One worker: pop a job, run it on this lane's pooled device, journal
/// and store the finished report (or the typed refusal), repeat. Queued
/// jobs are drained even after shutdown is signaled, so an orderly
/// shutdown never abandons accepted work mid-queue.
fn worker_loop(core: &Core<'_>, pool: &DevicePool, lane: usize) {
    loop {
        let job = {
            let mut st = lock(&core.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    if let Some(entry) = st.jobs.get_mut(&job.id) {
                        entry.state = JobState::Running;
                    }
                    st.running += 1;
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = match core.cvar.wait(st) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        let tracer = fd_trace::Tracer::new(core.trace_config, core.clock, job.id);
        let bytes = bytes::Bytes::from(job.container);
        let result =
            run_container_slot(&bytes, &job.inputs, &core.options.config, &tracer, pool, lane)
                .and_then(|(report, _package)| {
                    serde_json::to_string_pretty(&report)
                        .map_err(|e| format!("cannot serialize report: {e}"))
                });
        // The Completed record is appended (and fsynced) before the
        // in-memory table flips to Done, so a crash can lose the flip
        // but never serve a result it will later forget. The journal
        // lock is never held while taking the state lock.
        if let Some(j) = lock(&core.journal).as_mut() {
            let payload = match &result {
                Ok(json) => (true, json.as_str()),
                Err(reason) => (false, reason.as_str()),
            };
            if j.append_completed(job.id, payload.0, payload.1).is_err() {
                core.bump(|i| i.journal_errors += 1);
            }
        }
        tracer.event(|| fd_trace::TraceEvent::JobCompleted {
            job: job.id,
            rejected: result.is_err(),
        });
        lock(&core.tracks).push(tracer.finish());
        core.bump(|i| {
            if result.is_ok() {
                i.jobs_completed += 1;
            } else {
                i.jobs_rejected += 1;
            }
        });
        let mut st = lock(&core.state);
        if let Some(entry) = st.jobs.get_mut(&job.id) {
            entry.state = JobState::Done(result);
        }
        st.running -= 1;
        drop(st);
        core.cvar.notify_all();
    }
}

/// Runs the stdio serve loop until EOF, a protocol error, or an orderly
/// [`ServeRequest::Shutdown`], returning the session's trace (empty
/// when `trace_config` is off).
pub fn serve<R: Read, W: Write>(
    mut input: R,
    mut output: W,
    options: &ServeOptions,
    trace_config: &fd_trace::TraceConfig,
) -> Result<fd_trace::Trace, ServeError> {
    let workers = options.workers.max(1);
    let pool = DevicePool::from_config(&options.config, workers);
    let core = Core::new(options, trace_config)?;
    let tracer = fd_trace::Tracer::new(trace_config, core.clock, 0);
    emit_recovery(&core, &tracer);

    let result = std::thread::scope(|scope| -> Result<(), ServeError> {
        for lane in 0..workers {
            let core = &core;
            let pool = &pool;
            scope.spawn(move || worker_loop(core, pool, lane));
        }
        let io_result = session_loop(
            &mut input,
            &mut output,
            &core,
            &tracer,
            workers,
            &SessionMode::blocking(),
        );
        core.begin_drain();
        io_result
    });
    core.sync_journal();

    let mut trace = fd_trace::Trace::new("fragdroid serve");
    trace.absorb(tracer.finish());
    for track in lock(&core.tracks).drain(..) {
        trace.absorb(track);
    }
    result.map(|()| trace)
}

/// Binds `addr` and serves it — [`ServeListener::bind`] +
/// [`serve_listener`].
pub fn serve_listen(
    addr: &ListenAddr,
    options: &ServeOptions,
    trace_config: &fd_trace::TraceConfig,
) -> Result<ServeSummary, ServeError> {
    serve_listener(ServeListener::bind(addr)?, options, trace_config)
}

/// Serves a bound socket listener until a [`ServeRequest::Shutdown`]
/// arrives on any session: accepts up to the connection cap, runs one
/// session thread per connection with read/write deadlines and the
/// idle-timeout guard, then drains — finishes every queued job, flushes
/// the journal, closes the remaining sessions — and returns the merged
/// trace and incident counters.
pub fn serve_listener(
    listener: ServeListener,
    options: &ServeOptions,
    trace_config: &fd_trace::TraceConfig,
) -> Result<ServeSummary, ServeError> {
    let workers = options.workers.max(1);
    let max_connections = options.max_connections.max(1);
    let pool = DevicePool::from_config(&options.config, workers);
    let core = Core::new(options, trace_config)?;
    let tracer = fd_trace::Tracer::new(trace_config, core.clock, 0);
    emit_recovery(&core, &tracer);

    listener.inner.set_nonblocking(true).map_err(|e| ServeError::io("set_nonblocking", e))?;
    let stop_sessions = AtomicBool::new(false);
    let active = AtomicUsize::new(0);
    let next_conn = AtomicU64::new(1);
    let session_handles: Mutex<Vec<AnyStream>> = Mutex::new(Vec::new());

    let result = std::thread::scope(|scope| -> Result<(), ServeError> {
        for lane in 0..workers {
            let core = &core;
            let pool = &pool;
            scope.spawn(move || worker_loop(core, pool, lane));
        }
        loop {
            if lock(&core.state).draining {
                break;
            }
            match listener.inner.accept() {
                Ok(stream) => {
                    if active.load(Ordering::Acquire) >= max_connections {
                        core.bump(|i| i.overloaded_rejections += 1);
                        reject_overloaded(stream, options);
                        continue;
                    }
                    let Ok(()) = stream.set_nonblocking(false) else { continue };
                    let _ = stream.set_read_timeout(Some(SESSION_TICK));
                    if options.write_timeout_ms != 0 {
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(
                            options.write_timeout_ms,
                        )));
                    }
                    let Ok(handle) = stream.try_clone() else { continue };
                    lock(&session_handles).push(handle);
                    active.fetch_add(1, Ordering::AcqRel);
                    let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                    let core = &core;
                    let active = &active;
                    let stop = &stop_sessions;
                    scope.spawn(move || {
                        run_session(core, stream, conn, workers, stop);
                        active.fetch_sub(1, Ordering::AcqRel);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Transient accept failure (EMFILE under load): absorb
                // and keep listening rather than killing the server.
                Err(_) => {
                    core.bump(|i| i.accept_errors += 1);
                    std::thread::sleep(ACCEPT_TICK);
                }
            }
        }
        // Drain: workers already saw shutdown; wait until the queue is
        // empty and nothing is mid-run, make the results durable, then
        // close what sessions remain.
        core.wait_drained();
        core.sync_journal();
        stop_sessions.store(true, Ordering::Relaxed);
        for handle in lock(&session_handles).drain(..) {
            let _ = handle.shutdown_both();
        }
        Ok(())
    });

    if let ListenAddr::Unix(path) = listener.local_addr() {
        let _ = std::fs::remove_file(path);
    }

    let mut trace = fd_trace::Trace::new("fragdroid serve");
    trace.absorb(tracer.finish());
    for track in lock(&core.tracks).drain(..) {
        trace.absorb(track);
    }
    let incidents = lock(&core.incidents).clone();
    result.map(|()| ServeSummary { trace, incidents })
}

/// Emits the journal-recovery trace event when startup restored jobs.
fn emit_recovery(core: &Core<'_>, tracer: &fd_trace::Tracer) {
    let recovered = lock(&core.incidents).jobs_recovered;
    if recovered > 0 {
        tracer.event(|| fd_trace::TraceEvent::JournalRecovered { jobs: recovered });
    }
}

/// Sends the one `Overloaded` frame a connection past the cap gets,
/// best-effort, then drops the stream.
fn reject_overloaded(stream: AnyStream, options: &ServeOptions) {
    let _ = stream.set_nonblocking(false);
    let timeout = if options.write_timeout_ms == 0 { 1_000 } else { options.write_timeout_ms };
    let _ = stream.set_write_timeout(Some(Duration::from_millis(timeout)));
    let mut stream = stream;
    let _ = stream.write_all(&encode_frame(&Envelope {
        id: 0,
        body: ServeResponse::Overloaded { retry_after_ms: OVERLOADED_RETRY_MS },
    }));
    let _ = stream.flush();
}

/// One socket session: trace the connection open/close, split the
/// stream into reader + writer halves, and run the shared session loop
/// under the socket deadlines.
fn run_session(core: &Core<'_>, stream: AnyStream, conn: u64, workers: usize, stop: &AtomicBool) {
    let tracer = fd_trace::Tracer::new(core.trace_config, core.clock, SESSION_TRACK_BASE + conn);
    tracer.event(|| fd_trace::TraceEvent::ConnectionOpened { conn });
    core.bump(|i| i.connections_opened += 1);
    let idle = core.options.idle_timeout_ms;
    let mode = SessionMode {
        idle_timeout: (idle != 0).then(|| Duration::from_millis(idle)),
        stop: Some(stop),
    };
    match stream.try_clone() {
        Ok(mut writer) => {
            let mut reader = stream;
            // A session-level I/O failure (client reset, write timeout)
            // ends this session; the server and its queue live on.
            let _ = session_loop(&mut reader, &mut writer, core, &tracer, workers, &mode);
            // The accept loop keeps a clone of this stream for the
            // drain-time sweep, so dropping our halves does not close
            // the socket — shut it down so the client sees EOF now.
            let _ = reader.shutdown_both();
        }
        Err(_) => core.bump(|i| i.accept_errors += 1),
    }
    tracer.event(|| fd_trace::TraceEvent::ConnectionClosed { conn });
    core.bump(|i| i.connections_closed += 1);
    lock(&core.tracks).push(tracer.finish());
}

#[cfg(test)]
mod tests;
