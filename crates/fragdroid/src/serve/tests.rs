//! Tests for the serve state machine, the socket front end, the
//! crash-safe job journal, and the retrying client.

use super::*;
use fd_droidsim::proto::to_hex;
use journal::JobJournal;
use std::os::unix::net::UnixStream;

fn request(id: u64, body: ServeRequest) -> Vec<u8> {
    encode_frame(&Envelope { id, body })
}

/// Reads exactly one reply frame off the stream.
fn read_reply<R: Read>(stream: &mut R) -> Envelope<ServeResponse> {
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(payload) = frames.next_frame().expect("server frames are well-formed") {
            return decode_payload(&payload).expect("server replies decode");
        }
        let n = stream.read(&mut chunk).expect("read reply");
        assert_ne!(n, 0, "server hung up mid-conversation");
        frames.push(&chunk[..n]);
    }
}

/// The quickstart app as (hex container, known inputs).
fn quickstart() -> (String, BTreeMap<String, String>) {
    let generated = fd_appgen::templates::quickstart();
    (to_hex(&fd_apk::pack(&generated.app)), generated.known_inputs)
}

fn quickstart_submission(job: u64) -> ServeRequest {
    let (container_hex, inputs) = quickstart();
    ServeRequest::Submit { job, container_hex, inputs }
}

/// Spawns a stdio serve loop on a thread over a socketpair, returning
/// the client end and the join handle.
fn spawn_server(
    options: ServeOptions,
) -> (UnixStream, std::thread::JoinHandle<Result<fd_trace::Trace, ServeError>>) {
    let (client, server) = UnixStream::pair().expect("socketpair");
    let handle = std::thread::spawn(move || {
        let reader = server.try_clone().expect("clone server end");
        serve(reader, server, &options, &fd_trace::TraceConfig::on())
    });
    (client, handle)
}

/// A fresh path under the system temp dir.
fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fd-serve-test-{}-{name}", std::process::id()))
}

/// Polls `job` on a raw stream until it settles into a `Report`.
fn poll_for_report(client: &mut UnixStream, job: u64) -> String {
    let mut poll_id = 1000 + job * 100;
    loop {
        client.write_all(&request(poll_id, ServeRequest::Poll { job })).expect("poll");
        let reply = read_reply(client);
        assert_eq!(reply.id, poll_id);
        poll_id += 1;
        match reply.body {
            ServeResponse::Pending { .. } => std::thread::sleep(Duration::from_millis(5)),
            ServeResponse::Report { job: done, json } => {
                assert_eq!(done, job);
                return json;
            }
            other => panic!("expected Pending/Report, got {other:?}"),
        }
    }
}

/// Connects to a socket server and performs an orderly shutdown.
fn shutdown_socket(addr: &ListenAddr) {
    let mut stream = AnyStream::connect(addr).expect("connect for shutdown");
    stream.write_all(&request(9999, ServeRequest::Shutdown)).expect("send shutdown");
    stream.flush().expect("flush shutdown");
    assert_eq!(read_reply(&mut stream).body, ServeResponse::Bye);
}

#[test]
fn submit_poll_status_shutdown_round_trip() {
    let (mut client, handle) = spawn_server(ServeOptions::default());
    client.write_all(&request(1, quickstart_submission(7))).expect("submit");
    let accepted = read_reply(&mut client);
    assert_eq!(accepted.id, 1);
    assert_eq!(accepted.body, ServeResponse::Accepted { job: 7 }, "client-assigned id echoes");

    let json = poll_for_report(&mut client, 7);
    let report: crate::report::RunReport =
        serde_json::from_str(&json).expect("served report parses");
    assert_eq!(report.activity_coverage().visited, 3, "quickstart visits 3 activities");

    client.write_all(&request(50, ServeRequest::Status)).expect("status");
    match read_reply(&mut client).body {
        ServeResponse::Status { completed, rejected, .. } => {
            assert_eq!((completed, rejected), (1, 0));
        }
        other => panic!("expected Status, got {other:?}"),
    }

    client.write_all(&request(99, ServeRequest::Shutdown)).expect("shutdown");
    assert_eq!(read_reply(&mut client).body, ServeResponse::Bye);
    let trace = handle.join().expect("no panic").expect("no serve error");
    let summary = fd_trace::TraceSummary::compute(&trace);
    let submitted = trace
        .records
        .iter()
        .filter(|r| match r {
            fd_trace::TraceRecord::Event(e) => {
                matches!(e.event, fd_trace::TraceEvent::JobSubmitted { .. })
            }
            _ => false,
        })
        .count();
    assert_eq!(submitted, 1, "one submission traced");
    assert!(summary.records > 0);
    assert_eq!(summary.drains, 1, "orderly shutdown traced as a drain");
}

#[test]
fn bad_hex_and_rejected_containers_are_pollable_refusals() {
    let (mut client, handle) = spawn_server(ServeOptions::default());
    client
        .write_all(&request(
            1,
            ServeRequest::Submit {
                job: 1,
                container_hex: "zz".to_string(),
                inputs: BTreeMap::new(),
            },
        ))
        .expect("submit bad hex");
    assert_eq!(
        read_reply(&mut client).body,
        ServeResponse::Accepted { job: 1 },
        "bad hex is still accepted; the refusal is pollable"
    );
    client
        .write_all(&request(
            2,
            ServeRequest::Submit {
                job: 2,
                container_hex: to_hex(b"not a container"),
                inputs: BTreeMap::new(),
            },
        ))
        .expect("submit bad container");
    assert_eq!(read_reply(&mut client).body, ServeResponse::Accepted { job: 2 });

    for job in [1u64, 2] {
        loop {
            client.write_all(&request(10 + job, ServeRequest::Poll { job })).expect("poll");
            match read_reply(&mut client).body {
                ServeResponse::Pending { .. } => std::thread::sleep(Duration::from_millis(5)),
                ServeResponse::Rejected { reason, .. } => {
                    assert!(!reason.is_empty());
                    break;
                }
                other => panic!("expected Rejected, got {other:?}"),
            }
        }
    }

    client.write_all(&request(30, ServeRequest::Poll { job: 999 })).expect("poll unknown");
    assert_eq!(read_reply(&mut client).body, ServeResponse::UnknownJob { job: 999 });

    client.write_all(&request(31, ServeRequest::Shutdown)).expect("shutdown");
    assert_eq!(read_reply(&mut client).body, ServeResponse::Bye);
    handle.join().expect("no panic").expect("no serve error");
}

#[test]
fn corrupt_frames_end_the_session_quietly() {
    let mut output = Vec::new();
    let trace = serve(
        &b"not a frame at all"[..],
        &mut output,
        &ServeOptions::default(),
        &fd_trace::TraceConfig::off(),
    )
    .expect("no serve error");
    assert!(output.is_empty(), "corrupt stream gets no reply");
    assert!(trace.records.is_empty());
}

#[test]
fn many_jobs_drain_across_workers() {
    let (mut client, handle) = spawn_server(ServeOptions { workers: 3, ..ServeOptions::default() });
    let jobs: Vec<u64> = (0..6)
        .map(|i| {
            client.write_all(&request(i, quickstart_submission(100 + i))).expect("submit");
            match read_reply(&mut client).body {
                ServeResponse::Accepted { job } => job,
                other => panic!("expected Accepted, got {other:?}"),
            }
        })
        .collect();
    assert_eq!(jobs, (100..106).collect::<Vec<u64>>(), "client-assigned ids echo back");
    let reports: Vec<String> = jobs.iter().map(|&job| poll_for_report(&mut client, job)).collect();
    assert!(
        reports.windows(2).all(|w| w[0] == w[1]),
        "identical submissions produce byte-identical reports"
    );
    client.write_all(&request(999, ServeRequest::Shutdown)).expect("shutdown");
    assert_eq!(read_reply(&mut client).body, ServeResponse::Bye);
    handle.join().expect("no panic").expect("no serve error");
}

/// Admission control, exercised directly against the state machine with
/// no workers draining the queue (so the queue length is deterministic).
#[test]
fn admission_control_is_typed_and_idempotent() {
    let options = ServeOptions { queue_cap: 1, ..ServeOptions::default() };
    let trace_config = fd_trace::TraceConfig::off();
    let core = Core::new(&options, &trace_config).expect("no journal configured");
    let tracer = fd_trace::Tracer::new(&trace_config, core.clock, 0);
    let hex = to_hex(b"job one");
    let submit = |job: u64, hex: &str| ServeRequest::Submit {
        job,
        container_hex: hex.to_string(),
        inputs: BTreeMap::new(),
    };

    // First submission fills the only queue slot.
    let (reply, end) = handle_request(&core, &tracer, submit(1, &hex), 1);
    assert_eq!((reply, end), (ServeResponse::Accepted { job: 1 }, false));

    // A different id bounces off the full queue with a retry hint.
    let (reply, _) = handle_request(&core, &tracer, submit(2, &hex), 1);
    let ServeResponse::Busy { job: 2, retry_after_ms } = reply else {
        panic!("expected Busy, got {reply:?}");
    };
    assert!(retry_after_ms >= 10, "the hint scales from a 10ms floor");

    // Resubmitting a known id with identical content is absorbed
    // without touching the (full) queue.
    let (reply, _) = handle_request(&core, &tracer, submit(1, &hex), 1);
    assert_eq!(reply, ServeResponse::Accepted { job: 1 });
    assert_eq!(lock(&core.state).queue.len(), 1, "dedup does not re-queue");

    // The same id with different content is a permanent conflict.
    let (reply, _) = handle_request(&core, &tracer, submit(1, &to_hex(b"other")), 1);
    assert!(
        matches!(reply, ServeResponse::Conflict { job: 1, .. }),
        "expected Conflict, got {reply:?}"
    );

    // A draining server refuses fresh ids but still dedups known ones.
    core.begin_drain();
    let (reply, _) = handle_request(&core, &tracer, submit(3, &hex), 1);
    assert!(
        matches!(reply, ServeResponse::Draining { job: 3, .. }),
        "expected Draining, got {reply:?}"
    );
    let (reply, _) = handle_request(&core, &tracer, submit(1, &hex), 1);
    assert_eq!(reply, ServeResponse::Accepted { job: 1 }, "dedup still answers while draining");

    let incidents = lock(&core.incidents).clone();
    assert_eq!(incidents.busy_rejections, 1);
    assert_eq!(incidents.conflicts, 1);
    assert_eq!(incidents.draining_rejections, 1);
    assert_eq!(incidents.resubmits_deduped, 2);
}

#[test]
fn listen_addr_parses_unix_and_tcp() {
    assert_eq!(
        ListenAddr::parse("unix:/tmp/fd.sock").expect("unix parses"),
        ListenAddr::Unix(PathBuf::from("/tmp/fd.sock"))
    );
    assert_eq!(
        ListenAddr::parse("127.0.0.1:7788").expect("tcp parses"),
        ListenAddr::Tcp("127.0.0.1:7788".to_string())
    );
    assert!(ListenAddr::parse("unix:").is_err(), "empty unix path refused");
    assert!(ListenAddr::parse("no-colon").is_err(), "bare host refused");
    assert_eq!(ListenAddr::parse("unix:/tmp/x").unwrap().to_string(), "unix:/tmp/x");
    assert_eq!(ListenAddr::parse("[::1]:9").unwrap().to_string(), "[::1]:9");
}

#[test]
fn busy_hint_grows_with_backlog() {
    assert_eq!(busy_retry_after_ms(0, 1), 10);
    assert!(busy_retry_after_ms(100, 1) > busy_retry_after_ms(10, 1));
    assert!(
        busy_retry_after_ms(100, 8) < busy_retry_after_ms(100, 1),
        "more workers drain faster, so the hint shrinks"
    );
}

/// The socket front end end-to-end: a retrying client submits over TCP,
/// resubmits idempotently, conflicts on content mismatch, and the
/// server's drain returns its incident counters.
#[test]
fn socket_round_trip_with_client() {
    let listener = ServeListener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_string())).expect("bind");
    let addr = listener.local_addr().clone();
    let options = ServeOptions { workers: 2, ..ServeOptions::default() };
    let handle = std::thread::spawn(move || {
        serve_listener(listener, &options, &fd_trace::TraceConfig::on())
    });

    let (hex, inputs) = quickstart();
    let mut client = SubmitClient::new(addr.clone());
    let JobOutcome::Report { json } = client.submit(7, &hex, &inputs).expect("job settles") else {
        panic!("quickstart is not rejected");
    };
    let report: crate::report::RunReport =
        serde_json::from_str(&json).expect("served report parses");
    assert_eq!(report.activity_coverage().visited, 3);

    // Idempotent resubmission: same id + same content serves the same
    // bytes without a second run.
    let again = client.submit(7, &hex, &inputs).expect("resubmit settles");
    assert_eq!(again, JobOutcome::Report { json });

    // Same id, different content: a permanent typed conflict.
    let err = client
        .submit(7, &to_hex(b"different"), &BTreeMap::new())
        .expect_err("conflicts are permanent");
    assert!(matches!(err, ClientError::Conflict { job: 7, .. }), "got {err:?}");

    shutdown_socket(&addr);
    let summary = handle.join().expect("no panic").expect("no serve error");
    assert_eq!(summary.incidents.jobs_completed, 1, "dedup prevented a second run");
    assert_eq!(summary.incidents.resubmits_deduped, 1);
    assert_eq!(summary.incidents.conflicts, 1);
    assert!(summary.incidents.connections_opened >= 2);
    assert_eq!(
        summary.incidents.connections_opened, summary.incidents.connections_closed,
        "no leaked connection slots"
    );
}

/// A chaos-wrapped client (torn frames, stalls, duplicated requests)
/// still lands the byte-identical report.
#[test]
fn chaos_client_lands_the_identical_report() {
    let listener = ServeListener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_string())).expect("bind");
    let addr = listener.local_addr().clone();
    let options = ServeOptions::default();
    let handle = std::thread::spawn(move || {
        serve_listener(listener, &options, &fd_trace::TraceConfig::off())
    });

    let (hex, inputs) = quickstart();
    let mut clean = SubmitClient::new(addr.clone());
    let baseline = clean.submit(1, &hex, &inputs).expect("clean run settles");

    let mut chaotic = SubmitClient::new(addr.clone())
        .with_chaos(ChaosConfig::from_seed(42))
        .with_max_attempts(64)
        .with_deadline(Duration::from_secs(120));
    let outcome = chaotic.submit(2, &hex, &inputs).expect("chaos run settles");
    assert_eq!(outcome, baseline, "chaos transport does not change the report bytes");

    shutdown_socket(&addr);
    handle.join().expect("no panic").expect("no serve error");
}

/// Connections past the cap get one typed `Overloaded` frame (id 0)
/// and are closed; the slot frees when the first session ends.
#[test]
fn connection_cap_answers_overloaded() {
    let listener = ServeListener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_string())).expect("bind");
    let addr = listener.local_addr().clone();
    let options = ServeOptions { max_connections: 1, ..ServeOptions::default() };
    let handle = std::thread::spawn(move || {
        serve_listener(listener, &options, &fd_trace::TraceConfig::off())
    });

    // Occupy the only slot and prove the session is live.
    let mut first = AnyStream::connect(&addr).expect("connect first");
    first.write_all(&request(1, ServeRequest::Status)).expect("status");
    first.flush().expect("flush");
    assert!(matches!(read_reply(&mut first).body, ServeResponse::Status { .. }));

    // The second connection is rejected with the id-0 overload frame.
    let mut second = AnyStream::connect(&addr).expect("connect second");
    let reply = read_reply(&mut second);
    assert_eq!(reply.id, 0);
    assert!(
        matches!(reply.body, ServeResponse::Overloaded { retry_after_ms } if retry_after_ms > 0),
        "got {:?}",
        reply.body
    );
    drop(second);

    first.write_all(&request(2, ServeRequest::Shutdown)).expect("shutdown");
    first.flush().expect("flush");
    assert_eq!(read_reply(&mut first).body, ServeResponse::Bye);
    let summary = handle.join().expect("no panic").expect("no serve error");
    assert_eq!(summary.incidents.overloaded_rejections, 1);
    assert_eq!(summary.incidents.connections_opened, 1);
}

/// The slow-loris guard: a session that completes no frame inside the
/// idle window is dropped, without touching other sessions.
#[test]
fn idle_sessions_are_dropped() {
    let listener = ServeListener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_string())).expect("bind");
    let addr = listener.local_addr().clone();
    let options = ServeOptions { idle_timeout_ms: 100, ..ServeOptions::default() };
    let handle = std::thread::spawn(move || {
        serve_listener(listener, &options, &fd_trace::TraceConfig::off())
    });

    let mut loris = AnyStream::connect(&addr).expect("connect");
    // Send half a frame and go quiet; the server must hang up on us.
    loris.write_all(b"999 ").expect("half a frame");
    loris.flush().expect("flush");
    let mut buf = [0u8; 16];
    let n = loris.read(&mut buf).expect("server closes, not errors");
    assert_eq!(n, 0, "idle session gets EOF");

    shutdown_socket(&addr);
    let summary = handle.join().expect("no panic").expect("no serve error");
    assert_eq!(summary.incidents.idle_timeouts, 1);
}

/// Unix-socket front end: bind, serve, and remove the socket file on
/// the way out.
#[test]
fn unix_socket_serves_and_cleans_up() {
    let path = temp_path("unix.sock");
    let _ = std::fs::remove_file(&path);
    let addr = ListenAddr::Unix(path.clone());
    let listener = ServeListener::bind(&addr).expect("bind unix");
    let options = ServeOptions::default();
    let handle = std::thread::spawn(move || {
        serve_listener(listener, &options, &fd_trace::TraceConfig::off())
    });

    let mut stream = AnyStream::connect(&addr).expect("connect unix");
    stream.write_all(&request(1, ServeRequest::Status)).expect("status");
    stream.flush().expect("flush");
    assert!(matches!(read_reply(&mut stream).body, ServeResponse::Status { .. }));
    stream.write_all(&request(2, ServeRequest::Shutdown)).expect("shutdown");
    stream.flush().expect("flush");
    assert_eq!(read_reply(&mut stream).body, ServeResponse::Bye);

    handle.join().expect("no panic").expect("no serve error");
    assert!(!path.exists(), "socket file removed after drain");
}

/// Crash-safe recovery end to end: a restarted server serves finished
/// jobs byte-identically from the journal and re-queues (then runs)
/// jobs that were accepted but never finished.
#[test]
fn journal_recovery_serves_completed_and_requeues_pending() {
    let path = temp_path("recovery.journal");
    let _ = std::fs::remove_file(&path);
    let options = ServeOptions { journal: Some(path.clone()), ..ServeOptions::default() };
    let (hex, inputs) = quickstart();

    // Life one: submit job 1, wait for its report, orderly shutdown.
    let (mut client, handle) = spawn_server(options.clone());
    client
        .write_all(&request(
            1,
            ServeRequest::Submit { job: 1, container_hex: hex.clone(), inputs: inputs.clone() },
        ))
        .expect("submit");
    assert_eq!(read_reply(&mut client).body, ServeResponse::Accepted { job: 1 });
    let first_json = poll_for_report(&mut client, 1);
    client.write_all(&request(99, ServeRequest::Shutdown)).expect("shutdown");
    assert_eq!(read_reply(&mut client).body, ServeResponse::Bye);
    handle.join().expect("no panic").expect("no serve error");

    // Between lives: append a Submitted record for job 2 with no
    // Completed — exactly what a crash after durable admission leaves.
    {
        let (mut j, _recovery) = JobJournal::open_or_create(&path, config_digest(&options.config))
            .expect("reopen journal");
        j.append_submitted(2, submission_digest(&hex, &inputs), &hex, &inputs)
            .expect("append pending job");
    }

    // Life two: job 1 is served byte-identically without resubmission;
    // job 2 is re-queued and runs to the same report.
    let (mut client, handle) = spawn_server(options);
    client.write_all(&request(1, ServeRequest::Poll { job: 1 })).expect("poll recovered");
    assert_eq!(
        read_reply(&mut client).body,
        ServeResponse::Report { job: 1, json: first_json.clone() },
        "completed job is recovered byte-identically"
    );
    let second_json = poll_for_report(&mut client, 2);
    assert_eq!(second_json, first_json, "re-queued job reruns deterministically");

    // Resubmitting a recovered id is still idempotent.
    client
        .write_all(&request(
            40,
            ServeRequest::Submit { job: 1, container_hex: hex.clone(), inputs: inputs.clone() },
        ))
        .expect("resubmit recovered");
    assert_eq!(read_reply(&mut client).body, ServeResponse::Accepted { job: 1 });

    client.write_all(&request(99, ServeRequest::Shutdown)).expect("shutdown");
    assert_eq!(read_reply(&mut client).body, ServeResponse::Bye);
    let trace = handle.join().expect("no panic").expect("no serve error");
    let recovered = trace.records.iter().any(|r| match r {
        fd_trace::TraceRecord::Event(e) => {
            matches!(e.event, fd_trace::TraceEvent::JournalRecovered { jobs: 2 })
        }
        _ => false,
    });
    assert!(recovered, "recovery is traced");
    let _ = std::fs::remove_file(&path);
}

/// A journal written under one configuration refuses to serve another.
#[test]
fn journal_refuses_a_different_config() {
    let path = temp_path("config-mismatch.journal");
    let _ = std::fs::remove_file(&path);
    let options = ServeOptions { journal: Some(path.clone()), ..ServeOptions::default() };
    {
        let (_j, _recovery) = JobJournal::open_or_create(&path, config_digest(&options.config) ^ 1)
            .expect("seed journal under a different digest");
    }
    let err = serve(&b""[..], Vec::new(), &options, &fd_trace::TraceConfig::off())
        .expect_err("config mismatch is refused");
    assert!(
        matches!(err, ServeError::Journal(JournalError::FingerprintMismatch { .. })),
        "got {err:?}"
    );
    let _ = std::fs::remove_file(&path);
}
