//! Parallel multi-app runs — the harness the evaluation experiments share.

use crate::config::FragDroidConfig;
use crate::driver::FragDroid;
use crate::report::RunReport;
use fd_apk::AndroidApp;
use std::collections::BTreeMap;

/// One app plus its analyst-provided inputs.
pub type SuiteApp = (AndroidApp, BTreeMap<String, String>);

/// Runs FragDroid over many apps in parallel (one OS thread per chunk),
/// returning reports in input order. Determinism is unaffected: each app's
/// run is self-contained.
pub fn run_suite(apps: &[SuiteApp], config: &FragDroidConfig) -> Vec<RunReport> {
    let mut results: Vec<Option<RunReport>> = Vec::new();
    results.resize_with(apps.len(), || None);
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let chunk = apps.len().div_ceil(workers).max(1);

    crossbeam::thread::scope(|scope| {
        for (apps_chunk, results_chunk) in apps.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for ((app, inputs), slot) in apps_chunk.iter().zip(results_chunk.iter_mut()) {
                    *slot = Some(FragDroid::new(config.clone()).run(app, inputs));
                }
            });
        }
    })
    .expect("suite worker panicked");

    results.into_iter().map(|r| r.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_results_are_in_order_and_match_single_runs() {
        let apps: Vec<SuiteApp> = [
            fd_appgen::templates::quickstart(),
            fd_appgen::templates::nav_drawer_wallpapers(),
            fd_appgen::templates::tabbed_categories(),
        ]
        .into_iter()
        .map(|g| (g.app, g.known_inputs))
        .collect();

        let config = FragDroidConfig::default();
        let parallel = run_suite(&apps, &config);
        assert_eq!(parallel.len(), 3);
        for ((app, inputs), report) in apps.iter().zip(&parallel) {
            let single = FragDroid::new(config.clone()).run(app, inputs);
            assert_eq!(single.visited_activities, report.visited_activities);
            assert_eq!(single.visited_fragments, report.visited_fragments);
            assert_eq!(single.events_injected, report.events_injected);
        }
    }

    #[test]
    fn empty_suite_is_fine() {
        assert!(run_suite(&[], &FragDroidConfig::default()).is_empty());
    }
}
