//! The shared corpus runner every multi-app experiment goes through.
//!
//! One work-stealing scheduler replaces the three parallel harnesses the
//! evaluation crates used to carry around (static chunking here, an
//! unbounded thread-per-app loop in Table I, and a hand-rolled chunked
//! scope in the corpus benchmark). Workers pull the next un-started app
//! off a shared atomic index, so one slow app no longer stalls a whole
//! chunk's worth of siblings.
//!
//! Fault isolation: each app runs under [`std::panic::catch_unwind`]. A
//! panicking app yields [`AppOutcome::Panicked`] while every other app
//! still completes — the suite never aborts. A per-app wall-clock
//! deadline ([`crate::FragDroidConfig::app_deadline`]) surfaces as
//! [`AppOutcome::DeadlineExceeded`], keeping the partial report.
//!
//! Every run also produces a [`SuiteMetrics`] record (per-app wall time,
//! event throughput, worker utilization) that serializes to JSON.

use crate::config::FragDroidConfig;
use crate::driver::FragDroid;
use crate::report::RunReport;
use fd_apk::AndroidApp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One app plus its analyst-provided inputs.
pub type SuiteApp = (AndroidApp, BTreeMap<String, String>);

/// One packed container plus its analyst-provided inputs — the byte-level
/// form of a [`SuiteApp`], for suites that exercise the ingestion
/// frontier (decode + parse) per app.
pub type SuiteContainer = (bytes::Bytes, BTreeMap<String, String>);

/// How one app's run ended.
///
/// Serializable so the checkpoint journal ([`crate::checkpoint`]) can
/// persist one record per outcome and restore it byte-identically on
/// resume.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum AppOutcome {
    /// The run finished within its budgets.
    Completed(RunReport),
    /// The run panicked; the message is the panic payload. Siblings are
    /// unaffected.
    Panicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// The per-app deadline passed; the report holds the partial results
    /// accumulated up to that point.
    DeadlineExceeded(RunReport),
    /// The input was rejected at the ingestion frontier — a malformed,
    /// truncated, or packer-protected container that never became an app.
    /// This is the paper's dataset-filtering step surfaced per app: the
    /// input is quarantined with a typed diagnostic, and
    /// [`AppOutcome::Panicked`] stays a true-bug signal.
    Rejected {
        /// The typed decode/parse error, rendered with its byte offset.
        reason: String,
    },
}

impl AppOutcome {
    /// The report, if the run produced one (completed or partial).
    pub fn report(&self) -> Option<&RunReport> {
        match self {
            AppOutcome::Completed(r) | AppOutcome::DeadlineExceeded(r) => Some(r),
            AppOutcome::Panicked { .. } | AppOutcome::Rejected { .. } => None,
        }
    }

    /// Consumes the outcome into its report, if any.
    pub fn into_report(self) -> Option<RunReport> {
        match self {
            AppOutcome::Completed(r) | AppOutcome::DeadlineExceeded(r) => Some(r),
            AppOutcome::Panicked { .. } | AppOutcome::Rejected { .. } => None,
        }
    }

    /// Whether this run panicked.
    pub fn is_panicked(&self) -> bool {
        matches!(self, AppOutcome::Panicked { .. })
    }

    /// Whether this input was rejected at the ingestion frontier.
    pub fn is_rejected(&self) -> bool {
        matches!(self, AppOutcome::Rejected { .. })
    }
}

/// Observability record for one app's slot in a suite run.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct AppMetrics {
    /// The app's manifest package.
    pub package: String,
    /// Wall-clock time the app's run took, in milliseconds.
    pub wall_ms: u64,
    /// UI events injected (0 for a panicked run).
    pub events_injected: usize,
    /// Injection throughput over the app's wall time.
    pub events_per_second: f64,
    /// Test cases executed.
    pub test_cases_run: usize,
    /// Test cases ever generated (enqueued), including skipped ones.
    pub test_cases_generated: usize,
    /// Force-closes observed.
    pub crashes: usize,
    /// Crashes the driver's supervisor recovered from (relaunch + path
    /// replay).
    #[serde(default)]
    pub recovered_crashes: usize,
    /// Event retries after transient device errors.
    #[serde(default)]
    pub retries: usize,
    /// Faults the device's plan injected.
    #[serde(default)]
    pub faults_injected: usize,
    /// Whether the run panicked.
    pub panicked: bool,
    /// Whether the run hit its wall-clock deadline.
    pub deadline_exceeded: bool,
    /// Whether the input was rejected at the ingestion frontier.
    #[serde(default)]
    pub rejected: bool,
    /// The rejection diagnostic (empty unless `rejected`).
    #[serde(default)]
    pub reject_reason: String,
}

/// Observability record for a whole suite run.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct SuiteMetrics {
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall-clock time, in milliseconds.
    pub wall_ms: u64,
    /// Sum of per-worker busy time, in milliseconds.
    pub busy_ms: u64,
    /// `busy / (workers * wall)` — 1.0 means no worker ever idled.
    pub worker_utilization: f64,
    /// Median per-app wall time, in milliseconds (nearest-rank; 0 for an
    /// empty suite).
    #[serde(default)]
    pub app_wall_ms_p50: u64,
    /// 95th-percentile per-app wall time, in milliseconds (nearest-rank).
    #[serde(default)]
    pub app_wall_ms_p95: u64,
    /// Slowest single app's wall time, in milliseconds.
    #[serde(default)]
    pub app_wall_ms_max: u64,
    /// Inputs rejected at the ingestion frontier (quarantined, not run).
    #[serde(default)]
    pub rejected: usize,
    /// Device-infrastructure incidents the pool absorbed: app attempts
    /// that ended in agent death / protocol timeout and were retried on a
    /// fresh lease. Incidents are harness failures, never app crashes —
    /// they are excluded from every crash count.
    #[serde(default)]
    pub device_incidents: usize,
    /// Flake-triage results, when the run was asked to re-run failed
    /// apps (`--flake-retries`); `None` otherwise, and absent in legacy
    /// records.
    #[serde(default)]
    pub flake_summary: Option<crate::checkpoint::FlakeSummary>,
    /// Per-app records, in input order.
    pub apps: Vec<AppMetrics>,
}

impl SuiteMetrics {
    /// Serializes the record to pretty JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a record back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// Nearest-rank percentile over a sorted ascending slice (0 when empty).
///
/// This is the textbook nearest-rank definition — `rank = ⌈p/100 · n⌉`,
/// clamped to `[1, n]`, returning `sorted[rank - 1]` — NOT a linear
/// interpolation: the result is always an element of the input. The
/// clamp makes the edges total: `p = 0` (rank 0) reads the minimum and
/// `p ≥ 100` reads the maximum. Pinned by `percentile_is_nearest_rank`;
/// the published `app_wall_ms_p50`/`p95` quantiles and `BENCH_*.json`
/// baselines depend on this exact convention, so changing it is a
/// metrics-format break.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A suite run's outcomes (input order) plus its metrics.
#[derive(Debug)]
pub struct SuiteRun {
    /// One outcome per input app, in input order.
    pub outcomes: Vec<AppOutcome>,
    /// The run's observability record.
    pub metrics: SuiteMetrics,
}

impl SuiteRun {
    /// FNV-1a digest over the serialized outcomes, in input order — a
    /// timing-free fingerprint of *what the suite found*. Two runs of the
    /// same corpus with the same seed produce the same digest regardless
    /// of worker count, tracing, or checkpoint/resume interruptions; CI
    /// diffs it to prove kill-and-resume determinism.
    pub fn outcome_digest(&self) -> u64 {
        let mut digest = crate::checkpoint::FNV_OFFSET;
        for outcome in &self.outcomes {
            match serde_json::to_string(outcome) {
                Ok(json) => digest = crate::checkpoint::fnv1a(digest, json.as_bytes()),
                // Outcomes are plain data and always serialize; fold the
                // slot marker anyway so a hypothetical failure still
                // perturbs the digest instead of vanishing.
                Err(_) => digest = crate::checkpoint::fnv1a(digest, b"<unserializable>"),
            }
        }
        digest
    }
}

/// One slot of an [`engine`] run: the job's result (or stringified panic
/// payload) and its wall time.
pub type EngineSlot<T> = (Result<T, String>, Duration);

/// The generic work-stealing engine underneath [`run_suite_outcomes`] —
/// public so callers with non-`RunReport` jobs (and the runner tests) can
/// drive arbitrary closures through the same scheduling and isolation.
pub mod engine {
    use super::*;

    /// What a finished engine run hands back.
    #[derive(Debug)]
    pub struct EngineRun<T> {
        /// One slot per index, in input order.
        pub results: Vec<EngineSlot<T>>,
        /// Worker threads used (0 when there was no work).
        pub workers: usize,
        /// End-to-end wall-clock time.
        pub wall: Duration,
        /// Sum of per-worker busy time.
        pub busy: Duration,
    }

    /// Runs `job(0..n)` across `workers` threads with work stealing:
    /// each idle worker claims the next un-started index from a shared
    /// atomic counter. Panics inside `job` are caught per index and
    /// surface as `Err(message)` in that index's slot; the other indices
    /// are unaffected. Results come back in input order.
    pub fn run_indexed<T, F>(n: usize, workers: usize, job: F) -> EngineRun<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        run_indexed_tagged(n, workers, |_worker, index| job(index))
    }

    /// [`run_indexed`] where the job also learns which worker *lane*
    /// (`0..workers`) runs it — the hook per-lane consumers (a tracer
    /// track per thread, say) need to stay lock-free.
    pub fn run_indexed_tagged<T, F>(n: usize, workers: usize, job: F) -> EngineRun<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        if n == 0 {
            return EngineRun {
                results: Vec::new(),
                workers: 0,
                wall: Duration::ZERO,
                busy: Duration::ZERO,
            };
        }
        let workers = workers.min(n).max(1);
        let next = AtomicUsize::new(0);
        let job = &job;
        let started = Instant::now();

        let mut slots: Vec<Option<EngineSlot<T>>> = Vec::new();
        slots.resize_with(n, || None);
        let mut busy = Duration::ZERO;

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, EngineSlot<T>)> = Vec::new();
                        let mut worker_busy = Duration::ZERO;
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= n {
                                break;
                            }
                            let t0 = Instant::now();
                            let result = catch_unwind(AssertUnwindSafe(|| job(worker, index)))
                                .map_err(|payload| panic_message(payload.as_ref()));
                            let elapsed = t0.elapsed();
                            worker_busy += elapsed;
                            local.push((index, (result, elapsed)));
                        }
                        (local, worker_busy)
                    })
                })
                .collect();
            for handle in handles {
                // Workers should be panic-free (every job runs under
                // catch_unwind), but a panic in the scheduling loop
                // itself must degrade to per-slot errors, not abort the
                // whole suite: the slots that worker claimed surface as
                // failed, every other worker's results survive.
                match handle.join() {
                    Ok((local, worker_busy)) => {
                        busy += worker_busy;
                        for (index, slot) in local {
                            slots[index] = Some(slot);
                        }
                    }
                    Err(payload) => {
                        eprintln!(
                            "suite: worker crashed outside job isolation: {}",
                            panic_message(payload.as_ref())
                        );
                    }
                }
            }
        });

        EngineRun {
            results: slots
                .into_iter()
                .map(|s| {
                    s.unwrap_or_else(|| {
                        (
                            Err("suite worker crashed before this slot completed".into()),
                            Duration::ZERO,
                        )
                    })
                })
                .collect(),
            workers,
            wall: started.elapsed(),
            busy,
        }
    }

    /// The default worker count: one per available core, capped at the
    /// amount of work.
    pub fn default_workers(n: usize) -> usize {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n.max(1))
    }

    /// Renders a caught panic payload. `pub(crate)` so the checkpointed
    /// runner's own isolation layer reports identically.
    pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "opaque panic payload".to_string()
        }
    }
}

/// Runs FragDroid over many apps on the work-stealing engine, returning
/// per-app [`AppOutcome`]s in input order plus [`SuiteMetrics`]. A
/// panicking app is isolated to its own slot; a deadline-limited app
/// keeps its partial report.
pub fn run_suite_outcomes(apps: &[SuiteApp], config: &FragDroidConfig) -> SuiteRun {
    run_suite_with_workers(apps, config, engine::default_workers(apps.len()))
}

/// [`run_suite_outcomes`] with an explicit worker count (1 reproduces a
/// sequential run exactly).
pub fn run_suite_with_workers(
    apps: &[SuiteApp],
    config: &FragDroidConfig,
    workers: usize,
) -> SuiteRun {
    run_suite_traced(apps, config, workers, &fd_trace::TraceConfig::off()).0
}

/// [`run_suite_with_workers`] under a trace configuration.
///
/// Every worker lane owns a private tracer (one ring buffer per app run,
/// no locks on the hot path; the lane index becomes the Chrome `tid`).
/// Each app's run is wrapped in a [`fd_trace::Phase::App`] span named
/// after its package, and a coordinator track brackets the whole suite in
/// a [`fd_trace::Phase::Suite`] span. Per-app tracks merge into the
/// returned [`fd_trace::Trace`] in input order; a panicked app's track is
/// lost with the run (its slot still reports [`AppOutcome::Panicked`]).
///
/// With [`fd_trace::TraceConfig::off`] this *is* `run_suite_with_workers`
/// — the same code path, an empty trace, and byte-identical reports
/// (property-tested in `tests/trace_prop.rs`).
pub fn run_suite_traced(
    apps: &[SuiteApp],
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
) -> (SuiteRun, fd_trace::Trace) {
    run_traced_inner(&SuiteSource::Apps(apps), config, workers, trace_config, None)
}

/// Runs FragDroid over *packed containers*: each worker decodes its
/// container on the spot and only then explores it. A container the
/// checked decoder refuses (truncated, bad length field, packed, corrupt
/// JSON, unparsable smali) is quarantined as [`AppOutcome::Rejected`]
/// with the typed diagnostic — it never reaches the driver, never
/// panics, and is counted in [`SuiteMetrics::rejected`]. This is the
/// ingestion frontier the suite-level experiments go through.
pub fn run_container_suite_outcomes(
    containers: &[SuiteContainer],
    config: &FragDroidConfig,
) -> SuiteRun {
    run_container_suite_traced(
        containers,
        config,
        engine::default_workers(containers.len()),
        &fd_trace::TraceConfig::off(),
    )
    .0
}

/// [`run_container_suite_outcomes`] with an explicit worker count and
/// trace configuration. Each rejection emits a
/// [`fd_trace::TraceEvent::InputRejected`] on the worker's track.
pub fn run_container_suite_traced(
    containers: &[SuiteContainer],
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
) -> (SuiteRun, fd_trace::Trace) {
    run_traced_inner(&SuiteSource::Containers(containers), config, workers, trace_config, None)
}

/// [`run_container_suite_traced`] against a caller-built
/// [`crate::pool::DevicePool`] — the hook for custom device factories
/// (kill-injection in CI, test doubles). The pool should have at least
/// `workers` lanes; [`SuiteMetrics::device_incidents`] reflects the
/// pool's incident count after the run.
pub fn run_container_suite_pooled(
    containers: &[SuiteContainer],
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
    pool: &crate::pool::DevicePool,
) -> (SuiteRun, fd_trace::Trace) {
    run_traced_inner(
        &SuiteSource::Containers(containers),
        config,
        workers,
        trace_config,
        Some(pool),
    )
}

/// [`run_container_suite_traced`] over a lazily fetched
/// [`CorpusSource`] — on-disk corpora, shard sub-ranges, pack-on-demand
/// generators. Only the entries currently running are resident.
pub fn run_corpus_suite_traced(
    source: &dyn CorpusSource,
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
) -> (SuiteRun, fd_trace::Trace) {
    run_traced_inner(&SuiteSource::Lazy(source), config, workers, trace_config, None)
}

/// [`run_corpus_suite_traced`] against a caller-built
/// [`crate::pool::DevicePool`].
pub fn run_corpus_suite_pooled(
    source: &dyn CorpusSource,
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
    pool: &crate::pool::DevicePool,
) -> (SuiteRun, fd_trace::Trace) {
    run_traced_inner(&SuiteSource::Lazy(source), config, workers, trace_config, Some(pool))
}

/// A corpus the suite streams one entry at a time instead of requiring
/// the whole thing as a slice — the entry point for on-disk corpora
/// ([`fd_apk::corpus::CorpusReader`]), shard sub-ranges, and generators
/// that pack on demand. Only the entry being run is resident; memory
/// stays O(1 app) regardless of corpus size.
///
/// `fetch` errors are treated exactly like refused containers: the slot
/// is quarantined as [`AppOutcome::Rejected`] and counted in
/// [`SuiteMetrics::rejected`].
pub trait CorpusSource: Sync {
    /// Number of entries in the corpus.
    fn len(&self) -> usize;

    /// Whether the corpus holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes entry `index`: packed container bytes plus analyst
    /// inputs.
    fn fetch(&self, index: usize) -> Result<SuiteContainer, String>;

    /// The streaming corpus digest — byte-identical to the eager
    /// [`SuiteSource`] digest of the same entries. The default streams
    /// every entry through [`CorpusSource::fetch`] once; sources with a
    /// cheaper path (a recorded manifest digest, borrowed slices)
    /// should override it.
    fn digest(&self) -> Result<u64, String> {
        let mut digest = crate::checkpoint::FNV_OFFSET;
        for index in 0..self.len() {
            let (bytes, inputs) = self.fetch(index)?;
            digest = crate::checkpoint::fnv1a(digest, &bytes);
            for (key, value) in &inputs {
                digest = crate::checkpoint::fnv1a(digest, key.as_bytes());
                digest = crate::checkpoint::fnv1a(digest, value.as_bytes());
            }
        }
        Ok(digest)
    }
}

/// An in-memory corpus is trivially a [`CorpusSource`]: fetching clones
/// one entry (the container bytes and its inputs), never the corpus.
impl CorpusSource for [SuiteContainer] {
    fn len(&self) -> usize {
        <[SuiteContainer]>::len(self)
    }

    fn fetch(&self, index: usize) -> Result<SuiteContainer, String> {
        self.get(index)
            .cloned()
            .ok_or_else(|| format!("corpus entry {index} out of range ({} entries)", self.len()))
    }

    fn digest(&self) -> Result<u64, String> {
        SuiteSource::Containers(self).digest()
    }
}

/// A `Vec` corpus delegates to the slice impl — the sized form callers
/// need when handing an in-memory corpus over as `&dyn CorpusSource`.
impl CorpusSource for Vec<SuiteContainer> {
    fn len(&self) -> usize {
        Vec::len(self)
    }

    fn fetch(&self, index: usize) -> Result<SuiteContainer, String> {
        self.as_slice().fetch(index)
    }

    fn digest(&self) -> Result<u64, String> {
        CorpusSource::digest(self.as_slice())
    }
}

/// An on-disk FDCS corpus streams entries by seek + read; the digest
/// streams the shard files once, matching the in-memory fold.
impl CorpusSource for fd_apk::corpus::CorpusReader {
    fn len(&self) -> usize {
        fd_apk::corpus::CorpusReader::len(self)
    }

    fn fetch(&self, index: usize) -> Result<SuiteContainer, String> {
        fd_apk::corpus::CorpusReader::fetch(self, index)
            .map(|(container, inputs)| (bytes::Bytes::from(container), inputs))
            .map_err(|e| e.to_string())
    }

    fn digest(&self) -> Result<u64, String> {
        self.corpus_digest().map_err(|e| e.to_string())
    }
}

/// The input shapes a suite can run over, unified so the plain and
/// checkpointed runners share one job body (decode, explore, quarantine)
/// and one corpus fingerprint.
pub(crate) enum SuiteSource<'a> {
    /// Already-decoded apps: rejection is impossible.
    Apps(&'a [SuiteApp]),
    /// Packed containers: each worker decodes on the spot and rejected
    /// inputs are quarantined.
    Containers(&'a [SuiteContainer]),
    /// A lazily fetched corpus: each slot is materialized on the worker
    /// that runs it and dropped when the run ends.
    Lazy(&'a dyn CorpusSource),
}

impl SuiteSource<'_> {
    /// Number of input slots.
    pub(crate) fn len(&self) -> usize {
        match self {
            SuiteSource::Apps(apps) => apps.len(),
            SuiteSource::Containers(containers) => containers.len(),
            SuiteSource::Lazy(source) => source.len(),
        }
    }

    /// Label for a slot that never produced an app (panicked/rejected).
    pub(crate) fn name_of(&self, index: usize) -> String {
        match self {
            SuiteSource::Apps(apps) => apps[index].0.manifest.package.clone(),
            SuiteSource::Containers(_) | SuiteSource::Lazy(_) => format!("container[{index}]"),
        }
    }

    /// Runs one slot on a device leased from `pool` lane `lane`:
    /// `Ok((report, package))` for a run, `Err(reason)` for an input the
    /// ingestion frontier refused. Panics propagate to the caller's
    /// isolation layer; infrastructure failures are absorbed by the
    /// pool's retry/quarantine scheduling.
    pub(crate) fn run_one(
        &self,
        index: usize,
        config: &FragDroidConfig,
        tracer: &fd_trace::Tracer,
        pool: &crate::pool::DevicePool,
        lane: usize,
    ) -> Result<(RunReport, String), String> {
        match self {
            SuiteSource::Apps(apps) => {
                let (app, inputs) = &apps[index];
                let report = {
                    let _app = tracer.span(fd_trace::Phase::App, &app.manifest.package);
                    let tool = FragDroid::new(config.clone());
                    pool.run_app(lane, tracer, |device| {
                        tool.run_traced_on(app, inputs, tracer, device)
                    })
                };
                Ok((report, app.manifest.package.clone()))
            }
            SuiteSource::Containers(containers) => {
                let (bytes, inputs) = &containers[index];
                run_container_slot(bytes, inputs, config, tracer, pool, lane)
            }
            SuiteSource::Lazy(source) => match source.fetch(index) {
                Ok((bytes, inputs)) => {
                    run_container_slot(&bytes, &inputs, config, tracer, pool, lane)
                }
                Err(reason) => {
                    tracer.event(|| fd_trace::TraceEvent::InputRejected { reason: reason.clone() });
                    Err(reason)
                }
            },
        }
    }

    /// FNV-1a digest of the corpus content (container bytes or packed
    /// apps, plus the analyst inputs) — one half of the journal
    /// fingerprint that stops a resume against a different corpus. A
    /// lazy source that cannot be streamed surfaces its reason instead
    /// of a digest.
    pub(crate) fn digest(&self) -> Result<u64, String> {
        let mut digest = crate::checkpoint::FNV_OFFSET;
        let fold_inputs = |digest: &mut u64, inputs: &BTreeMap<String, String>| {
            for (key, value) in inputs {
                *digest = crate::checkpoint::fnv1a(*digest, key.as_bytes());
                *digest = crate::checkpoint::fnv1a(*digest, value.as_bytes());
            }
        };
        match self {
            SuiteSource::Apps(apps) => {
                let mut packed = bytes::BytesMut::new();
                for (app, inputs) in *apps {
                    fd_apk::pack_into(app, &mut packed);
                    digest = crate::checkpoint::fnv1a(digest, &packed);
                    fold_inputs(&mut digest, inputs);
                }
            }
            SuiteSource::Containers(containers) => {
                for (bytes, inputs) in *containers {
                    digest = crate::checkpoint::fnv1a(digest, bytes);
                    fold_inputs(&mut digest, inputs);
                }
            }
            SuiteSource::Lazy(source) => digest = source.digest()?,
        }
        Ok(digest)
    }
}

/// The shared container slot body: decode through the ingestion
/// frontier, then explore on a pooled device. Refused containers emit
/// [`fd_trace::TraceEvent::InputRejected`] and return the typed reason.
pub(crate) fn run_container_slot(
    bytes: &bytes::Bytes,
    inputs: &BTreeMap<String, String>,
    config: &FragDroidConfig,
    tracer: &fd_trace::Tracer,
    pool: &crate::pool::DevicePool,
    lane: usize,
) -> Result<(RunReport, String), String> {
    match fd_apk::decompile_traced(bytes, tracer) {
        Ok(app) => {
            let report = {
                let _app = tracer.span(fd_trace::Phase::App, &app.manifest.package);
                let tool = FragDroid::new(config.clone());
                pool.run_app(lane, tracer, |device| {
                    tool.run_traced_on(&app, inputs, tracer, device)
                })
            };
            Ok((report, app.manifest.package))
        }
        Err(error) => {
            let reason = error.to_string();
            tracer.event(|| fd_trace::TraceEvent::InputRejected { reason: reason.clone() });
            Err(reason)
        }
    }
}

/// Classifies one engine slot into its outcome. `from_engine` is the
/// per-slot result: `Ok` carries the job's own verdict (run or
/// rejection), `Err` a caught panic message.
pub(crate) fn slot_outcome(
    from_engine: Result<Result<(RunReport, String), String>, String>,
    source: &SuiteSource<'_>,
    index: usize,
) -> (AppOutcome, String) {
    match from_engine {
        Ok(Ok((report, package))) => {
            let outcome = if report.deadline_exceeded {
                AppOutcome::DeadlineExceeded(report)
            } else {
                AppOutcome::Completed(report)
            };
            (outcome, package)
        }
        Ok(Err(reason)) => (AppOutcome::Rejected { reason }, source.name_of(index)),
        Err(message) => (AppOutcome::Panicked { message }, source.name_of(index)),
    }
}

/// Builds one app's observability record from its outcome and wall time.
pub(crate) fn slot_metrics(outcome: &AppOutcome, package: String, elapsed: Duration) -> AppMetrics {
    let (events, cases_run, cases_generated, crashes, recovered, retries, faults) =
        match outcome.report() {
            Some(r) => (
                r.events_injected,
                r.test_cases_run,
                r.test_cases_generated,
                r.crashes,
                r.recovered_crashes,
                r.retries,
                r.faults_injected,
            ),
            None => (0, 0, 0, 0, 0, 0, 0),
        };
    let secs = elapsed.as_secs_f64();
    AppMetrics {
        package,
        wall_ms: elapsed.as_millis() as u64,
        events_injected: events,
        events_per_second: if secs > 0.0 { events as f64 / secs } else { 0.0 },
        test_cases_run: cases_run,
        test_cases_generated: cases_generated,
        crashes,
        recovered_crashes: recovered,
        retries,
        faults_injected: faults,
        panicked: outcome.is_panicked(),
        deadline_exceeded: matches!(outcome, AppOutcome::DeadlineExceeded(_)),
        rejected: outcome.is_rejected(),
        reject_reason: match outcome {
            AppOutcome::Rejected { reason } => reason.clone(),
            _ => String::new(),
        },
    }
}

/// Folds per-app records plus the engine's aggregate timings into a
/// [`SuiteMetrics`].
pub(crate) fn assemble_metrics(
    per_app: Vec<AppMetrics>,
    workers_used: usize,
    wall: Duration,
    busy: Duration,
    device_incidents: usize,
) -> SuiteMetrics {
    let capacity = workers_used as f64 * wall.as_secs_f64();
    let mut sorted_walls: Vec<u64> = per_app.iter().map(|m| m.wall_ms).collect();
    sorted_walls.sort_unstable();
    let rejected = per_app.iter().filter(|m| m.rejected).count();
    SuiteMetrics {
        workers: workers_used,
        wall_ms: wall.as_millis() as u64,
        busy_ms: busy.as_millis() as u64,
        worker_utilization: if capacity > 0.0 {
            (busy.as_secs_f64() / capacity).min(1.0)
        } else {
            0.0
        },
        app_wall_ms_p50: percentile(&sorted_walls, 50.0),
        app_wall_ms_p95: percentile(&sorted_walls, 95.0),
        app_wall_ms_max: sorted_walls.last().copied().unwrap_or(0),
        rejected,
        device_incidents,
        flake_summary: None,
        apps: per_app,
    }
}

/// The shared body of the app- and container-level suites: the work-
/// stealing engine, per-lane tracers, and the outcome/metrics assembly.
/// A panic inside a slot surfaces as [`AppOutcome::Panicked`] via the
/// engine's isolation.
fn run_traced_inner(
    source: &SuiteSource<'_>,
    config: &FragDroidConfig,
    workers: usize,
    trace_config: &fd_trace::TraceConfig,
    pool: Option<&crate::pool::DevicePool>,
) -> (SuiteRun, fd_trace::Trace) {
    let n = source.len();
    let trace_config = *trace_config;
    let clock = fd_trace::TraceClock::start();
    // Coordinator track: one lane past the last worker's.
    let worker_lanes = workers.min(n.max(1)).max(1);
    let coordinator_lane = worker_lanes as u64;
    let coordinator = fd_trace::Tracer::new(&trace_config, clock, coordinator_lane);
    let suite_span = coordinator.span(fd_trace::Phase::Suite, "suite");

    // One device lane per worker lane, so a worker only ever touches its
    // own devices and leases never contend.
    let default_pool;
    let pool = match pool {
        Some(pool) => pool,
        None => {
            default_pool = crate::pool::DevicePool::from_config(config, worker_lanes);
            &default_pool
        }
    };

    let engine_run = engine::run_indexed_tagged(n, workers, |worker, index| {
        let tracer = fd_trace::Tracer::new(&trace_config, clock, worker as u64);
        let result = source.run_one(index, config, &tracer, pool, worker);
        (result, tracer.finish())
    });

    suite_span.end();
    let mut trace = fd_trace::Trace::new("fragdroid-suite");
    trace.absorb(coordinator.finish());

    let wall = engine_run.wall;
    let busy = engine_run.busy;
    let workers_used = engine_run.workers;

    let mut outcomes = Vec::with_capacity(n);
    let mut per_app = Vec::with_capacity(n);
    for (index, (result, elapsed)) in engine_run.results.into_iter().enumerate() {
        let from_engine = result.map(|(job_result, track)| {
            trace.absorb(track);
            job_result
        });
        let (outcome, package) = slot_outcome(from_engine, source, index);
        per_app.push(slot_metrics(&outcome, package, elapsed));
        outcomes.push(outcome);
    }

    let run = SuiteRun {
        outcomes,
        metrics: assemble_metrics(per_app, workers_used, wall, busy, pool.incidents()),
    };
    (run, trace)
}

/// Runs FragDroid over many apps in parallel, returning reports in input
/// order. Determinism is unaffected: each app's run is self-contained.
///
/// This is the legacy strict entry point: a panic in any app is
/// propagated (after every other app finished). Callers that want
/// fault isolation or metrics use [`run_suite_outcomes`].
pub fn run_suite(apps: &[SuiteApp], config: &FragDroidConfig) -> Vec<RunReport> {
    run_suite_outcomes(apps, config)
        .outcomes
        .into_iter()
        .map(|outcome| match outcome {
            AppOutcome::Completed(r) | AppOutcome::DeadlineExceeded(r) => r,
            AppOutcome::Panicked { message } => {
                panic!("suite app panicked: {message}")
            }
            // App-level suites never reject: the inputs are already apps.
            AppOutcome::Rejected { reason } => {
                panic!("suite input rejected: {reason}")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template_apps() -> Vec<SuiteApp> {
        [
            fd_appgen::templates::quickstart(),
            fd_appgen::templates::nav_drawer_wallpapers(),
            fd_appgen::templates::tabbed_categories(),
        ]
        .into_iter()
        .map(|g| (g.app, g.known_inputs))
        .collect()
    }

    #[test]
    fn suite_results_are_in_order_and_match_single_runs() {
        let apps = template_apps();
        let config = FragDroidConfig::default();
        let parallel = run_suite(&apps, &config);
        assert_eq!(parallel.len(), 3);
        for ((app, inputs), report) in apps.iter().zip(&parallel) {
            let single = FragDroid::new(config.clone()).run(app, inputs);
            assert_eq!(single.visited_activities, report.visited_activities);
            assert_eq!(single.visited_fragments, report.visited_fragments);
            assert_eq!(single.events_injected, report.events_injected);
        }
    }

    #[test]
    fn empty_suite_is_fine() {
        assert!(run_suite(&[], &FragDroidConfig::default()).is_empty());
        let run = run_suite_outcomes(&[], &FragDroidConfig::default());
        assert!(run.outcomes.is_empty());
        assert_eq!(run.metrics.workers, 0);
        assert!(run.metrics.apps.is_empty());
    }

    #[test]
    fn single_worker_matches_default_run() {
        let apps = template_apps();
        let config = FragDroidConfig::default();
        let sequential = run_suite_with_workers(&apps, &config, 1);
        let parallel = run_suite_outcomes(&apps, &config);
        for (a, b) in sequential.outcomes.iter().zip(&parallel.outcomes) {
            let (a, b) = (a.report().unwrap(), b.report().unwrap());
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "worker count must not affect results"
            );
        }
    }

    #[test]
    fn panicking_job_is_isolated_from_siblings() {
        let run = engine::run_indexed(5, 4, |i| {
            if i == 2 {
                panic!("job {i} exploded");
            }
            i * 10
        });
        assert_eq!(run.results.len(), 5);
        let panicked: Vec<usize> = run
            .results
            .iter()
            .enumerate()
            .filter(|(_, (r, _))| r.is_err())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(panicked, vec![2], "exactly the panicking index fails");
        assert_eq!(
            run.results[2].0.as_ref().unwrap_err(),
            "job 2 exploded",
            "panic payload is preserved"
        );
        for i in [0usize, 1, 3, 4] {
            assert_eq!(*run.results[i].0.as_ref().unwrap(), i * 10, "siblings complete");
        }
    }

    #[test]
    fn engine_results_are_in_input_order() {
        let run = engine::run_indexed(64, 8, |i| i);
        let values: Vec<usize> = run.results.into_iter().map(|(r, _)| r.unwrap()).collect();
        assert_eq!(values, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn deadline_exceeded_keeps_partial_report() {
        let apps = template_apps();
        let config = FragDroidConfig::default().with_deadline(Duration::ZERO);
        let run = run_suite_outcomes(&apps, &config);
        for outcome in &run.outcomes {
            match outcome {
                AppOutcome::DeadlineExceeded(report) => {
                    // The very first budget check fails, so nothing ran —
                    // but the report is still a well-formed partial result.
                    assert_eq!(report.events_injected, 0);
                    assert!(report.deadline_exceeded);
                }
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
        }
        assert!(run.metrics.apps.iter().all(|m| m.deadline_exceeded));
    }

    #[test]
    fn suite_metrics_roundtrip_through_json() {
        let apps = template_apps();
        let run = run_suite_outcomes(&apps, &FragDroidConfig::default());
        let metrics = &run.metrics;
        assert_eq!(metrics.apps.len(), 3);
        assert!(metrics.workers >= 1);
        assert!(metrics.apps.iter().all(|m| !m.panicked && !m.deadline_exceeded));
        assert!(metrics.apps.iter().all(|m| m.events_injected > 0));
        let json = metrics.to_json().expect("metrics serialize");
        let parsed = SuiteMetrics::from_json(&json).expect("roundtrip parses");
        assert_eq!(&parsed, metrics);
        // The drain-time quantiles are consistent with the per-app walls.
        let max = metrics.apps.iter().map(|m| m.wall_ms).max().unwrap();
        assert_eq!(metrics.app_wall_ms_max, max);
        assert!(metrics.app_wall_ms_p50 <= metrics.app_wall_ms_p95);
        assert!(metrics.app_wall_ms_p95 <= metrics.app_wall_ms_max);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        // Degenerate inputs: empty is defined as 0; a singleton answers
        // itself at every p.
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 0.0), 7);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 95.0), 7);
        assert_eq!(percentile(&[7], 100.0), 7);
        // Two elements: nearest-rank picks an element, never the
        // interpolated midpoint — p50 of {10, 20} is 10 (rank ⌈1⌉), not 15.
        assert_eq!(percentile(&[10, 20], 0.0), 10);
        assert_eq!(percentile(&[10, 20], 50.0), 10);
        assert_eq!(percentile(&[10, 20], 51.0), 20);
        assert_eq!(percentile(&[10, 20], 100.0), 20);
        // The edges are clamped total: p=0 is the minimum (rank clamps up
        // from 0 to 1), p>100 still the maximum.
        let walls: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&walls, 0.0), 1);
        assert_eq!(percentile(&walls, 50.0), 50);
        assert_eq!(percentile(&walls, 95.0), 95);
        // Fractional p rounds the rank up: p=94.1 over n=100 → rank 95.
        assert_eq!(percentile(&walls, 94.1), 95);
        assert_eq!(percentile(&walls, 100.0), 100);
        assert_eq!(percentile(&walls, 101.0), 100);
    }

    #[test]
    fn traced_suite_produces_spans_and_disabled_trace_is_empty() {
        let apps = template_apps();
        let config = FragDroidConfig::default();
        let (run, trace) = run_suite_traced(&apps, &config, 2, &fd_trace::TraceConfig::on());
        assert_eq!(run.outcomes.len(), 3);
        // One Suite span, one App span per app, and Static/Explore below.
        let spans: Vec<&fd_trace::SpanRecord> = trace
            .records
            .iter()
            .filter_map(|r| match r {
                fd_trace::TraceRecord::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        let count = |phase: fd_trace::Phase| spans.iter().filter(|s| s.phase == phase).count();
        assert_eq!(count(fd_trace::Phase::Suite), 1);
        assert_eq!(count(fd_trace::Phase::App), 3);
        assert_eq!(count(fd_trace::Phase::Static), 3);
        assert_eq!(count(fd_trace::Phase::Explore), 3);
        assert!(count(fd_trace::Phase::Case) > 0, "test cases are spanned");
        assert!(
            trace.records.iter().any(|r| matches!(r, fd_trace::TraceRecord::Event(_))),
            "events recorded"
        );

        let (_, off_trace) = run_suite_traced(&apps, &config, 2, &fd_trace::TraceConfig::off());
        assert!(off_trace.records.is_empty(), "disabled tracing records nothing");
    }

    #[test]
    fn container_suite_quarantines_malformed_inputs() {
        let apps = template_apps();
        let config = FragDroidConfig::default();
        let mut containers: Vec<SuiteContainer> =
            apps.iter().map(|(app, inputs)| (fd_apk::pack(app), inputs.clone())).collect();
        containers.insert(1, (bytes::Bytes::from_static(b"not a container"), BTreeMap::new()));
        let truncated = fd_apk::pack(&apps[0].0).slice(0..10);
        containers.push((truncated, BTreeMap::new()));

        let run = run_container_suite_outcomes(&containers, &config);
        assert_eq!(run.outcomes.len(), 5);
        assert_eq!(run.metrics.rejected, 2, "both malformed inputs quarantined");
        for bad in [1usize, 4] {
            assert!(run.outcomes[bad].is_rejected());
            assert!(run.metrics.apps[bad].rejected);
            assert!(!run.metrics.apps[bad].reject_reason.is_empty());
            assert_eq!(run.metrics.apps[bad].package, format!("container[{bad}]"));
        }
        match &run.outcomes[1] {
            AppOutcome::Rejected { reason } => {
                assert!(reason.contains("magic"), "bad magic diagnosed: {reason}")
            }
            other => panic!("expected rejection, got {other:?}"),
        }

        // The well-formed siblings still produce byte-identical reports
        // to the app-level suite: decode is lossless and rejection is
        // isolation, not interference.
        let app_run = run_suite_outcomes(&apps, &config);
        for (container_index, app_index) in [(0usize, 0usize), (2, 1), (3, 2)] {
            let a = run.outcomes[container_index].report().expect("well-formed input ran");
            let b = app_run.outcomes[app_index].report().unwrap();
            assert_eq!(serde_json::to_string(a).unwrap(), serde_json::to_string(b).unwrap());
        }
    }

    #[test]
    fn container_suite_traces_rejections() {
        let containers: Vec<SuiteContainer> =
            vec![(bytes::Bytes::from_static(b"garbage"), BTreeMap::new())];
        let (run, trace) = run_container_suite_traced(
            &containers,
            &FragDroidConfig::default(),
            1,
            &fd_trace::TraceConfig::on(),
        );
        assert_eq!(run.metrics.rejected, 1);
        let rejected_events = trace
            .records
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    fd_trace::TraceRecord::Event(e)
                        if matches!(e.event, fd_trace::TraceEvent::InputRejected { .. })
                )
            })
            .count();
        assert_eq!(rejected_events, 1, "each rejection is traced once");
    }

    #[test]
    fn legacy_run_suite_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            let run = engine::run_indexed(1, 1, |_| -> usize { panic!("boom") });
            run.results[0].0.clone().unwrap()
        });
        assert!(result.is_err());
    }
}
