//! Tool comparison: FragDroid vs the §IX baselines on the same apps.

use crate::table;
use fd_appgen::GeneratedApp;
use fd_baselines::UiExplorer;
use serde::{Deserialize, Serialize};

/// Aggregated results for one tool over a set of apps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Tool name.
    pub tool: String,
    /// Activities visited, summed over apps.
    pub activities_visited: usize,
    /// Fragments (FragmentManager-confirmed) visited, summed.
    pub fragments_visited: usize,
    /// Sensitive-API relations detected, summed.
    pub api_relations: usize,
    /// Fragment-attributed relations among them.
    pub api_fragment_relations: usize,
    /// Events injected, summed.
    pub events: usize,
    /// Wall time for all apps, in milliseconds.
    pub wall_ms: u128,
}

/// Runs every tool on every app and aggregates.
pub fn compare_tools(apps: &[GeneratedApp], tools: &[&dyn UiExplorer]) -> Vec<ComparisonRow> {
    tools
        .iter()
        .map(|tool| {
            let mut row = ComparisonRow {
                tool: tool.name().to_string(),
                activities_visited: 0,
                fragments_visited: 0,
                api_relations: 0,
                api_fragment_relations: 0,
                events: 0,
                wall_ms: 0,
            };
            let start = std::time::Instant::now();
            for gen in apps {
                let stats = tool.explore(&gen.app, &gen.known_inputs);
                row.activities_visited += stats.visited_activities.len();
                row.fragments_visited += stats.visited_fragments.len();
                let (total, frag) = stats.api_counts();
                row.api_relations += total;
                row.api_fragment_relations += frag;
                row.events += stats.events;
            }
            row.wall_ms = start.elapsed().as_millis();
            row
        })
        .collect()
}

/// Renders the comparison table.
pub fn render_comparison(rows: &[ComparisonRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tool.clone(),
                r.activities_visited.to_string(),
                r.fragments_visited.to_string(),
                r.api_relations.to_string(),
                r.api_fragment_relations.to_string(),
                r.events.to_string(),
                format!("{}ms", r.wall_ms),
            ]
        })
        .collect();
    table::render(
        &[
            "Tool",
            "Activities",
            "Fragments",
            "API relations",
            "Fragment-attributed",
            "Events",
            "Wall time",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_appgen::templates;
    use fd_baselines::{ActivityExplorer, DepthFirstExplorer, FragDroidExplorer, Monkey};

    #[test]
    fn fragdroid_dominates_fragment_coverage() {
        let apps = vec![
            templates::quickstart(),
            templates::nav_drawer_wallpapers(),
            templates::tabbed_categories(),
        ];
        let fragdroid = FragDroidExplorer(fragdroid::FragDroidConfig::default());
        let mbt = ActivityExplorer::default();
        let dfs = DepthFirstExplorer::default();
        let monkey = Monkey::new(7, 1_500);
        let tools: Vec<&dyn UiExplorer> = vec![&fragdroid, &mbt, &dfs, &monkey];
        let rows = compare_tools(&apps, &tools);

        assert_eq!(rows.len(), 4);
        let get = |name: &str| rows.iter().find(|r| r.tool == name).unwrap();
        let fd = get("FragDroid");
        // FragDroid visits at least as many fragments as every baseline,
        // and strictly more than the activity-level MBT (which misses the
        // drawer-only fragment in fig2).
        for other in &rows {
            assert!(
                fd.fragments_visited >= other.fragments_visited,
                "{} beat FragDroid on fragments",
                other.tool
            );
        }
        assert!(fd.fragments_visited > get("Activity-MBT").fragments_visited);
        // FragDroid's API relation detection is a superset in aggregate.
        for other in &rows {
            assert!(fd.api_relations >= other.api_relations, "{}", other.tool);
        }

        let text = render_comparison(&rows);
        assert!(text.contains("FragDroid") && text.contains("Monkey"));
    }
}
