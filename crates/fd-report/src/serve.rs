//! Rendering for the serve job service's incident counters
//! (`fragdroid serve --listen`): what the server survived while it ran
//! — admission rejections, protocol trouble, journal recovery — printed
//! when a socket serve drains and exits.

use fragdroid::ServeIncidents;

/// Renders the incident counters as a short plain-text summary.
///
/// Always-on lines carry the throughput facts (connections, jobs);
/// trouble lines (rejections, protocol errors, timeouts, journal
/// repair) appear only when their counters are nonzero, so a clean run
/// reads clean.
pub fn render_serve_incidents(incidents: &ServeIncidents) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serve: {} connections ({} closed), {} jobs completed, {} rejected\n",
        incidents.connections_opened,
        incidents.connections_closed,
        incidents.jobs_completed,
        incidents.jobs_rejected,
    ));
    let mut trouble: Vec<String> = Vec::new();
    let mut note = |count: u64, what: &str| {
        if count > 0 {
            trouble.push(format!("{count} {what}"));
        }
    };
    note(incidents.busy_rejections, "queue-full (Busy)");
    note(incidents.overloaded_rejections, "over connection cap (Overloaded)");
    note(incidents.draining_rejections, "refused while draining");
    note(incidents.conflicts, "id conflicts");
    note(incidents.protocol_errors, "protocol errors");
    note(incidents.idle_timeouts, "idle timeouts");
    note(incidents.accept_errors, "accept errors");
    note(incidents.journal_errors, "journal append failures");
    if !trouble.is_empty() {
        out.push_str(&format!("incidents: {}\n", trouble.join(", ")));
    }
    if incidents.resubmits_deduped > 0 {
        out.push_str(&format!(
            "idempotency: {} resubmissions absorbed without re-execution\n",
            incidents.resubmits_deduped
        ));
    }
    if incidents.jobs_recovered > 0 || incidents.torn_tail_bytes > 0 {
        out.push_str(&format!(
            "recovery: {} jobs restored from the journal, {} torn tail bytes truncated\n",
            incidents.jobs_recovered, incidents.torn_tail_bytes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_render_clean() {
        let incidents = ServeIncidents {
            connections_opened: 4,
            connections_closed: 4,
            jobs_completed: 9,
            ..ServeIncidents::default()
        };
        let out = render_serve_incidents(&incidents);
        assert_eq!(out, "serve: 4 connections (4 closed), 9 jobs completed, 0 rejected\n");
    }

    #[test]
    fn trouble_and_recovery_lines_appear_when_nonzero() {
        let incidents = ServeIncidents {
            connections_opened: 2,
            connections_closed: 2,
            jobs_completed: 1,
            busy_rejections: 3,
            idle_timeouts: 1,
            resubmits_deduped: 2,
            jobs_recovered: 5,
            torn_tail_bytes: 17,
            ..ServeIncidents::default()
        };
        let out = render_serve_incidents(&incidents);
        assert!(out.contains("3 queue-full (Busy)"), "{out}");
        assert!(out.contains("1 idle timeouts"), "{out}");
        assert!(out.contains("2 resubmissions absorbed"), "{out}");
        assert!(out.contains("5 jobs restored from the journal, 17 torn tail bytes"), "{out}");
    }
}
