//! The §VII-A corpus study: 217 popular apps, fragment usage, and the
//! packer-protected exclusions.

use crate::table;
use fd_appgen::GeneratedApp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The study's findings.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StudyResult {
    /// Apps examined.
    pub total: usize,
    /// Apps that use Fragment components.
    pub fragment_users: usize,
    /// Apps that could not be decompiled (packer-protected).
    pub packed: usize,
    /// Per category: (apps, fragment users).
    pub per_category: BTreeMap<String, (usize, usize)>,
}

impl StudyResult {
    /// Fragment usage in percent.
    pub fn usage_pct(&self) -> f64 {
        self.fragment_users as f64 / self.total.max(1) as f64 * 100.0
    }
}

/// Analyzes the corpus the way the paper's preliminary code analysis did:
/// pack each app, attempt decompilation (packer-protected apps fail and
/// are counted as excluded), and scan the decompiled class pool for
/// Fragment subclasses.
pub fn corpus_study(corpus: &[GeneratedApp]) -> StudyResult {
    let mut result = StudyResult {
        total: corpus.len(),
        fragment_users: 0,
        packed: 0,
        per_category: BTreeMap::new(),
    };
    for gen in corpus {
        let entry = result.per_category.entry(gen.app.meta.category.clone()).or_insert((0, 0));
        entry.0 += 1;

        // Honest pipeline: go through the container.
        let bytes = fd_apk::pack(&gen.app);
        let app = match fd_apk::decompile(&bytes) {
            Ok(app) => app,
            Err(fd_apk::ApkError::Packed) => {
                result.packed += 1;
                // The paper still counts packed apps in the usage study's
                // denominator but cannot analyze them further; usage is
                // judged on what could be analyzed. We follow the same
                // practice: packed apps count as non-users here.
                continue;
            }
            Err(other) => panic!("corpus app failed to decompile: {other}"),
        };
        let uses = app.classes.iter().any(|c| app.classes.is_fragment_class(c.name.as_str()));
        if uses {
            result.fragment_users += 1;
            entry.1 += 1;
        }
    }
    result
}

/// Renders the study summary plus the per-category breakdown.
pub fn render_study(result: &StudyResult) -> String {
    let mut rows: Vec<Vec<String>> = result
        .per_category
        .iter()
        .map(|(cat, (total, users))| {
            vec![
                cat.clone(),
                total.to_string(),
                users.to_string(),
                format!("{:.0}%", *users as f64 / (*total).max(1) as f64 * 100.0),
            ]
        })
        .collect();
    rows.sort_by(|a, b| b[1].parse::<usize>().unwrap().cmp(&a[1].parse::<usize>().unwrap()));
    let mut out = table::render(&["Category", "Apps", "Fragment users", "Usage"], &rows);
    out.push_str(&format!(
        "\nApps examined: {}\nFragment users: {} ({:.0}%)\nPacker-protected (excluded from dependency extraction): {}\n",
        result.total,
        result.fragment_users,
        result.usage_pct(),
        result.packed,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_appgen::corpus;

    #[test]
    fn study_reports_91_percent_usage() {
        let corpus = corpus::corpus_217(1);
        let result = corpus_study(&corpus);
        assert_eq!(result.total, 217);
        // Packed apps cannot be inspected; a few fragment users hide
        // behind packers, so the measured rate sits at ≈91% minus the
        // packed ones that would have counted.
        assert!(
            (88.0..=92.0).contains(&result.usage_pct()),
            "usage {:.1}% not ≈91%",
            result.usage_pct()
        );
        assert_eq!(result.packed, corpus::PACKED_APPS);
        assert_eq!(result.per_category.len(), 27);

        let text = render_study(&result);
        assert!(text.contains("Apps examined: 217"));
        assert!(text.contains("Tools"));
    }
}
