//! Rendering for merged multi-shard suite runs (`fragdroid corpus
//! --merge`): one row per shard, then the merged totals.

use crate::table;
use fragdroid::shard::MergedRun;

/// Renders a merged run as a per-shard table plus a totals line.
///
/// The table shows each shard's contribution (apps, quarantined inputs,
/// crashes, journal path); the trailing lines carry the merged
/// `SuiteMetrics` facts a caller usually diffs: app count, rejected
/// total, and the timing-free outcome digest that must be
/// byte-identical to an unsharded run of the same corpus.
pub fn render_shard_merge(merged: &MergedRun) -> String {
    let rows: Vec<Vec<String>> = merged
        .shards
        .iter()
        .map(|s| {
            vec![
                s.shard.to_string(),
                s.apps.to_string(),
                s.rejected.to_string(),
                s.crashes.to_string(),
                s.journal.display().to_string(),
            ]
        })
        .collect();
    let mut out = table::render(&["shard", "apps", "rejected", "crashes", "journal"], &rows);
    let m = &merged.run.metrics;
    out.push_str(&format!(
        "merged: {} apps across {} shards ({} rejected, {} flagged flaky)\n",
        m.apps.len(),
        merged.shards.len(),
        m.rejected,
        m.flake_summary.as_ref().map_or(0, |f| f.flaky),
    ));
    out.push_str(&format!("outcome digest: {:#018x}\n", merged.run.outcome_digest()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragdroid::shard::ShardStat;
    use fragdroid::{AppOutcome, SuiteMetrics, SuiteRun};

    #[test]
    fn renders_one_row_per_shard_and_the_digest() {
        let merged = MergedRun {
            run: SuiteRun {
                outcomes: vec![AppOutcome::Rejected { reason: "truncated".to_string() }],
                metrics: SuiteMetrics {
                    workers: 2,
                    wall_ms: 0,
                    busy_ms: 0,
                    worker_utilization: 0.0,
                    app_wall_ms_p50: 0,
                    app_wall_ms_p95: 0,
                    app_wall_ms_max: 0,
                    rejected: 1,
                    device_incidents: 0,
                    flake_summary: None,
                    apps: Vec::new(),
                },
            },
            shards: vec![
                ShardStat {
                    shard: 0,
                    apps: 1,
                    rejected: 1,
                    crashes: 0,
                    journal: "/tmp/j.shard-0-of-2".into(),
                },
                ShardStat {
                    shard: 1,
                    apps: 0,
                    rejected: 0,
                    crashes: 0,
                    journal: "/tmp/j.shard-1-of-2".into(),
                },
            ],
        };
        let text = render_shard_merge(&merged);
        assert!(text.contains("shard"), "has a header: {text}");
        assert!(text.contains("/tmp/j.shard-0-of-2"));
        assert!(text.contains("/tmp/j.shard-1-of-2"));
        assert!(text.contains("merged: 0 apps across 2 shards (1 rejected, 0 flagged flaky)"));
        assert!(text.contains(&format!("outcome digest: {:#018x}", merged.run.outcome_digest())));
    }
}
