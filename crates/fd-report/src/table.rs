//! A minimal plain-text table renderer (no external dependencies).

/// Renders rows as an aligned plain-text table with a header separator.
/// Column widths are display-character based (the Table II marks are
/// single-width symbols).
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            let pad = widths[i].saturating_sub(cell.chars().count());
            if i + 1 < cells.len() {
                line.extend(std::iter::repeat(' ').take(pad));
            }
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Renders rows as a GitHub-flavored markdown table.
pub fn render_markdown(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push_str("\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {} |", cell.replace('|', "\\|")));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let text = render(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "22".into()]],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // The value column starts at the same offset in every row.
        let offset = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find("22").unwrap(), offset);
    }

    #[test]
    fn markdown_renders_with_escapes() {
        let md = render_markdown(&["a", "b"], &[vec!["x|y".into(), "2".into()]]);
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| x\\|y | 2 |");
    }

    #[test]
    fn handles_wide_symbols_by_char_count() {
        let text = render(&["m"], &[vec!["⊙".into()], vec!["●".into()]]);
        assert!(text.contains('⊙') && text.contains('●'));
    }
}
