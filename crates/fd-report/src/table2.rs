//! Table II: the sensitive-operations detection matrix.

use crate::table;
use fd_droidsim::{Caller, SENSITIVE_APIS};
use fragdroid::RunReport;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How an API is invoked within one app.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mark {
    /// Invoked by Activity only (●).
    Activity,
    /// Invoked by Fragment only (◗).
    Fragment,
    /// Invoked by both (⊙).
    Both,
}

impl Mark {
    /// The paper's cell symbol.
    pub fn symbol(self) -> char {
        match self {
            Mark::Activity => '●',
            Mark::Fragment => '◗',
            Mark::Both => '⊙',
        }
    }
}

/// The assembled matrix plus its aggregates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2 {
    /// Column order: package names.
    pub apps: Vec<String>,
    /// Row order: `(group, api)` in catalog order; only APIs with at least
    /// one mark are kept.
    pub cells: BTreeMap<(String, String), BTreeMap<String, Mark>>,
    /// Total invocation relations (counting ⊙ as two, as the paper's 269
    /// "invocations of sensitive APIs").
    pub total_invocations: usize,
    /// Relations whose caller is a fragment.
    pub fragment_invocations: usize,
    /// Relations observable only at the fragment level (◗ cells).
    pub fragment_only_invocations: usize,
}

impl Table2 {
    /// Distinct sensitive APIs detected across all apps.
    pub fn distinct_apis(&self) -> usize {
        self.cells.len()
    }

    /// Fragment-associated share of all invocations.
    pub fn fragment_share(&self) -> f64 {
        self.fragment_invocations as f64 / self.total_invocations.max(1) as f64
    }

    /// The share activity-level tools necessarily miss.
    pub fn missed_by_activity_tools(&self) -> f64 {
        self.fragment_only_invocations as f64 / self.total_invocations.max(1) as f64
    }
}

/// Builds the matrix from per-app run reports.
pub fn build_table2(reports: &[(String, RunReport)]) -> Table2 {
    let mut cells: BTreeMap<(String, String), BTreeMap<String, Mark>> = BTreeMap::new();
    let (mut total, mut frag, mut frag_only) = (0usize, 0usize, 0usize);

    for (package, report) in reports {
        // Per app: classify each API by its caller kinds.
        let mut by_api: BTreeMap<(String, String), (bool, bool)> = BTreeMap::new();
        for inv in &report.api_invocations {
            let entry = by_api.entry((inv.group.clone(), inv.name.clone())).or_default();
            match inv.caller {
                Caller::Activity(_) => entry.0 = true,
                Caller::Fragment { .. } => entry.1 = true,
            }
        }
        for (api, (by_activity, by_fragment)) in by_api {
            let mark = match (by_activity, by_fragment) {
                (true, true) => Mark::Both,
                (false, true) => Mark::Fragment,
                (true, false) => Mark::Activity,
                (false, false) => continue,
            };
            match mark {
                Mark::Both => {
                    total += 2;
                    frag += 1;
                }
                Mark::Fragment => {
                    total += 1;
                    frag += 1;
                    frag_only += 1;
                }
                Mark::Activity => total += 1,
            }
            cells.entry(api).or_default().insert(package.clone(), mark);
        }
    }

    Table2 {
        apps: reports.iter().map(|(p, _)| p.clone()).collect(),
        cells,
        total_invocations: total,
        fragment_invocations: frag,
        fragment_only_invocations: frag_only,
    }
}

/// Per-app mark counts: `(package, ● count, ◗ count, ⊙ count)` — the
/// column-density view of Table II.
pub fn per_app_counts(t: &Table2) -> Vec<(String, usize, usize, usize)> {
    t.apps
        .iter()
        .map(|app| {
            let (mut a, mut f, mut b) = (0, 0, 0);
            for marks in t.cells.values() {
                match marks.get(app) {
                    Some(Mark::Activity) => a += 1,
                    Some(Mark::Fragment) => f += 1,
                    Some(Mark::Both) => b += 1,
                    None => {}
                }
            }
            (app.clone(), a, f, b)
        })
        .collect()
}

/// Renders the per-app count summary.
pub fn render_per_app(t: &Table2) -> String {
    let rows: Vec<Vec<String>> = per_app_counts(t)
        .into_iter()
        .map(|(app, a, f, b)| {
            vec![app, a.to_string(), f.to_string(), b.to_string(), (a + f + 2 * b).to_string()]
        })
        .collect();
    crate::table::render(&["Package", "● activity", "◗ fragment", "⊙ both", "invocations"], &rows)
}

/// Renders the matrix in catalog order with the paper's symbols, plus the
/// aggregate lines.
pub fn render_table2(t: &Table2) -> String {
    let mut headers: Vec<&str> = vec!["Sensitive API"];
    headers.extend(t.apps.iter().map(String::as_str));
    let mut rows = Vec::new();
    for (group, name) in SENSITIVE_APIS {
        let key = (group.to_string(), name.to_string());
        let Some(marks) = t.cells.get(&key) else { continue };
        let mut row = vec![format!("{group}/{name}")];
        for app in &t.apps {
            row.push(marks.get(app).map(|m| m.symbol().to_string()).unwrap_or_default());
        }
        rows.push(row);
    }
    let mut out = table::render(&headers, &rows);
    out.push_str(&format!(
        "\nDistinct sensitive APIs: {}\nTotal invocations: {}\nFragment-associated: {} ({:.1}%)\nFragment-only (missed by activity-level tools): {} ({:.1}%)\n",
        t.distinct_apis(),
        t.total_invocations,
        t.fragment_invocations,
        t.fragment_share() * 100.0,
        t.fragment_only_invocations,
        t.missed_by_activity_tools() * 100.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::run_table1;

    #[test]
    fn table2_reproduces_paper_aggregates() {
        let reports: Vec<(String, RunReport)> =
            run_table1().into_iter().map(|(row, report)| (row.package, report)).collect();
        let t = build_table2(&reports);

        assert_eq!(t.distinct_apis(), 46, "paper: 46 sensitive APIs found");
        assert_eq!(t.total_invocations, 269, "paper: 269 invocations");
        let share = t.fragment_share();
        assert!((0.47..0.51).contains(&share), "fragment share {share:.3} ≉ 49%");
        assert!(t.missed_by_activity_tools() >= 0.096, "paper: at least 9.6% missed");

        let text = render_table2(&t);
        assert!(text.contains('⊙') && text.contains('●'));
        assert!(text.contains("Total invocations: 269"));
    }

    #[test]
    fn marks_classify_correctly() {
        assert_eq!(Mark::Activity.symbol(), '●');
        assert_eq!(Mark::Fragment.symbol(), '◗');
        assert_eq!(Mark::Both.symbol(), '⊙');
    }
}

#[cfg(test)]
mod per_app_tests {
    use super::*;
    use crate::table1::run_table1;

    #[test]
    fn per_app_counts_sum_to_the_aggregates() {
        let reports: Vec<(String, fragdroid::RunReport)> =
            run_table1().into_iter().map(|(row, report)| (row.package, report)).collect();
        let t = build_table2(&reports);
        let counts = per_app_counts(&t);
        assert_eq!(counts.len(), 15);
        let total: usize = counts.iter().map(|(_, a, f, b)| a + f + 2 * b).sum();
        assert_eq!(total, t.total_invocations);
        let frag: usize = counts.iter().map(|(_, _, f, b)| f + b).sum();
        assert_eq!(frag, t.fragment_invocations);
        // dubsmash's column is nearly empty (its fragments are invisible).
        let dub = counts.iter().find(|(p, ..)| p.contains("dubsmash")).unwrap();
        assert_eq!((dub.2, dub.3), (0, 0), "no fragment marks for dubsmash");
        let text = render_per_app(&t);
        assert!(text.contains("invocations"));
    }
}

#[cfg(test)]
mod spec_consistency_tests {
    use super::*;
    use crate::table1::run_table1;

    /// Every app's measured ●/◗/⊙ counts must equal its engineered
    /// api_marks — the placement is fully detected, nothing more.
    #[test]
    fn per_app_counts_match_the_engineered_specs() {
        let reports: Vec<(String, fragdroid::RunReport)> =
            run_table1().into_iter().map(|(row, report)| (row.package, report)).collect();
        let t = build_table2(&reports);
        for (package, a, f, b) in per_app_counts(&t) {
            let spec = fd_appgen::paper_apps::PAPER_APPS
                .iter()
                .find(|s| s.package == package)
                .expect("spec exists");
            assert_eq!((a, f, b), spec.api_marks, "{package}");
        }
    }
}
