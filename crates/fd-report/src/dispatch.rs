//! Rendering for `fragdroid dispatch` — Table 1 built straight from the
//! merged shard run, plus the farm's operational appendix (per-worker
//! accounting, reassignments, stragglers, waste).

use crate::table;
use crate::table1::Table1Row;
use fragdroid::{AppOutcome, DispatchSummary, SuiteRun};

/// Builds Table 1 rows from an already-merged run's outcomes — the
/// dispatch path renders the paper table without re-running anything.
/// Completed and deadline-limited apps become rows (a synthetic corpus
/// has no download counts, so the band column reads from zero);
/// rejected containers come back as `(label, reason)` for the
/// quarantine appendix, labeled with the slot's metrics package
/// (`container[i]` after the merge relabel). Panicked apps are skipped,
/// like [`crate::table1::run_table1_full`] does.
pub fn table1_rows_from_run(run: &SuiteRun) -> (Vec<Table1Row>, Vec<(String, String)>) {
    let mut rows = Vec::new();
    let mut rejected = Vec::new();
    for (index, outcome) in run.outcomes.iter().enumerate() {
        let label = run
            .metrics
            .apps
            .get(index)
            .map(|m| m.package.clone())
            .unwrap_or_else(|| format!("container[{index}]"));
        match outcome {
            AppOutcome::Completed(report) | AppOutcome::DeadlineExceeded(report) => {
                rows.push(Table1Row {
                    package: label,
                    downloads: 0,
                    activities: report.activity_coverage(),
                    fragments: report.fragment_coverage(),
                    fragments_in_visited: report.fragments_in_visited_coverage(),
                    crashes: report.crashes,
                    recovered: report.recovered_crashes,
                });
            }
            AppOutcome::Rejected { reason } => rejected.push((label, reason.clone())),
            AppOutcome::Panicked { .. } => {}
        }
    }
    (rows, rejected)
}

fn quantile_ms(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Renders the farm appendix: one row per endpoint in `--connect`
/// order, then the coordinator-level counters. The reassignment-latency
/// quantiles only print when a revocation actually happened — a clean
/// run keeps the appendix short.
pub fn render_dispatch_summary(summary: &DispatchSummary) -> String {
    let rows: Vec<Vec<String>> = summary
        .workers
        .iter()
        .map(|w| {
            vec![
                w.endpoint.clone(),
                w.assignments.to_string(),
                w.shards_completed.to_string(),
                w.failures.to_string(),
                w.quarantines.to_string(),
            ]
        })
        .collect();
    let mut out =
        table::render(&["endpoint", "leases", "completed", "failures", "quarantines"], &rows);
    out.push_str(&format!(
        "dispatch: {} shards ({} resumed), {} reassigned, {} straggler backups, \
         {} wasted completions\n",
        summary.shards,
        summary.resumed_shards,
        summary.reassignments,
        summary.straggler_redispatches,
        summary.wasted_completions,
    ));
    if !summary.reassignment_latencies_ms.is_empty() {
        let mut sorted = summary.reassignment_latencies_ms.clone();
        sorted.sort_unstable();
        out.push_str(&format!(
            "reassignment latency: p50 {} ms, p95 {} ms ({} samples)\n",
            quantile_ms(&sorted, 0.50),
            quantile_ms(&sorted, 0.95),
            sorted.len(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::render_table1;
    use fragdroid::{DispatchSummary, WorkerStat};

    fn summary() -> DispatchSummary {
        DispatchSummary {
            shards: 4,
            resumed_shards: 1,
            reassignments: 2,
            straggler_redispatches: 1,
            wasted_completions: 1,
            reassignment_latencies_ms: vec![80, 20, 40],
            workers: vec![
                WorkerStat {
                    endpoint: "127.0.0.1:7000".to_string(),
                    assignments: 3,
                    shards_completed: 3,
                    failures: 0,
                    quarantines: 0,
                },
                WorkerStat {
                    endpoint: "127.0.0.1:7001".to_string(),
                    assignments: 2,
                    shards_completed: 0,
                    failures: 2,
                    quarantines: 1,
                },
            ],
        }
    }

    #[test]
    fn summary_renders_workers_and_counters() {
        let text = render_dispatch_summary(&summary());
        assert!(text.contains("127.0.0.1:7000"));
        assert!(text.contains("127.0.0.1:7001"));
        assert!(text.contains("4 shards (1 resumed), 2 reassigned, 1 straggler backups"));
        assert!(text.contains("1 wasted completions"));
        assert!(text.contains("reassignment latency: p50 40 ms, p95 80 ms (3 samples)"));
    }

    #[test]
    fn clean_runs_omit_the_latency_line() {
        let mut s = summary();
        s.reassignment_latencies_ms.clear();
        s.reassignments = 0;
        let text = render_dispatch_summary(&s);
        assert!(!text.contains("reassignment latency"));
        assert!(text.contains("0 reassigned"));
    }

    #[test]
    fn merged_run_becomes_table1_rows_and_rejections() {
        let gen = fd_appgen::templates::quickstart();
        let suite = vec![(fd_apk::pack(&gen.app), gen.known_inputs.clone())];
        let (run, _) = fragdroid::run_container_suite_traced(
            &suite,
            &fragdroid::FragDroidConfig::default(),
            1,
            &fd_trace::TraceConfig::off(),
        );
        let (rows, rejected) = table1_rows_from_run(&run);
        assert_eq!(rows.len(), 1);
        assert!(rejected.is_empty());
        assert_eq!(rows[0].package, "com.example.quickstart");
        assert_eq!(rows[0].activities.visited, 3);
        let text = render_table1(&rows);
        assert!(text.contains("com.example.quickstart"));

        // A rejected slot keeps its relabeled container name.
        let mut run = run;
        run.outcomes.push(AppOutcome::Rejected { reason: "bad magic".to_string() });
        let (rows, rejected) = table1_rows_from_run(&run);
        assert_eq!(rows.len(), 1);
        assert_eq!(rejected, vec![("container[1]".to_string(), "bad magic".to_string())]);
    }
}
