//! Table I: coverage of Activities and Fragments detection on the 15
//! evaluation apps.

use crate::table;
use fd_appgen::paper_apps;
use fragdroid::suite::SuiteContainer;
use fragdroid::{
    run_container_suite_checkpointed, AppOutcome, Coverage, FlakeClass, FlakeSummary,
    FragDroidConfig, RunReport,
};
use serde::{Deserialize, Serialize};

/// One row of Table I.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    /// Package name.
    pub package: String,
    /// Download band lower bound.
    pub downloads: u64,
    /// Activities visited / sum.
    pub activities: Coverage,
    /// Fragments visited / sum.
    pub fragments: Coverage,
    /// Fragments in visited activities.
    pub fragments_in_visited: Coverage,
    /// Force-closes observed during the run. Device-infrastructure
    /// incidents (agent deaths, protocol timeouts) are never counted
    /// here — they land in [`Table1Run::device_incidents`] instead.
    #[serde(default)]
    pub crashes: usize,
    /// Crashes the recovery supervisor relaunched and replayed past.
    #[serde(default)]
    pub recovered: usize,
}

/// One paper row: `(package, activities V/S, fragments V/S, FiVA V/S)`.
pub type PaperRow = (&'static str, (usize, usize), (usize, usize), (usize, usize));

/// The paper's reported rows, for paper-vs-measured comparison.
pub const PAPER_TABLE1: &[PaperRow] = &[
    ("au.com.digitalstampede.formula", (1, 2), (2, 2), (1, 1)),
    ("com.adobe.reader", (7, 13), (5, 5), (2, 2)),
    ("com.advancedprocessmanager", (5, 7), (10, 10), (10, 10)),
    ("com.aircrunch.shopalerts", (7, 10), (8, 13), (4, 6)),
    ("com.c51", (28, 35), (2, 3), (2, 3)),
    ("com.cnn.mobile.android.phone", (16, 23), (3, 10), (2, 4)),
    ("com.happy2.bbmanga", (2, 5), (3, 5), (0, 2)),
    ("com.inditex.zara", (7, 9), (7, 15), (2, 10)),
    ("com.mobilemotion.dubsmash", (10, 11), (0, 3), (0, 3)),
    ("com.ovuline.pregnancy", (17, 27), (8, 37), (8, 26)),
    ("com.weather.Weather", (13, 17), (1, 1), (1, 1)),
    ("com.where2get.android.app", (9, 16), (4, 8), (0, 4)),
    ("imoblife.toolbox.full", (14, 14), (8, 9), (4, 5)),
    ("net.aviascanner.aviascanner", (7, 7), (4, 4), (4, 4)),
    ("org.rbc.odb", (4, 5), (5, 8), (2, 3)),
];

/// A full Table I run: the measured rows plus the ingestion accounting —
/// inputs the checked decoder quarantined never become rows, but they
/// are reported instead of silently vanishing.
#[derive(Debug, Default)]
pub struct Table1Run {
    /// Measured rows plus the full reports (the reports feed Table II).
    pub rows: Vec<(Table1Row, RunReport)>,
    /// `(package, reason)` for every quarantined input.
    pub rejected: Vec<(String, String)>,
    /// Flake-triage verdicts, when the table ran with retries.
    pub flake_summary: Option<FlakeSummary>,
    /// Device-infrastructure incidents the pool absorbed while the table
    /// ran — kept apart from the FC column so a dying device agent can
    /// never inflate an app's crash count.
    pub device_incidents: usize,
}

/// Runs FragDroid on all 15 apps through the shared *container* suite —
/// every app is packed to FAPK bytes and decoded back on its worker, so
/// the table exercises the full ingestion frontier. A panicking app is
/// skipped with a warning; a rejected container is quarantined into
/// [`Table1Run::rejected`]. Neither aborts the whole table.
pub fn run_table1_full() -> Table1Run {
    run_table1_with_retries(0)
}

/// [`run_table1_full`] with a flake-triage budget: failed apps
/// (panicked, deadline-limited, or crashing) are re-run `flake_retries`
/// times and classified deterministic vs flaky in
/// [`Table1Run::flake_summary`].
pub fn run_table1_with_retries(flake_retries: usize) -> Table1Run {
    let apps = paper_apps::all_paper_apps();
    let suite: Vec<SuiteContainer> =
        apps.iter().map(|(_, gen)| (fd_apk::pack(&gen.app), gen.known_inputs.clone())).collect();
    let config = FragDroidConfig::default();
    let workers = fragdroid::suite::engine::default_workers(suite.len());
    let run = match run_container_suite_checkpointed(
        &suite,
        &config,
        workers,
        &fd_trace::TraceConfig::off(),
        None,
        flake_retries,
    ) {
        Ok((suite, _)) => suite.run,
        // Without a journal there is no I/O to fail; this arm guards a
        // future where Table 1 runs journaled.
        Err(error) => {
            eprintln!("table1: checkpointed run failed ({error}); table left empty");
            return Table1Run::default();
        }
    };

    let mut out = Table1Run {
        flake_summary: run.metrics.flake_summary.clone(),
        device_incidents: run.metrics.device_incidents,
        ..Default::default()
    };
    for ((spec, _), outcome) in apps.iter().zip(run.outcomes) {
        match outcome {
            AppOutcome::Completed(report) | AppOutcome::DeadlineExceeded(report) => {
                let row = Table1Row {
                    package: spec.package.to_string(),
                    downloads: spec.downloads,
                    activities: report.activity_coverage(),
                    fragments: report.fragment_coverage(),
                    fragments_in_visited: report.fragments_in_visited_coverage(),
                    crashes: report.crashes,
                    recovered: report.recovered_crashes,
                };
                out.rows.push((row, report));
            }
            AppOutcome::Panicked { message } => {
                eprintln!("table1: skipping {} (run panicked: {message})", spec.package);
            }
            AppOutcome::Rejected { reason } => {
                eprintln!("table1: quarantining {} ({reason})", spec.package);
                out.rejected.push((spec.package.to_string(), reason));
            }
        }
    }
    out
}

/// [`run_table1_full`] reduced to the rows, for callers that only build
/// the table.
pub fn run_table1() -> Vec<(Table1Row, RunReport)> {
    run_table1_full().rows
}

/// Renders the quarantine appendix: one line per rejected input, or the
/// empty string when the whole dataset ingested cleanly.
pub fn render_rejections(rejected: &[(String, String)]) -> String {
    if rejected.is_empty() {
        return String::new();
    }
    let mut out = format!("quarantined inputs ({}):\n", rejected.len());
    for (package, reason) in rejected {
        out.push_str(&format!("  {package}: {reason}\n"));
    }
    out
}

/// Renders the device-incident appendix: how many infrastructure
/// failures the pool absorbed while the table ran, or the empty string
/// for a clean run. Kept out of the table body because an incident
/// belongs to the harness, not to any app row.
pub fn render_device_incidents(incidents: usize) -> String {
    if incidents == 0 {
        return String::new();
    }
    format!(
        "device incidents: {incidents} infrastructure failures absorbed by the pool \
         (excluded from every FC cell)\n"
    )
}

/// Renders the flake-triage appendix: one line per triaged app, or the
/// empty string when the run had no retries or no failures.
pub fn render_flake_summary(summary: Option<&FlakeSummary>) -> String {
    let Some(summary) = summary else {
        return String::new();
    };
    if summary.apps.is_empty() {
        return String::new();
    }
    let mut out = format!(
        "flake triage ({} retries each): {} deterministic, {} flaky\n",
        summary.retries, summary.deterministic, summary.flaky
    );
    for record in &summary.apps {
        let verdict = match &record.classification {
            FlakeClass::Deterministic => "deterministic".to_string(),
            FlakeClass::Flaky { pass_rate } => {
                format!("flaky ({:.0}% pass rate)", pass_rate * 100.0)
            }
        };
        out.push_str(&format!(
            "  {}: {} — {} ({}/{} retries passed)\n",
            record.package, record.kind, verdict, record.passes, record.attempts
        ));
    }
    out
}

/// Per-column averages `(activity %, fragment %, frags-in-visited %)`.
/// An empty table averages to zeros instead of NaN.
pub fn averages(rows: &[Table1Row]) -> (f64, f64, f64) {
    if rows.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let n = rows.len() as f64;
    (
        rows.iter().map(|r| r.activities.rate()).sum::<f64>() / n,
        rows.iter().map(|r| r.fragments.rate()).sum::<f64>() / n,
        rows.iter().map(|r| r.fragments_in_visited.rate()).sum::<f64>() / n,
    )
}

fn cov_cells(c: &Coverage) -> [String; 3] {
    [c.visited.to_string(), c.sum.to_string(), format!("{:.2}%", c.rate())]
}

/// Renders the measured table in the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let headers = [
        "Package Name",
        "Downloads",
        "A:Visited",
        "A:Sum",
        "A:Rate",
        "F:Visited",
        "F:Sum",
        "F:Rate",
        "FiVA:Visited",
        "FiVA:Sum",
        "FiVA:Rate",
        "FC",
        "Rec",
    ];
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![
                r.package.clone(),
                fd_apk::AppMeta { downloads: r.downloads, ..Default::default() }.downloads_band(),
            ];
            cells.extend(cov_cells(&r.activities));
            cells.extend(cov_cells(&r.fragments));
            cells.extend(cov_cells(&r.fragments_in_visited));
            cells.push(r.crashes.to_string());
            cells.push(r.recovered.to_string());
            cells
        })
        .collect();
    let (a, f, v) = averages(rows);
    body.push(vec![
        "AVERAGE".into(),
        String::new(),
        String::new(),
        String::new(),
        format!("{a:.2}%"),
        String::new(),
        String::new(),
        format!("{f:.2}%"),
        String::new(),
        String::new(),
        format!("{v:.2}%"),
        String::new(),
        String::new(),
    ]);
    table::render(&headers, &body)
}

/// Renders the measured table as GitHub-flavored markdown (for reports
/// and EXPERIMENTS.md).
pub fn render_table1_markdown(rows: &[Table1Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.package.clone(),
                format!("{}/{}", r.activities.visited, r.activities.sum),
                format!("{:.2}%", r.activities.rate()),
                format!("{}/{}", r.fragments.visited, r.fragments.sum),
                format!("{:.2}%", r.fragments.rate()),
                format!("{}/{}", r.fragments_in_visited.visited, r.fragments_in_visited.sum),
                format!("{:.2}%", r.fragments_in_visited.rate()),
                r.crashes.to_string(),
                r.recovered.to_string(),
            ]
        })
        .collect();
    table::render_markdown(
        &["Package", "Activities", "Rate", "Fragments", "Rate", "FiVA", "Rate", "FC", "Rec"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_cover_all_15_apps() {
        assert_eq!(PAPER_TABLE1.len(), 15);
        assert_eq!(PAPER_TABLE1.len(), paper_apps::PAPER_APPS.len());
        for (pkg, ..) in PAPER_TABLE1 {
            assert!(
                paper_apps::PAPER_APPS.iter().any(|s| s.package == *pkg),
                "{pkg} missing from specs"
            );
        }
    }

    #[test]
    fn paper_average_activity_rate_is_71_94() {
        let avg: f64 =
            PAPER_TABLE1.iter().map(|(_, (v, s), ..)| *v as f64 / *s as f64 * 100.0).sum::<f64>()
                / PAPER_TABLE1.len() as f64;
        assert!((avg - 71.94).abs() < 0.5, "paper activity average ≈ 71.94, got {avg:.2}");
    }

    #[test]
    fn device_incident_appendix_renders_only_when_nonzero() {
        assert_eq!(render_device_incidents(0), "");
        let rendered = render_device_incidents(3);
        assert!(rendered.contains("3 infrastructure failures"));
        assert!(rendered.contains("excluded from every FC cell"));
    }

    #[test]
    fn all_paper_containers_ingest_cleanly() {
        let run = run_table1_full();
        assert!(run.rejected.is_empty(), "no paper app is quarantined: {:?}", run.rejected);
        assert_eq!(run.rows.len(), 15);
        assert_eq!(run.device_incidents, 0, "in-process devices never fail infrastructure");
        assert_eq!(render_rejections(&run.rejected), "");
        let fake = vec![("com.example".to_string(), "bad magic".to_string())];
        let rendered = render_rejections(&fake);
        assert!(rendered.contains("quarantined inputs (1)"));
        assert!(rendered.contains("com.example: bad magic"));
    }

    #[test]
    fn table1_with_retries_triages_failures() {
        let run = run_table1_with_retries(2);
        assert_eq!(run.rows.len(), 15);
        let summary = run.flake_summary.as_ref().expect("retries produce a summary");
        assert_eq!(summary.retries, 2);
        assert_eq!(summary.deterministic + summary.flaky, summary.apps.len());
        // The triage candidates are exactly the crashing rows, and the
        // simulator is deterministic: every same-seed retry reproduces
        // its crash, so nothing is classified flaky.
        let crashing = run.rows.iter().filter(|(row, _)| row.crashes > 0).count();
        assert_eq!(summary.apps.len(), crashing);
        assert_eq!(summary.flaky, 0, "same-seed simulator reruns cannot flake");
        assert_eq!(summary.deterministic, crashing);
        let rendered = render_flake_summary(run.flake_summary.as_ref());
        if crashing > 0 {
            assert!(rendered.contains("deterministic"));
            assert!(rendered.contains("crashed"));
        } else {
            assert_eq!(rendered, "");
        }
        assert_eq!(render_flake_summary(None), "");
        let synthetic = FlakeSummary {
            retries: 3,
            deterministic: 1,
            flaky: 1,
            apps: vec![
                fragdroid::FlakeRecord {
                    index: 0,
                    package: "com.example.solid".into(),
                    kind: "panicked".into(),
                    attempts: 3,
                    passes: 0,
                    classification: FlakeClass::Deterministic,
                },
                fragdroid::FlakeRecord {
                    index: 4,
                    package: "com.example.heisen".into(),
                    kind: "crashed".into(),
                    attempts: 3,
                    passes: 2,
                    classification: FlakeClass::Flaky { pass_rate: 2.0 / 3.0 },
                },
            ],
        };
        let rendered = render_flake_summary(Some(&synthetic));
        assert!(rendered.contains("1 deterministic, 1 flaky"));
        assert!(rendered.contains("com.example.solid: panicked — deterministic"));
        assert!(rendered.contains("com.example.heisen: crashed — flaky (67% pass rate)"));
    }

    #[test]
    fn measured_table_matches_paper_shape() {
        let rows: Vec<Table1Row> = run_table1().into_iter().map(|(r, _)| r).collect();
        assert_eq!(rows.len(), 15);
        let (a, f, _) = averages(&rows);
        assert!((a - 71.94).abs() < 3.0, "activity avg {a:.2} ≉ 71.94");
        assert!((f - 66.0).abs() < 3.0, "fragment avg {f:.2} ≉ 66");
        // Sums match the paper exactly.
        for row in &rows {
            let paper = PAPER_TABLE1
                .iter()
                .find(|(p, ..)| *p == row.package)
                .expect("every measured row has a paper row");
            assert_eq!(row.activities.sum, paper.1 .1, "{}", row.package);
            assert_eq!(row.fragments.sum, paper.2 .1, "{}", row.package);
        }
        let text = render_table1(&rows);
        assert!(text.contains("com.adobe.reader"));
        assert!(text.contains("AVERAGE"));
        let md = render_table1_markdown(&rows);
        assert!(md.starts_with("| Package |"));
        assert_eq!(md.lines().count(), rows.len() + 2);
    }
}
