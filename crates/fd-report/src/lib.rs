//! Experiment orchestration and report rendering.
//!
//! One module per experiment of the paper's §VII:
//!
//! * [`study`] — the 217-app corpus study ("91% of apps use Fragments");
//! * [`table1`] — coverage of Activities and Fragments on the 15
//!   evaluation apps;
//! * [`table2`] — the sensitive-operations detection matrix with the
//!   paper's ● (activity) / ◗ (fragment) / ⊙ (both) marks;
//! * [`comparison`] — FragDroid vs Monkey vs activity-level MBT vs
//!   depth-first exploration (the §IX positioning, quantified);
//! * [`table`] — a small plain-text table renderer shared by all of them;
//! * [`shards`] — the per-shard breakdown of a merged multi-shard run;
//! * [`serve`] — the incident summary a socket `fragdroid serve` prints
//!   when it drains and exits;
//! * [`dispatch`] — Table 1 rendered straight from a merged farm run,
//!   plus the coordinator's per-worker appendix.

pub mod comparison;
pub mod dispatch;
pub mod serve;
pub mod shards;
pub mod study;
pub mod table;
pub mod table1;
pub mod table2;

pub use comparison::{compare_tools, ComparisonRow};
pub use dispatch::{render_dispatch_summary, table1_rows_from_run};
pub use serve::render_serve_incidents;
pub use shards::render_shard_merge;
pub use study::{corpus_study, StudyResult};
pub use table1::{
    render_device_incidents, render_rejections, render_table1, run_table1, run_table1_full,
    Table1Row, Table1Run, PAPER_TABLE1,
};
pub use table2::{build_table2, render_table2, Mark, Table2};
