//! CLI integration tests: drive the subcommand dispatcher end to end
//! against real files in a temp directory.

use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fd-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[test]
fn gen_then_info_then_run_roundtrip() {
    let out = tmp("app.fapk");
    let out_str = out.to_str().unwrap();

    fd_cli::run(&argv(&["gen", out_str, "--template", "quickstart"])).expect("gen");
    assert!(out.exists(), "container written");
    let inputs = PathBuf::from(format!("{out_str}.inputs.json"));
    assert!(inputs.exists(), "inputs file written");

    // The generated container decompiles and matches the template.
    let app = fd_cli::load_app(out_str).expect("load");
    assert_eq!(app.package(), "com.example.quickstart");

    // Inputs file parses to the known gate secret.
    let map = fd_cli::load_inputs(Some(inputs.to_str().unwrap())).expect("inputs");
    assert_eq!(map.get("input_settings_0").map(String::as_str), Some("pin-1234"));

    // Full pipeline subcommands succeed.
    fd_cli::run(&argv(&["info", out_str])).expect("info");
    fd_cli::run(&argv(&["dot", out_str])).expect("dot");
    fd_cli::run(&argv(&["dump", out_str])).expect("dump");
    fd_cli::run(&argv(&["run", out_str, "--inputs", inputs.to_str().unwrap(), "--budget", "5000"]))
        .expect("run");
    fd_cli::run(&argv(&["static", out_str])).expect("static");
}

#[test]
fn gen_random_respects_seed_and_size() {
    let a = tmp("rand-a.fapk");
    let b = tmp("rand-b.fapk");
    for out in [&a, &b] {
        fd_cli::run(&argv(&[
            "gen",
            out.to_str().unwrap(),
            "--random",
            "--seed",
            "9",
            "--size",
            "5",
        ]))
        .expect("gen random");
    }
    // Same seed → identical bytes.
    assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    let app = fd_cli::load_app(a.to_str().unwrap()).unwrap();
    assert_eq!(app.manifest.activities.len(), 5);
}

#[test]
fn errors_are_reported_not_panicked() {
    assert!(fd_cli::run(&argv(&["frobnicate"])).is_err());
    assert!(fd_cli::run(&argv(&["info", "/nonexistent/x.fapk"])).is_err());
    assert!(fd_cli::run(&argv(&["gen", tmp("t.fapk").to_str().unwrap(), "--template", "nope"]))
        .is_err());
    // Bad inputs file.
    let bad = tmp("bad.json");
    std::fs::write(&bad, "{ not json").unwrap();
    assert!(fd_cli::load_inputs(Some(bad.to_str().unwrap())).is_err());
    // Help and templates are fine with no further args.
    assert!(fd_cli::run(&argv(&["help"])).is_ok());
    assert!(fd_cli::run(&argv(&["templates"])).is_ok());
    assert!(fd_cli::run(&[]).is_ok());
}

#[test]
fn trace_out_writes_both_sinks_and_trace_summarizes_them() {
    let apk = tmp("traced.fapk");
    let trace_path = tmp("run-trace.jsonl");
    let apk_str = apk.to_str().unwrap();
    let trace_str = trace_path.to_str().unwrap();
    fd_cli::run(&argv(&["gen", apk_str, "--template", "quickstart"])).expect("gen");
    fd_cli::run(&argv(&[
        "run",
        apk_str,
        "--budget",
        "5000",
        "--fault-rate",
        "0.2",
        "--fault-seed",
        "7",
        "--trace-out",
        trace_str,
    ]))
    .expect("traced run");

    // JSONL sink parses and covers the whole pipeline.
    let jsonl = std::fs::read_to_string(&trace_path).expect("jsonl written");
    let trace = fd_trace::Trace::from_jsonl(&jsonl).expect("jsonl parses");
    let summary = fd_trace::TraceSummary::compute(&trace);
    assert!(summary.spans > 0, "spans recorded");
    assert!(summary.events_dispatched > 0, "dispatches recorded");
    for phase in ["decompile", "static", "explore"] {
        assert!(summary.phase_totals_us.contains_key(phase), "phase {phase} traced");
    }

    // Chrome sink is valid trace_event JSON with complete events.
    let chrome_raw =
        std::fs::read_to_string(format!("{trace_str}.chrome.json")).expect("chrome written");
    let chrome: serde_json::Value = serde_json::from_str(&chrome_raw).expect("chrome parses");
    match chrome {
        serde_json::Value::Object(root) => {
            assert!(
                matches!(root.get("traceEvents"), Some(serde_json::Value::Array(a)) if !a.is_empty())
            );
        }
        other => panic!("chrome root must be an object, got {other:?}"),
    }

    // The trace subcommand reads the capture back in both output modes.
    fd_cli::run(&argv(&["trace", trace_str])).expect("trace renders");
    fd_cli::run(&argv(&["trace", trace_str, "--json"])).expect("trace --json");
    // A malformed file is an error, not a panic.
    let bad = tmp("bad-trace.jsonl");
    std::fs::write(&bad, "{ not json\n").unwrap();
    assert!(fd_cli::run(&argv(&["trace", bad.to_str().unwrap()])).is_err());
}

#[test]
fn corpus_trace_out_captures_suite_and_app_spans() {
    let trace_path = tmp("corpus-trace.jsonl");
    let trace_str = trace_path.to_str().unwrap();
    fd_cli::run(&argv(&[
        "corpus",
        "--limit",
        "4",
        "--workers",
        "2",
        "--fault-rate",
        "0.25",
        "--trace-out",
        trace_str,
        "--json",
    ]))
    .expect("traced corpus");
    let jsonl = std::fs::read_to_string(&trace_path).expect("jsonl written");
    let trace = fd_trace::Trace::from_jsonl(&jsonl).expect("jsonl parses");
    let summary = fd_trace::TraceSummary::compute(&trace);
    assert!(summary.phase_totals_us.contains_key("suite"), "coordinator span present");
    assert_eq!(summary.slowest_apps.len().min(4), summary.slowest_apps.len());
    assert!(!summary.slowest_apps.is_empty(), "per-app spans present");
    assert!(summary.app_total_us > 0);
}

#[test]
fn unpack_edit_repack_workflow() {
    let apk = tmp("wf.fapk");
    let dir = tmp("wf-project");
    let rebuilt = tmp("wf-rebuilt.fapk");
    fd_cli::run(&argv(&["gen", apk.to_str().unwrap(), "--template", "fig1-tabs"])).unwrap();
    fd_cli::run(&argv(&["unpack", apk.to_str().unwrap(), "--out", dir.to_str().unwrap()])).unwrap();
    assert!(dir.join("smali/fig1/manga/Reader.smali").exists());
    fd_cli::run(&argv(&["repack", dir.to_str().unwrap(), "--out", rebuilt.to_str().unwrap()]))
        .unwrap();
    // The rebuilt container decompiles to the identical app.
    let a = fd_cli::load_app(apk.to_str().unwrap()).unwrap();
    let b = fd_cli::load_app(rebuilt.to_str().unwrap()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn replay_and_java_subcommands() {
    let apk = tmp("rr.fapk");
    fd_cli::run(&argv(&["gen", apk.to_str().unwrap(), "--template", "fig2-drawer"])).unwrap();

    // Record a session programmatically, save it, replay through the CLI.
    let app = fd_cli::load_app(apk.to_str().unwrap()).unwrap();
    let mut rec = fd_droidsim::Recorder::new(fd_droidsim::Device::new(app));
    rec.step(fd_droidsim::Op::Launch).unwrap();
    rec.step(fd_droidsim::Op::Click("hamburger_gallery".into())).unwrap();
    let trace = rec.finish();
    let trace_path = tmp("session.json");
    std::fs::write(&trace_path, trace.to_json()).unwrap();
    fd_cli::run(&argv(&["replay", apk.to_str().unwrap(), trace_path.to_str().unwrap()]))
        .expect("faithful replay");

    // A tampered trace fails with a divergence error.
    let mut bad = trace.clone();
    if let Some(sig) = &mut bad.steps[1].after {
        sig.activity = "fig2.wallpapers.Ghost".into();
    }
    let bad_path = tmp("bad-session.json");
    std::fs::write(&bad_path, bad.to_json()).unwrap();
    let err = fd_cli::run(&argv(&["replay", apk.to_str().unwrap(), bad_path.to_str().unwrap()]))
        .expect_err("divergence must be reported");
    assert!(err.to_string().contains("DIVERGED"));

    // Java emission runs.
    fd_cli::run(&argv(&["java", apk.to_str().unwrap()])).expect("java emission");
}

#[test]
fn malformed_containers_get_the_rejected_exit_code_and_a_byte_offset() {
    // Truncated header: typed rejection, exit code 2, offset in the message.
    let truncated = tmp("truncated.fapk");
    std::fs::write(&truncated, b"FAPK\x00\x01").unwrap();
    let err = fd_cli::run(&argv(&["info", truncated.to_str().unwrap()])).unwrap_err();
    assert_eq!(err.exit_code(), 2, "rejected input has its own exit code: {err}");
    let msg = err.to_string();
    assert!(msg.contains("rejected input"), "{msg}");
    assert!(msg.contains("truncated"), "{msg}");
    assert!(msg.contains("byte 6"), "{msg}");

    // Garbage bytes: still a quarantine, not a crash or generic failure.
    let garbage = tmp("garbage.fapk");
    std::fs::write(&garbage, b"definitely not a container").unwrap();
    let err = fd_cli::run(&argv(&["run", garbage.to_str().unwrap()])).unwrap_err();
    assert_eq!(err.exit_code(), 2);
    assert!(err.to_string().contains("magic"), "{err}");

    // A missing file is a tool failure (exit 1), not a quarantine.
    let err = fd_cli::run(&argv(&["info", "/nonexistent/x.fapk"])).unwrap_err();
    assert_eq!(err.exit_code(), 1);
    // So is an unknown subcommand.
    let err = fd_cli::run(&argv(&["frobnicate"])).unwrap_err();
    assert_eq!(err.exit_code(), 1);
}

#[test]
fn fuzz_subcommand_runs_clean_deterministic_campaigns() {
    let out = tmp("fuzz-repros");
    let _ = std::fs::remove_dir_all(&out);
    fd_cli::run(&argv(&["fuzz", "--seed", "4", "--mutants", "90", "--out", out.to_str().unwrap()]))
        .expect("campaign is clean");
    // Clean campaign leaves no reproducers behind.
    let entries = std::fs::read_dir(&out).map(|it| it.count()).unwrap_or(0);
    assert_eq!(entries, 0);

    // JSON mode and a single-target campaign also run.
    fd_cli::run(&argv(&["fuzz", "--seed", "4", "--mutants", "30", "--json"])).expect("json mode");
    fd_cli::run(&argv(&["fuzz", "--mutants", "30", "--target", "smali"])).expect("one target");

    // A bogus target is a usage failure.
    let err = fd_cli::run(&argv(&["fuzz", "--target", "bogus"])).unwrap_err();
    assert_eq!(err.exit_code(), 1);
    assert!(err.to_string().contains("bogus"), "{err}");
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn fuzz_trace_out_records_the_fuzz_phase() {
    let trace_path = tmp("fuzz-trace.jsonl");
    fd_cli::run(&argv(&[
        "fuzz",
        "--seed",
        "2",
        "--mutants",
        "30",
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]))
    .expect("traced campaign");
    let jsonl = std::fs::read_to_string(&trace_path).expect("jsonl written");
    let trace = fd_trace::Trace::from_jsonl(&jsonl).expect("jsonl parses");
    let summary = fd_trace::TraceSummary::compute(&trace);
    assert!(summary.phase_totals_us.contains_key("fuzz"), "fuzz span present");
}

#[test]
fn corpus_checkpoint_resume_reproduces_the_uninterrupted_digest() {
    let journal = tmp("cli-resume.ckpt");
    let journal2 = tmp("cli-uninterrupted.ckpt");
    for j in [&journal, &journal2] {
        let _ = std::fs::remove_file(j);
    }
    let base = [
        "corpus",
        "--seed",
        "5",
        "--limit",
        "8",
        "--fault-rate",
        "0.25",
        "--flake-retries",
        "2",
        "--workers",
        "2",
    ];

    // Interrupted at a 3-app budget, then resumed to completion.
    let mut first: Vec<String> = argv(&base);
    first.extend(argv(&["--checkpoint", journal.to_str().unwrap(), "--app-budget", "3"]));
    fd_cli::run(&first).expect("budgeted run");
    assert!(journal.exists(), "journal written");

    let mut second: Vec<String> = argv(&base);
    second.extend(argv(&["--checkpoint", journal.to_str().unwrap(), "--resume"]));
    fd_cli::run(&second).expect("resume completes");

    // The same invocation uninterrupted.
    let mut reference: Vec<String> = argv(&base);
    reference.extend(argv(&["--checkpoint", journal2.to_str().unwrap()]));
    fd_cli::run(&reference).expect("uninterrupted run");

    // Both journals end with identical outcome records (the journal *is*
    // the determinism surface; stdout goes to the test harness).
    let strip_timing = |raw: String| -> Vec<String> {
        raw.lines()
            .filter(|l| l.contains("\"Outcome\"") || l.contains("\"Flakes\""))
            .map(|l| l.split_once(' ').map(|(_, json)| json.to_string()).unwrap_or_default())
            // The metrics half of each record carries wall-clock timings
            // that legitimately differ run to run; compare the outcome
            // payloads only.
            .map(|json| json.split("\"outcome\":").nth(1).map(str::to_string).unwrap_or(json))
            .collect()
    };
    let a = strip_timing(std::fs::read_to_string(&journal).expect("journal a"));
    let b = strip_timing(std::fs::read_to_string(&journal2).expect("journal b"));
    assert!(!a.is_empty());
    assert_eq!(a.len(), b.len(), "same number of journaled records");
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&journal2);
}

#[test]
fn checkpoint_errors_map_to_exit_code_3() {
    let journal = tmp("cli-exit3.ckpt");
    let _ = std::fs::remove_file(&journal);
    let base = ["corpus", "--seed", "2", "--limit", "3", "--workers", "1"];

    let mut first: Vec<String> = argv(&base);
    first.extend(argv(&["--checkpoint", journal.to_str().unwrap()]));
    fd_cli::run(&first).expect("first run");

    // Re-running without --resume refuses to overwrite: exit code 3.
    let err = fd_cli::run(&first).unwrap_err();
    assert_eq!(err.exit_code(), 3, "{err}");
    assert!(err.to_string().contains("--resume"), "{err}");

    // Resuming with a different invocation (other seed) is a fingerprint
    // mismatch: exit code 3.
    let mut other: Vec<String> = argv(&["corpus", "--seed", "3", "--limit", "3", "--workers", "1"]);
    other.extend(argv(&["--checkpoint", journal.to_str().unwrap(), "--resume"]));
    let err = fd_cli::run(&other).unwrap_err();
    assert_eq!(err.exit_code(), 3, "{err}");
    assert!(err.to_string().contains("fingerprint"), "{err}");

    // A corrupted journal is caught: exit code 3.
    let mut bytes = std::fs::read(&journal).expect("journal readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&journal, &bytes).expect("rewrite journal");
    let mut resume: Vec<String> = argv(&base);
    resume.extend(argv(&["--checkpoint", journal.to_str().unwrap(), "--resume"]));
    let err = fd_cli::run(&resume).unwrap_err();
    assert_eq!(err.exit_code(), 3, "{err}");

    // Usage errors stay exit code 1: --resume without --checkpoint.
    let err = fd_cli::run(&argv(&["corpus", "--limit", "2", "--resume"])).unwrap_err();
    assert_eq!(err.exit_code(), 1, "{err}");
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn run_with_checkpoint_and_flake_retries_works() {
    let out = tmp("ck-app.fapk");
    let out_str = out.to_str().unwrap();
    fd_cli::run(&argv(&["gen", out_str, "--template", "quickstart"])).expect("gen");
    let inputs = format!("{out_str}.inputs.json");

    let journal = tmp("cli-run.ckpt");
    let _ = std::fs::remove_file(&journal);
    fd_cli::run(&argv(&[
        "run",
        out_str,
        "--inputs",
        &inputs,
        "--checkpoint",
        journal.to_str().unwrap(),
        "--flake-retries",
        "2",
    ]))
    .expect("checkpointed single run");
    assert!(journal.exists(), "single-app journal written");

    // Resume restores the journaled outcome without re-running.
    fd_cli::run(&argv(&[
        "run",
        out_str,
        "--inputs",
        &inputs,
        "--checkpoint",
        journal.to_str().unwrap(),
        "--resume",
        "--flake-retries",
        "2",
    ]))
    .expect("resumed single run");
    let _ = std::fs::remove_file(&journal);
}
