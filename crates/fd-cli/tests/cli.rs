//! CLI integration tests: drive the subcommand dispatcher end to end
//! against real files in a temp directory.

use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fd-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[test]
fn gen_then_info_then_run_roundtrip() {
    let out = tmp("app.fapk");
    let out_str = out.to_str().unwrap();

    fd_cli::run(&argv(&["gen", out_str, "--template", "quickstart"])).expect("gen");
    assert!(out.exists(), "container written");
    let inputs = PathBuf::from(format!("{out_str}.inputs.json"));
    assert!(inputs.exists(), "inputs file written");

    // The generated container decompiles and matches the template.
    let app = fd_cli::load_app(out_str).expect("load");
    assert_eq!(app.package(), "com.example.quickstart");

    // Inputs file parses to the known gate secret.
    let map = fd_cli::load_inputs(Some(inputs.to_str().unwrap())).expect("inputs");
    assert_eq!(map.get("input_settings_0").map(String::as_str), Some("pin-1234"));

    // Full pipeline subcommands succeed.
    fd_cli::run(&argv(&["info", out_str])).expect("info");
    fd_cli::run(&argv(&["dot", out_str])).expect("dot");
    fd_cli::run(&argv(&["dump", out_str])).expect("dump");
    fd_cli::run(&argv(&["run", out_str, "--inputs", inputs.to_str().unwrap(), "--budget", "5000"]))
        .expect("run");
    fd_cli::run(&argv(&["static", out_str])).expect("static");
}

#[test]
fn gen_random_respects_seed_and_size() {
    let a = tmp("rand-a.fapk");
    let b = tmp("rand-b.fapk");
    for out in [&a, &b] {
        fd_cli::run(&argv(&[
            "gen",
            out.to_str().unwrap(),
            "--random",
            "--seed",
            "9",
            "--size",
            "5",
        ]))
        .expect("gen random");
    }
    // Same seed → identical bytes.
    assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    let app = fd_cli::load_app(a.to_str().unwrap()).unwrap();
    assert_eq!(app.manifest.activities.len(), 5);
}

#[test]
fn errors_are_reported_not_panicked() {
    assert!(fd_cli::run(&argv(&["frobnicate"])).is_err());
    assert!(fd_cli::run(&argv(&["info", "/nonexistent/x.fapk"])).is_err());
    assert!(fd_cli::run(&argv(&["gen", tmp("t.fapk").to_str().unwrap(), "--template", "nope"]))
        .is_err());
    // Bad inputs file.
    let bad = tmp("bad.json");
    std::fs::write(&bad, "{ not json").unwrap();
    assert!(fd_cli::load_inputs(Some(bad.to_str().unwrap())).is_err());
    // Help and templates are fine with no further args.
    assert!(fd_cli::run(&argv(&["help"])).is_ok());
    assert!(fd_cli::run(&argv(&["templates"])).is_ok());
    assert!(fd_cli::run(&[]).is_ok());
}

#[test]
fn unpack_edit_repack_workflow() {
    let apk = tmp("wf.fapk");
    let dir = tmp("wf-project");
    let rebuilt = tmp("wf-rebuilt.fapk");
    fd_cli::run(&argv(&["gen", apk.to_str().unwrap(), "--template", "fig1-tabs"])).unwrap();
    fd_cli::run(&argv(&["unpack", apk.to_str().unwrap(), "--out", dir.to_str().unwrap()])).unwrap();
    assert!(dir.join("smali/fig1/manga/Reader.smali").exists());
    fd_cli::run(&argv(&["repack", dir.to_str().unwrap(), "--out", rebuilt.to_str().unwrap()]))
        .unwrap();
    // The rebuilt container decompiles to the identical app.
    let a = fd_cli::load_app(apk.to_str().unwrap()).unwrap();
    let b = fd_cli::load_app(rebuilt.to_str().unwrap()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn replay_and_java_subcommands() {
    let apk = tmp("rr.fapk");
    fd_cli::run(&argv(&["gen", apk.to_str().unwrap(), "--template", "fig2-drawer"])).unwrap();

    // Record a session programmatically, save it, replay through the CLI.
    let app = fd_cli::load_app(apk.to_str().unwrap()).unwrap();
    let mut rec = fd_droidsim::Recorder::new(fd_droidsim::Device::new(app));
    rec.step(fd_droidsim::Op::Launch).unwrap();
    rec.step(fd_droidsim::Op::Click("hamburger_gallery".into())).unwrap();
    let trace = rec.finish();
    let trace_path = tmp("session.json");
    std::fs::write(&trace_path, trace.to_json()).unwrap();
    fd_cli::run(&argv(&["replay", apk.to_str().unwrap(), trace_path.to_str().unwrap()]))
        .expect("faithful replay");

    // A tampered trace fails with a divergence error.
    let mut bad = trace.clone();
    if let Some(sig) = &mut bad.steps[1].after {
        sig.activity = "fig2.wallpapers.Ghost".into();
    }
    let bad_path = tmp("bad-session.json");
    std::fs::write(&bad_path, bad.to_json()).unwrap();
    let err = fd_cli::run(&argv(&["replay", apk.to_str().unwrap(), bad_path.to_str().unwrap()]))
        .expect_err("divergence must be reported");
    assert!(err.contains("DIVERGED"));

    // Java emission runs.
    fd_cli::run(&argv(&["java", apk.to_str().unwrap()])).expect("java emission");
}
