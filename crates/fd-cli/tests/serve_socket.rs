//! End-to-end tests of the socket-native job service against the *real*
//! `fragdroid` binary: `serve --listen 127.0.0.1:0` must announce its
//! resolved port, serve at least four concurrent clients byte-identical
//! reports, answer queue overflow with typed *retryable* `Busy` frames,
//! drain gracefully on `Shutdown`, and — killed with SIGKILL mid-queue —
//! come back from its job journal serving the same bytes.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Output, Stdio};
use std::time::Duration;

use fd_droidsim::proto::{decode_payload, encode_frame, to_hex, Envelope, FrameBuffer};
use fragdroid::{AnyStream, JobOutcome, ListenAddr, ServeRequest, ServeResponse, SubmitClient};

fn fragdroid(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fragdroid"))
        .args(args)
        .output()
        .expect("spawn fragdroid binary")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "fragdroid failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fd-serve-socket-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

/// A generated container, its gate inputs, and the `run --json`
/// reference bytes every serve report must match.
struct Fixture {
    hex: String,
    inputs: BTreeMap<String, String>,
    reference: String,
}

fn fixture(name: &str) -> Fixture {
    let app = tmp(name);
    let app_str = app.to_str().unwrap();
    stdout_of(&fragdroid(&["gen", app_str, "--template", "quickstart"]));
    let inputs_path = format!("{app_str}.inputs.json");
    let inputs: BTreeMap<String, String> =
        serde_json::from_str(&std::fs::read_to_string(&inputs_path).expect("inputs file"))
            .expect("inputs json");
    let container = std::fs::read(&app).expect("container bytes");
    let reference = stdout_of(&fragdroid(&["run", app_str, "--inputs", &inputs_path, "--json"]))
        .trim_end_matches('\n')
        .to_string();
    Fixture { hex: to_hex(&container), inputs, reference }
}

/// A `fragdroid serve --listen 127.0.0.1:0` child plus the resolved
/// address parsed from its "listening on" banner.
struct ServeProc {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: ListenAddr,
}

impl ServeProc {
    fn spawn(extra: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fragdroid"))
            .args(["serve", "--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn fragdroid serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read the listening banner");
        let spec = line
            .trim()
            .strip_prefix("serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
            .to_string();
        let addr = ListenAddr::parse(&spec).expect("parseable resolved address");
        ServeProc { child, stdout, addr }
    }

    /// Sends `Shutdown`, expects `Bye`, and waits for a clean exit.
    fn shutdown(mut self) {
        let reply = raw_request(&self.addr, 9999, ServeRequest::Shutdown);
        assert_eq!(reply.body, ServeResponse::Bye);
        let status = self.child.wait().expect("serve exits");
        let mut rest = String::new();
        let _ = self.stdout.read_to_string(&mut rest);
        assert!(status.success(), "serve must exit 0 after a graceful drain:\n{rest}");
    }

    /// SIGKILL — the crash the journal must survive.
    fn kill(mut self) {
        self.child.kill().expect("kill serve");
        let _ = self.child.wait();
    }
}

/// One raw frame out, one frame back — the typed wire protocol with no
/// client-side retry sugar in the way.
fn raw_request(addr: &ListenAddr, id: u64, body: ServeRequest) -> Envelope<ServeResponse> {
    let mut stream = AnyStream::connect(addr).expect("connect");
    stream.write_all(&encode_frame(&Envelope { id, body })).expect("send frame");
    stream.flush().expect("flush frame");
    read_reply(&mut stream, &mut FrameBuffer::new())
}

/// Reads the next reply frame. `frames` must be shared across calls on
/// the same stream — pipelined replies can land in one read.
fn read_reply(stream: &mut AnyStream, frames: &mut FrameBuffer) -> Envelope<ServeResponse> {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if let Some(payload) = frames.next_frame().expect("well-formed reply") {
            return decode_payload(&payload).expect("decodable reply");
        }
        let n = stream.read(&mut chunk).expect("read reply");
        assert!(n > 0, "server hung up mid-request");
        frames.push(&chunk[..n]);
    }
}

#[test]
fn four_concurrent_clients_get_identical_reports_and_the_drain_is_graceful() {
    let fx = fixture("concurrent.fapk");
    let server = ServeProc::spawn(&["--workers", "2"]);

    // Four concurrent clients, distinct job ids, one shared server.
    let results: Vec<JobOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (1u64..=4)
            .map(|job| {
                let addr = server.addr.clone();
                let (hex, inputs) = (&fx.hex, &fx.inputs);
                scope.spawn(move || {
                    SubmitClient::new(addr)
                        .with_deadline(Duration::from_secs(120))
                        .submit(job, hex, inputs)
                        .expect("concurrent submit settles")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    for outcome in &results {
        let JobOutcome::Report { json } = outcome else {
            panic!("expected a report, got {outcome:?}");
        };
        assert_eq!(json, &fx.reference, "serve bytes diverged from 'run --json'");
    }

    // Status over a raw socket sees all four completions.
    match raw_request(&server.addr, 50, ServeRequest::Status).body {
        ServeResponse::Status { completed, workers, .. } => {
            assert_eq!((completed, workers), (4, 2));
        }
        other => panic!("expected a status snapshot, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn queue_overflow_is_a_typed_retryable_busy() {
    let fx = fixture("busy.fapk");
    let server = ServeProc::spawn(&["--workers", "1", "--queue-cap", "1"]);

    // Pipeline six submissions down one raw socket. With one worker and
    // a one-slot queue the later ones must bounce with a typed Busy —
    // the server replies strictly in request order, so the frames pair
    // up by id.
    let mut stream = AnyStream::connect(&server.addr).expect("connect");
    for job in 1u64..=6 {
        let body =
            ServeRequest::Submit { job, container_hex: fx.hex.clone(), inputs: fx.inputs.clone() };
        stream.write_all(&encode_frame(&Envelope { id: job, body })).expect("send frame");
    }
    stream.flush().expect("flush frames");

    let (mut accepted, mut busy) = (0u32, 0u32);
    let mut bounced: Option<u64> = None;
    let mut frames = FrameBuffer::new();
    for _ in 1u64..=6 {
        let reply = read_reply(&mut stream, &mut frames);
        match reply.body {
            ServeResponse::Accepted { .. } => accepted += 1,
            ServeResponse::Busy { job, retry_after_ms } => {
                assert!(retry_after_ms > 0, "Busy must carry a retry-after hint");
                busy += 1;
                bounced = Some(job);
            }
            other => panic!("expected Accepted or Busy, got {other:?}"),
        }
    }
    assert!(accepted >= 2, "the worker slot and the queue slot admit jobs");
    assert!(busy >= 1, "a one-slot queue under six instant submits must bounce");
    drop(stream);

    // Retryable: the bounced job, resubmitted through the backoff
    // client, lands the byte-identical report.
    let job = bounced.expect("at least one Busy bounce");
    let outcome = SubmitClient::new(server.addr.clone())
        .with_deadline(Duration::from_secs(120))
        .submit(job, &fx.hex, &fx.inputs)
        .expect("bounced job settles on retry");
    assert_eq!(outcome, JobOutcome::Report { json: fx.reference.clone() });

    server.shutdown();
}

#[test]
fn sigkill_mid_queue_recovers_from_the_journal_byte_identically() {
    let fx = fixture("crash.fapk");
    let journal = tmp("crash.journal");
    let _ = std::fs::remove_file(&journal);
    let journal_str = journal.to_str().unwrap().to_string();

    // Life 1: three durably-accepted jobs, then SIGKILL mid-queue.
    let server = ServeProc::spawn(&["--workers", "1", "--journal", &journal_str]);
    let mut client = SubmitClient::new(server.addr.clone());
    for job in 1u64..=3 {
        client.submit_async(job, &fx.hex, &fx.inputs).expect("durable accept");
    }
    server.kill();
    assert!(journal.exists(), "the journal must survive the crash");

    // Life 2: recovery. Idempotent resubmission of the same (id,
    // content) drives every job to the same bytes `run --json` prints —
    // whether its report was recovered or the job re-ran.
    let server = ServeProc::spawn(&["--workers", "1", "--journal", &journal_str]);
    for job in 1u64..=3 {
        let outcome = SubmitClient::new(server.addr.clone())
            .with_deadline(Duration::from_secs(120))
            .submit(job, &fx.hex, &fx.inputs)
            .expect("post-crash job settles");
        assert_eq!(
            outcome,
            JobOutcome::Report { json: fx.reference.clone() },
            "job {job} must come back byte-identical after the crash"
        );
    }
    server.shutdown();
    let _ = std::fs::remove_file(&journal);
}
