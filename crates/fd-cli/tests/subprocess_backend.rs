//! End-to-end tests of the subprocess device backend against the *real*
//! `fragdroid` binary: `--backend subprocess` re-executes the current
//! binary as `fragdroid device-agent`, so only a true child-process run
//! exercises the spawn → wire-protocol → respawn path the library tests
//! simulate in memory.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn fragdroid(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fragdroid"))
        .args(args)
        .output()
        .expect("spawn fragdroid binary")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "fragdroid failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fd-subproc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

/// The line-level facts a corpus run must reproduce regardless of
/// backend: the outcome digest and the coverage/crash summary.
fn digest_lines(stdout: &str) -> Vec<&str> {
    stdout
        .lines()
        .filter(|l| {
            l.contains("outcome digest")
                || l.contains("activities")
                || l.contains("fragments")
                || l.contains("crashes")
        })
        .collect()
}

#[test]
fn run_json_is_byte_identical_across_backends() {
    let app = tmp("parity.fapk");
    let app_str = app.to_str().unwrap();
    stdout_of(&fragdroid(&["gen", app_str, "--template", "fig1-tabs"]));
    let inputs = format!("{app_str}.inputs.json");

    let native = stdout_of(&fragdroid(&["run", app_str, "--inputs", &inputs, "--json"]));
    for backend in ["in-process", "subprocess", "mock-adb"] {
        let wire = stdout_of(&fragdroid(&[
            "run",
            app_str,
            "--inputs",
            &inputs,
            "--json",
            "--backend",
            backend,
        ]));
        assert_eq!(native, wire, "backend {backend} diverged from the default run");
    }
}

#[test]
fn corpus_digest_is_backend_invariant_and_survives_kill_injection() {
    let base = ["corpus", "--seed", "11", "--limit", "3", "--workers", "2"];
    let native = stdout_of(&fragdroid(&base));

    let mut sub_args = base.to_vec();
    sub_args.extend(["--backend", "subprocess"]);
    let subprocess = stdout_of(&fragdroid(&sub_args));

    let mut kill_args = sub_args.clone();
    kill_args.extend(["--agent-die-after", "5"]);
    let killed = stdout_of(&fragdroid(&kill_args));

    assert_eq!(
        digest_lines(&native),
        digest_lines(&subprocess),
        "subprocess corpus run diverged from in-process"
    );
    assert_eq!(
        digest_lines(&native),
        digest_lines(&killed),
        "kill-injected corpus run lost coverage or misattributed a crash"
    );
    assert!(
        killed.contains("device pool:") && killed.contains("incidents absorbed"),
        "kill injection must surface pool incidents, got:\n{killed}"
    );
    assert!(
        !native.contains("device pool:") && !subprocess.contains("device pool:"),
        "healthy runs must not report incidents"
    );
}

#[test]
fn device_agent_rejects_garbage_instead_of_hanging() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fragdroid"))
        .arg("device-agent")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn device-agent");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"this is not a frame\n")
        .expect("write garbage");
    let out = child.wait_with_output().expect("agent exits");
    // Corrupt stream → the agent hangs up cleanly without replying (the
    // *client* maps the hang-up to a typed AgentDied); it must not hang,
    // guess at a resync, or write a partial reply.
    assert!(out.status.success(), "corrupt stream is a clean hang-up, not a crash");
    assert!(out.stdout.is_empty(), "no reply may follow a corrupt frame");

    // Bad usage, on the other hand, is a typed CLI failure.
    let usage = fragdroid(&["device-agent", "unexpected-positional"]);
    assert_eq!(usage.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&usage.stderr).contains("device-agent"));
}

#[test]
fn backend_flag_errors_are_typed_usage_failures() {
    let out = fragdroid(&["corpus", "--limit", "1", "--backend", "telepathy"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown backend"));

    let out = fragdroid(&["corpus", "--limit", "1", "--agent-die-after", "5"]);
    assert_eq!(out.status.code(), Some(1), "--agent-die-after needs the subprocess backend");
    assert!(String::from_utf8_lossy(&out.stderr).contains("subprocess"));
}
