//! End-to-end tests of the corpus scale-out surface against the *real*
//! `fragdroid` binary: `gen-corpus` → on-disk corpus → sharded runs →
//! merge must reproduce the unsharded outcome digest, and `serve` must
//! hand back the same report bytes `run --json` prints.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

use fd_droidsim::proto::{decode_payload, encode_frame, to_hex, Envelope, FrameBuffer};
use fragdroid::{ServeRequest, ServeResponse};

fn fragdroid(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fragdroid"))
        .args(args)
        .output()
        .expect("spawn fragdroid binary")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "fragdroid failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fd-scaleout-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

fn digest_line(stdout: &str) -> &str {
    stdout
        .lines()
        .find(|l| l.starts_with("outcome digest:"))
        .unwrap_or_else(|| panic!("no outcome digest in:\n{stdout}"))
}

#[test]
fn gen_corpus_is_seed_deterministic_and_merge_matches_unsharded() {
    let dir_a = tmp("corpus-a");
    let dir_b = tmp("corpus-b");
    for dir in [&dir_a, &dir_b] {
        let out = stdout_of(&fragdroid(&[
            "gen-corpus",
            dir.to_str().unwrap(),
            "--apps",
            "12",
            "--seed",
            "3",
            "--shard-size",
            "5",
        ]));
        assert!(out.contains("wrote 12 apps"), "unexpected gen-corpus output:\n{out}");
    }
    // Same seed → byte-identical corpus (manifest digest and shard files).
    let manifest_a = std::fs::read(dir_a.join("corpus.json")).expect("manifest a");
    let manifest_b = std::fs::read(dir_b.join("corpus.json")).expect("manifest b");
    assert_eq!(manifest_a, manifest_b, "gen-corpus must be seed-deterministic");

    let corpus = dir_a.to_str().unwrap().to_string();
    let faults: &[&str] = &["--fault-rate", "0.25", "--fault-seed", "7"];

    // Unsharded reference over the on-disk corpus.
    let mut ref_args = vec!["corpus", "--corpus", &corpus];
    ref_args.extend(faults);
    let reference = stdout_of(&fragdroid(&ref_args));

    // Two shard runs journaling to distinct per-shard checkpoints.
    let journal = tmp("scaleout.journal");
    let journal_str = journal.to_str().unwrap();
    for index in ["0", "1"] {
        let mut args = vec![
            "corpus",
            "--corpus",
            &corpus,
            "--checkpoint",
            journal_str,
            "--shards",
            "2",
            "--shard-index",
            index,
        ];
        args.extend(faults);
        let out = stdout_of(&fragdroid(&args));
        assert!(
            out.contains(&format!("shard:       {index}/2")),
            "shard run must announce its slice:\n{out}"
        );
        // Shard runs deliberately do not print the plain digest line —
        // only full/merged runs may, so CI digest-diffs cannot match a
        // partial result.
        assert!(!out.lines().any(|l| l.starts_with("outcome digest:")));
    }

    let mut merge_args = vec![
        "corpus",
        "--corpus",
        &corpus,
        "--checkpoint",
        journal_str,
        "--shards",
        "2",
        "--merge",
    ];
    merge_args.extend(faults);
    let merged = stdout_of(&fragdroid(&merge_args));
    assert_eq!(
        digest_line(&merged),
        digest_line(&reference),
        "merged shard digest diverged from the unsharded run"
    );
    assert!(merged.contains("merged: 12 apps across 2 shards"), "merge summary:\n{merged}");
}

#[test]
fn merge_without_shard_journals_is_exit_code_4() {
    let dir = tmp("corpus-missing");
    stdout_of(&fragdroid(&["gen-corpus", dir.to_str().unwrap(), "--apps", "4", "--seed", "9"]));
    let journal = tmp("missing.journal");
    let out = fragdroid(&[
        "corpus",
        "--corpus",
        dir.to_str().unwrap(),
        "--checkpoint",
        journal.to_str().unwrap(),
        "--shards",
        "2",
        "--merge",
    ]);
    assert_eq!(out.status.code(), Some(4), "missing shard journals map to exit code 4");
    assert!(String::from_utf8_lossy(&out.stderr).contains("shard merge"));
}

/// A `fragdroid serve` child with frame-level request/reply plumbing.
struct ServeSession {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: std::process::ChildStdout,
    frames: FrameBuffer,
    next_id: u64,
}

impl ServeSession {
    fn spawn(extra: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fragdroid"))
            .arg("serve")
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn fragdroid serve");
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = child.stdout.take().expect("stdout piped");
        ServeSession { child, stdin, stdout, frames: FrameBuffer::new(), next_id: 0 }
    }

    /// Sends one request and blocks for its reply (the protocol is
    /// strictly one reply frame per request frame).
    fn request(&mut self, body: ServeRequest) -> ServeResponse {
        let id = self.next_id;
        self.next_id += 1;
        self.stdin.write_all(&encode_frame(&Envelope { id, body })).expect("write frame");
        self.stdin.flush().expect("flush frame");
        loop {
            if let Some(payload) = self.frames.next_frame().expect("well-formed reply") {
                let envelope: Envelope<ServeResponse> =
                    decode_payload(&payload).expect("decodable reply");
                assert_eq!(envelope.id, id, "replies echo the request id");
                return envelope.body;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stdout.read(&mut chunk).expect("read reply");
            assert!(n > 0, "serve hung up mid-request");
            self.frames.push(&chunk[..n]);
        }
    }

    fn poll_until_done(&mut self, job: u64) -> ServeResponse {
        loop {
            match self.request(ServeRequest::Poll { job }) {
                ServeResponse::Pending { .. } => {
                    std::thread::sleep(std::time::Duration::from_millis(5))
                }
                done => return done,
            }
        }
    }

    fn shutdown(mut self) {
        assert!(matches!(self.request(ServeRequest::Shutdown), ServeResponse::Bye));
        drop(self.stdin);
        let status = self.child.wait().expect("serve exits");
        assert!(status.success(), "serve must exit cleanly after Shutdown");
    }
}

#[test]
fn serve_report_is_byte_identical_to_run_json() {
    let app = tmp("serve-parity.fapk");
    let app_str = app.to_str().unwrap();
    stdout_of(&fragdroid(&["gen", app_str, "--template", "fig1-tabs"]));
    let inputs_path = format!("{app_str}.inputs.json");
    let inputs: BTreeMap<String, String> =
        serde_json::from_str(&std::fs::read_to_string(&inputs_path).expect("inputs file"))
            .expect("inputs json");
    let container = std::fs::read(&app).expect("container bytes");

    // Reference: `run --json` prints the pretty report plus one newline.
    let reference = stdout_of(&fragdroid(&["run", app_str, "--inputs", &inputs_path, "--json"]));

    let mut session = ServeSession::spawn(&["--workers", "2"]);
    let submit = session.request(ServeRequest::Submit {
        job: 1,
        container_hex: to_hex(&container),
        inputs: inputs.clone(),
    });
    let ServeResponse::Accepted { job } = submit else {
        panic!("submit must be accepted, got {submit:?}");
    };
    assert_eq!(job, 1, "the job id is the client-assigned one");
    let done = session.poll_until_done(job);
    let ServeResponse::Report { json, .. } = done else {
        panic!("job must complete with a report, got {done:?}");
    };
    assert_eq!(
        json,
        reference.trim_end_matches('\n'),
        "serve report bytes diverged from 'run --json'"
    );

    // A malformed container is a pollable refusal, not a dead session.
    let submit = session.request(ServeRequest::Submit {
        job: 2,
        container_hex: to_hex(b"junk"),
        inputs: BTreeMap::new(),
    });
    let ServeResponse::Accepted { job: bad_job } = submit else {
        panic!("even bad submissions get a job id, got {submit:?}");
    };
    assert!(matches!(session.poll_until_done(bad_job), ServeResponse::Rejected { .. }));

    match session.request(ServeRequest::Status) {
        ServeResponse::Status { completed, rejected, workers, .. } => {
            assert_eq!((completed, rejected, workers), (1, 1, 2));
        }
        other => panic!("expected a status snapshot, got {other:?}"),
    }
    session.shutdown();
}

#[test]
fn serve_hangs_up_quietly_on_a_corrupt_frame() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fragdroid"))
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"this is not a frame\n")
        .expect("write garbage");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "corrupt stream is a clean hang-up, not a crash");
    assert!(out.stdout.is_empty(), "no reply may follow a corrupt frame");
}
