//! End-to-end tests of the farm coordinator against the *real*
//! `fragdroid` binary: `dispatch --connect` must drive three child
//! `serve` worker processes — one of them SIGKILLed mid-run — to a
//! rendered Table 1 whose outcome digest is byte-identical to the
//! unsharded `corpus` run, and `--json` must emit the machine-readable
//! metrics + farm summary pair.

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStdout, Command, Output, Stdio};
use std::time::Duration;

fn fragdroid(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fragdroid"))
        .args(args)
        .output()
        .expect("spawn fragdroid binary")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "fragdroid failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fd-dispatch-socket-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

/// The `outcome digest: 0x…` line of a rendered run.
fn digest_line(stdout: &str) -> String {
    stdout
        .lines()
        .find(|l| l.starts_with("outcome digest:"))
        .unwrap_or_else(|| panic!("no outcome digest line in:\n{stdout}"))
        .to_string()
}

/// A `fragdroid serve --listen 127.0.0.1:0` child worker plus the
/// resolved address parsed from its "listening on" banner.
struct ServeProc {
    child: Child,
    stdout: BufReader<ChildStdout>,
    spec: String,
}

impl ServeProc {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fragdroid"))
            .args(["serve", "--listen", "127.0.0.1:0", "--workers", "2"])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn fragdroid serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read the listening banner");
        let spec = line
            .trim()
            .strip_prefix("serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
            .to_string();
        ServeProc { child, stdout, spec }
    }

    /// SIGKILL — the worker-machine crash dispatch must survive.
    fn kill(mut self) {
        self.child.kill().expect("kill serve worker");
        let _ = self.child.wait();
        let mut rest = String::new();
        let _ = self.stdout.read_to_string(&mut rest);
    }
}

fn cleanup_journals(checkpoint: &std::path::Path, shards: usize) {
    for shard in 0..shards {
        drop(std::fs::remove_file(fragdroid::shard_journal_path(checkpoint, shard, shards)));
    }
    drop(std::fs::remove_file(checkpoint));
}

#[test]
fn three_workers_one_sigkilled_mid_run_still_render_table1_with_the_unsharded_digest() {
    // The digest the farm must reproduce: the same corpus slice run
    // unsharded in one process.
    let reference = digest_line(&stdout_of(&fragdroid(&["corpus", "--limit", "4"])));

    let workers: Vec<ServeProc> = (0..3).map(|_| ServeProc::spawn()).collect();
    let connect = workers.iter().map(|w| w.spec.as_str()).collect::<Vec<_>>().join(",");
    let checkpoint = tmp("sigkill.journal");
    drop(std::fs::remove_file(&checkpoint));

    // Chaos on the submit transport slows the run enough that the
    // SIGKILL below lands mid-shard instead of after the finish line.
    let dispatch = Command::new(env!("CARGO_BIN_EXE_fragdroid"))
        .args(["dispatch", "--connect", &connect, "--limit", "4", "--shards", "4"])
        .args(["--checkpoint", checkpoint.to_str().unwrap()])
        .args(["--chaos-seed", "7", "--heartbeat-ms", "100"])
        .args(["--quarantine-backoff-ms", "300", "--job-retries", "64"])
        .args(["--job-timeout-ms", "120000"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn fragdroid dispatch");

    std::thread::sleep(Duration::from_millis(1500));
    let mut workers = workers;
    workers.pop().expect("three workers spawned").kill();

    let out = dispatch.wait_with_output().expect("dispatch exits");
    for worker in workers {
        worker.kill();
    }
    let stdout = stdout_of(&out);

    // Table 1 rendered straight from the merged farm run …
    assert!(stdout.contains("Package Name"), "Table 1 header missing:\n{stdout}");
    assert!(stdout.contains("FiVA:Rate"), "Table 1 coverage columns missing:\n{stdout}");
    assert!(stdout.contains("AVERAGE"), "Table 1 averages row missing:\n{stdout}");
    // … plus the farm appendix …
    assert!(stdout.contains("endpoint"), "farm appendix missing:\n{stdout}");
    assert!(stdout.contains("dispatch: 4 shards"), "farm counters missing:\n{stdout}");
    // … and the digest is byte-identical to the unsharded run.
    assert_eq!(digest_line(&stdout), reference, "merged digest diverged:\n{stdout}");

    cleanup_journals(&checkpoint, 4);
}

#[test]
fn json_mode_emits_metrics_and_farm_summary() {
    let workers: Vec<ServeProc> = (0..3).map(|_| ServeProc::spawn()).collect();
    let connect = workers.iter().map(|w| w.spec.as_str()).collect::<Vec<_>>().join(",");

    let out =
        fragdroid(&["dispatch", "--connect", &connect, "--limit", "3", "--shards", "3", "--json"]);
    for worker in workers {
        worker.kill();
    }
    let stdout = stdout_of(&out);

    fn field<'a>(value: &'a serde_json::Value, key: &str) -> Option<&'a serde_json::Value> {
        value.as_object().and_then(|object| object.get(key))
    }
    fn uint(value: &serde_json::Value) -> Option<u64> {
        match value {
            serde_json::Value::Number(number) => number.as_u64(),
            _ => None,
        }
    }
    let value: serde_json::Value = serde_json::from_str(stdout.trim()).expect("json output");
    let summary = field(&value, "dispatch").expect("dispatch summary present");
    assert_eq!(field(summary, "shards").and_then(uint), Some(3), "{stdout}");
    assert_eq!(field(summary, "resumed_shards").and_then(uint), Some(0), "{stdout}");
    assert_eq!(
        field(summary, "workers").and_then(|w| w.as_array()).map(|w| w.len()),
        Some(3),
        "one worker stat per endpoint: {stdout}"
    );
    assert_eq!(
        field(&value, "metrics")
            .and_then(|m| field(m, "apps"))
            .and_then(|a| a.as_array())
            .map(|a| a.len()),
        Some(3),
        "three apps in the merged metrics: {stdout}"
    );
}
