//! Library backing the `fragdroid` command-line interface (testable
//! without spawning the binary).
//!
//! ```text
//! fragdroid gen <out.fapk> [--template NAME | --random --seed N --size N]
//! fragdroid info <app.fapk>
//! fragdroid static <app.fapk> [--inputs inputs.json]
//! fragdroid dot <app.fapk>
//! fragdroid run <app.fapk> [--inputs inputs.json] [--budget N] [--fault-rate R] [--fault-seed N] [--json]
//! fragdroid dump <app.fapk>
//! fragdroid fuzz [--seed N] [--mutants N] [--target T] [--out DIR]
//! fragdroid templates
//! ```
//!
//! `.fapk` files are the binary APK containers of `fd-apk`; `gen` writes
//! one (alongside an `<out>.inputs.json` with the known gate secrets) so
//! every other subcommand has something to chew on.

use bytes::Bytes;
use std::collections::BTreeMap;

pub mod args;
pub mod cmds;

/// A CLI failure, carrying the process exit code it maps to.
///
/// The split lets scripts (and CI) distinguish quarantined *inputs* and
/// broken *checkpoints* from *tool* failures: a malformed container
/// exits with code 2, a journal problem (fingerprint mismatch, corrupt
/// record, unwritable checkpoint) with code 3, every other error with
/// code 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// Generic failure (bad usage, IO, internal error) — exit code 1.
    Failure(String),
    /// Input rejected at the ingestion frontier (malformed or
    /// packer-protected container) — exit code 2.
    Rejected(String),
    /// Checkpoint journal error (corrupt or mismatched journal, full
    /// disk mid-append, refused overwrite) — exit code 3.
    Checkpoint(String),
    /// Shard error (invalid split, or a missing/incomplete/mismatched
    /// shard journal) — exit code 4.
    Shard(String),
    /// Serve service error (bad listen address, socket/session failure,
    /// job journal problem, or an exhausted/conflicted submit client) —
    /// exit code 5.
    Serve(String),
    /// Dispatch coordinator error (no endpoints, a coordinator-journal
    /// problem, or a stalled farm) — exit code 6.
    Dispatch(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Failure(_) => 1,
            CliError::Rejected(_) => 2,
            CliError::Checkpoint(_) => 3,
            CliError::Shard(_) => 4,
            CliError::Serve(_) => 5,
            CliError::Dispatch(_) => 6,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Failure(message) => write!(f, "{message}"),
            CliError::Rejected(message) => write!(f, "rejected input: {message}"),
            CliError::Checkpoint(message) => write!(f, "checkpoint: {message}"),
            CliError::Shard(message) => write!(f, "shard merge: {message}"),
            CliError::Serve(message) => write!(f, "serve: {message}"),
            CliError::Dispatch(message) => write!(f, "dispatch: {message}"),
        }
    }
}

impl From<fragdroid::JournalError> for CliError {
    fn from(error: fragdroid::JournalError) -> Self {
        CliError::Checkpoint(error.to_string())
    }
}

impl From<fragdroid::ShardError> for CliError {
    fn from(error: fragdroid::ShardError) -> Self {
        CliError::Shard(error.to_string())
    }
}

impl From<fragdroid::ServeError> for CliError {
    fn from(error: fragdroid::ServeError) -> Self {
        CliError::Serve(error.to_string())
    }
}

impl From<fragdroid::ClientError> for CliError {
    fn from(error: fragdroid::ClientError) -> Self {
        CliError::Serve(error.to_string())
    }
}

impl From<fragdroid::DispatchError> for CliError {
    fn from(error: fragdroid::DispatchError) -> Self {
        // Shard and journal causes keep their own exit codes so scripts
        // can tell a broken merge from a dead farm.
        match error {
            fragdroid::DispatchError::Shard(e) => CliError::Shard(e.to_string()),
            fragdroid::DispatchError::Journal(e) => {
                CliError::Checkpoint(format!("coordinator journal: {e}"))
            }
            other => CliError::Dispatch(other.to_string()),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Failure(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError::Failure(message.to_string())
    }
}

/// Dispatches one CLI invocation (everything after the binary name).
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "gen" => cmds::gen(rest),
        "info" => cmds::info(rest),
        "static" => cmds::static_info(rest),
        "dot" => cmds::dot(rest),
        "run" => cmds::run(rest),
        "dump" => cmds::dump(rest),
        "unpack" => cmds::unpack(rest),
        "replay" => cmds::replay(rest),
        "java" => cmds::java(rest),
        "repack" => cmds::repack(rest),
        "corpus" => cmds::corpus(rest),
        "gen-corpus" => cmds::gen_corpus(rest),
        "serve" => cmds::serve(rest),
        "submit" => cmds::submit(rest),
        "dispatch" => cmds::dispatch(rest),
        "device-agent" => cmds::device_agent(rest),
        "fuzz" => cmds::fuzz(rest),
        "trace" => cmds::trace(rest),
        "templates" => {
            println!("quickstart\nfig1-tabs\nfig2-drawer");
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => {
            Err(CliError::Failure(format!("unknown subcommand '{other}' (try 'fragdroid help')")))
        }
    }
}

fn print_usage() {
    println!(
        "fragdroid — Fragment-aware automated UI exploration (DSN'18 reproduction)

USAGE:
  fragdroid gen <out.fapk> [--template NAME] [--random] [--seed N] [--size N]
  fragdroid info <app.fapk>               manifest, classes, layouts, metadata
  fragdroid static <app.fapk> [--inputs F]  static extraction as JSON
  fragdroid dot <app.fapk>                initial AFTM as Graphviz DOT
  fragdroid run <app.fapk> [--inputs F] [--budget N] [--json] [--find-api g/n]
                [--fault-rate R] [--fault-seed N] [--trace-out T.jsonl]
                [--checkpoint J] [--resume] [--flake-retries N]
                [--backend in-process|subprocess|mock-adb]
                                          full exploration + coverage report
  fragdroid dump <app.fapk>               launch and print the UI hierarchy
  fragdroid unpack <app.fapk> --out DIR   apktool-style decompile to a directory
  fragdroid repack <DIR> --out <app.fapk> rebuild a container from a directory
  fragdroid replay <app.fapk> <trace.json> replay a recorded session (R&R)
  fragdroid java <app.fapk> [--inputs F]  emit the generated Robotium test class
  fragdroid corpus [--seed N] [--limit N] [--workers N] [--deadline-ms N]
                [--fault-rate R] [--fault-seed N] [--json] [--trace-out T.jsonl]
                [--checkpoint J] [--resume] [--flake-retries N] [--app-budget N]
                [--backend B] [--agent-die-after N] [--corpus DIR]
                [--shards N --shard-index I | --shards N --merge]
                                          run the synthetic corpus on the suite runner
                                          (journal progress to J; --resume continues
                                          an interrupted journal; --app-budget stops
                                          after N fresh apps, leaving J partial;
                                          --agent-die-after kills each lane's first
                                          subprocess agent after N requests to
                                          exercise device-pool recovery;
                                          --corpus streams an on-disk gen-corpus
                                          directory instead of the in-memory 217;
                                          --shards/--shard-index runs one shard
                                          journaling to J.shard-I-of-N; --merge
                                          combines the per-shard journals into the
                                          single-run report + outcome digest)
  fragdroid gen-corpus <DIR> [--apps N] [--seed N] [--profile tiny|paper]
                [--shard-size N]
                                          write a seeded synthetic corpus to DIR as
                                          sharded packed containers + manifest
  fragdroid serve [--workers N] [--budget N] [--fault-rate R] [--fault-seed N]
                [--backend B] [--trace-out T.jsonl] [--listen ADDR]
                [--journal J] [--queue-cap N] [--max-conns N]
                [--idle-timeout-ms N] [--write-timeout-ms N]
                                          job-queue mode: submit a container frame,
                                          poll the job id for the same report bytes
                                          'run --json' prints. Default is a single
                                          stdin/stdout session; --listen (unix:PATH
                                          or HOST:PORT) serves many concurrent
                                          socket sessions with a bounded queue
                                          (Busy + retry-after when full), a
                                          connection cap, idle timeouts, and
                                          graceful drain on Shutdown; --journal
                                          makes admission crash-safe — a restarted
                                          server recovers submitted jobs and serves
                                          finished reports byte-identically
  fragdroid submit <app.fapk> --connect ADDR [--job N] [--inputs F] [--async]
                [--timeout-ms N] [--retries N] [--chaos-seed N]
                                          submit one container to a serve socket
                                          with retry + exponential backoff, print
                                          the report JSON (or wait only for the
                                          durable accept with --async); job ids are
                                          idempotent resubmission keys
  fragdroid dispatch --connect ADDR[,ADDR...] [--seed N] [--limit N]
                [--corpus DIR] [--shards N] [--checkpoint J] [--resume]
                [--deadline-ms N] [--fault-rate R] [--fault-seed N]
                [--lease-timeout-ms N] [--heartbeat-ms N] [--stall-timeout-ms N]
                [--quarantine-after N] [--quarantine-backoff-ms N]
                [--job-timeout-ms N] [--job-retries N] [--jitter-seed N]
                [--chaos-seed N] [--json] [--trace-out T.jsonl]
                                          farm coordinator: shard the corpus
                                          across serve endpoints with
                                          time-bounded leases, heartbeat
                                          probes, quarantine, and automatic
                                          reassignment; merges the shard
                                          journals to the unsharded outcome
                                          digest, renders Table 1 from the
                                          merged run plus a per-worker
                                          dispatch summary; --checkpoint J
                                          journals coordinator progress and
                                          --resume survives SIGKILL of the
                                          coordinator itself (endpoints must
                                          run the same engine config)
  fragdroid device-agent [--die-after N]  serve the device wire protocol on
                                          stdin/stdout (spawned by the subprocess
                                          backend; not for interactive use)
  fragdroid fuzz [--seed N] [--mutants N]
                [--target container|smali|json|protocol|corpus|serve|dispatch]
                [--out DIR] [--trace-out T.jsonl] [--json]
                                          deterministic ingestion-frontier fuzz campaign
  fragdroid trace <trace.jsonl> [--json]  per-phase/per-app profile of a trace
  fragdroid templates                     list template names for 'gen'

EXIT CODES:
  0  success
  1  failure (bad usage, IO error, internal error, fuzz violation)
  2  input rejected at the ingestion frontier (malformed/packed container)
  3  checkpoint journal error (corrupt or mismatched journal, refused
     overwrite, unwritable checkpoint path)
  4  shard error (invalid split, or a missing, incomplete, or
     fingerprint-mismatched shard journal)
  5  serve error (bad listen address, socket failure, job-journal
     corruption, or a submit client out of retries/conflicted)
  6  dispatch error (no endpoints, resume without a checkpoint, shard
     count mismatch, or a stalled farm with every endpoint dead)"
    );
}

/// Reads and decompiles a container file.
///
/// (Used by the subcommands; public so tests can drive them directly.)
pub fn load_app(path: &str) -> Result<fd_apk::AndroidApp, CliError> {
    load_app_traced(path, &fd_trace::Tracer::disabled())
}

/// [`load_app`] under a tracer, so `--trace-out` runs capture the
/// decompile phase too.
///
/// A container the decoder refuses maps to [`CliError::Rejected`] (exit
/// code 2) with a one-line diagnostic carrying the typed error and, when
/// the error tracks one, the byte offset it was detected at. An
/// unreadable file stays a plain [`CliError::Failure`].
pub fn load_app_traced(
    path: &str,
    tracer: &fd_trace::Tracer,
) -> Result<fd_apk::AndroidApp, CliError> {
    let raw =
        std::fs::read(path).map_err(|e| CliError::Failure(format!("cannot read {path}: {e}")))?;
    fd_apk::decompile_traced(&Bytes::from(raw), tracer).map_err(|e| {
        let at = e.offset().map(|o| format!(" (at byte {o})")).unwrap_or_default();
        CliError::Rejected(format!("{path}: {e}{at}"))
    })
}

/// Writes a drained trace to `path` (JSON Lines) and `<path>.chrome.json`
/// (Chrome `trace_event` format for `chrome://tracing` / Perfetto).
pub fn write_trace(path: &str, trace: &fd_trace::Trace) -> Result<(), String> {
    std::fs::write(path, trace.to_jsonl()).map_err(|e| format!("cannot write {path}: {e}"))?;
    let chrome_path = format!("{path}.chrome.json");
    std::fs::write(&chrome_path, fd_trace::chrome::to_chrome_json(trace))
        .map_err(|e| format!("cannot write {chrome_path}: {e}"))?;
    eprintln!("trace: {path} (JSONL) and {chrome_path} (chrome://tracing)");
    Ok(())
}

/// Reads an optional `--inputs` JSON file (widget-ID → value map).
pub fn load_inputs(path: Option<&str>) -> Result<BTreeMap<String, String>, String> {
    match path {
        None => Ok(BTreeMap::new()),
        Some(p) => {
            let raw = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
            serde_json::from_str(&raw).map_err(|e| format!("bad inputs file {p}: {e}"))
        }
    }
}
