//! Tiny hand-rolled argument parsing: one positional path plus
//! `--flag value` / bare `--flag` options.

use std::collections::BTreeMap;

/// Parsed arguments: the positional values in order, and the options.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Positional arguments, in order.
    pub positional: Vec<String>,
    /// `--key value` options; bare flags map to an empty string.
    pub options: BTreeMap<String, String>,
}

/// Flags that take no value.
const BARE_FLAGS: &[&str] = &["random", "json", "resume", "merge", "async"];

/// Parses `argv` into positionals and options.
pub fn parse(argv: &[String]) -> Result<Parsed, String> {
    let mut parsed = Parsed::default();
    let mut iter = argv.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if BARE_FLAGS.contains(&key) {
                parsed.options.insert(key.to_string(), String::new());
            } else {
                let value = iter.next().ok_or_else(|| format!("option --{key} expects a value"))?;
                parsed.options.insert(key.to_string(), value.clone());
            }
        } else {
            parsed.positional.push(arg.clone());
        }
    }
    Ok(parsed)
}

impl Parsed {
    /// The single required positional argument.
    pub fn one_path(&self, what: &str) -> Result<&str, String> {
        match self.positional.as_slice() {
            [p] => Ok(p),
            [] => Err(format!("missing {what}")),
            _ => Err(format!("expected exactly one {what}")),
        }
    }

    /// An option's value, if present.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a bare flag is present.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// A numeric option with a default.
    pub fn num(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects a number, got '{v}'")),
        }
    }

    /// A fractional option with a default, constrained to `[0, 1]`.
    pub fn fraction(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => {
                let parsed: f64 = v
                    .parse()
                    .map_err(|_| format!("--{key} expects a number in [0, 1], got '{v}'"))?;
                if !(0.0..=1.0).contains(&parsed) {
                    return Err(format!("--{key} expects a number in [0, 1], got '{v}'"));
                }
                Ok(parsed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_and_options() {
        let p = parse(&argv(&["app.fapk", "--seed", "7", "--json"])).unwrap();
        assert_eq!(p.one_path("container").unwrap(), "app.fapk");
        assert_eq!(p.num("seed", 0).unwrap(), 7);
        assert!(p.flag("json"));
        assert!(!p.flag("random"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&argv(&["--seed"])).is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let p = parse(&argv(&["--seed", "x"])).unwrap();
        assert!(p.num("seed", 0).is_err());
    }

    #[test]
    fn fraction_enforces_unit_interval() {
        let p = parse(&argv(&["--fault-rate", "0.25"])).unwrap();
        assert_eq!(p.fraction("fault-rate", 0.0).unwrap(), 0.25);
        assert_eq!(p.fraction("absent", 0.1).unwrap(), 0.1);
        let over = parse(&argv(&["--fault-rate", "1.5"])).unwrap();
        assert!(over.fraction("fault-rate", 0.0).is_err());
        let junk = parse(&argv(&["--fault-rate", "x"])).unwrap();
        assert!(junk.fraction("fault-rate", 0.0).is_err());
    }

    #[test]
    fn one_path_rejects_extra_positionals() {
        let p = parse(&argv(&["a", "b"])).unwrap();
        assert!(p.one_path("container").is_err());
    }
}
