//! `fragdroid` — command-line interface for the FragDroid reproduction.
//! See [`fd_cli::run`] for the subcommands.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match fd_cli::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
