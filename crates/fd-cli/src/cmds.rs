//! Subcommand implementations.

use crate::args::{parse, Parsed};
use crate::{load_app, load_app_traced, load_inputs, write_trace, CliError};
use fragdroid::{FragDroid, FragDroidConfig};

/// Parses `--backend <in-process|subprocess|mock-adb>` (defaulting to the
/// in-process simulator).
fn parse_backend(p: &Parsed) -> Result<fd_droidsim::DeviceBackend, String> {
    match p.opt("backend") {
        None => Ok(fd_droidsim::DeviceBackend::default()),
        Some(name) => fd_droidsim::DeviceBackend::parse(name)
            .ok_or_else(|| format!("unknown backend '{name}' (in-process, subprocess, mock-adb)")),
    }
}

/// `fragdroid device-agent [--die-after N]` — the child end of the
/// subprocess backend: serves the length-prefixed device wire protocol
/// over stdin/stdout until the parent hangs up. `--die-after N` makes the
/// agent vanish without replying to request `N` (counting the install as
/// request 0) — the deterministic SIGKILL stand-in CI's kill-injection
/// uses to exercise the pool's recovery path.
pub fn device_agent(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    if !p.positional.is_empty() {
        return Err("device-agent takes no positional arguments".into());
    }
    let die_after = match p.opt("die-after") {
        None => None,
        Some(v) => {
            Some(v.parse::<u64>().map_err(|_| format!("--die-after expects a number, got '{v}'"))?)
        }
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    fd_droidsim::serve(stdin.lock(), stdout.lock(), fd_droidsim::AgentOptions { die_after })
        .map_err(|e| CliError::Failure(format!("device-agent: {e}")))
}

/// Pretty-serializes with the error propagated instead of panicking, so a
/// CLI failure is a message, not a crash.
fn to_pretty_json<T: serde::Serialize>(what: &str, value: &T) -> Result<String, String> {
    serde_json::to_string_pretty(value).map_err(|e| format!("cannot serialize {what}: {e}"))
}

/// `fragdroid gen <out.fapk> [--template NAME | --random] [--seed N] [--size N]`
pub fn gen(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let out = p.one_path("output path")?;
    let seed = p.num("seed", 42)?;
    let generated = if p.flag("random") {
        let size = p.num("size", 8)? as usize;
        let config = fd_appgen::random::GenConfig {
            activities: size,
            fragments: size,
            ..fd_appgen::random::GenConfig::default()
        };
        fd_appgen::random::generate("cli.generated", &config, seed)
    } else {
        match p.opt("template").unwrap_or("quickstart") {
            "quickstart" => fd_appgen::templates::quickstart(),
            "fig1-tabs" => fd_appgen::templates::tabbed_categories(),
            "fig2-drawer" => fd_appgen::templates::nav_drawer_wallpapers(),
            other => {
                return Err(format!("unknown template '{other}' (see 'fragdroid templates')").into())
            }
        }
    };
    let bytes = fd_apk::pack(&generated.app);
    std::fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    let inputs_path = format!("{out}.inputs.json");
    let inputs = to_pretty_json("inputs", &generated.known_inputs)?;
    std::fs::write(&inputs_path, inputs).map_err(|e| format!("cannot write {inputs_path}: {e}"))?;
    println!(
        "wrote {out} ({} bytes, {} activities, {} classes) and {inputs_path}",
        bytes.len(),
        generated.app.manifest.activities.len(),
        generated.app.classes.len(),
    );
    Ok(())
}

/// `fragdroid info <app.fapk>`
pub fn info(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let app = load_app(p.one_path("container path")?)?;
    println!("package:    {}", app.package());
    println!("category:   {}", app.meta.category);
    println!("downloads:  {}", app.meta.downloads_band());
    let stats = fd_apk::app_stats(&app);
    println!(
        "classes:    {} ({} activities, {} fragments)",
        stats.classes, stats.activity_classes, stats.fragment_classes
    );
    println!("methods:    {} ({} statements)", stats.methods, stats.statements);
    println!(
        "layouts:    {} ({} widgets, {} clickable)",
        stats.layouts, stats.widgets, stats.clickable_widgets
    );
    println!("resources:  {}", stats.resources);
    println!("sensitive call sites: {}", stats.sensitive_call_sites);
    println!("activities:");
    for decl in &app.manifest.activities {
        let launcher = if decl.is_launcher() { "  [launcher]" } else { "" };
        println!("  {}{}", decl.name, launcher);
    }
    let fragments: Vec<&str> = app
        .classes
        .iter()
        .filter(|c| app.classes.is_fragment_class(c.name.as_str()))
        .map(|c| c.name.as_str())
        .collect();
    println!("fragments:");
    for f in fragments {
        println!("  {f}");
    }
    Ok(())
}

/// `fragdroid static <app.fapk> [--inputs F]`
pub fn static_info(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let app = load_app(p.one_path("container path")?)?;
    let inputs = load_inputs(p.opt("inputs"))?;
    let info = fd_static::extract(&app, &inputs);
    println!("{}", to_pretty_json("static info", &info)?);
    Ok(())
}

/// `fragdroid dot <app.fapk>`
pub fn dot(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let app = load_app(p.one_path("container path")?)?;
    let info = fd_static::extract(&app, &Default::default());
    print!("{}", fd_aftm::dot::to_dot(&info.aftm));
    Ok(())
}

/// `fragdroid run <app.fapk> [--inputs F] [--budget N] [--fault-rate R]
/// [--fault-seed N] [--trace-out T.jsonl] [--json]`
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let trace_out = p.opt("trace-out");
    let trace_config = if trace_out.is_some() {
        fd_trace::TraceConfig::on()
    } else {
        fd_trace::TraceConfig::off()
    };
    let tracer = fd_trace::Tracer::new(&trace_config, fd_trace::TraceClock::start(), 0);
    let app = load_app_traced(p.one_path("container path")?, &tracer)?;
    let inputs = load_inputs(p.opt("inputs"))?;
    let mut config = FragDroidConfig {
        event_budget: p.num("budget", 40_000)? as usize,
        ..FragDroidConfig::default()
    }
    .with_backend(parse_backend(&p)?);
    let fault_rate = p.fraction("fault-rate", 0.0)?;
    if fault_rate > 0.0 {
        config = config.with_faults(p.num("fault-seed", 1)?, fault_rate);
    }
    if let Some(spec) = p.opt("find-api") {
        let (group, name) = spec
            .split_once('/')
            .ok_or_else(|| format!("--find-api expects '<group>/<name>', got '{spec}'"))?;
        config = config.find_api(group, name);
    }
    let checkpoint_path = p.opt("checkpoint");
    let resume = p.flag("resume");
    let flake_retries = p.num("flake-retries", 0)? as usize;
    if resume && checkpoint_path.is_none() {
        return Err("--resume requires --checkpoint <path>".into());
    }
    let report = if checkpoint_path.is_some() || flake_retries > 0 {
        // Route the single app through the checkpointed suite runner as a
        // one-slot corpus: the journal, resume and flake semantics are
        // identical to `corpus`.
        let opts =
            checkpoint_path.map(|path| fragdroid::CheckpointOptions::new(path).with_resume(resume));
        let slot = vec![(app.clone(), inputs.clone())];
        let (suite, suite_trace) = fragdroid::run_suite_checkpointed(
            &slot,
            &config,
            1,
            &trace_config,
            opts.as_ref(),
            flake_retries,
        )?;
        if let Some(flakes) = &suite.run.metrics.flake_summary {
            if !flakes.apps.is_empty() {
                eprintln!(
                    "flake triage: {} deterministic, {} flaky ({} retries each)",
                    flakes.deterministic, flakes.flaky, flakes.retries
                );
            }
        }
        let report = match suite.run.outcomes.into_iter().next() {
            Some(outcome) => match outcome {
                fragdroid::AppOutcome::Panicked { message } => {
                    return Err(CliError::Failure(format!("run panicked: {message}")))
                }
                other => other.into_report().ok_or("run produced no report")?,
            },
            None => return Err("checkpointed run completed no apps".into()),
        };
        if let Some(out) = trace_out {
            let mut trace = fd_trace::Trace::new(&format!("fragdroid run {}", app.package()));
            trace.absorb(tracer.finish());
            trace.records.extend(suite_trace.records);
            write_trace(out, &trace)?;
        }
        report
    } else {
        let report = FragDroid::new(config).run_traced(&app, &inputs, &tracer);
        if let Some(out) = trace_out {
            let mut trace = fd_trace::Trace::new(&format!("fragdroid run {}", app.package()));
            trace.absorb(tracer.finish());
            write_trace(out, &trace)?;
        }
        report
    };

    if p.flag("json") {
        println!("{}", to_pretty_json("report", &report)?);
        return Ok(());
    }
    let a = report.activity_coverage();
    let f = report.fragment_coverage();
    let v = report.fragments_in_visited_coverage();
    println!("activities:            {}/{} ({:.1}%)", a.visited, a.sum, a.rate());
    println!("fragments:             {}/{} ({:.1}%)", f.visited, f.sum, f.rate());
    println!("frags in visited acts: {}/{} ({:.1}%)", v.visited, v.sum, v.rate());
    println!("test cases:            {}", report.test_cases_run);
    println!("events:                {}", report.events_injected);
    println!("crashes:               {}", report.crashes);
    if let Some(detail) = &report.infra_failure {
        println!("device infra failure:  {detail} (not an app crash)");
    }
    if report.faults_injected > 0 || report.retries > 0 {
        println!("faults injected:       {}", report.faults_injected);
        println!("retries:               {}", report.retries);
        println!(
            "recovered crashes:     {}/{} distinct signatures",
            report.recovered_crashes,
            report.crash_reports.len()
        );
    }
    let (total, frag, frag_only) = report.api_relation_counts();
    println!(
        "sensitive API relations: {total} ({frag} fragment-associated, {frag_only} fragment-only)"
    );
    for inv in &report.api_invocations {
        let caller = match &inv.caller {
            fd_droidsim::Caller::Activity(a) => format!("A:{}", a.simple_name()),
            fd_droidsim::Caller::Fragment { fragment, host } => {
                format!("F:{} (in {})", fragment.simple_name(), host.simple_name())
            }
        };
        println!("  {}/{} ← {caller}", inv.group, inv.name);
    }
    Ok(())
}

/// `fragdroid unpack <app.fapk> --out DIR` — apktool-style decompile to a
/// project directory.
pub fn unpack(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let app = load_app(p.one_path("container path")?)?;
    let out = p.opt("out").ok_or("missing --out directory")?;
    fd_apk::workspace::unpack(&app, std::path::Path::new(out)).map_err(|e| e.to_string())?;
    println!("unpacked {} to {out}", app.package());
    Ok(())
}

/// `fragdroid repack <dir> --out app.fapk` — rebuild a container from an
/// (edited) project directory.
pub fn repack(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let dir = p.one_path("project directory")?;
    let out = p.opt("out").ok_or("missing --out file")?;
    let app = fd_apk::workspace::load(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    let problems = app.validate();
    if !problems.is_empty() {
        return Err(format!(
            "rebuilt app is malformed:
  {}",
            problems.join(
                "
  "
            )
        )
        .into());
    }
    let bytes = fd_apk::pack(&app);
    std::fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("repacked {} ({} bytes) to {out}", app.package(), bytes.len());
    Ok(())
}

/// `fragdroid replay <app.fapk> <trace.json>` — replay a recorded session
/// and verify every step lands in its recorded state.
pub fn replay(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let (apk, trace_path) = match p.positional.as_slice() {
        [a, t] => (a.as_str(), t.as_str()),
        _ => return Err("usage: fragdroid replay <app.fapk> <trace.json>".into()),
    };
    let app = load_app(apk)?;
    let raw = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    let trace = fd_droidsim::Trace::from_json(&raw)
        .map_err(|e| format!("bad trace file {trace_path}: {e}"))?;
    let mut device = fd_droidsim::Device::new(app);
    match fd_droidsim::replay(&mut device, &trace) {
        fd_droidsim::ReplayOutcome::Faithful => {
            println!("FAITHFUL: all {} steps reproduced their recorded states", trace.steps.len());
            Ok(())
        }
        fd_droidsim::ReplayOutcome::Diverged { index, expected, actual } => {
            Err(CliError::Failure(format!(
                "DIVERGED at step {index}: expected {:?}, got {:?}",
                expected.map(|s| s.to_string()),
                actual.map(|s| s.to_string())
            )))
        }
        fd_droidsim::ReplayOutcome::Rejected { index, error } => {
            Err(CliError::Failure(format!("REJECTED at step {index}: {error}")))
        }
    }
}

/// `fragdroid java <app.fapk> [--inputs F]` — run FragDroid and emit the
/// generated Robotium test class (§VI-B).
pub fn java(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let app = load_app(p.one_path("container path")?)?;
    let inputs = load_inputs(p.opt("inputs"))?;
    let report = FragDroid::new(FragDroidConfig::default()).run(&app, &inputs);
    print!("{}", report.to_robotium_java());
    Ok(())
}

/// `fragdroid corpus [--seed N] [--limit N] [--workers N] [--deadline-ms N]
/// [--fault-rate R] [--fault-seed N] [--trace-out T.jsonl] [--json]` — run
/// the whole corpus through the shared container suite runner and report
/// coverage plus runner metrics. Every app goes in as packed FAPK bytes;
/// the ingestion frontier quarantines what it refuses (packer-protected
/// apps included) instead of the command pre-filtering them.
pub fn corpus(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    if !p.positional.is_empty() {
        return Err("corpus takes no positional arguments".into());
    }
    let seed = p.num("seed", 1)?;
    let limit = p.num("limit", 0)? as usize;

    // The corpus source: an on-disk `gen-corpus` directory streamed
    // entry-by-entry (memory stays O(1 app)), or the in-memory synthetic
    // 217. Both feed the same lazy suite entry points.
    let disk_corpus;
    let mem_corpus;
    let source: &dyn fragdroid::CorpusSource = match p.opt("corpus") {
        Some(dir) => {
            if limit > 0 {
                return Err("--limit applies to the in-memory corpus; \
                            slice an on-disk corpus with --shards"
                    .into());
            }
            disk_corpus = fd_apk::CorpusReader::open(std::path::Path::new(dir))
                .map_err(|e| format!("cannot open corpus {dir}: {e}"))?;
            &disk_corpus
        }
        None => {
            let mut apps: Vec<fragdroid::suite::SuiteContainer> =
                fd_appgen::corpus::corpus_217(seed)
                    .into_iter()
                    .map(|g| (fd_apk::pack(&g.app), g.known_inputs))
                    .collect();
            if limit > 0 {
                apps.truncate(limit);
            }
            mem_corpus = apps;
            &mem_corpus
        }
    };
    let total = fragdroid::CorpusSource::len(source);

    let backend = parse_backend(&p)?;
    let mut config = FragDroidConfig::default().with_backend(backend);
    let deadline_ms = p.num("deadline-ms", 0)?;
    if deadline_ms > 0 {
        config = config.with_deadline(std::time::Duration::from_millis(deadline_ms));
    }
    let fault_rate = p.fraction("fault-rate", 0.0)?;
    if fault_rate > 0.0 {
        config = config.with_faults(p.num("fault-seed", 1)?, fault_rate);
    }
    // Shard-split arguments: `--shards N --shard-index I` runs one shard
    // (journaling to `<checkpoint>.shard-I-of-N`); `--shards N --merge`
    // folds the per-shard journals back into the single-run report.
    let shards = p.num("shards", 0)? as usize;
    let shard_index = match p.opt("shard-index") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>().map_err(|_| format!("--shard-index expects a number, got '{v}'"))?,
        ),
    };
    let merge = p.flag("merge");
    let checkpoint_path = p.opt("checkpoint");
    if (shard_index.is_some() || merge) && shards == 0 {
        return Err("--shard-index/--merge require --shards <N>".into());
    }
    if shards > 0 && checkpoint_path.is_none() {
        return Err("--shards requires --checkpoint <path> (the journal base)".into());
    }
    if merge && shard_index.is_some() {
        return Err("--merge and --shard-index are mutually exclusive".into());
    }
    if shards > 0 && !merge && shard_index.is_none() {
        return Err("--shards requires --shard-index <I> (run one shard) or --merge".into());
    }
    if let Some(index) = shard_index {
        if index >= shards {
            return Err(format!("--shard-index {index} out of range for {shards} shards").into());
        }
    }

    let workers = match p.num("workers", 0)? as usize {
        0 => fragdroid::suite::engine::default_workers(total),
        workers => workers,
    };
    let agent_die_after = p.num("agent-die-after", 0)?;
    if agent_die_after > 0 && backend != fd_droidsim::DeviceBackend::Subprocess {
        return Err("--agent-die-after requires --backend subprocess".into());
    }
    // Kill-injection: lane generation 0 gets an agent that hangs up after
    // N requests; the replacement generations are healthy, so the pool's
    // retry/quarantine machinery — not luck — must carry the suite home.
    let pool = if agent_die_after > 0 {
        let lanes = workers.min(total.max(1)).max(1);
        Some(fragdroid::DevicePool::with_factory(
            lanes,
            Box::new(move |_lane, generation| {
                let extra = if generation == 0 {
                    vec!["--die-after".to_string(), agent_die_after.to_string()]
                } else {
                    Vec::new()
                };
                Box::new(fd_droidsim::SubprocessDevice::spawn_cli(extra))
                    as Box<dyn fd_droidsim::DeviceApi>
            }),
        ))
    } else {
        None
    };
    let trace_out = p.opt("trace-out");
    let trace_config = if trace_out.is_some() {
        fd_trace::TraceConfig::on()
    } else {
        fd_trace::TraceConfig::off()
    };

    let resume = p.flag("resume");
    let flake_retries = p.num("flake-retries", 0)? as usize;
    let app_budget = p.num("app-budget", 0)? as usize;
    if resume && checkpoint_path.is_none() {
        return Err("--resume requires --checkpoint <path>".into());
    }
    if app_budget > 0 && checkpoint_path.is_none() {
        return Err("--app-budget requires --checkpoint <path>".into());
    }

    // Merge mode runs no devices: it fingerprints each shard's slice,
    // loads the per-shard journals, and reassembles the single-run
    // report. Any missing/incomplete/mismatched journal is exit code 4.
    if merge {
        let base = std::path::Path::new(checkpoint_path.expect("checked with --shards above"));
        let (merged, trace) =
            fragdroid::merge_shards(source, &config, flake_retries, base, shards, &trace_config)?;
        if let Some(out) = trace_out {
            write_trace(out, &trace)?;
        }
        if p.flag("json") {
            println!(
                "{}",
                merged
                    .run
                    .metrics
                    .to_json()
                    .map_err(|e| format!("cannot serialize metrics: {e}"))?
            );
            return Ok(());
        }
        print!("{}", fd_report::render_shard_merge(&merged));
        return Ok(());
    }

    let (run, trace, progress) = if let Some(index) = shard_index {
        let mut opts = fragdroid::CheckpointOptions::new(
            checkpoint_path.expect("checked with --shards above"),
        )
        .with_resume(resume);
        if app_budget > 0 {
            opts = opts.with_app_budget(app_budget);
        }
        let (suite, trace) = fragdroid::run_shard(
            source,
            &config,
            workers,
            &trace_config,
            &opts,
            flake_retries,
            shards,
            index,
            pool.as_ref(),
        )?;
        let progress = Some((suite.resumed, suite.fresh, suite.remaining(), suite.torn_tail_bytes));
        (suite.run, trace, progress)
    } else if checkpoint_path.is_some() || flake_retries > 0 {
        let opts = checkpoint_path.map(|path| {
            let mut opts = fragdroid::CheckpointOptions::new(path).with_resume(resume);
            if app_budget > 0 {
                opts = opts.with_app_budget(app_budget);
            }
            opts
        });
        let (suite, trace) = match &pool {
            Some(pool) => fragdroid::run_corpus_suite_checkpointed_pooled(
                source,
                &config,
                workers,
                &trace_config,
                opts.as_ref(),
                flake_retries,
                pool,
            )?,
            None => fragdroid::run_corpus_suite_checkpointed(
                source,
                &config,
                workers,
                &trace_config,
                opts.as_ref(),
                flake_retries,
            )?,
        };
        let progress = Some((suite.resumed, suite.fresh, suite.remaining(), suite.torn_tail_bytes));
        (suite.run, trace, progress)
    } else {
        let (run, trace) = match &pool {
            Some(pool) => {
                fragdroid::run_corpus_suite_pooled(source, &config, workers, &trace_config, pool)
            }
            None => fragdroid::run_corpus_suite_traced(source, &config, workers, &trace_config),
        };
        (run, trace, None)
    };
    if let Some(out) = trace_out {
        write_trace(out, &trace)?;
    }

    if p.flag("json") {
        println!(
            "{}",
            run.metrics.to_json().map_err(|e| format!("cannot serialize metrics: {e}"))?
        );
        return Ok(());
    }
    let (mut acts, mut acts_sum, mut frags, mut frags_sum) = (0, 0, 0, 0);
    let (mut panicked, mut deadline, mut rejected) = (0usize, 0usize, 0usize);
    let (mut faults, mut retries, mut crashes, mut recovered) = (0usize, 0usize, 0usize, 0usize);
    for outcome in &run.outcomes {
        match outcome {
            fragdroid::AppOutcome::Panicked { .. } => panicked += 1,
            fragdroid::AppOutcome::Rejected { .. } => rejected += 1,
            other => {
                if matches!(other, fragdroid::AppOutcome::DeadlineExceeded(_)) {
                    deadline += 1;
                }
                let report = other.report().expect("run outcome has a report");
                let a = report.activity_coverage();
                let f = report.fragment_coverage();
                acts += a.visited;
                acts_sum += a.sum;
                frags += f.visited;
                frags_sum += f.sum;
                faults += report.faults_injected;
                retries += report.retries;
                crashes += report.crashes;
                recovered += report.recovered_crashes;
            }
        }
    }
    let m = &run.metrics;
    let expected = match shard_index {
        Some(index) => {
            let range = fragdroid::shard_range(total, shards, index)?;
            println!(
                "shard:       {index}/{shards} (corpus entries {}..{})",
                range.start, range.end
            );
            range.len()
        }
        None => total,
    };
    println!(
        "apps:        {}/{} ({} rejected, {} panicked, {} hit deadline)",
        run.outcomes.len(),
        expected,
        rejected,
        panicked,
        deadline
    );
    println!("activities:  {acts}/{acts_sum}");
    println!("fragments:   {frags}/{frags_sum}");
    if fault_rate > 0.0 {
        println!("faults:      {faults} injected, {retries} retries");
        println!("crashes:     {crashes} ({recovered} recovered)");
    }
    println!(
        "wall time:   {:.2}s on {} workers ({:.0}% utilized)",
        m.wall_ms as f64 / 1000.0,
        m.workers,
        m.worker_utilization * 100.0
    );
    if let Some((resumed, fresh, remaining, torn)) = progress {
        let torn_note =
            if torn > 0 { format!(", {torn} torn bytes dropped") } else { String::new() };
        println!("checkpoint:  {resumed} resumed, {fresh} fresh, {remaining} remaining{torn_note}");
    }
    if let Some(flakes) = &m.flake_summary {
        println!(
            "flake triage: {} deterministic, {} flaky (of {} failed apps, {} retries each)",
            flakes.deterministic,
            flakes.flaky,
            flakes.apps.len(),
            flakes.retries
        );
    }
    if m.device_incidents > 0 {
        println!(
            "device pool: {} infrastructure incidents absorbed (backend {})",
            m.device_incidents,
            backend.name()
        );
    }
    // The timing-free fingerprint of what the suite found; CI diffs this
    // line between an interrupted+resumed run and an uninterrupted one.
    // A shard run's digest covers only its slice, so it is labeled
    // distinctly — the corpus-wide line comes from `--merge`.
    if progress.map_or(true, |(_, _, remaining, _)| remaining == 0) {
        match shard_index {
            Some(index) => {
                println!("shard {index}/{shards} outcome digest: {:#018x}", run.outcome_digest())
            }
            None => println!("outcome digest: {:#018x}", run.outcome_digest()),
        }
    }
    Ok(())
}

/// `fragdroid gen-corpus <DIR> [--apps N] [--seed N] [--profile tiny|paper]
/// [--shard-size N]` — write a seeded synthetic corpus to disk as sharded
/// packed containers plus a manifest. The same seed and parameters
/// produce a byte-identical corpus (and digest) on every machine.
pub fn gen_corpus(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let dir = p.one_path("corpus directory")?;
    let profile = match p.opt("profile") {
        None => fd_appgen::stream::Profile::Tiny,
        Some(name) => fd_appgen::stream::Profile::parse(name)?,
    };
    let config = fd_appgen::stream::StreamConfig {
        apps: p.num("apps", 1_000)? as usize,
        seed: p.num("seed", 1)?,
        profile,
        shard_size: p.num("shard-size", 1_024)? as usize,
    };
    let manifest = fd_appgen::stream::write_corpus(std::path::Path::new(dir), &config)
        .map_err(|e| format!("cannot write corpus to {dir}: {e}"))?;
    println!(
        "wrote {} apps ({} profile) to {dir} in {} shards of ≤{}",
        manifest.apps,
        manifest.profile,
        manifest.shards.len(),
        config.shard_size,
    );
    println!("corpus digest: {}", manifest.corpus_digest);
    Ok(())
}

/// `fragdroid serve [--workers N] [--budget N] [--fault-rate R]
/// [--fault-seed N] [--backend B] [--trace-out T.jsonl] [--listen ADDR]
/// [--journal J] [--queue-cap N] [--max-conns N] [--idle-timeout-ms N]
/// [--write-timeout-ms N]` — job-queue mode: submitted containers run on
/// pooled devices, and a finished job polls back the exact report bytes
/// `run --json` would print. Without `--listen` the server speaks one
/// stdin/stdout session; with it, a TCP (`HOST:PORT`) or Unix
/// (`unix:PATH`) socket serves many concurrent sessions under admission
/// control, and the incident summary prints when the server drains.
pub fn serve(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    if !p.positional.is_empty() {
        return Err("serve takes no positional arguments".into());
    }
    let mut config = FragDroidConfig {
        event_budget: p.num("budget", 40_000)? as usize,
        ..FragDroidConfig::default()
    }
    .with_backend(parse_backend(&p)?);
    let fault_rate = p.fraction("fault-rate", 0.0)?;
    if fault_rate > 0.0 {
        config = config.with_faults(p.num("fault-seed", 1)?, fault_rate);
    }
    let defaults = fragdroid::ServeOptions::default();
    let options = fragdroid::ServeOptions {
        workers: p.num("workers", 1)? as usize,
        config,
        queue_cap: p.num("queue-cap", defaults.queue_cap as u64)? as usize,
        max_connections: p.num("max-conns", defaults.max_connections as u64)? as usize,
        idle_timeout_ms: p.num("idle-timeout-ms", defaults.idle_timeout_ms)?,
        write_timeout_ms: p.num("write-timeout-ms", defaults.write_timeout_ms)?,
        journal: p.opt("journal").map(std::path::PathBuf::from),
    };
    let trace_out = p.opt("trace-out");
    let trace_config = if trace_out.is_some() {
        fd_trace::TraceConfig::on()
    } else {
        fd_trace::TraceConfig::off()
    };
    let trace = match p.opt("listen") {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            fragdroid::serve(stdin.lock(), stdout.lock(), &options, &trace_config)?
        }
        Some(spec) => {
            let addr = fragdroid::ListenAddr::parse(spec)?;
            let listener = fragdroid::ServeListener::bind(&addr)?;
            // The resolved address (a `:0` bind picks a port) goes to
            // stdout first so scripts can read where to connect.
            println!("serve: listening on {}", listener.local_addr());
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            let summary = fragdroid::serve_listener(listener, &options, &trace_config)?;
            print!("{}", fd_report::render_serve_incidents(&summary.incidents));
            summary.trace
        }
    };
    if let Some(out) = trace_out {
        write_trace(out, &trace)?;
    }
    Ok(())
}

/// `fragdroid submit <app.fapk> --connect ADDR [--job N] [--inputs F]
/// [--async] [--timeout-ms N] [--retries N] [--chaos-seed N]` — submit
/// one container to a serve socket with retry and exponential backoff,
/// then print the report JSON (byte-identical to `run --json`). The job
/// id is the idempotency key: rerunning the same submit resubmits
/// safely across server restarts. `--async` returns as soon as the
/// server durably accepted the job; `--chaos-seed` arms the seeded
/// chaos transport (torn frames, stalls, duplicated requests) used by
/// the resilience tests.
pub fn submit(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let path = p.one_path("container path")?;
    let spec = p.opt("connect").ok_or("submit requires --connect ADDR")?;
    let addr = fragdroid::ListenAddr::parse(spec)?;
    let job = p.num("job", 1)?;
    let inputs = load_inputs(p.opt("inputs"))?;
    let raw =
        std::fs::read(path).map_err(|e| CliError::Failure(format!("cannot read {path}: {e}")))?;
    let container_hex = fd_droidsim::proto::to_hex(&raw);
    let mut client = fragdroid::SubmitClient::new(addr)
        .with_deadline(std::time::Duration::from_millis(p.num("timeout-ms", 60_000)?))
        .with_max_attempts(p.num("retries", 8)? as u32);
    if let Some(seed) = p.opt("chaos-seed") {
        let seed: u64 =
            seed.parse().map_err(|_| format!("--chaos-seed expects a number, got '{seed}'"))?;
        client = client.with_chaos(fragdroid::ChaosConfig::from_seed(seed));
    }
    if p.flag("async") {
        client.submit_async(job, &container_hex, &inputs)?;
        println!("job {job} accepted");
        return Ok(());
    }
    match client.submit(job, &container_hex, &inputs)? {
        fragdroid::JobOutcome::Report { json } => {
            println!("{json}");
            Ok(())
        }
        fragdroid::JobOutcome::Rejected { reason } => Err(CliError::Rejected(reason)),
    }
}

/// `fragdroid dispatch --connect ADDR[,ADDR...] [--seed N] [--limit N]
/// [--corpus DIR] [--shards N] [--checkpoint J] [--resume] ...` — split
/// the corpus into shards and drive a farm of `fragdroid serve`
/// endpoints to completion under time-bounded leases: a dead or
/// quarantined worker's shards are revoked and reassigned, stragglers
/// get backup grants, and with `--checkpoint` the coordinator journal
/// makes `--resume` survive a coordinator kill. The merged result
/// renders Table 1 plus the farm appendix, and its outcome digest is
/// byte-identical to an unsharded `fragdroid corpus` run of the same
/// corpus and config — the endpoints must run the matching config
/// (deadline, faults), since each worker executes jobs under its own.
pub fn dispatch(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    if !p.positional.is_empty() {
        return Err("dispatch takes no positional arguments".into());
    }
    let spec = p.opt("connect").ok_or("dispatch requires --connect ADDR[,ADDR...]")?;
    let mut endpoints = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if !part.is_empty() {
            endpoints.push(fragdroid::ListenAddr::parse(part)?);
        }
    }
    let seed = p.num("seed", 1)?;
    let limit = p.num("limit", 0)? as usize;
    let disk_corpus;
    let mem_corpus;
    let source: &dyn fragdroid::CorpusSource = match p.opt("corpus") {
        Some(dir) => {
            if limit > 0 {
                return Err("--limit applies to the in-memory corpus; \
                            split an on-disk corpus with --shards"
                    .into());
            }
            disk_corpus = fd_apk::CorpusReader::open(std::path::Path::new(dir))
                .map_err(|e| format!("cannot open corpus {dir}: {e}"))?;
            &disk_corpus
        }
        None => {
            let mut apps: Vec<fragdroid::suite::SuiteContainer> =
                fd_appgen::corpus::corpus_217(seed)
                    .into_iter()
                    .map(|g| (fd_apk::pack(&g.app), g.known_inputs))
                    .collect();
            if limit > 0 {
                apps.truncate(limit);
            }
            mem_corpus = apps;
            &mem_corpus
        }
    };

    // The digest-parity config. Only knobs that change what the suite
    // *finds* matter here; execution happens on the serve endpoints.
    let mut config = FragDroidConfig::default();
    let deadline_ms = p.num("deadline-ms", 0)?;
    if deadline_ms > 0 {
        config = config.with_deadline(std::time::Duration::from_millis(deadline_ms));
    }
    let fault_rate = p.fraction("fault-rate", 0.0)?;
    if fault_rate > 0.0 {
        config = config.with_faults(p.num("fault-seed", 1)?, fault_rate);
    }

    let ms = std::time::Duration::from_millis;
    let mut options = fragdroid::DispatchOptions::new(endpoints);
    options.shards = p.num("shards", 0)? as usize;
    options.journal = p.opt("checkpoint").map(std::path::PathBuf::from);
    options.resume = p.flag("resume");
    options.lease_timeout = ms(p.num("lease-timeout-ms", 120_000)?);
    options.heartbeat_interval = ms(p.num("heartbeat-ms", 250)?);
    options.stall_timeout = ms(p.num("stall-timeout-ms", 300_000)?);
    options.quarantine_after = p.num("quarantine-after", 3)? as u32;
    options.quarantine_backoff = ms(p.num("quarantine-backoff-ms", 500)?);
    options.job_deadline = ms(p.num("job-timeout-ms", 60_000)?);
    options.job_attempts = p.num("job-retries", 8)? as u32;
    if let Some(v) = p.opt("jitter-seed") {
        options.jitter_seed =
            v.parse().map_err(|_| format!("--jitter-seed expects a number, got '{v}'"))?;
    }
    if let Some(v) = p.opt("chaos-seed") {
        let chaos_seed: u64 =
            v.parse().map_err(|_| format!("--chaos-seed expects a number, got '{v}'"))?;
        options.chaos = Some(fragdroid::ChaosConfig::from_seed(chaos_seed));
    }

    let trace_out = p.opt("trace-out");
    let trace_config = if trace_out.is_some() {
        fd_trace::TraceConfig::on()
    } else {
        fd_trace::TraceConfig::off()
    };

    let run = fragdroid::dispatch(source, &config, &options, &trace_config)?;
    if let Some(out) = trace_out {
        write_trace(out, &run.trace)?;
    }

    if p.flag("json") {
        let metrics = run
            .merged
            .run
            .metrics
            .to_json()
            .map_err(|e| format!("cannot serialize metrics: {e}"))?;
        let summary = serde_json::to_string(&run.summary)
            .map_err(|e| format!("cannot serialize dispatch summary: {e}"))?;
        println!("{{\"metrics\":{metrics},\"dispatch\":{summary}}}");
        return Ok(());
    }

    // Table 1 straight from the merged run — no second pass over the
    // corpus — then the quarantine and farm appendices, and finally the
    // digest line CI diffs against the unsharded reference.
    let (rows, rejected) = fd_report::table1_rows_from_run(&run.merged.run);
    print!("{}", fd_report::render_table1(&rows));
    print!("{}", fd_report::render_rejections(&rejected));
    print!("{}", fd_report::render_dispatch_summary(&run.summary));
    println!("outcome digest: {:#018x}", run.merged.run.outcome_digest());
    Ok(())
}

/// `fragdroid fuzz [--seed N] [--mutants N] [--target T[,T..]] [--out DIR]
/// [--trace-out T.jsonl] [--json]` — run a deterministic structure-aware
/// fuzz campaign over the ingestion frontier and report per-target
/// outcomes. Exits nonzero if any mutant panics; reproducers are
/// minimized and, with `--out`, written to disk.
pub fn fuzz(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    if !p.positional.is_empty() {
        return Err("fuzz takes no positional arguments".into());
    }
    let targets = match p.opt("target") {
        None => fd_fuzz::Target::ALL.to_vec(),
        Some(spec) => spec
            .split(',')
            .map(|name| {
                fd_fuzz::Target::parse(name.trim()).ok_or_else(|| {
                    format!(
                        "unknown fuzz target '{name}' \
                         (container, smali, json, protocol, corpus, serve, dispatch)"
                    )
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    let config = fd_fuzz::FuzzConfig {
        seed: p.num("seed", 1)?,
        mutants: p.num("mutants", 1_000)?,
        targets,
        out_dir: p.opt("out").map(std::path::PathBuf::from),
    };
    let trace_out = p.opt("trace-out");
    let trace_config = if trace_out.is_some() {
        fd_trace::TraceConfig::on()
    } else {
        fd_trace::TraceConfig::off()
    };
    let tracer = fd_trace::Tracer::new(&trace_config, fd_trace::TraceClock::start(), 0);
    let report = fd_fuzz::run_campaign_traced(&config, &tracer);
    if let Some(out) = trace_out {
        let mut trace = fd_trace::Trace::new("fragdroid fuzz");
        trace.absorb(tracer.finish());
        write_trace(out, &trace)?;
    }

    if p.flag("json") {
        println!("{}", report.to_json().map_err(|e| format!("cannot serialize report: {e}"))?);
    } else {
        println!("fuzz: seed {}, {} mutants", report.seed, report.executed);
        for (name, stats) in &report.per_target {
            println!(
                "  {:<10} {} executed: {} ok, {} rejected, {} violations",
                name, stats.executed, stats.ok, stats.rejected, stats.violations
            );
        }
        println!("digest:     {:#018x}", report.outcome_digest);
        for violation in &report.violations {
            println!(
                "  VIOLATION {}[case {}]: {} ({} bytes, minimized to {}{})",
                violation.target,
                violation.case,
                violation.message,
                violation.input_bytes,
                violation.minimized_bytes,
                violation
                    .reproducer
                    .as_deref()
                    .map(|p| format!(", saved to {p}"))
                    .unwrap_or_default()
            );
        }
    }
    if !report.is_clean() {
        return Err(CliError::Failure(format!(
            "panic-free invariant violated by {} of {} mutants",
            report.violations.len(),
            report.executed
        )));
    }
    Ok(())
}

/// `fragdroid trace <trace.jsonl> [--json]` — per-phase breakdown,
/// slowest apps, hottest activities/fragments, and the fault/retry
/// timeline of a `--trace-out` capture.
pub fn trace(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let path = p.one_path("trace file (.jsonl)")?;
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace =
        fd_trace::Trace::from_jsonl(&raw).map_err(|e| format!("bad trace file {path}: {e}"))?;
    let summary = fd_trace::TraceSummary::compute(&trace);
    if p.flag("json") {
        println!("{}", to_pretty_json("trace summary", &summary)?);
    } else {
        print!("{}", summary.render());
    }
    Ok(())
}

/// `fragdroid dump <app.fapk>`
pub fn dump(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv)?;
    let app = load_app(p.one_path("container path")?)?;
    let mut device = fd_droidsim::Device::new(app);
    device.launch().map_err(|e| format!("launch failed: {e}"))?;
    match device.current() {
        Some(screen) => {
            print!("{}", fd_droidsim::dump_hierarchy(screen));
            Ok(())
        }
        None => Err(CliError::Failure(format!(
            "app force-closed at launch: {}",
            device.crash_reason().unwrap_or("unknown")
        ))),
    }
}
