//! Structural statistics over an AFTM — used by the corpus analysis to
//! characterize app architectures (how fragment-heavy, how deep, how
//! connected).

use crate::graph::{Aftm, EdgeKind, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Summary statistics of one model.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AftmStats {
    /// Activity nodes.
    pub activities: usize,
    /// Fragment nodes.
    pub fragments: usize,
    /// E1 (`A → A`) edges.
    pub e1: usize,
    /// E2 (`A → Fᵢ`) edges.
    pub e2: usize,
    /// E3 (`F → Fᵢ`) edges.
    pub e3: usize,
    /// Nodes reachable from the entry.
    pub reachable: usize,
    /// Nodes NOT reachable from the entry (candidates for forced starts).
    pub unreachable: usize,
    /// Length of the longest shortest-path from the entry (BFS depth).
    pub depth: usize,
    /// Maximum number of fragments hosted by a single activity — the
    /// paper's multi-pane/fragment-reuse dimension.
    pub max_fragments_per_activity: usize,
}

impl AftmStats {
    /// The fragment share of all nodes.
    pub fn fragment_ratio(&self) -> f64 {
        let total = self.activities + self.fragments;
        if total == 0 {
            0.0
        } else {
            self.fragments as f64 / total as f64
        }
    }
}

/// Computes statistics for one model.
pub fn stats(model: &Aftm) -> AftmStats {
    let (activities, fragments) = model.counts();
    let mut s = AftmStats { activities, fragments, ..AftmStats::default() };
    for edge in model.edges() {
        match edge.kind {
            EdgeKind::E1 => s.e1 += 1,
            EdgeKind::E2 => s.e2 += 1,
            EdgeKind::E3 => s.e3 += 1,
        }
    }
    let reachable: BTreeSet<NodeId> = model.reachable();
    s.reachable = reachable.len();
    s.unreachable = model.nodes().count() - s.reachable;
    s.depth = reachable.iter().filter_map(|n| model.path_to(n).map(|p| p.len())).max().unwrap_or(0);
    s.max_fragments_per_activity = model
        .activities()
        .map(|a| model.fragments_of_activity(a.as_str()).len())
        .max()
        .unwrap_or(0);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;

    fn model() -> Aftm {
        let mut m = Aftm::new();
        m.set_entry("s.A0");
        m.add_edge(Edge::e1("s.A0", "s.A1"));
        m.add_edge(Edge::e2("s.A0", "s.F0"));
        m.add_edge(Edge::e3("s.A0", "s.F0", "s.F1"));
        m.add_node(NodeId::Activity("s.Isolated".into()));
        m
    }

    #[test]
    fn counts_and_edge_kinds() {
        let s = stats(&model());
        assert_eq!(s.activities, 3);
        assert_eq!(s.fragments, 2);
        assert_eq!((s.e1, s.e2, s.e3), (1, 1, 1));
    }

    #[test]
    fn reachability_and_depth() {
        let s = stats(&model());
        assert_eq!(s.reachable, 4);
        assert_eq!(s.unreachable, 1, "the isolated activity");
        // Longest shortest path: A0 → F0 → F1 = 2.
        assert_eq!(s.depth, 2);
    }

    #[test]
    fn fragment_concentration() {
        let s = stats(&model());
        assert_eq!(s.max_fragments_per_activity, 2, "A0 hosts F0 and F1");
        assert!((s.fragment_ratio() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn empty_model_is_all_zero() {
        let s = stats(&Aftm::new());
        assert_eq!(s, AftmStats::default());
        assert_eq!(s.fragment_ratio(), 0.0);
    }
}
