//! Evolution deltas: what dynamic exploration added to the statically
//! initialized model.
//!
//! The paper's AFTM "will be updated continuously until all nodes have
//! been visited"; the delta between the initial and the final model is
//! the value of the dynamic phase — transitions the static patterns could
//! not see (runtime-resolved intents, observed fragment switches) and
//! nodes only reached by force.

use crate::graph::{Aftm, Edge, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The difference between two models (typically initial → final).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AftmDelta {
    /// Nodes present only in the newer model.
    pub added_nodes: BTreeSet<NodeId>,
    /// Edges present only in the newer model.
    pub added_edges: BTreeSet<Edge>,
    /// Nodes visited in the newer model but not in the older one.
    pub newly_visited: BTreeSet<NodeId>,
}

impl AftmDelta {
    /// Whether evolution changed anything.
    pub fn is_empty(&self) -> bool {
        self.added_nodes.is_empty() && self.added_edges.is_empty() && self.newly_visited.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "+{} nodes, +{} edges, {} newly visited",
            self.added_nodes.len(),
            self.added_edges.len(),
            self.newly_visited.len()
        )
    }
}

/// Computes `newer − older`.
pub fn diff(older: &Aftm, newer: &Aftm) -> AftmDelta {
    let old_nodes: BTreeSet<&NodeId> = older.nodes().collect();
    let old_edges: BTreeSet<&Edge> = older.edges().collect();
    AftmDelta {
        added_nodes: newer.nodes().filter(|n| !old_nodes.contains(n)).cloned().collect(),
        added_edges: newer.edges().filter(|e| !old_edges.contains(e)).cloned().collect(),
        newly_visited: newer
            .nodes()
            .filter(|n| newer.is_visited(n) && !older.is_visited(n))
            .cloned()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;

    #[test]
    fn diff_reports_additions_and_visits() {
        let mut a = Aftm::new();
        a.set_entry("d.A0");
        a.add_edge(Edge::e1("d.A0", "d.A1"));

        let mut b = a.clone();
        b.add_edge(Edge::e2("d.A1", "d.F0"));
        b.mark_visited(&NodeId::Activity("d.A0".into()));

        let delta = diff(&a, &b);
        assert_eq!(delta.added_nodes.len(), 1, "F0");
        assert_eq!(delta.added_edges.len(), 1);
        assert_eq!(delta.newly_visited.len(), 1, "A0");
        assert!(!delta.is_empty());
        assert_eq!(delta.summary(), "+1 nodes, +1 edges, 1 newly visited");
    }

    #[test]
    fn identical_models_have_empty_diff() {
        let mut a = Aftm::new();
        a.set_entry("d.A0");
        assert!(diff(&a, &a.clone()).is_empty());
    }
}
