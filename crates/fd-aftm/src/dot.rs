//! Graphviz DOT export — regenerates Fig. 5-style pictures of a model.

use crate::graph::{Aftm, EdgeKind, NodeId};
use std::fmt::Write;

fn node_id_token(node: &NodeId) -> String {
    let prefix = if node.is_activity() { "A" } else { "F" };
    format!("{prefix}_{}", node.class().as_str().replace(['.', '$'], "_"))
}

/// Renders the model as a DOT digraph. Activities are boxes, fragments
/// ellipses; visited nodes are filled; edge styles distinguish E1/E2/E3.
pub fn to_dot(model: &Aftm) -> String {
    let mut out = String::from("digraph aftm {\n    rankdir=LR;\n");
    for node in model.nodes() {
        let shape = if node.is_activity() { "box" } else { "ellipse" };
        let fill = if model.is_visited(node) { ", style=filled, fillcolor=lightgrey" } else { "" };
        let entry = model.entry().map(|e| node.is_activity() && node.class() == e).unwrap_or(false);
        let bold = if entry { ", penwidth=2" } else { "" };
        let _ = writeln!(
            out,
            "    {} [label=\"{}\", shape={}{}{}];",
            node_id_token(node),
            node.class().simple_name(),
            shape,
            fill,
            bold,
        );
    }
    for edge in model.edges() {
        let style = match edge.kind {
            EdgeKind::E1 => "solid",
            EdgeKind::E2 => "dashed",
            EdgeKind::E3 => "dotted",
        };
        let _ = writeln!(
            out,
            "    {} -> {} [style={}, label=\"{:?}\"];",
            node_id_token(&edge.from),
            node_id_token(&edge.to),
            style,
            edge.kind,
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;

    #[test]
    fn dot_contains_all_nodes_and_edge_styles() {
        let mut m = Aftm::new();
        m.set_entry("app.A0");
        m.add_edge(Edge::e1("app.A0", "app.A1"));
        m.add_edge(Edge::e2("app.A0", "app.F0"));
        m.add_edge(Edge::e3("app.A0", "app.F0", "app.F1"));
        m.mark_visited(&NodeId::Activity("app.A0".into()));

        let dot = to_dot(&m);
        assert!(dot.starts_with("digraph aftm {"));
        for token in ["A_app_A0", "A_app_A1", "F_app_F0", "F_app_F1"] {
            assert!(dot.contains(token), "missing {token} in:\n{dot}");
        }
        assert!(dot.contains("style=solid"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("style=dotted"));
        assert!(dot.contains("fillcolor=lightgrey"), "visited entry should be filled");
        assert!(dot.contains("penwidth=2"), "entry should be bold");
    }

    #[test]
    fn inner_class_names_are_sanitized() {
        let mut m = Aftm::new();
        m.add_node(NodeId::Fragment("a.Outer$1".into()));
        let dot = to_dot(&m);
        assert!(dot.contains("F_a_Outer_1"));
    }
}
