//! The seven raw transition types and the 7 → 3 merge of §IV-A.

use crate::graph::Edge;
use fd_smali::ClassName;
use serde::{Deserialize, Serialize};

/// One of the seven transition types the paper observes in practice,
/// before merging. Fragment-rooted transitions carry the fragment's host
/// activity, because the merge re-roots them there.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RawTransition {
    /// `A → A`: activity to (external) activity.
    ActivityToActivity {
        /// Source activity.
        from: ClassName,
        /// Target activity.
        to: ClassName,
    },
    /// `A → Fᵢ`: activity to one of its own fragments.
    ActivityToOwnFragment {
        /// Host activity.
        activity: ClassName,
        /// The fragment shown.
        fragment: ClassName,
    },
    /// `F → Fᵢ`: fragment to fragment, same host activity.
    FragmentToFragment {
        /// The shared host activity.
        host: ClassName,
        /// Source fragment.
        from: ClassName,
        /// Target fragment.
        to: ClassName,
    },
    /// `A → F_o`: activity to a fragment living in *another* activity.
    ActivityToForeignFragment {
        /// Source activity.
        from: ClassName,
        /// The target fragment's host activity.
        host: ClassName,
        /// The fragment shown.
        fragment: ClassName,
    },
    /// `F → Aᵢ`: fragment back to its own host activity (ignored — "this
    /// transition must go through its host Activity").
    FragmentToHostActivity {
        /// The host activity.
        host: ClassName,
        /// The fragment.
        fragment: ClassName,
    },
    /// `F → A_o`: fragment to an external activity.
    FragmentToActivity {
        /// The source fragment's host activity.
        host: ClassName,
        /// Source fragment.
        fragment: ClassName,
        /// Target activity.
        to: ClassName,
    },
    /// `F → F_o`: fragment to a fragment of *another* activity.
    FragmentToForeignFragment {
        /// The source fragment's host activity.
        from_host: ClassName,
        /// Source fragment.
        fragment: ClassName,
        /// The target fragment's host activity.
        to_host: ClassName,
        /// Target fragment.
        to_fragment: ClassName,
    },
}

impl RawTransition {
    /// Merges this raw transition into basic E1/E2/E3 edges, following
    /// §IV-A exactly:
    ///
    /// * `F → Aᵢ` is dropped;
    /// * edges starting at a fragment are re-rooted at its host activity
    ///   (`F → A_o` ⇒ `A → A_o`, `F → F_o` ⇒ `A → F_o`);
    /// * `A → F_o` splits into `A → A'` (E1) plus `A' → Fᵢ` (E2).
    pub fn merge(self) -> Vec<Edge> {
        match self {
            RawTransition::ActivityToActivity { from, to } => vec![Edge::e1(from, to)],
            RawTransition::ActivityToOwnFragment { activity, fragment } => {
                vec![Edge::e2(activity, fragment)]
            }
            RawTransition::FragmentToFragment { host, from, to } => {
                vec![Edge::e3(host, from, to)]
            }
            RawTransition::ActivityToForeignFragment { from, host, fragment } => {
                vec![Edge::e1(from, host.clone()), Edge::e2(host, fragment)]
            }
            RawTransition::FragmentToHostActivity { .. } => Vec::new(),
            RawTransition::FragmentToActivity { host, fragment: _, to } => {
                vec![Edge::e1(host, to)]
            }
            RawTransition::FragmentToForeignFragment {
                from_host,
                fragment: _,
                to_host,
                to_fragment,
            } => vec![Edge::e1(from_host, to_host.clone()), Edge::e2(to_host, to_fragment)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;

    #[test]
    fn basic_three_map_to_themselves() {
        let e =
            RawTransition::ActivityToActivity { from: "a.A0".into(), to: "a.A1".into() }.merge();
        assert_eq!(e, vec![Edge::e1("a.A0", "a.A1")]);

        let e = RawTransition::ActivityToOwnFragment {
            activity: "a.A0".into(),
            fragment: "a.F0".into(),
        }
        .merge();
        assert_eq!(e, vec![Edge::e2("a.A0", "a.F0")]);

        let e = RawTransition::FragmentToFragment {
            host: "a.A0".into(),
            from: "a.F0".into(),
            to: "a.F1".into(),
        }
        .merge();
        assert_eq!(e, vec![Edge::e3("a.A0", "a.F0", "a.F1")]);
    }

    #[test]
    fn fragment_to_host_is_dropped() {
        let e =
            RawTransition::FragmentToHostActivity { host: "a.A0".into(), fragment: "a.F0".into() }
                .merge();
        assert!(e.is_empty());
    }

    #[test]
    fn fragment_to_external_activity_reroots_at_host() {
        let e = RawTransition::FragmentToActivity {
            host: "a.A0".into(),
            fragment: "a.F0".into(),
            to: "a.A1".into(),
        }
        .merge();
        assert_eq!(e, vec![Edge::e1("a.A0", "a.A1")]);
    }

    #[test]
    fn activity_to_foreign_fragment_splits() {
        let e = RawTransition::ActivityToForeignFragment {
            from: "a.A0".into(),
            host: "a.A1".into(),
            fragment: "a.F9".into(),
        }
        .merge();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0], Edge::e1("a.A0", "a.A1"));
        assert_eq!(e[1], Edge::e2("a.A1", "a.F9"));
    }

    #[test]
    fn fragment_to_foreign_fragment_reroots_then_splits() {
        let e = RawTransition::FragmentToForeignFragment {
            from_host: "a.A0".into(),
            fragment: "a.F0".into(),
            to_host: "a.A1".into(),
            to_fragment: "a.F9".into(),
        }
        .merge();
        assert_eq!(e, vec![Edge::e1("a.A0", "a.A1"), Edge::e2("a.A1", "a.F9")]);
        // Every produced edge is one of the three basic kinds by
        // construction of `Edge`, but assert the kinds explicitly:
        assert_eq!(e[0].kind, EdgeKind::E1);
        assert_eq!(e[1].kind, EdgeKind::E2);
    }
}
